/**
 * @file
 * dnastore command-line tool.
 *
 * Subcommands:
 *   encode   <files...> --out unit.dna [--scheme gini|baseline|dnamapper]
 *            Encode files into a DNA unit; writes one ACGT strand per
 *            line (FASTA-ish flat format).
 *   decode   <unit.dna> --outdir DIR [--scheme ...]
 *            Read strands back (one cluster per original line group),
 *            run consensus + ECC, and write the recovered files.
 *   simulate <files...> [--scheme ...] [--error-rate p] [--coverage n]
 *            [--threads t] [--packed-pools] [--cluster]
 *            [--cluster-qgram q] [--cluster-maxdist f]
 *            End-to-end store/retrieve through the noisy channel and
 *            report recovery statistics. With --cluster the reads are
 *            regrouped by the real clusterer (instead of the perfect-
 *            clustering assumption) before decoding.
 *
 * The unit format produced by `encode` is noiseless (it is what a
 * synthesizer would receive); `simulate` is where the channel lives.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/simulator.hh"

using namespace dnastore;

namespace {

struct CliOptions
{
    std::vector<std::string> inputs;
    std::string out = "unit.dna";
    std::string outdir = ".";
    LayoutScheme scheme = LayoutScheme::Gini;
    double errorRate = 0.06;
    size_t coverage = 10;
    size_t threads = 1; // 0 = all hardware threads
    bool packedPools = false;
    bool cluster = false;
    size_t clusterQgram = 6;
    double clusterMaxDist = 0.25;
    bool ok = true;
};

LayoutScheme
parseScheme(const std::string &name, bool *ok)
{
    if (name == "baseline")
        return LayoutScheme::Baseline;
    if (name == "gini")
        return LayoutScheme::Gini;
    if (name == "dnamapper")
        return LayoutScheme::DnaMapper;
    *ok = false;
    return LayoutScheme::Gini;
}

CliOptions
parseArgs(int argc, char **argv, int first)
{
    CliOptions opt;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag);
                opt.ok = false;
                return "";
            }
            return argv[++i];
        };
        if (arg == "--out") {
            opt.out = next("--out");
        } else if (arg == "--outdir") {
            opt.outdir = next("--outdir");
        } else if (arg == "--scheme") {
            bool ok = true;
            opt.scheme = parseScheme(next("--scheme"), &ok);
            if (!ok) {
                std::fprintf(stderr, "unknown scheme\n");
                opt.ok = false;
            }
        } else if (arg == "--error-rate") {
            opt.errorRate = std::strtod(next("--error-rate").c_str(),
                                        nullptr);
        } else if (arg == "--coverage") {
            opt.coverage = std::strtoull(next("--coverage").c_str(),
                                         nullptr, 10);
        } else if (arg == "--threads") {
            opt.threads = std::strtoull(next("--threads").c_str(),
                                        nullptr, 10);
        } else if (arg == "--packed-pools") {
            opt.packedPools = true;
        } else if (arg == "--cluster") {
            opt.cluster = true;
        } else if (arg == "--cluster-qgram") {
            opt.clusterQgram = std::strtoull(
                next("--cluster-qgram").c_str(), nullptr, 10);
            // 2 bits per base must fit the 64-bit signature hash.
            if (opt.clusterQgram < 1 || opt.clusterQgram > 31) {
                std::fprintf(stderr,
                             "--cluster-qgram must be in [1, 31]\n");
                opt.ok = false;
            }
        } else if (arg == "--cluster-maxdist") {
            opt.clusterMaxDist = std::strtod(
                next("--cluster-maxdist").c_str(), nullptr);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            opt.ok = false;
        } else {
            opt.inputs.push_back(arg);
        }
    }
    return opt;
}

std::vector<uint8_t>
readFile(const std::string &path, bool *ok)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        *ok = false;
        return {};
    }
    std::vector<uint8_t> data(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return data;
}

std::string
baseName(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Pick a config whose unit fits the payload. */
StorageConfig
configFor(size_t payload_bits, bool *ok)
{
    for (auto cfg : { StorageConfig::tinyTest(),
                      StorageConfig::benchScale() }) {
        if (payload_bits + 1024 <= cfg.capacityBits())
            return cfg;
    }
    std::fprintf(stderr,
                 "payload too large for one unit (max ~%zu bytes)\n",
                 StorageConfig::benchScale().capacityBytes());
    *ok = false;
    return StorageConfig::tinyTest();
}

FileBundle
bundleInputs(const CliOptions &opt, bool *ok)
{
    FileBundle bundle;
    for (const auto &path : opt.inputs) {
        auto data = readFile(path, ok);
        if (!*ok)
            break;
        bundle.add(baseName(path), std::move(data));
    }
    if (bundle.fileCount() == 0) {
        std::fprintf(stderr, "no input files\n");
        *ok = false;
    }
    return bundle;
}

int
cmdEncode(const CliOptions &opt)
{
    bool ok = true;
    FileBundle bundle = bundleInputs(opt, &ok);
    if (!ok)
        return 1;
    StorageConfig cfg = configFor(bundle.serializedBits(), &ok);
    if (!ok)
        return 1;

    UnitEncoder encoder(cfg, opt.scheme);
    EncodedUnit unit = encoder.encode(bundle);
    std::ofstream out(opt.out);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
        return 1;
    }
    // Header line records the geometry needed to decode.
    out << "#dnastore m=" << cfg.symbolBits << " rows=" << cfg.rows
        << " parity=" << cfg.paritySymbols
        << " primer=" << cfg.primerLen
        << " scheme=" << layoutSchemeName(opt.scheme) << "\n";
    for (const auto &strand : unit.strands)
        out << strandToString(strand) << "\n";
    std::printf("wrote %zu strands (%zu bases each) to %s\n",
                unit.strands.size(), cfg.strandLen(),
                opt.out.c_str());
    return 0;
}

int
cmdDecode(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "decode needs exactly one unit file\n");
        return 1;
    }
    std::ifstream in(opt.inputs[0]);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n",
                     opt.inputs[0].c_str());
        return 1;
    }
    std::string header;
    std::getline(in, header);
    StorageConfig cfg;
    char scheme_name[32] = "gini";
    unsigned m = 0;
    size_t rows = 0, parity = 0, primer = 0;
    if (std::sscanf(header.c_str(),
                    "#dnastore m=%u rows=%zu parity=%zu primer=%zu "
                    "scheme=%31s",
                    &m, &rows, &parity, &primer, scheme_name) != 5) {
        std::fprintf(stderr, "bad unit header\n");
        return 1;
    }
    cfg.symbolBits = m;
    cfg.rows = rows;
    cfg.paritySymbols = parity;
    cfg.primerLen = primer;
    bool ok = true;
    LayoutScheme scheme = parseScheme(scheme_name, &ok);
    if (!ok)
        return 1;

    // Each line is one read; consecutive identical-index reads would
    // normally be clustered — here the file is a noiseless unit, so
    // each line is its own single-read cluster.
    std::vector<std::vector<Strand>> clusters;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        clusters.push_back({ strandFromString(line) });
    }

    UnitDecoder decoder(cfg, scheme);
    DecodedUnit result = decoder.decode(clusters);
    if (!result.bundleOk) {
        std::fprintf(stderr, "decoding failed (unrecoverable unit)\n");
        return 1;
    }
    for (const auto &file : result.bundle.files()) {
        std::string path = opt.outdir + "/" + file.name;
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(file.data.data()),
                  std::streamsize(file.data.size()));
        std::printf("recovered %s (%zu bytes)%s\n", path.c_str(),
                    file.data.size(),
                    result.exact ? "" : " [ECC reported failures]");
    }
    return result.exact ? 0 : 2;
}

int
cmdSimulate(const CliOptions &opt)
{
    bool ok = true;
    FileBundle bundle = bundleInputs(opt, &ok);
    if (!ok)
        return 1;
    StorageConfig cfg = configFor(bundle.serializedBits(), &ok);
    if (!ok)
        return 1;
    cfg.numThreads = opt.threads;
    cfg.packedReadPools = opt.packedPools;

    StorageSimulator sim(cfg, opt.scheme,
                         ErrorModel::uniform(opt.errorRate),
                         /*seed=*/20220618);
    sim.store(bundle, opt.coverage);

    RetrievalResult result;
    if (opt.cluster) {
        ClusterParams params;
        params.qgram = opt.clusterQgram;
        params.maxDistanceFrac = opt.clusterMaxDist;
        params.numThreads = opt.threads;
        ClusteredRetrievalResult clustered =
            sim.retrieveClustered(opt.coverage, params);
        result = std::move(clustered.result);
        std::printf("clustering: %zu clusters "
                    "(precision=%.4f recall=%.4f)\n",
                    clustered.clustersFound,
                    clustered.quality.precision,
                    clustered.quality.recall);
    } else {
        result = sim.retrieve(opt.coverage);
    }
    std::printf("scheme=%s error_rate=%.1f%% coverage=%zu: "
                "exact=%s, %zu errors corrected, %zu molecules lost, "
                "%zu codewords failed\n",
                layoutSchemeName(opt.scheme), opt.errorRate * 100,
                opt.coverage, result.exactPayload ? "yes" : "no",
                result.decoded.stats.totalCorrected(),
                result.decoded.stats.erasedColumns,
                result.decoded.stats.failedCodewords);
    return result.exactPayload ? 0 : 2;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  dnastore encode <files...> [--out unit.dna] "
        "[--scheme gini|baseline|dnamapper]\n"
        "  dnastore decode <unit.dna> [--outdir DIR]\n"
        "  dnastore simulate <files...> [--scheme S] "
        "[--error-rate P] [--coverage N] [--threads T] "
        "[--packed-pools]\n"
        "                [--cluster] [--cluster-qgram Q] "
        "[--cluster-maxdist F]\n"
        "    (--threads 0 uses all hardware threads; --packed-pools\n"
        "     stores reads 2-bit packed; --cluster regroups reads\n"
        "     with the real clusterer before decoding; results are\n"
        "     identical for every thread count and storage mode)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    CliOptions opt = parseArgs(argc, argv, 2);
    if (!opt.ok) {
        usage();
        return 1;
    }
    try {
        if (cmd == "encode")
            return cmdEncode(opt);
        if (cmd == "decode")
            return cmdDecode(opt);
        if (cmd == "simulate")
            return cmdSimulate(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
    return 1;
}

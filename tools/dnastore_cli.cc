/**
 * @file
 * dnastore command-line tool — a thin shell over `dnastore::api`.
 *
 * Subcommands:
 *   encode   <files...> --out unit.dna [--scheme gini|baseline|dnamapper]
 *            Encode files into a DNA unit; writes one ACGT strand per
 *            line (FASTA-ish flat format).
 *   decode   <unit.dna> --outdir DIR
 *            Read strands back (one cluster per original line group),
 *            run consensus + ECC, and write the recovered files.
 *   simulate <files...> [--scheme ...] [--error-rate p] [--coverage n]
 *            [--ins-rate p] [--del-rate p] [--sub-rate p]
 *            [--gamma-mean m --gamma-shape k]
 *            [--threads t] [--packed-pools] [--cluster]
 *            [--cluster-qgram q] [--cluster-maxdist f]
 *            End-to-end store/retrieve through the noisy channel and
 *            report recovery statistics. With --cluster the reads are
 *            regrouped by the real clusterer (instead of the perfect-
 *            clustering assumption) before decoding.
 *   sweep    --scenario NAME|all [--trials n] [--threads t] [--seed s]
 *            [--json FILE] [--csv FILE] [--timing] [--list]
 *            [--from-pool FILE]
 *            Deterministic Monte-Carlo reliability sweep over the
 *            Scenario Lab's named hostile channel profiles; emits a
 *            structured JSON (and optionally CSV) report. The JSON is
 *            byte-identical for every --threads value. With
 *            --from-pool the scenarios store a pool file's real
 *            objects (and its geometry) instead of the synthetic
 *            payload.
 *   pack     <files...> [--out store.dnapool] [--scheme ...]
 *            [channel flags] [--no-pools]
 *            Encode files and save the unit — read pools included
 *            unless --no-pools — as a versioned, checksummed
 *            `.dnapool` file (the durable store format).
 *   unpack   <store.dnapool> --outdir DIR
 *            Reopen a pool file read-only, retrieve every object
 *            through the decode path, and write the recovered files.
 *   health   <store.dnapool> [--json FILE] [--threads t]
 *            Probe-decode the pool at full depth and emit the health
 *            report (per-cluster live reads and consensus agreement,
 *            per-codeword RS correction split and remaining margin)
 *            as deterministic JSON — byte-identical for every
 *            --threads value.
 *   scrub    <store.dnapool> [--out FILE] [--age N --age-loss p
 *            --age-sub p] [--min-reads n] [--min-agreement f]
 *            [--repair-all] [--json FILE]
 *            Optionally age the pool N epochs, then scrub it: probe-
 *            decode, select low-margin clusters, re-synthesize them
 *            from the RS-repaired data, and save the repaired pool
 *            back (to --out, or in place). Scrub synthesis noise
 *            comes from the channel flags, so identical invocations
 *            produce byte-identical repaired files.
 *   simulate/sweep also accept --from-pool FILE to run against a
 *            previously packed store instead of fresh inputs.
 *   serve    --root DIR [--port P] [--port-file FILE] [--quota BYTES]
 *            Run `dnastored`: a concurrent multi-tenant storage
 *            daemon on localhost TCP (daemon/server.hh). Each tenant
 *            namespace is backed by its own `<root>/<tenant>.dnapool`
 *            with an optional byte quota. SIGTERM/SIGINT drain
 *            gracefully: in-flight requests finish, dirty pools save
 *            atomically.
 *   client   <op> [ARG] --connect PORT [--tenant T]
 *            Talk to a running dnastored: ping, put, get, list,
 *            health, scrub, trial, save. Statuses (and their
 *            messages) cross the wire unchanged, so errors and exit
 *            codes match the equivalent local subcommand.
 *   --version
 *            Print the library version and exit.
 *
 * The unit format produced by `encode` is noiseless (it is what a
 * synthesizer would receive); `simulate` and `sweep` are where the
 * channel lives. All parameter validation happens in the API's
 * option builders (api/options.hh) — the CLI prints the builder's
 * Status message verbatim, so the CLI and the API reject identical
 * inputs with identical messages.
 *
 * Exit codes (documented in --help and the README):
 *   0  success (exact recovery / all scenarios passed)
 *   1  runtime failure (I/O error, unrecoverable unit)
 *   2  usage or validation error (bad flag, rejected parameter)
 *   3  quality threshold miss (inexact recovery, scenario below its
 *      reliability bound)
 */

#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hh"
#include "daemon/client.hh"
#include "daemon/server.hh"
#include "lab/report.hh"
#include "lab/scenario.hh"
#include "lab/sweep.hh"
#include "util/parse.hh"

using namespace dnastore;

namespace {

// The documented exit-code contract.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitThreshold = 3;

struct CliOptions
{
    std::vector<std::string> inputs;
    std::string out = "unit.dna";
    std::string outdir = ".";
    LayoutScheme scheme = LayoutScheme::Gini;
    double errorRate = 0.06;
    bool errorRateSet = false;
    double insRate = 0.0;
    double delRate = 0.0;
    double subRate = 0.0;
    bool ratesSet = false;
    double gammaMean = 0.0;
    double gammaShape = 0.0;
    bool gammaSet = false;
    size_t coverage = 10;
    bool coverageSet = false;
    size_t threads = 1; // 0 = all hardware threads
    bool packedPools = false;
    bool cluster = false;
    size_t clusterQgram = 6;
    double clusterMaxDist = 0.25;
    size_t clusterMemoryMb = 0;
    size_t clusterSketchBits = 0;
    std::string clusterSpillDir;
    bool clusterKnobsSet = false;
    // pack/unpack/--from-pool
    std::string fromPool; // empty = none
    bool noPools = false;
    bool outSet = false;
    // health/scrub
    size_t ageEpochs = 0;
    double ageLoss = 0.0;
    double ageSub = 0.0;
    bool agingSet = false;
    size_t scrubMinReads = 0;
    double scrubMinAgreement = 0.0;
    bool scrubRepairAll = false;
    // sweep
    std::string scenario = "all";
    size_t trials = 100;
    uint64_t seed = 20220618;
    std::string jsonPath;   // empty = stdout
    std::string csvPath;    // empty = no CSV
    bool timing = false;
    bool list = false;
    // serve/client (dnastored)
    uint64_t port = 0;        // 0 = ephemeral
    std::string root;         // serve: tenant pool directory
    uint64_t quotaBytes = 0;  // 0 = no quota
    std::string portFile;     // serve: write the bound port here
    uint64_t connectPort = 0; // client: server port
    std::string tenant = "default";
    std::string objName;      // client put: override object name
    bool ok = true;
};

/** Print a rejected parameter exactly as the API words it. */
void
printStatus(const api::Status &status)
{
    std::fprintf(stderr, "%s\n", status.message().c_str());
}

/** Map an API failure onto the documented exit codes. */
int
statusExit(const api::Status &status)
{
    switch (status.code()) {
      case api::StatusCode::InvalidArgument:
      case api::StatusCode::AlreadyExists:
      case api::StatusCode::CapacityExceeded:
      case api::StatusCode::FailedPrecondition:
        return kExitUsage;
      default:
        return kExitRuntime;
    }
}

CliOptions
parseArgs(int argc, char **argv, int first)
{
    CliOptions opt;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag);
                opt.ok = false;
                return "";
            }
            return argv[++i];
        };
        // Strict numeric flag values (util/parse.hh): "--seed foo"
        // and "--threads 4x" are hard usage errors naming the text,
        // never a silent 0 or a silent truncation to 4.
        auto nextU64 = [&](const char *flag, uint64_t *out) {
            std::string raw = next(flag);
            if (!opt.ok)
                return;
            std::string why;
            if (!parseU64(raw, out, &why)) {
                std::fprintf(stderr, "%s: %s (got '%s')\n", flag,
                             why.c_str(), raw.c_str());
                opt.ok = false;
            }
        };
        auto nextSize = [&](const char *flag, size_t *out) {
            uint64_t v = 0;
            nextU64(flag, &v);
            if (opt.ok)
                *out = size_t(v);
        };
        auto nextF64 = [&](const char *flag, double *out) {
            std::string raw = next(flag);
            if (!opt.ok)
                return;
            std::string why;
            if (!parseF64(raw, out, &why)) {
                std::fprintf(stderr, "%s: %s (got '%s')\n", flag,
                             why.c_str(), raw.c_str());
                opt.ok = false;
            }
        };
        if (arg == "--out") {
            opt.out = next("--out");
            opt.outSet = true;
        } else if (arg == "--from-pool") {
            opt.fromPool = next("--from-pool");
        } else if (arg == "--no-pools") {
            opt.noPools = true;
        } else if (arg == "--outdir") {
            opt.outdir = next("--outdir");
        } else if (arg == "--scheme") {
            bool ok = true;
            opt.scheme =
                layoutSchemeFromName(next("--scheme").c_str(), &ok);
            if (!ok) {
                std::fprintf(stderr, "unknown scheme\n");
                opt.ok = false;
            }
        } else if (arg == "--error-rate") {
            nextF64("--error-rate", &opt.errorRate);
            opt.errorRateSet = true;
        } else if (arg == "--ins-rate" || arg == "--del-rate" ||
                   arg == "--sub-rate") {
            double *rate = arg == "--ins-rate"
                ? &opt.insRate
                : arg == "--del-rate" ? &opt.delRate : &opt.subRate;
            nextF64(arg.c_str(), rate);
            opt.ratesSet = true;
        } else if (arg == "--gamma-mean") {
            nextF64("--gamma-mean", &opt.gammaMean);
            opt.gammaSet = true;
        } else if (arg == "--gamma-shape") {
            nextF64("--gamma-shape", &opt.gammaShape);
            opt.gammaSet = true;
        } else if (arg == "--scenario") {
            opt.scenario = next("--scenario");
        } else if (arg == "--trials") {
            nextSize("--trials", &opt.trials);
            // Bound the count so typos fail fast instead of running
            // for days (10M trials is already a multi-hour soak).
            const size_t max_trials = 10000000;
            if (opt.ok && opt.trials > max_trials) {
                std::fprintf(stderr,
                             "--trials must be in [1, %zu] (got %zu)\n",
                             max_trials, opt.trials);
                opt.ok = false;
            }
        } else if (arg == "--seed") {
            nextU64("--seed", &opt.seed);
        } else if (arg == "--json") {
            opt.jsonPath = next("--json");
        } else if (arg == "--csv") {
            opt.csvPath = next("--csv");
        } else if (arg == "--timing") {
            opt.timing = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--coverage") {
            nextSize("--coverage", &opt.coverage);
            opt.coverageSet = true;
        } else if (arg == "--threads") {
            nextSize("--threads", &opt.threads);
        } else if (arg == "--packed-pools") {
            opt.packedPools = true;
        } else if (arg == "--cluster") {
            opt.cluster = true;
        } else if (arg == "--cluster-qgram") {
            nextSize("--cluster-qgram", &opt.clusterQgram);
            opt.clusterKnobsSet = true;
        } else if (arg == "--cluster-maxdist") {
            nextF64("--cluster-maxdist", &opt.clusterMaxDist);
            opt.clusterKnobsSet = true;
        } else if (arg == "--cluster-memory-mb") {
            nextSize("--cluster-memory-mb", &opt.clusterMemoryMb);
            opt.clusterKnobsSet = true;
        } else if (arg == "--cluster-sketch-bits") {
            nextSize("--cluster-sketch-bits", &opt.clusterSketchBits);
            opt.clusterKnobsSet = true;
        } else if (arg == "--cluster-spill-dir") {
            opt.clusterSpillDir = next("--cluster-spill-dir");
            opt.clusterKnobsSet = true;
        } else if (arg == "--age") {
            nextSize("--age", &opt.ageEpochs);
        } else if (arg == "--age-loss") {
            nextF64("--age-loss", &opt.ageLoss);
            opt.agingSet = true;
        } else if (arg == "--age-sub") {
            nextF64("--age-sub", &opt.ageSub);
            opt.agingSet = true;
        } else if (arg == "--min-reads") {
            nextSize("--min-reads", &opt.scrubMinReads);
        } else if (arg == "--min-agreement") {
            nextF64("--min-agreement", &opt.scrubMinAgreement);
        } else if (arg == "--repair-all") {
            opt.scrubRepairAll = true;
        } else if (arg == "--port") {
            nextU64("--port", &opt.port);
            if (opt.ok && opt.port > 65535) {
                std::fprintf(stderr,
                             "--port must be in [0, 65535] (got %llu)\n",
                             static_cast<unsigned long long>(opt.port));
                opt.ok = false;
            }
        } else if (arg == "--root") {
            opt.root = next("--root");
        } else if (arg == "--quota") {
            nextU64("--quota", &opt.quotaBytes);
        } else if (arg == "--port-file") {
            opt.portFile = next("--port-file");
        } else if (arg == "--connect") {
            nextU64("--connect", &opt.connectPort);
            if (opt.ok &&
                (opt.connectPort == 0 || opt.connectPort > 65535)) {
                std::fprintf(
                    stderr,
                    "--connect must be in [1, 65535] (got %llu)\n",
                    static_cast<unsigned long long>(opt.connectPort));
                opt.ok = false;
            }
        } else if (arg == "--tenant") {
            opt.tenant = next("--tenant");
        } else if (arg == "--name") {
            opt.objName = next("--name");
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            opt.ok = false;
        } else {
            opt.inputs.push_back(arg);
        }
    }
    return opt;
}

std::vector<uint8_t>
readFile(const std::string &path, bool *ok)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        *ok = false;
        return {};
    }
    std::vector<uint8_t> data(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return data;
}

std::string
baseName(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/**
 * The clustering knobs as the API sees them; validated by the
 * builder whenever any knob was given, --cluster or not, so a typo'd
 * qgram never passes silently.
 */
api::ClusterOptions
clusterOptionsFor(const CliOptions &opt)
{
    api::ClusterOptions cluster;
    cluster.qgram(opt.clusterQgram)
        .maxDistanceFrac(opt.clusterMaxDist)
        .threads(opt.threads)
        .memoryBudgetMb(opt.clusterMemoryMb)
        .sketchBits(opt.clusterSketchBits)
        .spillDir(opt.clusterSpillDir);
    return cluster;
}

/** Read the inputs into the store; false (with message) on failure. */
bool
putInputs(api::Store &store, const CliOptions &opt, int *exit_code)
{
    if (opt.inputs.empty()) {
        std::fprintf(stderr, "no input files\n");
        *exit_code = kExitUsage;
        return false;
    }
    for (const auto &path : opt.inputs) {
        bool read_ok = true;
        auto data = readFile(path, &read_ok);
        if (!read_ok) {
            *exit_code = kExitRuntime;
            return false;
        }
        api::Status status = store.put(baseName(path), std::move(data));
        if (!status.ok()) {
            printStatus(status);
            *exit_code = statusExit(status);
            return false;
        }
    }
    *exit_code = kExitOk;
    return true;
}

/**
 * Build the channel/coverage/cluster options from the flags. All
 * validation — rates, totals, gamma, coverage, cluster knobs —
 * happens in ChannelOptions::validate() at Store::open.
 */
api::ChannelOptions
channelOptionsFor(const CliOptions &opt)
{
    api::ChannelOptions chan;
    if (opt.errorRateSet || !opt.ratesSet)
        chan.errorRate(opt.errorRate);
    if (opt.ratesSet)
        chan.rates(opt.insRate, opt.delRate, opt.subRate);
    chan.coverage(opt.coverage);
    if (opt.gammaSet)
        chan.gammaCoverage(opt.gammaMean, opt.gammaShape);
    if (opt.cluster)
        chan.cluster(clusterOptionsFor(opt));
    if (opt.agingSet) {
        AgingProfile aging;
        aging.strandLossRate = opt.ageLoss;
        aging.substitutionRate = opt.ageSub;
        chan.aging(aging);
    }
    chan.drawSeed(opt.seed);
    return chan;
}

int
cmdEncode(const CliOptions &opt)
{
    api::Result<api::Store> store = api::Store::open(
        api::StoreOptions().autoGeometry(true).layout(opt.scheme));
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    int exit_code = kExitOk;
    if (!putInputs(*store, opt, &exit_code))
        return exit_code;

    api::Result<api::EncodedArtifact> artifact =
        store->submit(api::EncodeJob{}).get();
    if (!artifact.ok()) {
        printStatus(artifact.status());
        return statusExit(artifact.status());
    }
    std::ofstream out(opt.out);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
        return kExitRuntime;
    }
    out << artifact->text();
    std::printf("wrote %zu strands (%zu bases each) to %s\n",
                artifact->strands.size(),
                artifact->config.strandLen(), opt.out.c_str());
    return kExitOk;
}

/**
 * Write one recovered object under @p outdir. Object names come from
 * untrusted bytes (a unit artifact or pool file); FileBundle's
 * parsers already reject names that are not a single plain path
 * component, but the write loop re-checks so --outdir can never be
 * escaped (zip-slip) even if a future format revision relaxes the
 * name rules. @p path returns the written path for reporting.
 */
bool
writeRecovered(const std::string &outdir, const std::string &name,
               const std::vector<uint8_t> &data, std::string *path)
{
    if (const char *err = FileBundle::checkName(name)) {
        std::fprintf(stderr, "refusing to write object '%s': %s\n",
                     name.c_str(), err);
        return false;
    }
    *path = outdir + "/" + name;
    std::ofstream out(*path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              std::streamsize(data.size()));
    out.flush();
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path->c_str());
        return false;
    }
    return true;
}

int
cmdDecode(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "decode needs exactly one unit file\n");
        return kExitUsage;
    }
    std::ifstream in(opt.inputs[0]);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n",
                     opt.inputs[0].c_str());
        return kExitRuntime;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    // The unit header is self-describing; the store only hosts the
    // job (and its thread knob).
    api::Result<api::Store> store = api::Store::open(
        api::StoreOptions().threads(opt.threads));
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    api::DecodeJob job;
    job.text = buffer.str();
    api::Result<api::DecodedObjects> decoded =
        store->submit(job).get();
    if (!decoded.ok()) {
        printStatus(decoded.status());
        return statusExit(decoded.status());
    }
    for (const auto &file : decoded->files) {
        std::string path;
        if (!writeRecovered(opt.outdir, file.name, file.data, &path))
            return kExitRuntime;
        std::printf("recovered %s (%zu bytes)%s\n", path.c_str(),
                    file.data.size(),
                    decoded->exact ? "" : " [ECC reported failures]");
    }
    return decoded->exact ? kExitOk : kExitThreshold;
}

/**
 * Builder validation of every channel/coverage/cluster flag,
 * regardless of subcommand — the parse-time checks this replaces
 * rejected a bad --ins-rate or --cluster-qgram even on `encode`, and
 * a typo'd knob should never pass silently.
 */
int
validateFlags(const CliOptions &opt)
{
    api::Status status = channelOptionsFor(opt).validate();
    if (!status.ok()) {
        printStatus(status);
        return kExitUsage;
    }
    if (opt.clusterKnobsSet && !opt.cluster) {
        status = clusterOptionsFor(opt).validate();
        if (!status.ok()) {
            printStatus(status);
            return kExitUsage;
        }
    }
    return kExitOk;
}

/** The runtime (not durable) knobs openFile takes from the flags. */
api::OpenOptions
openOptionsFor(const CliOptions &opt,
               api::OpenMode mode = api::OpenMode::ReadOnly)
{
    api::OpenOptions open_opt;
    open_opt.mode = mode;
    open_opt.threads = opt.threads;
    open_opt.packedReadPools = opt.packedPools;
    return open_opt;
}

/**
 * Reopen a packed store for serving, parsing the file exactly once:
 * the parsed contents supply both the coverage default (when the
 * user gave no --coverage/--gamma, adopt the file's own saved pool
 * depth instead of tripping the depth gate on the CLI default) and,
 * via Store::openContents, the opened store itself. Read-only unless
 * the caller (scrub: it mutates the pool) asks otherwise.
 */
api::Result<api::Store>
openPoolStore(const CliOptions &opt, const std::string &path,
              api::OpenMode mode = api::OpenMode::ReadOnly)
{
    api::Result<api::PoolFileContents> contents =
        api::readPoolFile(path);
    if (!contents.ok())
        return contents.status();
    api::ChannelOptions chan = channelOptionsFor(opt);
    if (!opt.coverageSet && !opt.gammaSet && contents->hasPools)
        chan.coverage(contents->poolMaxCoverage);
    return api::Store::openContents(std::move(*contents), chan,
                                    openOptionsFor(opt, mode), path);
}

/** Emit @p json to --json FILE, or stdout when no path was given. */
int
emitJson(const std::string &json, const std::string &path)
{
    if (path.empty()) {
        std::fputs(json.c_str(), stdout);
        return kExitOk;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return kExitRuntime;
    }
    out << json;
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return kExitOk;
}

int
cmdSimulate(const CliOptions &opt)
{
    api::ChannelOptions chan = channelOptionsFor(opt);
    api::StoreOptions store_opt;
    store_opt.autoGeometry(true)
        .layout(opt.scheme)
        .threads(opt.threads)
        .packedReadPools(opt.packedPools)
        .unitSeed(20220618);
    // --from-pool reopens a packed store (read-only: simulate never
    // mutates it) instead of encoding fresh inputs; the file supplies
    // the geometry, scheme, objects, and default coverage.
    api::Result<api::Store> store = opt.fromPool.empty()
        ? api::Store::open(store_opt, chan)
        : openPoolStore(opt, opt.fromPool);
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    int exit_code = kExitOk;
    if (opt.fromPool.empty() && !putInputs(*store, opt, &exit_code))
        return exit_code;

    api::Result<api::Retrieval> retrieval = store->retrieveAll();
    if (!retrieval.ok()) {
        printStatus(retrieval.status());
        return statusExit(retrieval.status());
    }
    if (retrieval->clustered) {
        std::printf("clustering: %zu clusters "
                    "(precision=%.4f recall=%.4f)\n",
                    retrieval->clustersFound, retrieval->precision,
                    retrieval->recall);
    }
    const bool gamma = chan.hasGamma();
    std::printf("scheme=%s error_rate=%.1f%% coverage=%zu%s: "
                "exact=%s, %zu errors corrected, %zu molecules lost, "
                "%zu codewords failed\n",
                layoutSchemeName(store->options().layout()),
                chan.channelProfile().base.total() * 100,
                retrieval->coverage, gamma ? " (gamma mean)" : "",
                retrieval->exact ? "yes" : "no",
                retrieval->correctedErrors, retrieval->erasedColumns,
                retrieval->failedCodewords);
    return retrieval->exact ? kExitOk : kExitThreshold;
}

int
cmdPack(const CliOptions &opt)
{
    api::ChannelOptions chan = channelOptionsFor(opt);
    api::StoreOptions store_opt;
    store_opt.autoGeometry(true)
        .layout(opt.scheme)
        .threads(opt.threads)
        .packedReadPools(opt.packedPools)
        .unitSeed(20220618);
    api::Result<api::Store> store = api::Store::open(store_opt, chan);
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    int exit_code = kExitOk;
    if (!putInputs(*store, opt, &exit_code))
        return exit_code;

    const std::string out = opt.outSet ? opt.out : "store.dnapool";
    api::Status status = store->save(out, !opt.noPools);
    if (!status.ok()) {
        printStatus(status);
        return statusExit(status);
    }
    std::printf("packed %zu objects (%zu bytes) into %s%s\n",
                store->objectCount(), store->totalBytes(),
                out.c_str(),
                opt.noPools ? " (unit only, no read pools)" : "");
    return kExitOk;
}

int
cmdUnpack(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "unpack needs exactly one pool file\n");
        return kExitUsage;
    }
    api::Result<api::Store> store =
        openPoolStore(opt, opt.inputs[0]);
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    api::Result<api::Retrieval> retrieval = store->retrieveAll();
    if (!retrieval.ok()) {
        printStatus(retrieval.status());
        return statusExit(retrieval.status());
    }
    for (const auto &file : retrieval->objects.files()) {
        std::string path;
        if (!writeRecovered(opt.outdir, file.name, file.data, &path))
            return kExitRuntime;
        std::printf("recovered %s (%zu bytes)%s\n", path.c_str(),
                    file.data.size(),
                    retrieval->exact ? ""
                                     : " [ECC reported failures]");
    }
    return retrieval->exact ? kExitOk : kExitThreshold;
}

int
cmdSweep(const CliOptions &opt)
{
    if (opt.list) {
        for (const auto &s : allScenarios())
            std::printf("%-18s min_success=%.2f  %s\n", s.name.c_str(),
                        s.minSuccessRate, s.description.c_str());
        return kExitOk;
    }
    if (opt.trials == 0) {
        std::fprintf(stderr, "--trials must be >= 1\n");
        return kExitUsage;
    }

    std::vector<Scenario> grid;
    if (opt.scenario == "all") {
        grid = allScenarios();
    } else {
        const Scenario *s = findScenario(opt.scenario);
        if (s == nullptr) {
            std::fprintf(stderr, "unknown scenario '%s'; available:",
                         opt.scenario.c_str());
            for (const auto &known : allScenarios())
                std::fprintf(stderr, " %s", known.name.c_str());
            std::fprintf(stderr, " (or 'all')\n");
            return kExitUsage;
        }
        grid.push_back(*s);
    }

    // --from-pool: sweep the hostile grid over a packed store's real
    // objects under its real geometry instead of the synthetic
    // payload. The file is parsed once; every scenario adopts its
    // config/scheme so the override always fits the unit.
    if (!opt.fromPool.empty()) {
        api::Result<api::PoolFileContents> file =
            api::readPoolFile(opt.fromPool);
        if (!file.ok()) {
            printStatus(file.status());
            return statusExit(file.status());
        }
        for (auto &scenario : grid) {
            scenario.config = file->config;
            scenario.scheme = file->scheme;
            scenario.payloadOverride = file->manifest;
            scenario.hasPayloadOverride = true;
        }
    }

    SweepOptions sweep_opt;
    sweep_opt.trials = opt.trials;
    sweep_opt.threads = opt.threads;
    sweep_opt.seed = opt.seed;
    SweepRunner runner(sweep_opt);
    std::vector<ScenarioReport> reports = runner.runAll(grid);

    std::string json = reportsToJson(reports, sweep_opt, opt.timing);
    if (int code = emitJson(json, opt.jsonPath))
        return code;
    if (!opt.csvPath.empty()) {
        std::ofstream out(opt.csvPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.csvPath.c_str());
            return kExitRuntime;
        }
        out << reportsToCsv(reports, opt.timing);
        std::fprintf(stderr, "wrote %s\n", opt.csvPath.c_str());
    }

    // Per-scenario pass/fail summary on stderr so piping the JSON
    // stays clean; exit 3 when any scenario misses its threshold.
    bool all_passed = true;
    for (const auto &r : reports) {
        // The enforced bound is quantized to whole trials (see
        // ScenarioReport::passed); print the actual required count so
        // the line never contradicts its own verdict at small N.
        size_t required =
            size_t(std::floor(r.minSuccessRate * double(r.trials)));
        std::fprintf(stderr,
                     "%-18s %zu/%zu trials exact (%.1f%%, bound "
                     "%.0f%% = need >= %zu) %s\n",
                     r.scenario.c_str(), r.successes, r.trials,
                     r.successRate * 100.0, r.minSuccessRate * 100.0,
                     required, r.passed ? "ok" : "FAIL");
        all_passed = all_passed && r.passed;
    }
    return all_passed ? kExitOk : kExitThreshold;
}

int
cmdHealth(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "health needs exactly one pool file\n");
        return kExitUsage;
    }
    // Health is a pure probe: the read-only open is enough, so any
    // number of processes can inspect one file concurrently.
    api::Result<api::Store> store = openPoolStore(opt, opt.inputs[0]);
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    api::Result<api::HealthReport> health = store->health();
    if (!health.ok()) {
        printStatus(health.status());
        return statusExit(health.status());
    }
    if (int code = emitJson(health->toJson(), opt.jsonPath))
        return code;
    // Summary on stderr so piped JSON stays clean.
    std::fprintf(stderr,
                 "%zu clusters, %zu live reads, %zu empty, min margin "
                 "%d: %s\n",
                 health->clusters, health->liveReads,
                 health->emptyClusters, health->minMargin,
                 health->exact ? "decodes exactly" : "DEGRADED");
    return health->exact ? kExitOk : kExitThreshold;
}

int
cmdScrub(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "scrub needs exactly one pool file\n");
        return kExitUsage;
    }
    api::Result<api::Store> store = openPoolStore(
        opt, opt.inputs[0], api::OpenMode::ReadWrite);
    if (!store.ok()) {
        printStatus(store.status());
        return statusExit(store.status());
    }
    // --age first: the optional decay injection, so one invocation can
    // exercise a full age-then-repair cycle. Store::age rejects the
    // call (FailedPrecondition) unless --age-loss/--age-sub configured
    // an aging profile.
    if (opt.ageEpochs > 0) {
        api::Result<size_t> lost = store->age(opt.ageEpochs);
        if (!lost.ok()) {
            printStatus(lost.status());
            return statusExit(lost.status());
        }
        std::fprintf(stderr, "aged %zu epochs: %zu reads lost\n",
                     opt.ageEpochs, *lost);
    }
    api::ScrubOptions scrub_opt;
    scrub_opt.minReads = opt.scrubMinReads;
    scrub_opt.minAgreement = opt.scrubMinAgreement;
    scrub_opt.repairAll = opt.scrubRepairAll;
    api::Result<api::ScrubReport> report = store->scrub(scrub_opt);
    if (!report.ok()) {
        // Unavailable (selected clusters exist but the probe decode
        // could not recover every codeword) maps to the runtime exit:
        // the pool needs deeper reads, not different flags.
        printStatus(report.status());
        return statusExit(report.status());
    }
    if (int code = emitJson(report->toJson(), opt.jsonPath))
        return code;
    std::fprintf(stderr,
                 "scanned %zu clusters, %zu low-margin, repaired %zu "
                 "(%zu reads rewritten)\n",
                 report->clustersScanned, report->lowMargin,
                 report->repaired, report->readsRewritten);
    // Persist the repaired pool: over the input in place, or to --out.
    const std::string out = opt.outSet ? opt.out : opt.inputs[0];
    api::Status saved = store->save(out, true);
    if (!saved.ok()) {
        printStatus(saved);
        return statusExit(saved);
    }
    std::fprintf(stderr, "saved repaired store to %s\n", out.c_str());
    return kExitOk;
}

/** SIGTERM/SIGINT request graceful drain; the serve loop polls it. */
volatile std::sig_atomic_t g_stopRequested = 0;

void
handleStopSignal(int)
{
    g_stopRequested = 1;
}

int
cmdServe(const CliOptions &opt)
{
    if (!opt.inputs.empty()) {
        std::fprintf(stderr, "serve takes no positional arguments\n");
        return kExitUsage;
    }
    if (opt.root.empty()) {
        std::fprintf(stderr,
                     "serve needs --root DIR (tenant pool directory)\n");
        return kExitUsage;
    }
    daemon::ServerOptions server_opt;
    server_opt.port = uint16_t(opt.port);
    server_opt.tenants.root = opt.root;
    server_opt.tenants.quotaBytes = opt.quotaBytes;
    server_opt.tenants.threads = opt.threads;
    server_opt.tenants.packedReadPools = opt.packedPools;
    if (opt.errorRateSet)
        server_opt.tenants.errorRate = opt.errorRate;
    if (opt.coverageSet)
        server_opt.tenants.coverage = opt.coverage;
    server_opt.tenants.unitSeed = opt.seed;

    daemon::Server server(server_opt);
    api::Status status = server.start();
    if (!status.ok()) {
        printStatus(status);
        return kExitRuntime;
    }
    std::printf("listening on 127.0.0.1:%u\n", unsigned(server.port()));
    std::fflush(stdout);
    if (!opt.portFile.empty()) {
        // tmp + rename so a reader never sees a half-written port.
        const std::string tmp = opt.portFile + ".tmp";
        std::ofstream f(tmp);
        f << server.port() << "\n";
        f.close();
        if (!f || std::rename(tmp.c_str(), opt.portFile.c_str()) != 0) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.portFile.c_str());
            server.drain();
            return kExitRuntime;
        }
    }

    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);
    while (g_stopRequested == 0)
        ::usleep(100 * 1000);

    std::fprintf(stderr, "draining: finishing in-flight requests and "
                         "saving dirty pools\n");
    api::Status drained = server.drain();
    if (!drained.ok()) {
        printStatus(drained);
        return kExitRuntime;
    }
    std::fprintf(stderr, "drained cleanly (%llu requests served)\n",
                 static_cast<unsigned long long>(
                     server.requestsServed()));
    return kExitOk;
}

int
cmdClient(const CliOptions &opt)
{
    if (opt.inputs.empty()) {
        std::fprintf(stderr,
                     "client needs an operation: ping | put | get | "
                     "list | health | scrub | trial | save\n");
        return kExitUsage;
    }
    if (opt.connectPort == 0) {
        std::fprintf(stderr, "client needs --connect PORT\n");
        return kExitUsage;
    }
    daemon::Client client;
    api::Status status = client.connect(uint16_t(opt.connectPort));
    if (!status.ok()) {
        printStatus(status);
        return kExitRuntime;
    }
    const std::string &op = opt.inputs[0];
    if (op == "ping") {
        status = client.ping();
        if (!status.ok()) {
            printStatus(status);
            return statusExit(status);
        }
        std::printf("pong\n");
        return kExitOk;
    }
    if (op == "put") {
        if (opt.inputs.size() != 2) {
            std::fprintf(stderr, "client put needs one file\n");
            return kExitUsage;
        }
        bool read_ok = true;
        std::vector<uint8_t> data = readFile(opt.inputs[1], &read_ok);
        if (!read_ok)
            return kExitRuntime;
        const std::string name = opt.objName.empty()
            ? baseName(opt.inputs[1])
            : opt.objName;
        const size_t bytes = data.size();
        status = client.put(opt.tenant, name, data);
        if (!status.ok()) {
            printStatus(status);
            return statusExit(status);
        }
        std::printf("stored %s (%zu bytes) in tenant %s\n",
                    name.c_str(), bytes, opt.tenant.c_str());
        return kExitOk;
    }
    if (op == "get") {
        if (opt.inputs.size() != 2) {
            std::fprintf(stderr, "client get needs one object name\n");
            return kExitUsage;
        }
        api::Result<std::vector<uint8_t>> data =
            client.get(opt.tenant, opt.inputs[1]);
        if (!data.ok()) {
            printStatus(data.status());
            return statusExit(data.status());
        }
        if (opt.outSet) {
            std::ofstream out(opt.out, std::ios::binary);
            out.write(reinterpret_cast<const char *>(data->data()),
                      std::streamsize(data->size()));
            out.flush();
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             opt.out.c_str());
                return kExitRuntime;
            }
            std::fprintf(stderr, "wrote %s (%zu bytes)\n",
                         opt.out.c_str(), data->size());
        } else {
            std::fwrite(data->data(), 1, data->size(), stdout);
        }
        return kExitOk;
    }
    if (op == "list") {
        api::Result<std::vector<api::ObjectInfo>> listing =
            client.list(opt.tenant);
        if (!listing.ok()) {
            printStatus(listing.status());
            return statusExit(listing.status());
        }
        for (const api::ObjectInfo &info : *listing)
            std::printf("%s\t%zu\n", info.name.c_str(), info.bytes);
        return kExitOk;
    }
    if (op == "health") {
        api::Result<std::string> json = client.health(opt.tenant);
        if (!json.ok()) {
            printStatus(json.status());
            return statusExit(json.status());
        }
        return emitJson(*json, opt.jsonPath);
    }
    if (op == "scrub") {
        api::ScrubOptions scrub_opt;
        scrub_opt.minReads = opt.scrubMinReads;
        scrub_opt.minAgreement = opt.scrubMinAgreement;
        scrub_opt.repairAll = opt.scrubRepairAll;
        api::Result<std::string> json =
            client.scrub(opt.tenant, scrub_opt);
        if (!json.ok()) {
            printStatus(json.status());
            return statusExit(json.status());
        }
        return emitJson(*json, opt.jsonPath);
    }
    if (op == "trial") {
        api::Result<std::vector<uint8_t>> flags = client.trial(
            opt.tenant, uint32_t(opt.trials), opt.seed);
        if (!flags.ok()) {
            printStatus(flags.status());
            return statusExit(flags.status());
        }
        size_t successes = 0;
        for (uint8_t f : *flags)
            successes += f != 0 ? 1 : 0;
        std::printf("%zu/%zu trials exact\n", successes,
                    flags->size());
        return successes == flags->size() ? kExitOk : kExitThreshold;
    }
    if (op == "save") {
        status = client.save(opt.tenant);
        if (!status.ok()) {
            printStatus(status);
            return statusExit(status);
        }
        std::printf("saved tenant %s\n", opt.tenant.c_str());
        return kExitOk;
    }
    std::fprintf(stderr, "unknown client operation '%s'\n",
                 op.c_str());
    return kExitUsage;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  dnastore encode <files...> [--out unit.dna] "
        "[--scheme gini|baseline|dnamapper]\n"
        "  dnastore decode <unit.dna> [--outdir DIR] [--threads T]\n"
        "  dnastore simulate <files...> [--scheme S] "
        "[--error-rate P] [--coverage N] [--threads T] "
        "[--packed-pools]\n"
        "                [--ins-rate P] [--del-rate P] [--sub-rate P]\n"
        "                [--gamma-mean M --gamma-shape K]\n"
        "                [--cluster] [--cluster-qgram Q] "
        "[--cluster-maxdist F]\n"
        "                [--cluster-memory-mb N] "
        "[--cluster-sketch-bits B] [--cluster-spill-dir D]\n"
        "    (--threads 0 uses all hardware threads; --packed-pools\n"
        "     stores reads 2-bit packed; --cluster regroups reads\n"
        "     with the real clusterer before decoding; results are\n"
        "     identical for every thread count and storage mode;\n"
        "     --cluster-memory-mb bounds read buffering through the\n"
        "     streaming engine, spilling past the budget to the\n"
        "     checksummed segments under --cluster-spill-dir)\n"
        "  dnastore sweep [--scenario NAME|all] [--trials N] "
        "[--threads T] [--seed S]\n"
        "                [--json FILE] [--csv FILE] [--timing] "
        "[--list] [--from-pool FILE]\n"
        "    (Monte-Carlo reliability sweep over the Scenario Lab's\n"
        "     hostile channel profiles; JSON goes to stdout unless\n"
        "     --json is given and is byte-identical for every\n"
        "     --threads value; --timing adds non-deterministic wall\n"
        "     times; --from-pool sweeps a packed store's objects\n"
        "     under its saved geometry)\n"
        "  dnastore pack <files...> [--out store.dnapool] "
        "[--scheme S] [--no-pools]\n"
        "                [channel flags as in simulate]\n"
        "    (encode files and save the unit — synthesized read\n"
        "     pools included unless --no-pools — as a versioned,\n"
        "     checksummed .dnapool file; every section is CRC-\n"
        "     guarded, so later corruption is detected and named)\n"
        "  dnastore unpack <store.dnapool> [--outdir DIR] "
        "[--threads T] [--coverage N]\n"
        "    (reopen a pool file read-only — any number of processes\n"
        "     can serve one file — retrieve every object through the\n"
        "     decode path, and write the recovered files; without\n"
        "     --coverage the file's saved pool depth is used)\n"
        "  dnastore simulate --from-pool FILE [channel flags]\n"
        "    (run the retrieval report against a packed store\n"
        "     instead of fresh inputs)\n"
        "  dnastore health <store.dnapool> [--json FILE] "
        "[--threads T]\n"
        "    (probe-decode the pool and report per-cluster and\n"
        "     per-codeword health — live reads, consensus agreement,\n"
        "     RS errors vs erasures, remaining correction margin —\n"
        "     as deterministic JSON; exit 3 when the unit no longer\n"
        "     decodes exactly)\n"
        "  dnastore scrub <store.dnapool> [--out FILE] [--json FILE]\n"
        "                [--min-reads N] [--min-agreement F] "
        "[--repair-all]\n"
        "                [--age E --age-loss P --age-sub P]\n"
        "    (re-decode low-margin clusters, repair them via RS\n"
        "     errors-and-erasures, rewrite the repaired strands at\n"
        "     full depth, and save the healed pool — over the input\n"
        "     unless --out names another file; --age first applies E\n"
        "     epochs of decay with per-epoch strand-loss/substitution\n"
        "     rates, so one invocation exercises the full\n"
        "     age-then-repair cycle)\n"
        "  dnastore serve --root DIR [--port P] [--port-file FILE]\n"
        "                [--quota BYTES] [--threads T] "
        "[--packed-pools]\n"
        "                [--error-rate P] [--coverage N] [--seed S]\n"
        "    (run dnastored: a concurrent multi-tenant storage\n"
        "     daemon on 127.0.0.1; each tenant is its own\n"
        "     <root>/<tenant>.dnapool with an optional byte quota;\n"
        "     --port 0 picks an ephemeral port, printed on stdout\n"
        "     and written to --port-file; SIGTERM/SIGINT drain:\n"
        "     in-flight requests finish and dirty pools are saved\n"
        "     atomically before exit)\n"
        "  dnastore client <op> [ARG] --connect PORT "
        "[--tenant T] [flags]\n"
        "    ops: ping | put FILE [--name N] | get NAME [--out F]\n"
        "         | list | health [--json F] | scrub [scrub flags]\n"
        "         | trial [--trials N --seed S] | save\n"
        "    (talk to a running dnastored; statuses cross the wire\n"
        "     unchanged, so exit codes match the local subcommands)\n"
        "  dnastore --version\n"
        "\n"
        "exit codes:\n"
        "  0  success (exact recovery / all scenarios passed)\n"
        "  1  runtime failure (I/O error, unrecoverable unit)\n"
        "  2  usage or validation error (rejected parameter)\n"
        "  3  quality threshold miss (inexact recovery, scenario\n"
        "     below its reliability bound)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return kExitUsage;
    }
    std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("dnastore %s\n", api::version());
        return kExitOk;
    }
    CliOptions opt = parseArgs(argc, argv, 2);
    if (!opt.ok) {
        usage();
        return kExitUsage;
    }
    if (int code = validateFlags(opt))
        return code;
    try {
        if (cmd == "encode")
            return cmdEncode(opt);
        if (cmd == "decode")
            return cmdDecode(opt);
        if (cmd == "simulate")
            return cmdSimulate(opt);
        if (cmd == "sweep")
            return cmdSweep(opt);
        if (cmd == "pack")
            return cmdPack(opt);
        if (cmd == "unpack")
            return cmdUnpack(opt);
        if (cmd == "health")
            return cmdHealth(opt);
        if (cmd == "scrub")
            return cmdScrub(opt);
        if (cmd == "serve")
            return cmdServe(opt);
        if (cmd == "client")
            return cmdClient(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitRuntime;
    }
    usage();
    return kExitUsage;
}

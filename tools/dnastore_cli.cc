/**
 * @file
 * dnastore command-line tool.
 *
 * Subcommands:
 *   encode   <files...> --out unit.dna [--scheme gini|baseline|dnamapper]
 *            Encode files into a DNA unit; writes one ACGT strand per
 *            line (FASTA-ish flat format).
 *   decode   <unit.dna> --outdir DIR [--scheme ...]
 *            Read strands back (one cluster per original line group),
 *            run consensus + ECC, and write the recovered files.
 *   simulate <files...> [--scheme ...] [--error-rate p] [--coverage n]
 *            [--ins-rate p] [--del-rate p] [--sub-rate p]
 *            [--gamma-mean m --gamma-shape k]
 *            [--threads t] [--packed-pools] [--cluster]
 *            [--cluster-qgram q] [--cluster-maxdist f]
 *            End-to-end store/retrieve through the noisy channel and
 *            report recovery statistics. With --cluster the reads are
 *            regrouped by the real clusterer (instead of the perfect-
 *            clustering assumption) before decoding.
 *   sweep    --scenario NAME|all [--trials n] [--threads t] [--seed s]
 *            [--json FILE] [--csv FILE] [--timing] [--list]
 *            Deterministic Monte-Carlo reliability sweep over the
 *            Scenario Lab's named hostile channel profiles; emits a
 *            structured JSON (and optionally CSV) report. The JSON is
 *            byte-identical for every --threads value.
 *
 * The unit format produced by `encode` is noiseless (it is what a
 * synthesizer would receive); `simulate` and `sweep` are where the
 * channel lives. Channel and coverage parameters are validated at
 * this boundary: negative rates, rate totals above 1, and
 * non-positive gamma shapes are rejected with a clear error instead
 * of silently simulating garbage.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lab/report.hh"
#include "lab/scenario.hh"
#include "lab/sweep.hh"
#include "pipeline/simulator.hh"

using namespace dnastore;

namespace {

struct CliOptions
{
    std::vector<std::string> inputs;
    std::string out = "unit.dna";
    std::string outdir = ".";
    LayoutScheme scheme = LayoutScheme::Gini;
    double errorRate = 0.06;
    bool errorRateSet = false;
    double insRate = -1.0; // < 0 = unset (use --error-rate split)
    double delRate = -1.0;
    double subRate = -1.0;
    double gammaMean = 0.0; // > 0 enables gamma-distributed coverage
    double gammaShape = 0.0;
    size_t coverage = 10;
    size_t threads = 1; // 0 = all hardware threads
    bool packedPools = false;
    bool cluster = false;
    size_t clusterQgram = 6;
    double clusterMaxDist = 0.25;
    // sweep
    std::string scenario = "all";
    size_t trials = 100;
    uint64_t seed = 20220618;
    std::string jsonPath;   // empty = stdout
    std::string csvPath;    // empty = no CSV
    bool timing = false;
    bool list = false;
    bool ok = true;
};

LayoutScheme
parseScheme(const std::string &name, bool *ok)
{
    if (name == "baseline")
        return LayoutScheme::Baseline;
    if (name == "gini")
        return LayoutScheme::Gini;
    if (name == "dnamapper")
        return LayoutScheme::DnaMapper;
    *ok = false;
    return LayoutScheme::Gini;
}

CliOptions
parseArgs(int argc, char **argv, int first)
{
    CliOptions opt;
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag);
                opt.ok = false;
                return "";
            }
            return argv[++i];
        };
        if (arg == "--out") {
            opt.out = next("--out");
        } else if (arg == "--outdir") {
            opt.outdir = next("--outdir");
        } else if (arg == "--scheme") {
            bool ok = true;
            opt.scheme = parseScheme(next("--scheme"), &ok);
            if (!ok) {
                std::fprintf(stderr, "unknown scheme\n");
                opt.ok = false;
            }
        } else if (arg == "--error-rate") {
            opt.errorRate = std::strtod(next("--error-rate").c_str(),
                                        nullptr);
            opt.errorRateSet = true;
        } else if (arg == "--ins-rate" || arg == "--del-rate" ||
                   arg == "--sub-rate") {
            double rate = std::strtod(next(arg.c_str()).c_str(),
                                      nullptr);
            if (rate < 0.0) {
                std::fprintf(stderr, "%s must be >= 0 (got %g)\n",
                             arg.c_str(), rate);
                opt.ok = false;
            }
            (arg == "--ins-rate"
                 ? opt.insRate
                 : arg == "--del-rate" ? opt.delRate : opt.subRate) =
                rate;
        } else if (arg == "--gamma-mean") {
            opt.gammaMean = std::strtod(next("--gamma-mean").c_str(),
                                        nullptr);
        } else if (arg == "--gamma-shape") {
            opt.gammaShape = std::strtod(next("--gamma-shape").c_str(),
                                         nullptr);
        } else if (arg == "--scenario") {
            opt.scenario = next("--scenario");
        } else if (arg == "--trials") {
            std::string raw = next("--trials");
            opt.trials = std::strtoull(raw.c_str(), nullptr, 10);
            // strtoull wraps negatives to huge counts; bound the
            // value so typos fail fast instead of running for days
            // (10M trials is already a multi-hour soak).
            const size_t max_trials = 10000000;
            if (raw.find('-') != std::string::npos ||
                opt.trials > max_trials) {
                std::fprintf(stderr,
                             "--trials must be in [1, %zu] (got %s)\n",
                             max_trials, raw.c_str());
                opt.ok = false;
            }
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next("--seed").c_str(),
                                     nullptr, 10);
        } else if (arg == "--json") {
            opt.jsonPath = next("--json");
        } else if (arg == "--csv") {
            opt.csvPath = next("--csv");
        } else if (arg == "--timing") {
            opt.timing = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--coverage") {
            opt.coverage = std::strtoull(next("--coverage").c_str(),
                                         nullptr, 10);
        } else if (arg == "--threads") {
            opt.threads = std::strtoull(next("--threads").c_str(),
                                        nullptr, 10);
        } else if (arg == "--packed-pools") {
            opt.packedPools = true;
        } else if (arg == "--cluster") {
            opt.cluster = true;
        } else if (arg == "--cluster-qgram") {
            opt.clusterQgram = std::strtoull(
                next("--cluster-qgram").c_str(), nullptr, 10);
            // 2 bits per base must fit the 64-bit signature hash.
            if (opt.clusterQgram < 1 || opt.clusterQgram > 31) {
                std::fprintf(stderr,
                             "--cluster-qgram must be in [1, 31]\n");
                opt.ok = false;
            }
        } else if (arg == "--cluster-maxdist") {
            opt.clusterMaxDist = std::strtod(
                next("--cluster-maxdist").c_str(), nullptr);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            opt.ok = false;
        } else {
            opt.inputs.push_back(arg);
        }
    }
    return opt;
}

std::vector<uint8_t>
readFile(const std::string &path, bool *ok)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        *ok = false;
        return {};
    }
    std::vector<uint8_t> data(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return data;
}

std::string
baseName(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Pick a config whose unit fits the payload. */
StorageConfig
configFor(size_t payload_bits, bool *ok)
{
    for (auto cfg : { StorageConfig::tinyTest(),
                      StorageConfig::benchScale() }) {
        if (payload_bits + 1024 <= cfg.capacityBits())
            return cfg;
    }
    std::fprintf(stderr,
                 "payload too large for one unit (max ~%zu bytes)\n",
                 StorageConfig::benchScale().capacityBytes());
    *ok = false;
    return StorageConfig::tinyTest();
}

FileBundle
bundleInputs(const CliOptions &opt, bool *ok)
{
    FileBundle bundle;
    for (const auto &path : opt.inputs) {
        auto data = readFile(path, ok);
        if (!*ok)
            break;
        bundle.add(baseName(path), std::move(data));
    }
    if (bundle.fileCount() == 0) {
        std::fprintf(stderr, "no input files\n");
        *ok = false;
    }
    return bundle;
}

int
cmdEncode(const CliOptions &opt)
{
    bool ok = true;
    FileBundle bundle = bundleInputs(opt, &ok);
    if (!ok)
        return 1;
    StorageConfig cfg = configFor(bundle.serializedBits(), &ok);
    if (!ok)
        return 1;

    UnitEncoder encoder(cfg, opt.scheme);
    EncodedUnit unit = encoder.encode(bundle);
    std::ofstream out(opt.out);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
        return 1;
    }
    // Header line records the geometry needed to decode.
    out << "#dnastore m=" << cfg.symbolBits << " rows=" << cfg.rows
        << " parity=" << cfg.paritySymbols
        << " primer=" << cfg.primerLen
        << " scheme=" << layoutSchemeName(opt.scheme) << "\n";
    for (const auto &strand : unit.strands)
        out << strandToString(strand) << "\n";
    std::printf("wrote %zu strands (%zu bases each) to %s\n",
                unit.strands.size(), cfg.strandLen(),
                opt.out.c_str());
    return 0;
}

int
cmdDecode(const CliOptions &opt)
{
    if (opt.inputs.size() != 1) {
        std::fprintf(stderr, "decode needs exactly one unit file\n");
        return 1;
    }
    std::ifstream in(opt.inputs[0]);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n",
                     opt.inputs[0].c_str());
        return 1;
    }
    std::string header;
    std::getline(in, header);
    StorageConfig cfg;
    char scheme_name[32] = "gini";
    unsigned m = 0;
    size_t rows = 0, parity = 0, primer = 0;
    if (std::sscanf(header.c_str(),
                    "#dnastore m=%u rows=%zu parity=%zu primer=%zu "
                    "scheme=%31s",
                    &m, &rows, &parity, &primer, scheme_name) != 5) {
        std::fprintf(stderr, "bad unit header\n");
        return 1;
    }
    cfg.symbolBits = m;
    cfg.rows = rows;
    cfg.paritySymbols = parity;
    cfg.primerLen = primer;
    bool ok = true;
    LayoutScheme scheme = parseScheme(scheme_name, &ok);
    if (!ok)
        return 1;

    // Each line is one read; consecutive identical-index reads would
    // normally be clustered — here the file is a noiseless unit, so
    // each line is its own single-read cluster.
    std::vector<std::vector<Strand>> clusters;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        clusters.push_back({ strandFromString(line) });
    }

    UnitDecoder decoder(cfg, scheme);
    DecodedUnit result = decoder.decode(clusters);
    if (!result.bundleOk) {
        std::fprintf(stderr, "decoding failed (unrecoverable unit)\n");
        return 1;
    }
    for (const auto &file : result.bundle.files()) {
        std::string path = opt.outdir + "/" + file.name;
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(file.data.data()),
                  std::streamsize(file.data.size()));
        std::printf("recovered %s (%zu bytes)%s\n", path.c_str(),
                    file.data.size(),
                    result.exact ? "" : " [ECC reported failures]");
    }
    return result.exact ? 0 : 2;
}

/**
 * Validate channel/coverage knobs at the CLI boundary; prints the
 * offending value and returns false instead of simulating garbage.
 */
bool
validateSimulateOptions(const CliOptions &opt, ErrorModel *model)
{
    const bool custom_rates =
        opt.insRate >= 0.0 || opt.delRate >= 0.0 || opt.subRate >= 0.0;
    if (custom_rates) {
        if (opt.errorRateSet) {
            std::fprintf(stderr,
                         "--error-rate cannot be combined with "
                         "--ins-rate/--del-rate/--sub-rate (give the "
                         "per-type rates only)\n");
            return false;
        }
        // Unset rates (negative sentinel; explicit negatives were
        // already rejected at parse time) default to 0.
        *model = ErrorModel::custom(opt.insRate < 0.0 ? 0.0 : opt.insRate,
                                    opt.delRate < 0.0 ? 0.0 : opt.delRate,
                                    opt.subRate < 0.0 ? 0.0
                                                      : opt.subRate);
    } else {
        if (opt.errorRate < 0.0 || opt.errorRate > 1.0) {
            std::fprintf(stderr,
                         "--error-rate must be in [0, 1] (got %g)\n",
                         opt.errorRate);
            return false;
        }
        *model = ErrorModel::uniform(opt.errorRate);
    }
    if (!model->valid()) {
        std::fprintf(
            stderr,
            "invalid error rates (ins=%g del=%g sub=%g): each must be "
            ">= 0 and their total at most 1\n",
            model->insertion, model->deletion, model->substitution);
        return false;
    }
    if (opt.coverage == 0) {
        std::fprintf(stderr, "--coverage must be >= 1\n");
        return false;
    }
    const bool gamma = opt.gammaMean != 0.0 || opt.gammaShape != 0.0;
    if (gamma) {
        if (opt.gammaShape <= 0.0) {
            std::fprintf(stderr,
                         "--gamma-shape must be > 0 (got %g)\n",
                         opt.gammaShape);
            return false;
        }
        if (opt.gammaMean <= 0.0) {
            std::fprintf(stderr, "--gamma-mean must be > 0 (got %g)\n",
                         opt.gammaMean);
            return false;
        }
        if (opt.cluster) {
            std::fprintf(stderr,
                         "--cluster and --gamma-mean/--gamma-shape "
                         "cannot be combined\n");
            return false;
        }
    }
    return true;
}

int
cmdSimulate(const CliOptions &opt)
{
    ErrorModel model;
    if (!validateSimulateOptions(opt, &model))
        return 1;
    bool ok = true;
    FileBundle bundle = bundleInputs(opt, &ok);
    if (!ok)
        return 1;
    StorageConfig cfg = configFor(bundle.serializedBits(), &ok);
    if (!ok)
        return 1;
    cfg.numThreads = opt.threads;
    cfg.packedReadPools = opt.packedPools;

    StorageSimulator sim(cfg, opt.scheme, model, /*seed=*/20220618);
    const bool gamma = opt.gammaMean > 0.0;
    // Gamma draws are capped by the pool size; 3x the mean (+ slack)
    // keeps the cap out of the distribution's realistic range.
    size_t max_coverage = gamma
        ? std::max(opt.coverage, size_t(opt.gammaMean * 3.0) + 8)
        : opt.coverage;
    sim.store(bundle, max_coverage);

    RetrievalResult result;
    if (gamma) {
        result = sim.retrieveGamma(opt.gammaMean, opt.gammaShape,
                                   /*draw_seed=*/opt.seed);
    } else if (opt.cluster) {
        ClusterParams params;
        params.qgram = opt.clusterQgram;
        params.maxDistanceFrac = opt.clusterMaxDist;
        params.numThreads = opt.threads;
        ClusteredRetrievalResult clustered =
            sim.retrieveClustered(opt.coverage, params);
        result = std::move(clustered.result);
        std::printf("clustering: %zu clusters "
                    "(precision=%.4f recall=%.4f)\n",
                    clustered.clustersFound,
                    clustered.quality.precision,
                    clustered.quality.recall);
    } else {
        result = sim.retrieve(opt.coverage);
    }
    // In gamma mode the coverage actually used is the gamma mean, not
    // the (untouched) --coverage knob.
    size_t reported_cov =
        gamma ? size_t(opt.gammaMean + 0.5) : opt.coverage;
    std::printf("scheme=%s error_rate=%.1f%% coverage=%zu%s: "
                "exact=%s, %zu errors corrected, %zu molecules lost, "
                "%zu codewords failed\n",
                layoutSchemeName(opt.scheme), model.total() * 100,
                reported_cov, gamma ? " (gamma mean)" : "",
                result.exactPayload ? "yes" : "no",
                result.decoded.stats.totalCorrected(),
                result.decoded.stats.erasedColumns,
                result.decoded.stats.failedCodewords);
    return result.exactPayload ? 0 : 2;
}

int
cmdSweep(const CliOptions &opt)
{
    if (opt.list) {
        for (const auto &s : allScenarios())
            std::printf("%-18s min_success=%.2f  %s\n", s.name.c_str(),
                        s.minSuccessRate, s.description.c_str());
        return 0;
    }
    if (opt.trials == 0) {
        std::fprintf(stderr, "--trials must be >= 1\n");
        return 1;
    }

    std::vector<Scenario> grid;
    if (opt.scenario == "all") {
        grid = allScenarios();
    } else {
        const Scenario *s = findScenario(opt.scenario);
        if (s == nullptr) {
            std::fprintf(stderr, "unknown scenario '%s'; available:",
                         opt.scenario.c_str());
            for (const auto &known : allScenarios())
                std::fprintf(stderr, " %s", known.name.c_str());
            std::fprintf(stderr, " (or 'all')\n");
            return 1;
        }
        grid.push_back(*s);
    }

    SweepOptions sweep_opt;
    sweep_opt.trials = opt.trials;
    sweep_opt.threads = opt.threads;
    sweep_opt.seed = opt.seed;
    SweepRunner runner(sweep_opt);
    std::vector<ScenarioReport> reports = runner.runAll(grid);

    std::string json = reportsToJson(reports, sweep_opt, opt.timing);
    if (opt.jsonPath.empty()) {
        std::fputs(json.c_str(), stdout);
    } else {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        out << json;
        std::fprintf(stderr, "wrote %s\n", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ofstream out(opt.csvPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.csvPath.c_str());
            return 1;
        }
        out << reportsToCsv(reports, opt.timing);
        std::fprintf(stderr, "wrote %s\n", opt.csvPath.c_str());
    }

    // Per-scenario pass/fail summary on stderr so piping the JSON
    // stays clean; exit 3 when any scenario misses its threshold.
    bool all_passed = true;
    for (const auto &r : reports) {
        // The enforced bound is quantized to whole trials (see
        // ScenarioReport::passed); print the actual required count so
        // the line never contradicts its own verdict at small N.
        size_t required =
            size_t(std::floor(r.minSuccessRate * double(r.trials)));
        std::fprintf(stderr,
                     "%-18s %zu/%zu trials exact (%.1f%%, bound "
                     "%.0f%% = need >= %zu) %s\n",
                     r.scenario.c_str(), r.successes, r.trials,
                     r.successRate * 100.0, r.minSuccessRate * 100.0,
                     required, r.passed ? "ok" : "FAIL");
        all_passed = all_passed && r.passed;
    }
    return all_passed ? 0 : 3;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  dnastore encode <files...> [--out unit.dna] "
        "[--scheme gini|baseline|dnamapper]\n"
        "  dnastore decode <unit.dna> [--outdir DIR]\n"
        "  dnastore simulate <files...> [--scheme S] "
        "[--error-rate P] [--coverage N] [--threads T] "
        "[--packed-pools]\n"
        "                [--ins-rate P] [--del-rate P] [--sub-rate P]\n"
        "                [--gamma-mean M --gamma-shape K]\n"
        "                [--cluster] [--cluster-qgram Q] "
        "[--cluster-maxdist F]\n"
        "    (--threads 0 uses all hardware threads; --packed-pools\n"
        "     stores reads 2-bit packed; --cluster regroups reads\n"
        "     with the real clusterer before decoding; results are\n"
        "     identical for every thread count and storage mode)\n"
        "  dnastore sweep [--scenario NAME|all] [--trials N] "
        "[--threads T] [--seed S]\n"
        "                [--json FILE] [--csv FILE] [--timing] "
        "[--list]\n"
        "    (Monte-Carlo reliability sweep over the Scenario Lab's\n"
        "     hostile channel profiles; JSON goes to stdout unless\n"
        "     --json is given and is byte-identical for every\n"
        "     --threads value; --timing adds non-deterministic wall\n"
        "     times; exit 3 if any scenario misses its threshold)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    CliOptions opt = parseArgs(argc, argv, 2);
    if (!opt.ok) {
        usage();
        return 1;
    }
    try {
        if (cmd == "encode")
            return cmdEncode(opt);
        if (cmd == "decode")
            return cmdDecode(opt);
        if (cmd == "simulate")
            return cmdSimulate(opt);
        if (cmd == "sweep")
            return cmdSweep(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
    return 1;
}

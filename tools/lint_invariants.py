#!/usr/bin/env python3
"""Repo-specific invariant linter for dnastore.

Generic tools (clang-tidy, sanitizers) cannot know this repo's
contracts; this linter machine-checks the three that reviews have had
to police by hand:

  1. no-throw-boundary
     Nothing under src/api/ or src/daemon/ may `throw`: the public
     facade and the daemon built on it report errors exclusively
     through api::Status / api::Result<T> (see api/status.hh). A throw
     that escapes either directory would tear down a daemon connection
     thread instead of producing a wire status.

  2. statuscode-wire-mapping
     Every enumerator of api::StatusCode (parsed from api/status.hh)
     must be mapped in api/wire.cc, in BOTH directions: a
     `case StatusCode::X` in statusCodeToWire and a
     `return StatusCode::X` in statusCodeFromWire. This makes wire
     exhaustiveness a source-level guarantee instead of a runtime
     hope when someone grows the taxonomy.

  3. determinism-hygiene
     src/{cluster,consensus,pipeline,lab,channel}/ carry the
     bit-identical-at-any-thread-count contract, so ambient
     nondeterminism sources are banned there: rand(), random_device,
     time(), and std::chrono *_clock::now(). The only sanctioned
     escapes live in ALLOWLIST below; every entry must still match
     real source (a stale entry is itself an error) so the list can
     only shrink, never silently rot.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

Run `lint_invariants.py --self-test` to prove each check still fires:
it seeds one violation of every class into a synthetic tree and
asserts detection (and that a clean tree passes). The `lint` CMake
target runs the self-test and then the real tree.
"""

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Configuration: which directories carry which contracts.

NO_THROW_DIRS = ("src/api", "src/daemon")

DETERMINISM_DIRS = (
    "src/cluster",
    "src/consensus",
    "src/pipeline",
    "src/lab",
    "src/channel",
)

STATUS_HEADER = "src/api/status.hh"
WIRE_SOURCE = "src/api/wire.cc"

# Banned nondeterminism sources. Patterns run on comment/string-stripped
# source; identifier boundaries keep toStrand() from matching rand().
DETERMINISM_BANS = (
    ("rand()", re.compile(r"(?<![A-Za-z0-9_])rand\s*\(")),
    ("random_device", re.compile(r"(?<![A-Za-z0-9_])random_device(?![A-Za-z0-9_])")),
    ("time()", re.compile(r"(?<![A-Za-z0-9_])time\s*\(")),
    ("clock-now", re.compile(r"_clock\s*::\s*now\s*\(")),
)

# The explicit determinism allowlist: (relative path, ban name) pairs.
# Each entry must match at least one violation in the named file or the
# lint fails with "stale allowlist entry". Keep the justification next
# to the entry.
ALLOWLIST = {
    # SweepRunner measures wall_ms for the optional --timing report
    # column; the clock never feeds a trial, a seed, or any value that
    # lands in the deterministic (non---timing) report bytes. Verified
    # by the sweep-determinism suite's byte-compare across runs.
    ("src/lab/sweep.cc", "clock-now"),
}

SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")


def strip_comments_and_strings(text):
    """Blank out comments, string literals, and char literals.

    Replaces their contents with spaces (newlines preserved) so line
    numbers survive and banned tokens inside docs/messages don't trip
    the lint. A lexer-grade pass: handles //, /* */, "..." with
    escapes, '...' with escapes. Raw strings are rare in this tree and
    handled conservatively (R"( ... )" with empty delimiter).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            seg = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j
        elif c == "R" and text[i : i + 3] == 'R"(':
            j = text.find(')"', i + 3)
            j = n if j == -1 else j + 2
            seg = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            seg = text[i:j]
            out.append(quote + " " * max(0, len(seg) - 2) + (quote if len(seg) > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root, rel_dirs):
    for rel in rel_dirs:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in sorted(os.walk(base)):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def read_text(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


class Violation:
    def __init__(self, check, path, line, detail):
        self.check = check
        self.path = path
        self.line = line
        self.detail = detail

    def __str__(self):
        where = self.path if self.line is None else "%s:%d" % (self.path, self.line)
        return "[%s] %s: %s" % (self.check, where, self.detail)


# --------------------------------------------------------------------------
# Check 1: no throw under src/api/ or src/daemon/.

THROW_RE = re.compile(r"(?<![A-Za-z0-9_])throw(?![A-Za-z0-9_])")


def check_no_throw(root):
    violations = []
    for path in iter_source_files(root, NO_THROW_DIRS):
        stripped = strip_comments_and_strings(read_text(path))
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if THROW_RE.search(line):
                rel = os.path.relpath(path, root)
                violations.append(
                    Violation(
                        "no-throw-boundary",
                        rel,
                        lineno,
                        "`throw` inside the no-throw Status boundary "
                        "(return api::Status / api::Result instead)",
                    )
                )
    return violations


# --------------------------------------------------------------------------
# Check 2: StatusCode <-> wire mapping exhaustiveness.

ENUM_RE = re.compile(
    r"enum\s+class\s+StatusCode\s*(?::[^{]*)?\{(?P<body>[^}]*)\}", re.S
)


def parse_status_codes(root):
    header = os.path.join(root, STATUS_HEADER)
    if not os.path.isfile(header):
        return None, [
            Violation(
                "statuscode-wire-mapping", STATUS_HEADER, None, "header not found"
            )
        ]
    stripped = strip_comments_and_strings(read_text(header))
    m = ENUM_RE.search(stripped)
    if not m:
        return None, [
            Violation(
                "statuscode-wire-mapping",
                STATUS_HEADER,
                None,
                "could not find `enum class StatusCode { ... }`",
            )
        ]
    names = []
    for part in m.group("body").split(","):
        name = part.split("=")[0].strip()
        if name and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            names.append(name)
    if not names:
        return None, [
            Violation(
                "statuscode-wire-mapping",
                STATUS_HEADER,
                None,
                "StatusCode enum parsed empty",
            )
        ]
    return names, []


def check_wire_mapping(root):
    names, violations = parse_status_codes(root)
    if names is None:
        return violations
    wire = os.path.join(root, WIRE_SOURCE)
    if not os.path.isfile(wire):
        return [
            Violation("statuscode-wire-mapping", WIRE_SOURCE, None, "source not found")
        ]
    stripped = strip_comments_and_strings(read_text(wire))
    for name in names:
        if not re.search(r"case\s+StatusCode\s*::\s*%s\b" % re.escape(name), stripped):
            violations.append(
                Violation(
                    "statuscode-wire-mapping",
                    WIRE_SOURCE,
                    None,
                    "StatusCode::%s has no `case` in statusCodeToWire "
                    "(unmapped on the way out)" % name,
                )
            )
        if not re.search(
            r"return\s+StatusCode\s*::\s*%s\b" % re.escape(name), stripped
        ):
            violations.append(
                Violation(
                    "statuscode-wire-mapping",
                    WIRE_SOURCE,
                    None,
                    "StatusCode::%s is never returned by statusCodeFromWire "
                    "(unmapped on the way in)" % name,
                )
            )
    return violations


# --------------------------------------------------------------------------
# Check 3: determinism hygiene.


def check_determinism(root):
    violations = []
    used_allowlist = set()
    for path in iter_source_files(root, DETERMINISM_DIRS):
        rel = os.path.relpath(path, root)
        stripped = strip_comments_and_strings(read_text(path))
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for ban_name, ban_re in DETERMINISM_BANS:
                if not ban_re.search(line):
                    continue
                key = (rel.replace(os.sep, "/"), ban_name)
                if key in ALLOWLIST:
                    used_allowlist.add(key)
                    continue
                violations.append(
                    Violation(
                        "determinism-hygiene",
                        rel,
                        lineno,
                        "banned nondeterminism source %s in a "
                        "bit-identical subsystem (draw from the seeded "
                        "RNG stream, or add an ALLOWLIST entry with "
                        "justification)" % ban_name,
                    )
                )
    for key in sorted(ALLOWLIST - used_allowlist):
        violations.append(
            Violation(
                "determinism-hygiene",
                key[0],
                None,
                "stale allowlist entry (%s no longer matches anything; "
                "remove it)" % key[1],
            )
        )
    return violations


# --------------------------------------------------------------------------
# Driver.

ALL_CHECKS = (
    ("no-throw-boundary", check_no_throw),
    ("statuscode-wire-mapping", check_wire_mapping),
    ("determinism-hygiene", check_determinism),
)


def run_checks(root):
    violations = []
    for _name, fn in ALL_CHECKS:
        violations.extend(fn(root))
    return violations


# --------------------------------------------------------------------------
# Self-test: seed one violation of each class into a synthetic tree and
# assert each check fires; assert a clean tree passes.

CLEAN_STATUS_HH = """
namespace dnastore { namespace api {
enum class StatusCode { Ok = 0, InvalidArgument, Internal, };
}}
"""

CLEAN_WIRE_CC = """
#include "api/wire.hh"
namespace dnastore { namespace api {
unsigned statusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return 0;
    case StatusCode::InvalidArgument: return 1;
    case StatusCode::Internal: return 8;
  }
  return 8;
}
StatusCode statusCodeFromWire(unsigned wire) {
  switch (wire) {
    case 0: return StatusCode::Ok;
    case 1: return StatusCode::InvalidArgument;
    default: return StatusCode::Internal;
  }
}
}}
"""


def write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def clean_tree_files():
    return {
        STATUS_HEADER: CLEAN_STATUS_HH,
        WIRE_SOURCE: CLEAN_WIRE_CC,
        # Comments and strings mentioning banned tokens must NOT trip
        # any check.
        "src/api/store.cc": (
            "// may throw? no: @throws is only documentation\n"
            'const char *msg = "throw time() rand()";\n'
        ),
        "src/daemon/server.cc": "int serve() { return 0; }\n",
        "src/cluster/greedy.cc": (
            "// time() in a comment is fine\n"
            "int toStrandCount(int n) { return n; }  // rand( in name\n"
        ),
        "src/pipeline/sim.cc": "int simulate(int seed) { return seed; }\n",
    }


def expect(cond, what, failures):
    if not cond:
        failures.append(what)


def self_test():
    failures = []

    with tempfile.TemporaryDirectory() as root:
        write_tree(root, clean_tree_files())
        global ALLOWLIST
        saved_allowlist = ALLOWLIST
        ALLOWLIST = set()  # the synthetic tree needs no escapes
        try:
            violations = run_checks(root)
            expect(
                not violations,
                "clean synthetic tree must pass, got: %s"
                % "; ".join(str(v) for v in violations),
                failures,
            )

            # Seed 1: throw inside the boundary.
            seeded = dict(clean_tree_files())
            seeded["src/api/store.cc"] += (
                'int f() { throw 1; }\n'
            )
            write_tree(root, seeded)
            got = [v for v in run_checks(root) if v.check == "no-throw-boundary"]
            expect(len(got) == 1, "seeded throw-in-api not caught exactly once", failures)

            # Seed 1b: throw in daemon/.
            seeded = dict(clean_tree_files())
            seeded["src/daemon/server.cc"] = (
                "int serve() { throw 2; }\n"
            )
            write_tree(root, seeded)
            got = [v for v in run_checks(root) if v.check == "no-throw-boundary"]
            expect(len(got) == 1, "seeded throw-in-daemon not caught", failures)

            # Seed 2: a StatusCode enumerator with no wire mapping.
            seeded = dict(clean_tree_files())
            seeded[STATUS_HEADER] = CLEAN_STATUS_HH.replace(
                "Internal, };", "Internal, Unmapped, };"
            )
            write_tree(root, seeded)
            got = [
                v for v in run_checks(root) if v.check == "statuscode-wire-mapping"
            ]
            expect(
                len(got) == 2 and all("Unmapped" in v.detail for v in got),
                "seeded unmapped StatusCode not caught in both directions",
                failures,
            )

            # Seed 3: each banned nondeterminism source, one per file.
            nondet_snippets = {
                "rand()": "int draw() { return rand(); }\n",
                "random_device": "#include <random>\nstd::random_device rd;\n",
                "time()": "#include <ctime>\nlong now() { return time(nullptr); }\n",
                "clock-now": (
                    "#include <chrono>\n"
                    "auto t() { return std::chrono::steady_clock::now(); }\n"
                ),
            }
            for ban_name, snippet in nondet_snippets.items():
                seeded = dict(clean_tree_files())
                seeded["src/cluster/greedy.cc"] = snippet
                write_tree(root, seeded)
                got = [
                    v for v in run_checks(root) if v.check == "determinism-hygiene"
                ]
                expect(
                    len(got) == 1 and ban_name in got[0].detail,
                    "seeded %s not caught" % ban_name,
                    failures,
                )

            # Seed 3b: an allowlisted violation passes, and a stale
            # allowlist entry fails.
            ALLOWLIST = {("src/cluster/greedy.cc", "clock-now")}
            seeded = dict(clean_tree_files())
            seeded["src/cluster/greedy.cc"] = nondet_snippets["clock-now"]
            write_tree(root, seeded)
            got = [v for v in run_checks(root) if v.check == "determinism-hygiene"]
            expect(not got, "allowlisted clock-now still flagged", failures)

            write_tree(root, clean_tree_files())
            got = [v for v in run_checks(root) if v.check == "determinism-hygiene"]
            expect(
                len(got) == 1 and "stale allowlist" in got[0].detail,
                "stale allowlist entry not flagged",
                failures,
            )
        finally:
            ALLOWLIST = saved_allowlist

    if failures:
        for f in failures:
            print("SELF-TEST FAIL: %s" % f, file=sys.stderr)
        return 1
    print("lint_invariants self-test: all checks fire and clean trees pass")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)",
    )
    parser.add_argument(
        "--report", default=None, help="also write the findings to this file"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="seed violations of each class and assert detection",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if not os.path.isdir(os.path.join(args.root, "src")):
        print("lint_invariants: no src/ under --root %s" % args.root, file=sys.stderr)
        return 2

    violations = run_checks(args.root)
    lines = [str(v) for v in violations]
    summary = (
        "lint_invariants: clean (%d checks over %d+%d dirs)"
        % (len(ALL_CHECKS), len(NO_THROW_DIRS), len(DETERMINISM_DIRS))
        if not violations
        else "lint_invariants: %d violation(s)" % len(violations)
    )
    report = "\n".join(lines + [summary]) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

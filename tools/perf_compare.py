#!/usr/bin/env python3
"""Merge two perf-report JSONs into a before/after regression record.

Usage:
    tools/perf_compare.py --before base.json --after new.json \
        [--out BENCH_PR2.json] [--label "PR 2"]

The inputs are emitted by bench_perf_report (schema
dnastore-perf-report-v1). The output records, per bench, the before and
after ns/op and the speedup, and a markdown table is printed to stdout
for pasting into docs. Benches present in only one input (e.g. new-API
benches that the baseline build cannot compile) are carried through
with null on the missing side, rendered as "n/a" in the table; their
speedup key is omitted from the JSON rather than emitted as null.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "dnastore-perf-report-v1":
        sys.exit(f"{path}: not a dnastore perf report")
    if report.get("quick"):
        print(f"warning: {path} is a --quick run; timings are noisy",
              file=sys.stderr)
    return {r["name"]: r for r in report["results"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--before", required=True)
    ap.add_argument("--after", required=True)
    ap.add_argument("--out")
    ap.add_argument("--label", default="")
    args = ap.parse_args()

    before = load(args.before)
    after = load(args.after)

    names = list(dict.fromkeys(list(before) + list(after)))
    rows = []
    for name in names:
        # A bench can be absent on one side (new or retired), or
        # present with a null/missing ns_per_op; both render as n/a.
        b_ns = (before.get(name) or {}).get("ns_per_op")
        a_ns = (after.get(name) or {}).get("ns_per_op")
        speedup = b_ns / a_ns if b_ns and a_ns else None
        row = {
            "name": name,
            "before_ns_per_op": b_ns,
            "after_ns_per_op": a_ns,
        }
        if speedup is not None:
            row["speedup"] = round(speedup, 2)
        rows.append(row)

    merged = {
        "schema": "dnastore-perf-compare-v1",
        "label": args.label,
        "results": rows,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)

    def fmt(ns):
        if ns is None:
            return "n/a"
        if ns >= 1e6:
            return f"{ns / 1e6:.2f} ms"
        if ns >= 1e3:
            return f"{ns / 1e3:.2f} µs"
        return f"{ns:.0f} ns"

    print("| bench | before | after | speedup |")
    print("|---|---:|---:|---:|")
    for r in rows:
        speed = (f"{r['speedup']:.2f}x"
                 if r.get("speedup") is not None else "n/a")
        print(f"| {r['name']} | {fmt(r['before_ns_per_op'])} "
              f"| {fmt(r['after_ns_per_op'])} | {speed} |")


if __name__ == "__main__":
    main()

/**
 * @file
 * Wetlab-equivalent validation (paper section 6.2, Figure 15).
 *
 * The paper validated its toolchain by synthesizing two small images
 * in all three formats (baseline, Gini, DnaMapper), sequencing with
 * NGS at ~0.3% error rate, and decoding everything without loss. The
 * wetlab itself is the one thing this repository must substitute:
 * here the identical encode/decode toolchain runs — through the
 * `dnastore::api::Store` façade — against the simulated channel
 * configured to NGS characteristics (0.3% total error, ~27% of it
 * indels, set as a ChannelProfile base model), and the decoded
 * images are written out as PGM files.
 */

#include <cstdio>

#include "api/api.hh"
#include "media/sjpeg.hh"
#include "pipeline/quality.hh"

using namespace dnastore;

int
main()
{
    // Two small images, as in the paper's wetlab run.
    ImageWorkload workload =
        makeImageWorkload({ { 96, 64 }, { 64, 64 } }, 85, 62);
    std::printf("wetlab-equivalent run: %zu images, %zu bytes, "
                "NGS channel (0.3%% error, 27%% indels)\n",
                workload.bundle.fileCount(),
                workload.bundle.totalBytes());

    // The NGS breakdown comes in as a full channel profile (base
    // model only, no stressors).
    ChannelProfile ngs;
    ngs.base = ErrorModel::ngs(0.003);

    const LayoutScheme schemes[3] = { LayoutScheme::Baseline,
                                      LayoutScheme::Gini,
                                      LayoutScheme::DnaMapper };
    bool all_ok = true;
    for (LayoutScheme scheme : schemes) {
        api::StoreOptions options = api::StoreOptions::tiny();
        options.layout(scheme).unitSeed(33);
        api::ChannelOptions channel;
        channel.profile(ngs).coverage(10);
        api::Result<api::Store> opened =
            api::Store::open(options, channel);
        if (!opened.ok()) {
            std::printf("open failed: %s\n",
                        opened.status().toString().c_str());
            return 1;
        }
        api::Store &store = *opened;
        for (const auto &file : workload.bundle.files()) {
            api::Status status = store.put(file.name, file.data);
            if (!status.ok()) {
                std::printf("put failed: %s\n",
                            status.toString().c_str());
                return 1;
            }
        }

        api::Result<api::Retrieval> result = store.retrieveAll();
        if (!result.ok()) {
            std::printf("retrieve failed: %s\n",
                        result.status().toString().c_str());
            return 1;
        }
        auto report = evaluateImageQuality(
            workload,
            result->decoded ? result->objects : FileBundle{});
        std::printf("  %-9s exact=%s mean_loss=%.2f dB\n",
                    layoutSchemeName(scheme),
                    result->exact ? "yes" : "no", report.meanLossDb);
        all_ok = all_ok && result->exact;

        if (scheme == LayoutScheme::DnaMapper && result->decoded) {
            const NamedFile *f =
                result->objects.find(workload.names[0]);
            if (f) {
                Image img = sjpegDecode(f->data).image;
                savePgm(img, "wetlab_decoded.pgm");
                std::printf("  wrote wetlab_decoded.pgm "
                            "(the Figure 15 left image)\n");
            }
        }
    }
    std::printf(all_ok
                    ? "all three formats decoded losslessly, as in "
                      "the paper's wetlab validation.\n"
                    : "WARNING: a format failed to decode "
                      "losslessly.\n");
    return all_ok ? 0 : 1;
}

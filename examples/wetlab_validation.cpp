/**
 * @file
 * Wetlab-equivalent validation (paper section 6.2, Figure 15).
 *
 * The paper validated its toolchain by synthesizing two small images
 * in all three formats (baseline, Gini, DnaMapper), sequencing with
 * NGS at ~0.3% error rate, and decoding everything without loss. The
 * wetlab itself is the one thing this repository must substitute (see
 * DESIGN.md): here the identical encode/decode toolchain runs against
 * the simulated channel configured to NGS characteristics — 0.3%
 * total error, ~27% of it indels — and the decoded images are written
 * out as PGM files.
 */

#include <cstdio>

#include "media/sjpeg.hh"
#include "pipeline/quality.hh"
#include "pipeline/simulator.hh"

using namespace dnastore;

int
main()
{
    // Two small images, as in the paper's wetlab run.
    ImageWorkload workload =
        makeImageWorkload({ { 96, 64 }, { 64, 64 } }, 85, 62);
    std::printf("wetlab-equivalent run: %zu images, %zu bytes, "
                "NGS channel (0.3%% error, 27%% indels)\n",
                workload.bundle.fileCount(),
                workload.bundle.totalBytes());

    StorageConfig cfg = StorageConfig::tinyTest();
    const LayoutScheme schemes[3] = { LayoutScheme::Baseline,
                                      LayoutScheme::Gini,
                                      LayoutScheme::DnaMapper };
    bool all_ok = true;
    for (LayoutScheme scheme : schemes) {
        StorageSimulator sim(cfg, scheme, ErrorModel::ngs(0.003), 33);
        sim.store(workload.bundle, 10);
        auto result = sim.retrieve(10);
        auto report = evaluateImageQuality(
            workload, result.decoded.bundleOk ? result.decoded.bundle
                                              : FileBundle{});
        std::printf("  %-9s exact=%s mean_loss=%.2f dB\n",
                    layoutSchemeName(scheme),
                    result.exactPayload ? "yes" : "no",
                    report.meanLossDb);
        all_ok = all_ok && result.exactPayload;

        if (scheme == LayoutScheme::DnaMapper &&
            result.decoded.bundleOk) {
            const NamedFile *f =
                result.decoded.bundle.find(workload.names[0]);
            if (f) {
                Image img = sjpegDecode(f->data).image;
                savePgm(img, "wetlab_decoded.pgm");
                std::printf("  wrote wetlab_decoded.pgm "
                            "(the Figure 15 left image)\n");
            }
        }
    }
    std::printf(all_ok
                    ? "all three formats decoded losslessly, as in "
                      "the paper's wetlab validation.\n"
                    : "WARNING: a format failed to decode "
                      "losslessly.\n");
    return all_ok ? 0 : 1;
}

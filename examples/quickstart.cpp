/**
 * @file
 * Quickstart: store a file in simulated DNA and read it back —
 * through the public `dnastore::api` façade.
 *
 * Demonstrates the stable API surface: open a Store with
 * builder-validated options, put() named objects, let the store
 * drive synthesis, the noisy channel, sequencing, consensus, and
 * Reed-Solomon decoding, then get() the bytes back. Every fallible
 * call returns a Status/Result instead of throwing — the error
 * handling below is the whole contract.
 */

#include <cstdio>
#include <string>

#include "api/api.hh"

using namespace dnastore;

int
main()
{
    // 1. A store: tinyTest geometry (GF(2^8), 12 rows, ~18%
    //    redundancy), Gini's interleaved layout, a 6% IDS channel
    //    read at coverage 12.
    api::StoreOptions options = api::StoreOptions::tiny();
    options.layout(LayoutScheme::Gini).unitSeed(42);
    api::ChannelOptions channel;
    channel.errorRate(0.06).coverage(12);

    api::Result<api::Store> opened =
        api::Store::open(options, channel);
    if (!opened.ok()) {
        std::printf("open failed: %s\n",
                    opened.status().toString().c_str());
        return 1;
    }
    api::Store &store = *opened;
    StorageConfig cfg = store.unitConfig();
    std::printf("unit geometry: %zu molecules x %zu symbols, "
                "%zu-base strands, %.1f%% redundancy\n",
                cfg.codewordLen(), cfg.rows, cfg.strandLen(),
                100.0 * cfg.redundancyFraction());

    // 2. Something to store.
    std::string text =
        "DNA is emerging as an increasingly attractive medium for "
        "data storage due to its unprecedented durability and "
        "density. This very sentence has survived synthesis, PCR, "
        "sequencing at 6% error rate, trace reconstruction, and "
        "Reed-Solomon decoding.";
    api::Status status = store.put(
        "hello.txt", std::vector<uint8_t>(text.begin(), text.end()));
    if (!status.ok()) {
        std::printf("put failed: %s\n", status.toString().c_str());
        return 1;
    }

    // 3. Errors are values, not exceptions: a bad name and a
    //    duplicate come back as documented StatusCodes.
    std::printf("put(\"\")          -> %s\n",
                api::statusCodeName(
                    store.put("", {}).code()));
    std::printf("put(duplicate)   -> %s\n",
                api::statusCodeName(
                    store.put("hello.txt", {}).code()));

    // 4. Retrieve at coverage 8 (a pool prefix of the synthesized
    //    unit: 8 noisy reads per molecule).
    api::Result<api::Retrieval> retrieval = store.retrieveAt(8);
    if (!retrieval.ok()) {
        std::printf("retrieve failed: %s\n",
                    retrieval.status().toString().c_str());
        return 1;
    }
    std::printf("retrieved at coverage 8: exact=%s, %zu symbol errors "
                "corrected across %zu codewords, %zu molecules lost\n",
                retrieval->exact ? "yes" : "no",
                retrieval->correctedErrors,
                retrieval->errorsPerCodeword.size(),
                retrieval->erasedColumns);

    // 5. get() is the strict read path: bytes only on exact recovery
    //    (NotFound / DataLoss otherwise).
    api::Result<std::vector<uint8_t>> bytes = store.get("hello.txt");
    if (bytes.ok()) {
        std::printf("recovered hello.txt (%zu bytes): \"%.60s...\"\n",
                    bytes->size(),
                    reinterpret_cast<const char *>(bytes->data()));
    } else {
        std::printf("get failed: %s\n",
                    bytes.status().toString().c_str());
    }
    std::printf("get(missing)     -> %s\n",
                api::statusCodeName(
                    store.get("missing.txt").status().code()));

    // 6. How cheap can reading get? Find the minimum coverage.
    api::Result<size_t> min_cov = store.minExactCoverage(2, 12);
    if (min_cov.ok())
        std::printf("minimum coverage for error-free decoding: %zu\n",
                    *min_cov);

    // 7. Async batched work: ship the unit text a synthesizer would
    //    receive, off the calling thread.
    api::Result<api::EncodedArtifact> artifact =
        store.submit(api::EncodeJob{}).get();
    if (artifact.ok())
        std::printf("async encode: %zu strands, %zu payload bits\n",
                    artifact->strands.size(), artifact->payloadBits);
    return 0;
}

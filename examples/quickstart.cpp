/**
 * @file
 * Quickstart: store a file in simulated DNA and read it back.
 *
 * Demonstrates the minimal public API surface: build a FileBundle,
 * pick a layout scheme, let StorageSimulator drive synthesis, the
 * noisy channel, sequencing, consensus, and Reed-Solomon decoding.
 */

#include <cstdio>
#include <string>

#include "pipeline/simulator.hh"

using namespace dnastore;

int
main()
{
    // 1. Something to store.
    std::string text =
        "DNA is emerging as an increasingly attractive medium for "
        "data storage due to its unprecedented durability and "
        "density. This very sentence has survived synthesis, PCR, "
        "sequencing at 6% error rate, trace reconstruction, and "
        "Reed-Solomon decoding.";
    FileBundle bundle;
    bundle.add("hello.txt",
               std::vector<uint8_t>(text.begin(), text.end()));

    // 2. A storage unit: GF(2^8) codewords, 12 rows, 18% redundancy.
    StorageConfig cfg = StorageConfig::tinyTest();
    std::printf("unit geometry: %zu molecules x %zu symbols, "
                "%zu-base strands, %.1f%% redundancy\n",
                cfg.codewordLen(), cfg.rows, cfg.strandLen(),
                100.0 * cfg.redundancyFraction());

    // 3. Store with Gini's interleaved layout over a 6% IDS channel.
    StorageSimulator sim(cfg, LayoutScheme::Gini,
                         ErrorModel::uniform(0.06), /*seed=*/42);
    sim.store(bundle, /*max_coverage=*/12);
    std::printf("synthesized %zu strands of %zu bases each\n",
                sim.unit().strands.size(), cfg.strandLen());

    // 4. Retrieve at coverage 8 (8 noisy reads per molecule).
    RetrievalResult result = sim.retrieve(8);
    std::printf("retrieved at coverage 8: exact=%s, %zu symbol errors "
                "corrected across %zu codewords, %zu molecules lost\n",
                result.exactPayload ? "yes" : "no",
                result.decoded.stats.totalCorrected(),
                result.decoded.stats.errorsPerCodeword.size(),
                result.decoded.stats.erasedColumns);

    if (result.decoded.bundleOk) {
        const NamedFile *file = result.decoded.bundle.find("hello.txt");
        std::printf("recovered %s (%zu bytes): \"%.60s...\"\n",
                    file->name.c_str(), file->data.size(),
                    reinterpret_cast<const char *>(file->data.data()));
    }

    // 5. How cheap can reading get? Find the minimum coverage.
    auto min_cov = sim.minCoverageForExact(2, 12);
    if (min_cov)
        std::printf("minimum coverage for error-free decoding: %zu\n",
                    *min_cov);
    return 0;
}

/**
 * @file
 * Gini vs the baseline layout: reading-cost savings at a glance.
 *
 * Stores the same data under both layouts and reports, per error
 * rate, the minimum sequencing coverage each needs for error-free
 * retrieval — the cost model behind the paper's Figure 12 — plus the
 * per-codeword error distribution that explains *why* (Figure 11).
 */

#include <algorithm>
#include <cstdio>

#include "pipeline/simulator.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dnastore;

int
main()
{
    StorageConfig cfg = StorageConfig::benchScale();
    cfg.numThreads = 0; // all hardware threads; output is unchanged
    Rng rng(1);
    FileBundle bundle;
    std::vector<uint8_t> blob(cfg.capacityBytes() - 600);
    for (auto &b : blob)
        b = uint8_t(rng.next());
    bundle.add("archive.bin", std::move(blob));

    std::printf("%zu molecules/unit, %.1f%% redundancy, payload %zu "
                "bytes\n\n",
                cfg.codewordLen(), 100.0 * cfg.redundancyFraction(),
                bundle.totalBytes());

    std::printf("error_rate,baseline_min_cov,gini_min_cov,saving\n");
    for (double p : { 0.06, 0.09 }) {
        size_t mins[2];
        const LayoutScheme schemes[2] = { LayoutScheme::Baseline,
                                          LayoutScheme::Gini };
        for (int s = 0; s < 2; ++s) {
            StorageSimulator sim(cfg, schemes[s],
                                 ErrorModel::uniform(p), 11);
            sim.store(bundle, 24);
            mins[s] = sim.minCoverageForExact(2, 24).value_or(25);
        }
        std::printf("%.0f%%,%zu,%zu,%.0f%%\n", p * 100, mins[0],
                    mins[1],
                    100.0 * (1.0 - double(mins[1]) / double(mins[0])));
    }

    // Why: per-codeword error concentration at 9% error, coverage 20.
    std::printf("\nper-codeword error spread at 9%% error, "
                "coverage 20:\n");
    for (LayoutScheme scheme : { LayoutScheme::Baseline,
                                 LayoutScheme::Gini }) {
        StorageSimulator sim(cfg, scheme, ErrorModel::uniform(0.09),
                             12);
        sim.store(bundle, 20);
        auto result = sim.retrieve(20);
        const auto &per_cw = result.decoded.stats.errorsPerCodeword;
        std::vector<double> counts(per_cw.begin(), per_cw.end());
        std::printf("  %-9s total=%5zu peak=%4.0f gini_index=%.3f\n",
                    layoutSchemeName(scheme),
                    result.decoded.stats.totalCorrected(),
                    *std::max_element(counts.begin(), counts.end()),
                    giniIndex(counts));
    }
    std::printf("\nthe baseline concentrates middle-of-molecule "
                "errors in a few codewords (high Gini index); Gini "
                "spreads them evenly and so needs less coverage.\n");
    return 0;
}

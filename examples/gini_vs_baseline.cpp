/**
 * @file
 * Gini vs the baseline layout: reading-cost savings at a glance.
 *
 * Stores the same data under both layouts (one api::Store per
 * layout) and reports, per error rate, the minimum sequencing
 * coverage each needs for error-free retrieval — the cost model
 * behind the paper's Figure 12 — plus the per-codeword error
 * distribution that explains *why* (Figure 11).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "api/api.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dnastore;

namespace {

std::vector<uint8_t>
randomBlob(size_t bytes)
{
    Rng rng(1);
    std::vector<uint8_t> blob(bytes);
    for (auto &b : blob)
        b = uint8_t(rng.next());
    return blob;
}

/** A bench-scale store of @p blob under @p scheme. */
api::Store
openStore(LayoutScheme scheme, const std::vector<uint8_t> &blob,
          uint64_t seed, size_t coverage, double error_rate)
{
    api::StoreOptions options = api::StoreOptions::bench();
    options.layout(scheme)
        .threads(0) // all hardware threads; output is unchanged
        .unitSeed(seed);
    api::ChannelOptions channel;
    channel.errorRate(error_rate).coverage(coverage);
    api::Result<api::Store> store =
        api::Store::open(options, channel);
    if (!store.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     store.status().toString().c_str());
        std::exit(1);
    }
    api::Status status = store->put("archive.bin", blob);
    if (!status.ok()) {
        std::fprintf(stderr, "put failed: %s\n",
                     status.toString().c_str());
        std::exit(1);
    }
    return std::move(*store);
}

} // namespace

int
main()
{
    StorageConfig cfg = StorageConfig::benchScale();
    std::vector<uint8_t> blob = randomBlob(cfg.capacityBytes() - 600);

    std::printf("%zu molecules/unit, %.1f%% redundancy, payload %zu "
                "bytes\n\n",
                cfg.codewordLen(), 100.0 * cfg.redundancyFraction(),
                blob.size());

    std::printf("error_rate,baseline_min_cov,gini_min_cov,saving\n");
    for (double p : { 0.06, 0.09 }) {
        size_t mins[2];
        const LayoutScheme schemes[2] = { LayoutScheme::Baseline,
                                          LayoutScheme::Gini };
        for (int s = 0; s < 2; ++s) {
            api::Store store =
                openStore(schemes[s], blob, 11, 24, p);
            api::Result<size_t> min_cov =
                store.minExactCoverage(2, 24);
            // Unavailable = nothing in range decoded exactly.
            mins[s] = min_cov.ok() ? *min_cov : 25;
        }
        std::printf("%.0f%%,%zu,%zu,%.0f%%\n", p * 100, mins[0],
                    mins[1],
                    100.0 * (1.0 - double(mins[1]) / double(mins[0])));
    }

    // Why: per-codeword error concentration at 9% error, coverage 20.
    std::printf("\nper-codeword error spread at 9%% error, "
                "coverage 20:\n");
    for (LayoutScheme scheme : { LayoutScheme::Baseline,
                                 LayoutScheme::Gini }) {
        api::Store store = openStore(scheme, blob, 12, 20, 0.09);
        api::Result<api::Retrieval> result = store.retrieveAt(20);
        if (!result.ok()) {
            std::printf("  retrieve failed: %s\n",
                        result.status().toString().c_str());
            return 1;
        }
        const auto &per_cw = result->errorsPerCodeword;
        std::vector<double> counts(per_cw.begin(), per_cw.end());
        std::printf("  %-9s total=%5zu peak=%4.0f gini_index=%.3f\n",
                    layoutSchemeName(scheme),
                    result->correctedErrors,
                    *std::max_element(counts.begin(), counts.end()),
                    giniIndex(counts));
    }
    std::printf("\nthe baseline concentrates middle-of-molecule "
                "errors in a few codewords (high Gini index); Gini "
                "spreads them evenly and so needs less coverage.\n");
    return 0;
}

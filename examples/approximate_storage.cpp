/**
 * @file
 * Approximate storage of encrypted images with DnaMapper.
 *
 * The paper's headline use case (sections 5 and 7.2): images are
 * compressed, encrypted, and stored with priority-based mapping; as
 * sequencing coverage (= reading cost) drops, image quality degrades
 * gracefully instead of collapsing. The whole pipeline runs through
 * the `dnastore::api::Store` façade — note how retrieveAt() keeps
 * *returning* partially recovered objects (exact=false) instead of
 * erroring, which is exactly what approximate storage needs. Writes
 * the retrieved images as PGM files so the degradation can be
 * inspected visually, like the paper's Figure 15.
 */

#include <cstdio>

#include "api/api.hh"
#include "media/sjpeg.hh"
#include "pipeline/quality.hh"

using namespace dnastore;

int
main()
{
    const uint64_t key_seed = 0xDEC0DE;

    // A bundle of synthetic photos, compressed and encrypted.
    ImageWorkload workload = makeImageWorkloadForCapacity(
        StorageConfig::benchScale().capacityBits(), 80, 99);
    FileBundle stored = workload.bundle.encrypted(key_seed);
    std::printf("storing %zu encrypted images (%zu bytes) in one "
                "DNA unit with DnaMapper\n",
                stored.fileCount(), stored.totalBytes());

    api::StoreOptions options = api::StoreOptions::bench();
    options.layout(LayoutScheme::DnaMapper)
        .threads(0) // all hardware threads; output is unchanged
        .unitSeed(7);
    api::ChannelOptions channel;
    channel.errorRate(0.09).coverage(18);
    api::Result<api::Store> opened =
        api::Store::open(options, channel);
    if (!opened.ok()) {
        std::printf("open failed: %s\n",
                    opened.status().toString().c_str());
        return 1;
    }
    api::Store &store = *opened;
    for (const auto &file : stored.files()) {
        api::Status status = store.put(file.name, file.data);
        if (!status.ok()) {
            std::printf("put failed: %s\n",
                        status.toString().c_str());
            return 1;
        }
    }

    std::printf("coverage,mean_loss_db,max_loss_db,undecodable\n");
    for (size_t coverage : { 18u, 16u, 15u, 14u, 13u, 12u, 11u }) {
        api::Result<api::Retrieval> result =
            store.retrieveAt(coverage);
        if (!result.ok()) {
            std::printf("retrieve failed: %s\n",
                        result.status().toString().c_str());
            return 1;
        }
        FileBundle plain = result->decoded
            ? result->objects.encrypted(key_seed)
            : FileBundle{};
        QualityReport report = evaluateImageQuality(workload, plain);
        std::printf("%zu,%.2f,%.2f,%zu\n", coverage, report.meanLossDb,
                    report.maxLossDb, report.undecodable);

        // Save the first image at each coverage for visual inspection.
        if (const NamedFile *f = plain.find(workload.names[0])) {
            Image img = sjpegDecodeOrGray(
                f->data, workload.cleanDecodes[0].width(),
                workload.cleanDecodes[0].height());
            char path[64];
            std::snprintf(path, sizeof(path),
                          "approx_cov%02zu.pgm", coverage);
            savePgm(img, path);
            std::printf("  wrote %s\n", path);
        }
    }
    std::printf("note: quality falls gradually with coverage -- "
                "graceful degradation -- instead of the baseline's "
                "cliff; up to ~1 dB of loss is visually "
                "unnoticeable.\n");
    return 0;
}

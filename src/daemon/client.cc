#include "daemon/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/byteio.hh"
#include "util/errno_text.hh"

namespace dnastore {
namespace daemon {

namespace {

bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += size_t(w);
    }
    return true;
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    readBuf_.clear();
}

api::Status
Client::connect(uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return api::Status::unavailable(api::formatMessage(
            "socket() failed: %s", errnoText(errno).c_str()));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) < 0) {
        api::Status status = api::Status::unavailable(
            api::formatMessage("connect(127.0.0.1:%u) failed: %s",
                               unsigned(port), errnoText(errno).c_str()));
        close();
        return status;
    }
    return api::Status();
}

api::Status
Client::sendRaw(const std::vector<uint8_t> &bytes)
{
    if (fd_ < 0)
        return api::Status::failedPrecondition("client not connected");
    if (!writeAll(fd_, bytes.data(), bytes.size()))
        return api::Status::unavailable(api::formatMessage(
            "write failed: %s", errnoText(errno).c_str()));
    return api::Status();
}

api::Result<Response>
Client::readResponse()
{
    if (fd_ < 0)
        return api::Status::failedPrecondition("client not connected");
    while (true) {
        std::vector<uint8_t> payload;
        size_t consumed = 0;
        std::string error;
        FrameStatus fs =
            extractFrame(readBuf_, &payload, &consumed, &error);
        if (fs == FrameStatus::Bad)
            return api::Status::dataLoss(api::formatMessage(
                "response stream corrupted: %s", error.c_str()));
        if (fs == FrameStatus::Ok) {
            readBuf_.erase(readBuf_.begin(),
                           readBuf_.begin() + std::ptrdiff_t(consumed));
            Response response;
            if (!decodeResponse(payload, &response, &error))
                return api::Status::dataLoss(api::formatMessage(
                    "malformed response: %s", error.c_str()));
            return response;
        }
        uint8_t chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n == 0)
            return api::Status::unavailable(
                "server closed the connection");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return api::Status::unavailable(api::formatMessage(
                "read failed: %s", errnoText(errno).c_str()));
        }
        readBuf_.insert(readBuf_.end(), chunk, chunk + n);
    }
}

api::Result<Response>
Client::roundTrip(const Request &request)
{
    api::Status sent = sendRaw(frame(encodeRequest(request)));
    if (!sent.ok())
        return sent;
    return readResponse();
}

api::Status
Client::ping()
{
    Request request;
    request.op = Op::Ping;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    return response->status();
}

api::Status
Client::put(const std::string &tenant, const std::string &name,
            const std::vector<uint8_t> &data)
{
    Request request;
    request.op = Op::Put;
    request.tenant = tenant;
    request.name = name;
    request.data = data;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    return response->status();
}

api::Result<std::vector<uint8_t>>
Client::get(const std::string &tenant, const std::string &name)
{
    Request request;
    request.op = Op::Get;
    request.tenant = tenant;
    request.name = name;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    api::Status status = response->status();
    if (!status.ok())
        return status;
    return std::move(response->body);
}

api::Result<std::vector<api::ObjectInfo>>
Client::list(const std::string &tenant)
{
    Request request;
    request.op = Op::List;
    request.tenant = tenant;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    api::Status status = response->status();
    if (!status.ok())
        return status;
    ByteReader r(response->body);
    std::vector<api::ObjectInfo> listing(r.u32());
    for (api::ObjectInfo &info : listing) {
        info.name = r.str(r.u16());
        info.bytes = r.u64();
    }
    if (!r.ok() || r.remaining() != 0)
        return api::Status::dataLoss("malformed listing body");
    return listing;
}

api::Result<std::string>
Client::health(const std::string &tenant)
{
    Request request;
    request.op = Op::Health;
    request.tenant = tenant;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    api::Status status = response->status();
    if (!status.ok())
        return status;
    return std::string(response->body.begin(), response->body.end());
}

api::Result<std::string>
Client::scrub(const std::string &tenant,
              const api::ScrubOptions &options)
{
    Request request;
    request.op = Op::Scrub;
    request.tenant = tenant;
    request.minReads = options.minReads;
    request.minAgreement = options.minAgreement;
    request.repairAll = options.repairAll;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    api::Status status = response->status();
    if (!status.ok())
        return status;
    return std::string(response->body.begin(), response->body.end());
}

api::Result<std::vector<uint8_t>>
Client::trial(const std::string &tenant, uint32_t trials,
              uint64_t seed)
{
    Request request;
    request.op = Op::Trial;
    request.tenant = tenant;
    request.trials = trials;
    request.trialSeed = seed;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    api::Status status = response->status();
    if (!status.ok())
        return status;
    ByteReader r(response->body);
    std::vector<uint8_t> flags = r.vec(r.u32());
    if (!r.ok() || r.remaining() != 0)
        return api::Status::dataLoss("malformed trial body");
    return flags;
}

api::Status
Client::save(const std::string &tenant)
{
    Request request;
    request.op = Op::Save;
    request.tenant = tenant;
    api::Result<Response> response = roundTrip(request);
    if (!response.ok())
        return response.status();
    return response->status();
}

} // namespace daemon
} // namespace dnastore

/**
 * @file
 * `dnastored` — the concurrent multi-tenant storage daemon.
 *
 * A Server binds a localhost TCP socket, accepts any number of
 * client connections (one reader thread per connection), and serves
 * the protocol.hh request set against a TenantRegistry:
 *
 *   Ping            liveness
 *   Put             tenant quota check + Store::put (coalesced:
 *                   synthesis deferred to the next read)
 *   Get/List/Health lock-free against the tenant's shared snapshot
 *   Scrub/Save      serialized through the tenant writer lock
 *   Trial           Monte-Carlo batch on the store's dispatcher
 *
 * Every response carries an api/wire.hh status code, so the façade's
 * Status taxonomy — CAPACITY_EXCEEDED quota rejections included —
 * crosses the socket unchanged.
 *
 * Error containment: an undecodable-but-well-framed payload fails
 * only that request (INVALID_ARGUMENT response, connection kept);
 * a framing failure (bad magic, wild length, CRC mismatch) cannot be
 * resynchronized, so the server answers one protocol-error frame and
 * closes that connection — never crashing, never wedging the other
 * connections.
 *
 * Shutdown: drain() (the CLI calls it on SIGTERM) stops accepting,
 * lets every in-flight request finish and flush its response, joins
 * the connection threads, and atomically saves every dirty tenant
 * pool (writePoolFile's tmp+rename discipline), so a drained root
 * directory always reopens consistent.
 */

#ifndef DNASTORE_DAEMON_SERVER_HH
#define DNASTORE_DAEMON_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/status.hh"
#include "daemon/protocol.hh"
#include "daemon/tenant.hh"

namespace dnastore {
namespace daemon {

struct ServerOptions
{
    TenantConfig tenants;

    /** TCP port on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);

    /** Drains (and saves dirty tenants) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + start the acceptor. Unavailable on failure. */
    api::Status start();

    /** The bound port (meaningful after start()). */
    uint16_t port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting, finish in-flight requests,
     * join every connection thread, persist dirty tenant pools.
     * Idempotent; returns the first save error (the drain itself
     * cannot fail).
     */
    api::Status drain();

    /** Requests served since start (for tests and logs). */
    uint64_t requestsServed() const { return requestsServed_.load(); }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
    };

    void acceptLoop();
    void handleConnection(int fd);
    Response dispatch(const Request &request);

    const ServerOptions options_;
    TenantRegistry tenants_;

    int listenFd_ = -1;
    int wakePipe_[2] = { -1, -1 };
    uint16_t port_ = 0;

    std::atomic<bool> running_{ false };
    std::atomic<bool> stopping_{ false };
    std::atomic<uint64_t> requestsServed_{ 0 };

    std::thread acceptor_;
    std::mutex connectionsMu_;
    std::vector<std::unique_ptr<Connection>> connections_;
};

} // namespace daemon
} // namespace dnastore

#endif // DNASTORE_DAEMON_SERVER_HH

/**
 * @file
 * Blocking client for the `dnastored` wire protocol.
 *
 * One Client = one TCP connection. Each call frames a request,
 * writes it, reads exactly one response frame, and maps the wire
 * status back into the api::Status taxonomy — so remote calls and
 * local `api::Store` calls fail with the same codes (and, for the
 * store-backed ops, the same messages).
 *
 * Used by `dnastore client ...`, the daemon test suites, and the
 * daemon bench. Not thread-safe; give each client thread its own
 * Client (connections are cheap, the server handles many).
 */

#ifndef DNASTORE_DAEMON_CLIENT_HH
#define DNASTORE_DAEMON_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"
#include "api/store.hh"
#include "daemon/protocol.hh"

namespace dnastore {
namespace daemon {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a dnastored on 127.0.0.1:@p port. */
    api::Status connect(uint16_t port);

    void close();
    bool connected() const { return fd_ >= 0; }

    // ------------------------------------------------------ protocol ops
    api::Status ping();
    api::Status put(const std::string &tenant, const std::string &name,
                    const std::vector<uint8_t> &data);
    api::Result<std::vector<uint8_t>> get(const std::string &tenant,
                                          const std::string &name);
    api::Result<std::vector<api::ObjectInfo>> list(
        const std::string &tenant);

    /** Health report JSON (byte-identical to Store::health toJson). */
    api::Result<std::string> health(const std::string &tenant);

    /** Scrub report JSON. */
    api::Result<std::string> scrub(const std::string &tenant,
                                   const api::ScrubOptions &options);

    /** Per-trial success flags, in trial order. */
    api::Result<std::vector<uint8_t>> trial(const std::string &tenant,
                                            uint32_t trials,
                                            uint64_t seed);

    api::Status save(const std::string &tenant);

    // ----------------------------------------------------- raw access
    /**
     * One framed request → one decoded response. The building block
     * of the typed ops, exposed for tests that need the full
     * Response (op echo, wire code, body).
     */
    api::Result<Response> roundTrip(const Request &request);

    /**
     * Write arbitrary bytes (NOT framed) and read one response
     * frame — the corruption tests' hook for sending bit-flipped or
     * truncated frames.
     */
    api::Status sendRaw(const std::vector<uint8_t> &bytes);
    api::Result<Response> readResponse();

  private:
    int fd_ = -1;
    std::vector<uint8_t> readBuf_;
};

} // namespace daemon
} // namespace dnastore

#endif // DNASTORE_DAEMON_CLIENT_HH

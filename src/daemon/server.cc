#include "daemon/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/wire.hh"
#include "util/byteio.hh"
#include "util/errno_text.hh"

namespace dnastore {
namespace daemon {

namespace {

/** write() the whole buffer, retrying short writes and EINTR. */
bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += size_t(w);
    }
    return true;
}

bool
sendResponse(int fd, const Response &response)
{
    std::vector<uint8_t> bytes = frame(encodeResponse(response));
    return writeAll(fd, bytes.data(), bytes.size());
}

/** poll() for readability; 0 on timeout, <0 on error, >0 ready. */
int
pollIn(int fd, int timeoutMs)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r = ::poll(&pfd, 1, timeoutMs);
    if (r < 0 && errno == EINTR)
        return 0;
    return r;
}

std::vector<uint8_t>
encodeListing(const std::vector<api::ObjectInfo> &listing)
{
    ByteWriter w;
    w.u32(uint32_t(listing.size()));
    for (const api::ObjectInfo &info : listing) {
        w.u16(uint16_t(info.name.size()));
        w.str(info.name);
        w.u64(info.bytes);
    }
    return w.take();
}

std::vector<uint8_t>
encodeTrialFlags(const api::TrialSeries &series)
{
    ByteWriter w;
    w.u32(uint32_t(series.trials.size()));
    for (const api::TrialResult &trial : series.trials)
        w.u8(trial.success ? 1 : 0);
    return w.take();
}

std::vector<uint8_t>
textBody(const std::string &text)
{
    return std::vector<uint8_t>(text.begin(), text.end());
}

} // namespace

Server::Server(const ServerOptions &options)
    : options_(options), tenants_(options.tenants)
{}

Server::~Server()
{
    drain();
}

api::Status
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return api::Status::unavailable(api::formatMessage(
            "socket() failed: %s", errnoText(errno).c_str()));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) < 0) {
        api::Status status = api::Status::unavailable(
            api::formatMessage("bind(127.0.0.1:%u) failed: %s",
                               unsigned(options_.port),
                               errnoText(errno).c_str()));
        ::close(listenFd_);
        listenFd_ = -1;
        return status;
    }
    if (::listen(listenFd_, 64) < 0) {
        api::Status status = api::Status::unavailable(
            api::formatMessage("listen() failed: %s",
                               errnoText(errno).c_str()));
        ::close(listenFd_);
        listenFd_ = -1;
        return status;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    if (::pipe(wakePipe_) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return api::Status::unavailable("pipe() failed");
    }
    running_.store(true);
    stopping_.store(false);
    acceptor_ = std::thread([this] { acceptLoop(); });
    return api::Status();
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        struct pollfd pfds[2];
        pfds[0].fd = listenFd_;
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = wakePipe_[0];
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        int r = ::poll(pfds, 2, 500);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (stopping_.load())
            break;
        if (r == 0 || !(pfds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->thread =
            std::thread([this, fd] { handleConnection(fd); });
        std::lock_guard<std::mutex> lock(connectionsMu_);
        connections_.push_back(std::move(conn));
    }
}

void
Server::handleConnection(int fd)
{
    std::vector<uint8_t> buf;
    std::vector<uint8_t> payload;
    bool open = true;
    while (open) {
        // Serve every complete frame already buffered before reading
        // more — a pipelining client gets per-request responses in
        // order.
        size_t consumed = 0;
        std::string frame_error;
        FrameStatus fs =
            extractFrame(buf, &payload, &consumed, &frame_error);
        if (fs == FrameStatus::Bad) {
            // The stream cannot be resynchronized past junk: one
            // protocol-error frame (DATA_LOSS, the corruption
            // contract's code), then close this connection only.
            sendResponse(fd,
                         errorResponse(kOpProtocolError,
                                       api::Status::dataLoss(
                                           frame_error)));
            break;
        }
        if (fs == FrameStatus::Ok) {
            buf.erase(buf.begin(),
                      buf.begin() + std::ptrdiff_t(consumed));
            Request request;
            std::string decode_error;
            Response response;
            if (!decodeRequest(payload, &request, &decode_error)) {
                // Well-framed but undecodable: fail the request,
                // keep the connection.
                response = errorResponse(
                    kOpProtocolError,
                    api::Status::invalidArgument(api::formatMessage(
                        "malformed request: %s",
                        decode_error.c_str())));
            } else {
                response = dispatch(request);
            }
            requestsServed_.fetch_add(1);
            if (!sendResponse(fd, response))
                break;
            continue;
        }
        // NeedMore. On drain, a half-received frame still being
        // transmitted gets finished (the client already committed to
        // it), but an idle connection — empty buffer, or a stalled
        // partial frame that sends nothing within the poll window —
        // closes, so drain() can never wedge on a silent peer.
        if (stopping_.load() && buf.empty())
            break;
        int r = pollIn(fd, 200);
        if (r < 0)
            break;
        if (r == 0) {
            if (stopping_.load())
                break;
            continue;
        }
        uint8_t chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // EOF or hard error.
        }
        buf.insert(buf.end(), chunk, chunk + n);
        // A frame is at most header + max payload; a buffer beyond
        // that holds at least one complete frame or is junk, and
        // extractFrame decides which next iteration.
    }
    ::shutdown(fd, SHUT_RDWR);
}

Response
Server::dispatch(const Request &request)
{
    const uint8_t op = uint8_t(request.op);
    Response response;
    response.op = op;

    auto fromStatus = [op](const api::Status &status) {
        return errorResponse(op, status);
    };

    switch (request.op) {
      case Op::Ping: {
        response.body = textBody("pong");
        return response;
      }
      case Op::Put: {
        api::Result<Tenant *> tenant =
            tenants_.getOrCreate(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        api::Status status =
            (*tenant)->put(request.name, request.data);
        if (!status.ok())
            return fromStatus(status);
        return response;
      }
      case Op::Get: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        api::Result<std::vector<uint8_t>> data =
            (*tenant)->get(request.name);
        if (!data.ok())
            return fromStatus(data.status());
        response.body = std::move(*data);
        return response;
      }
      case Op::List: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        response.body = encodeListing((*tenant)->list());
        return response;
      }
      case Op::Health: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        bool exact = false;
        api::Result<std::string> json =
            (*tenant)->healthJson(&exact);
        if (!json.ok())
            return fromStatus(json.status());
        response.body = textBody(*json);
        return response;
      }
      case Op::Scrub: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        api::ScrubOptions scrub_opt;
        scrub_opt.minReads = size_t(request.minReads);
        scrub_opt.minAgreement = request.minAgreement;
        scrub_opt.repairAll = request.repairAll;
        api::Result<api::ScrubReport> report =
            (*tenant)->scrub(scrub_opt);
        if (!report.ok())
            return fromStatus(report.status());
        response.body = textBody(report->toJson());
        return response;
      }
      case Op::Trial: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        if (request.trials == 0 || request.trials > 100000)
            return fromStatus(api::Status::invalidArgument(
                "trial count must be in [1, 100000]"));
        api::Result<api::TrialSeries> series =
            (*tenant)->trial(request.trials, request.trialSeed);
        if (!series.ok())
            return fromStatus(series.status());
        response.body = encodeTrialFlags(*series);
        return response;
      }
      case Op::Save: {
        api::Result<Tenant *> tenant = tenants_.find(request.tenant);
        if (!tenant.ok())
            return fromStatus(tenant.status());
        api::Status status = (*tenant)->save();
        if (!status.ok())
            return fromStatus(status);
        return response;
      }
    }
    return errorResponse(op, api::Status::internal(
                                 "unhandled opcode in dispatch"));
}

api::Status
Server::drain()
{
    if (!running_.exchange(false))
        return api::Status();
    stopping_.store(true);
    // Wake the acceptor (it also times out of poll on its own).
    if (wakePipe_[1] >= 0) {
        uint8_t byte = 1;
        ssize_t ignored = ::write(wakePipe_[1], &byte, 1);
        (void)ignored;
    }
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Connection threads notice stopping_ once their current request
    // (and any half-received frame) completes.
    std::vector<std::unique_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMu_);
        connections.swap(connections_);
    }
    for (auto &conn : connections) {
        if (conn->thread.joinable())
            conn->thread.join();
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    for (int i = 0; i < 2; ++i) {
        if (wakePipe_[i] >= 0) {
            ::close(wakePipe_[i]);
            wakePipe_[i] = -1;
        }
    }
    // The durable half of the drain contract: every tenant that took
    // mutations is saved through writePoolFile's atomic tmp+rename,
    // so the root directory reopens consistent even if this process
    // is killed right after.
    return tenants_.saveDirty();
}

} // namespace daemon
} // namespace dnastore

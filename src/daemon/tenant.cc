#include "daemon/tenant.hh"

#include <fstream>
#include <utility>

#include "daemon/protocol.hh"

namespace dnastore {
namespace daemon {

namespace {

bool
fileExists(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return bool(f);
}

api::ChannelOptions
channelFor(const TenantConfig &config)
{
    return api::ChannelOptions()
        .errorRate(config.errorRate)
        .coverage(config.coverage);
}

} // namespace

// ------------------------------------------------------------------ Tenant

Tenant::Tenant(std::string name, const TenantConfig &config)
    : name_(std::move(name)),
      poolPath_(config.root + "/" + name_ + ".dnapool"),
      config_(config)
{}

api::Status
Tenant::open()
{
    api::OpenOptions open_opt;
    open_opt.mode = api::OpenMode::ReadWrite;
    open_opt.threads = config_.threads;
    open_opt.packedReadPools = config_.packedReadPools;

    api::Result<api::Store> store = fileExists(poolPath_)
        ? api::Store::openFile(poolPath_, channelFor(config_), open_opt)
        : api::Store::open(api::StoreOptions()
                               .autoGeometry(true)
                               .threads(config_.threads)
                               .packedReadPools(config_.packedReadPools)
                               .unitSeed(config_.unitSeed),
                           channelFor(config_));
    if (!store.ok())
        return store.status();
    store_.emplace(std::move(*store));
    return api::Status();
}

api::Status
Tenant::put(const std::string &objectName, std::vector<uint8_t> data)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (config_.quotaBytes > 0 &&
        store_->totalBytes() + data.size() > config_.quotaBytes)
        return api::Status::capacityExceeded(api::formatMessage(
            "tenant '%s' quota exceeded: %zu stored + %zu new > %zu "
            "byte quota",
            name_.c_str(), store_->totalBytes(), data.size(),
            size_t(config_.quotaBytes)));
    api::Status status = store_->put(objectName, std::move(data));
    if (status.ok()) {
        // Synthesis is NOT triggered here: consecutive puts coalesce
        // into the shared FileBundle and the next snapshot rebuild
        // pays one encode + synthesis for the whole batch.
        dirty_ = true;
        generation_.fetch_add(1, std::memory_order_release);
    }
    return status;
}

std::shared_ptr<const ReadSnapshot>
Tenant::rebuildReadSnapshotLocked(uint64_t generation)
{
    auto snap = std::make_shared<ReadSnapshot>();
    snap->generation = generation;
    snap->stored = store_->list();
    api::Result<api::Retrieval> retrieval = store_->retrieveAll();
    if (!retrieval.ok()) {
        snap->status = retrieval.status();
        return snap;
    }
    snap->decoded = retrieval->decoded;
    snap->exact = retrieval->exact;
    snap->failedCodewords = retrieval->failedCodewords;
    snap->erasedColumns = retrieval->erasedColumns;
    snap->files = retrieval->objects.files();
    return snap;
}

std::shared_ptr<const ReadSnapshot>
Tenant::readSnapshot()
{
    // Fast path: no lock, one atomic shared_ptr load. The snapshot is
    // valid while its generation matches the tenant's.
    std::shared_ptr<const ReadSnapshot> snap =
        std::atomic_load(&readSnap_);
    uint64_t gen = generation_.load(std::memory_order_acquire);
    if (snap && snap->generation == gen)
        return snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap = std::atomic_load(&readSnap_);
    gen = generation_.load(std::memory_order_acquire);
    if (snap && snap->generation == gen)
        return snap;
    snap = rebuildReadSnapshotLocked(gen);
    std::atomic_store(&readSnap_,
                      std::shared_ptr<const ReadSnapshot>(snap));
    return snap;
}

api::Result<std::vector<uint8_t>>
Tenant::get(const std::string &objectName)
{
    std::shared_ptr<const ReadSnapshot> snap = readSnapshot();
    // Exactly Store::get's decision ladder (and messages), served
    // from the snapshot instead of the live store.
    bool known = false;
    for (const api::ObjectInfo &info : snap->stored)
        known = known || info.name == objectName;
    if (!known)
        return api::Status::notFound(api::formatMessage(
            "no object named '%s'", objectName.c_str()));
    if (!snap->status.ok())
        return snap->status;
    if (!snap->decoded)
        return api::Status::dataLoss(api::formatMessage(
            "the channel defeated the decoder (%zu codewords failed, "
            "%zu columns erased); the directory is unrecoverable",
            snap->failedCodewords, snap->erasedColumns));
    if (!snap->exact)
        return api::Status::dataLoss(api::formatMessage(
            "the unit decoded with errors (%zu codewords failed); "
            "retrieveAll() exposes the partial recovery",
            snap->failedCodewords));
    for (const NamedFile &file : snap->files)
        if (file.name == objectName)
            return file.data;
    return api::Status::dataLoss(api::formatMessage(
        "object '%s' missing from the recovered directory",
        objectName.c_str()));
}

std::vector<api::ObjectInfo>
Tenant::list()
{
    std::lock_guard<std::mutex> lock(mu_);
    return store_->list();
}

api::Result<std::string>
Tenant::healthJson(bool *exact)
{
    std::shared_ptr<const HealthSnapshot> snap =
        std::atomic_load(&healthSnap_);
    uint64_t gen = generation_.load(std::memory_order_acquire);
    if (!snap || snap->generation != gen) {
        std::lock_guard<std::mutex> lock(mu_);
        snap = std::atomic_load(&healthSnap_);
        gen = generation_.load(std::memory_order_acquire);
        if (!snap || snap->generation != gen) {
            auto fresh = std::make_shared<HealthSnapshot>();
            fresh->generation = gen;
            api::Result<api::HealthReport> health = store_->health();
            if (health.ok()) {
                fresh->json = health->toJson();
                fresh->exact = health->exact;
            } else {
                fresh->status = health.status();
            }
            snap = fresh;
            std::atomic_store(
                &healthSnap_,
                std::shared_ptr<const HealthSnapshot>(snap));
        }
    }
    if (!snap->status.ok())
        return snap->status;
    if (exact != nullptr)
        *exact = snap->exact;
    return snap->json;
}

api::Result<api::ScrubReport>
Tenant::scrub(const api::ScrubOptions &options)
{
    std::lock_guard<std::mutex> lock(mu_);
    api::Result<api::ScrubReport> report = store_->scrub(options);
    if (report.ok() && report->repaired > 0) {
        dirty_ = true;
        generation_.fetch_add(1, std::memory_order_release);
    }
    return report;
}

api::Result<api::TrialSeries>
Tenant::trial(uint32_t trials, uint64_t seed)
{
    api::Future<api::Result<api::TrialSeries>> fut;
    {
        // Submission needs the lock (Store methods are not internally
        // synchronized); the batch itself runs against the job's own
        // simulator snapshot, so the lock is released while it runs.
        std::lock_guard<std::mutex> lock(mu_);
        api::TrialJob job;
        job.trialSeeds = drawTrialSeeds(seed, trials);
        job.threads = config_.threads;
        fut = store_->submit(job);
    }
    return fut.get();
}

api::Status
Tenant::save()
{
    std::lock_guard<std::mutex> lock(mu_);
    api::Status status = store_->save(poolPath_, true);
    if (status.ok())
        dirty_ = false;
    return status;
}

api::Status
Tenant::saveIfDirty()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_)
        return api::Status();
    api::Status status = store_->save(poolPath_, true);
    if (status.ok())
        dirty_ = false;
    return status;
}

// ---------------------------------------------------------- TenantRegistry

TenantRegistry::TenantRegistry(const TenantConfig &config)
    : config_(config)
{}

api::Result<Tenant *>
TenantRegistry::getOrCreate(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it != tenants_.end())
        return it->second.get();
    auto tenant = std::make_unique<Tenant>(name, config_);
    api::Status status = tenant->open();
    if (!status.ok())
        return status;
    Tenant *raw = tenant.get();
    tenants_.emplace(name, std::move(tenant));
    return raw;
}

api::Result<Tenant *>
TenantRegistry::find(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tenants_.find(name);
        if (it != tenants_.end())
            return it->second.get();
    }
    // Not in memory: a previous run's pool file still counts.
    if (!fileExists(config_.root + "/" + name + ".dnapool"))
        return api::Status::notFound(api::formatMessage(
            "no tenant named '%s'", name.c_str()));
    return getOrCreate(name);
}

api::Status
TenantRegistry::saveDirty()
{
    std::lock_guard<std::mutex> lock(mu_);
    api::Status first;
    for (auto &entry : tenants_) {
        api::Status status = entry.second->saveIfDirty();
        if (!status.ok() && first.ok())
            first = status;
    }
    return first;
}

} // namespace daemon
} // namespace dnastore

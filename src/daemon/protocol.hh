/**
 * @file
 * The `dnastored` wire protocol: length-prefixed, CRC-framed binary
 * request/response messages over a byte stream (localhost TCP).
 *
 * Framing (all integers little-endian, the util/byteio discipline):
 *
 *   0   4  magic "DSRV"
 *   4   4  payload length N (1 <= N <= kMaxFramePayload)
 *   8   4  CRC-32 over the payload bytes
 *   12  N  payload
 *
 * The CRC is verified BEFORE the payload is decoded — exactly the
 * `.dnapool` section contract — so a bit-flipped frame surfaces as a
 * clean protocol error, never as a misparsed request. A bad magic,
 * an oversized length, or a CRC mismatch poisons the *stream* (the
 * reader cannot resynchronize mid-junk), so the server answers with
 * one DATA_LOSS/INVALID_ARGUMENT error frame and closes the
 * connection; a well-framed payload that fails request decoding only
 * fails that request and keeps the connection.
 *
 * Request payload:
 *
 *   1   opcode (Op)
 *   2   tenant length  + bytes   (tenant namespace; "" only for Ping)
 *   ... op-specific fields (see encodeRequest)
 *
 * Response payload:
 *
 *   1   opcode echo (0xFF for protocol-level errors)
 *   4   wire status code (api/wire.hh)
 *   4   message length + bytes   (Status message; "" on OK)
 *   4   body length    + bytes   (op-specific result; "" on error)
 *
 * Every api::Status code maps onto the wire via statusCodeToWire, so
 * the façade's no-throw error contract extends across the socket.
 */

#ifndef DNASTORE_DAEMON_PROTOCOL_HH
#define DNASTORE_DAEMON_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"

namespace dnastore {
namespace daemon {

/** Frame magic "DSRV", little-endian. */
inline constexpr uint32_t kFrameMagic = 0x56525344u;

/** Frame header bytes (magic + length + payload CRC). */
inline constexpr size_t kFrameHeaderBytes = 12;

/**
 * Hard payload ceiling. The unit payload capacity tops out well
 * under a MiB at the auto-geometry scales, so anything larger is a
 * corrupted length field, not a real request.
 */
inline constexpr size_t kMaxFramePayload = 8u << 20;

/** Request opcodes. Values are wire contract; append only. */
enum class Op : uint8_t
{
    Ping = 1,   //!< Liveness probe; no tenant state touched.
    Put = 2,    //!< Add one object to the tenant's store.
    Get = 3,    //!< Retrieve one object through the decode path.
    List = 4,   //!< Directory of the tenant's objects.
    Health = 5, //!< Probe-decode health report (JSON body).
    Scrub = 6,  //!< Scrub the tenant's pool (JSON report body).
    Trial = 7,  //!< Monte-Carlo trial batch (per-trial successes).
    Save = 8,   //!< Persist the tenant's pool to disk now.
};

/** The echo opcode of a response to an undecodable frame. */
inline constexpr uint8_t kOpProtocolError = 0xFF;

/** One decoded request. Only the fields of its op are meaningful. */
struct Request
{
    Op op = Op::Ping;
    std::string tenant;

    // Put/Get.
    std::string name;
    std::vector<uint8_t> data; //!< Put payload.

    // Scrub.
    uint64_t minReads = 0;
    double minAgreement = 0.0;
    bool repairAll = false;

    // Trial.
    uint32_t trials = 0;
    uint64_t trialSeed = 0;
};

/** One decoded response. */
struct Response
{
    uint8_t op = kOpProtocolError; //!< Echo of the request op.
    uint32_t wireCode = 0;         //!< api/wire.hh status code.
    std::string message;           //!< Status message ("" on OK).
    std::vector<uint8_t> body;     //!< Op-specific result bytes.

    /** The response's Status, rebuilt from code + message. */
    api::Status status() const;
};

/** Wrap @p payload in a CRC-32 frame. */
std::vector<uint8_t> frame(const std::vector<uint8_t> &payload);

/** extractFrame outcome. */
enum class FrameStatus
{
    Ok,       //!< One whole frame extracted.
    NeedMore, //!< The buffer holds only a frame prefix so far.
    Bad,      //!< Magic/length/CRC failure; the stream is poisoned.
};

/**
 * Try to pull one frame off the front of @p buf. On Ok, @p payload
 * receives the verified payload and @p consumed the total frame
 * length to drop from the buffer. On Bad, @p error names the
 * failure ("bad frame magic", "frame payload CRC mismatch", ...).
 */
FrameStatus extractFrame(const std::vector<uint8_t> &buf,
                         std::vector<uint8_t> *payload,
                         size_t *consumed, std::string *error);

/** Serialize a request payload (frame it with frame()). */
std::vector<uint8_t> encodeRequest(const Request &request);

/**
 * Decode a request payload. False (with @p error naming the field)
 * on anything malformed: unknown op, truncated fields, a tenant
 * name that is not a single plain path component, oversized names.
 */
bool decodeRequest(const std::vector<uint8_t> &payload, Request *out,
                   std::string *error);

/** Serialize a response payload. */
std::vector<uint8_t> encodeResponse(const Response &response);

/** Decode a response payload (client side). */
bool decodeResponse(const std::vector<uint8_t> &payload, Response *out,
                    std::string *error);

/** A response carrying @p status and no body, echoing @p op. */
Response errorResponse(uint8_t op, const api::Status &status);

/**
 * The per-trial seed schedule of a Trial request: pre-drawn
 * deterministically from the request seed (splitmix64 stream), so
 * the daemon and a direct Store::submit(TrialJob) caller that uses
 * the same helper get bit-identical series.
 */
std::vector<uint64_t> drawTrialSeeds(uint64_t seed, size_t trials);

} // namespace daemon
} // namespace dnastore

#endif // DNASTORE_DAEMON_PROTOCOL_HH

#include "daemon/protocol.hh"

#include <cstring>

#include "api/wire.hh"
#include "pipeline/bundle.hh"
#include "util/byteio.hh"
#include "util/crc32.hh"
#include "util/rng.hh"

namespace dnastore {
namespace daemon {

namespace {

/** Tenant namespaces become `<root>/<tenant>.dnapool` paths, so the
 * same single-plain-path-component rule that blocks zip-slip object
 * names guards them. */
const char *
checkTenantName(const std::string &tenant)
{
    return FileBundle::checkName(tenant);
}

uint64_t
doubleBits(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v, "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

bool
knownOp(uint8_t op)
{
    return op >= uint8_t(Op::Ping) && op <= uint8_t(Op::Save);
}

bool
fail(std::string *error, const char *why)
{
    if (error != nullptr)
        *error = why;
    return false;
}

} // namespace

api::Status
Response::status() const
{
    return api::statusFromWire(wireCode, message);
}

std::vector<uint8_t>
frame(const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    w.u32(kFrameMagic);
    w.u32(uint32_t(payload.size()));
    w.u32(crc32(payload));
    w.bytes(payload);
    return w.take();
}

FrameStatus
extractFrame(const std::vector<uint8_t> &buf,
             std::vector<uint8_t> *payload, size_t *consumed,
             std::string *error)
{
    auto bad = [&](const char *why) {
        if (error != nullptr)
            *error = why;
        return FrameStatus::Bad;
    };
    if (buf.size() < kFrameHeaderBytes)
        return FrameStatus::NeedMore;
    ByteReader r(buf.data(), kFrameHeaderBytes);
    const uint32_t magic = r.u32();
    const uint32_t length = r.u32();
    const uint32_t crc = r.u32();
    if (magic != kFrameMagic)
        return bad("bad frame magic (not a dnastored peer?)");
    if (length == 0 || length > kMaxFramePayload)
        return bad("frame length outside [1, 8 MiB] "
                   "(corrupted length field)");
    if (buf.size() < kFrameHeaderBytes + length)
        return FrameStatus::NeedMore;
    const uint8_t *body = buf.data() + kFrameHeaderBytes;
    if (crc32(body, length) != crc)
        return bad("frame payload CRC mismatch (corrupted in flight)");
    payload->assign(body, body + length);
    *consumed = kFrameHeaderBytes + length;
    return FrameStatus::Ok;
}

std::vector<uint8_t>
encodeRequest(const Request &request)
{
    ByteWriter w;
    w.u8(uint8_t(request.op));
    w.u16(uint16_t(request.tenant.size()));
    w.str(request.tenant);
    switch (request.op) {
      case Op::Put:
        w.u16(uint16_t(request.name.size()));
        w.str(request.name);
        w.u32(uint32_t(request.data.size()));
        w.bytes(request.data);
        break;
      case Op::Get:
        w.u16(uint16_t(request.name.size()));
        w.str(request.name);
        break;
      case Op::Scrub:
        w.u64(request.minReads);
        w.u64(doubleBits(request.minAgreement));
        w.u8(request.repairAll ? 1 : 0);
        break;
      case Op::Trial:
        w.u32(request.trials);
        w.u64(request.trialSeed);
        break;
      case Op::Ping:
      case Op::List:
      case Op::Health:
      case Op::Save:
        break;
    }
    return w.take();
}

bool
decodeRequest(const std::vector<uint8_t> &payload, Request *out,
              std::string *error)
{
    ByteReader r(payload);
    const uint8_t op = r.u8();
    if (!r.ok())
        return fail(error, "request truncated before the opcode");
    if (!knownOp(op))
        return fail(error, "unknown request opcode");
    out->op = Op(op);
    out->tenant = r.str(r.u16());
    if (!r.ok())
        return fail(error, "request truncated in the tenant field");
    if (out->op != Op::Ping) {
        if (const char *why = checkTenantName(out->tenant))
            return fail(error, why);
    }
    switch (out->op) {
      case Op::Put:
        out->name = r.str(r.u16());
        out->data = r.vec(r.u32());
        break;
      case Op::Get:
        out->name = r.str(r.u16());
        break;
      case Op::Scrub:
        out->minReads = r.u64();
        out->minAgreement = bitsDouble(r.u64());
        out->repairAll = r.u8() != 0;
        break;
      case Op::Trial:
        out->trials = r.u32();
        out->trialSeed = r.u64();
        break;
      case Op::Ping:
      case Op::List:
      case Op::Health:
      case Op::Save:
        break;
    }
    if (!r.ok())
        return fail(error, "request truncated in the op fields");
    if (r.remaining() != 0)
        return fail(error, "trailing bytes after the request fields");
    return true;
}

std::vector<uint8_t>
encodeResponse(const Response &response)
{
    ByteWriter w;
    w.u8(response.op);
    w.u32(response.wireCode);
    w.u32(uint32_t(response.message.size()));
    w.str(response.message);
    w.u32(uint32_t(response.body.size()));
    w.bytes(response.body);
    return w.take();
}

bool
decodeResponse(const std::vector<uint8_t> &payload, Response *out,
               std::string *error)
{
    ByteReader r(payload);
    out->op = r.u8();
    out->wireCode = r.u32();
    out->message = r.str(r.u32());
    out->body = r.vec(r.u32());
    if (!r.ok())
        return fail(error, "response truncated");
    if (r.remaining() != 0)
        return fail(error, "trailing bytes after the response fields");
    return true;
}

Response
errorResponse(uint8_t op, const api::Status &status)
{
    Response response;
    response.op = op;
    response.wireCode = api::statusCodeToWire(status.code());
    response.message = status.message();
    return response;
}

std::vector<uint64_t>
drawTrialSeeds(uint64_t seed, size_t trials)
{
    // The Scenario Lab discipline: seeds are pre-drawn serially from
    // one stateless stream, so any fan-out schedule downstream is
    // invisible in the results.
    std::vector<uint64_t> seeds(trials);
    for (size_t i = 0; i < trials; ++i)
        seeds[i] = splitmix64Mix(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    return seeds;
}

} // namespace daemon
} // namespace dnastore

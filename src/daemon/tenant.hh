/**
 * @file
 * Per-tenant namespaces of the `dnastored` daemon.
 *
 * Each tenant is one `api::Store` backed by its own
 * `<root>/<tenant>.dnapool` file, a byte quota, and the snapshot
 * discipline that makes the store safe under concurrent clients:
 *
 *  - READS are lock-free against a shared immutable snapshot: the
 *    first get() after a mutation takes the writer lock once, runs
 *    retrieveAll() and captures the recovered objects plus the decode
 *    verdict into a ReadSnapshot published via atomic shared_ptr;
 *    every later get() serves from that snapshot without touching the
 *    Store (whose own methods are not internally synchronized).
 *    Health reports snapshot the same way.
 *
 *  - MUTATIONS (put/scrub/save) serialize through the tenant's writer
 *    lock and bump the generation counter, so stale snapshots are
 *    invalidated by generation mismatch, never by mutation-time
 *    bookkeeping — the PR 7 memo-invalidation pattern, one level up.
 *
 *  - PUT COALESCING: a put only appends to the store's FileBundle
 *    (cheap) — synthesis is deferred to the next snapshot build, so N
 *    small puts between reads share one FileBundle encode + one
 *    synthesis instead of N.
 *
 * Quotas ride the existing CAPACITY_EXCEEDED admission path: the
 * tenant's byte quota is checked before Store::put, whose own unit
 * capacity check still applies after it.
 */

#ifndef DNASTORE_DAEMON_TENANT_HH
#define DNASTORE_DAEMON_TENANT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hh"

namespace dnastore {
namespace daemon {

/** How new tenant stores are configured. */
struct TenantConfig
{
    std::string root;        //!< Directory holding the pool files.
    uint64_t quotaBytes = 0; //!< Per-tenant payload quota (0 = none).
    size_t threads = 1;      //!< Store decode threads.
    bool packedReadPools = false;
    double errorRate = 0.03; //!< Channel of newly created stores.
    size_t coverage = 8;
    uint64_t unitSeed = 20220618;
};

/** Immutable result of one retrieval pass, shared across readers. */
struct ReadSnapshot
{
    uint64_t generation = 0;
    api::Status status; //!< retrieveAll() failure, when not ok().
    bool decoded = false;
    bool exact = false;
    size_t failedCodewords = 0;
    size_t erasedColumns = 0;

    /** The manifest at snapshot time (name lookup for NotFound). */
    std::vector<api::ObjectInfo> stored;

    /** The recovered objects (empty when !decoded). */
    std::vector<NamedFile> files;
};

/** Immutable health probe result, shared across readers. */
struct HealthSnapshot
{
    uint64_t generation = 0;
    api::Status status;
    std::string json;
    bool exact = false;
};

/** One tenant: a Store, its pool path, quota, and snapshots. */
class Tenant
{
  public:
    Tenant(std::string name, const TenantConfig &config);

    /**
     * Open the backing store: from the tenant's `.dnapool` file when
     * one exists (a previous run's state), fresh otherwise. Called
     * once, under the registry lock, before the tenant is published.
     */
    api::Status open();

    const std::string &name() const { return name_; }
    const std::string &poolPath() const { return poolPath_; }

    /** Quota check + Store::put + generation bump, under the lock. */
    api::Status put(const std::string &objectName,
                    std::vector<uint8_t> data);

    /**
     * Serve one object from the current read snapshot (building it
     * first if stale). Result and error statuses are exactly
     * Store::get's on the same store state.
     */
    api::Result<std::vector<uint8_t>> get(const std::string &objectName);

    /** Directory of stored objects (insertion order). */
    std::vector<api::ObjectInfo> list();

    /** Health report JSON from the current health snapshot. */
    api::Result<std::string> healthJson(bool *exact);

    /** Synchronous scrub under the writer lock. */
    api::Result<api::ScrubReport> scrub(const api::ScrubOptions &options);

    /**
     * Run a Monte-Carlo trial batch. Submission serializes through
     * the writer lock; the fan-out itself runs on the job's
     * dispatcher thread against its own simulator snapshot, so
     * readers proceed while trials run.
     */
    api::Result<api::TrialSeries> trial(uint32_t trials, uint64_t seed);

    /** Persist to the pool path now (clears the dirty flag). */
    api::Status save();

    /** Save if mutations landed since the last save (drain path). */
    api::Status saveIfDirty();

  private:
    std::shared_ptr<const ReadSnapshot> readSnapshot();
    std::shared_ptr<const ReadSnapshot> rebuildReadSnapshotLocked(
        uint64_t generation);

    const std::string name_;
    const std::string poolPath_;
    const TenantConfig config_;

    /** Serializes mutations and snapshot rebuilds. */
    std::mutex mu_;
    std::optional<api::Store> store_; //!< Guarded by mu_.
    bool dirty_ = false;              //!< Guarded by mu_.

    /** Bumped (under mu_) by every successful mutation. */
    std::atomic<uint64_t> generation_{ 1 };

    /** Published snapshots (std::atomic_load/store access). */
    std::shared_ptr<const ReadSnapshot> readSnap_;
    std::shared_ptr<const HealthSnapshot> healthSnap_;
};

/** Name → Tenant map; tenants are created once and never removed. */
class TenantRegistry
{
  public:
    explicit TenantRegistry(const TenantConfig &config);

    /**
     * The named tenant, creating (and opening) it on first use.
     * A failed open is not cached: the error returns to the client
     * and a later request retries.
     */
    api::Result<Tenant *> getOrCreate(const std::string &name);

    /**
     * The named tenant only if it already exists in memory or has a
     * pool file on disk — read ops must not conjure empty tenants.
     */
    api::Result<Tenant *> find(const std::string &name);

    /** Drain path: persist every dirty tenant; first error wins. */
    api::Status saveDirty();

  private:
    const TenantConfig config_;
    std::mutex mu_;
    std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

} // namespace daemon
} // namespace dnastore

#endif // DNASTORE_DAEMON_TENANT_HH

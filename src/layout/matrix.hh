/**
 * @file
 * The Reed-Solomon encoding matrix of the DNA storage architecture.
 *
 * Following the paper's Figure 1: the unit of encoding/decoding is a
 * matrix of symbols in which every column is synthesized as one DNA
 * molecule and ECC codewords are laid across the matrix by a
 * CodewordMap (rows in the baseline, diagonals under Gini).
 */

#ifndef DNASTORE_LAYOUT_MATRIX_HH
#define DNASTORE_LAYOUT_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/** A dense rows x cols matrix of GF(2^m) symbols. */
class SymbolMatrix
{
  public:
    /** Create a zero-initialized matrix. */
    SymbolMatrix(size_t rows, size_t cols);

    /** Number of rows (symbols per molecule). */
    size_t rows() const { return rows_; }

    /** Number of columns (molecules per encoding unit). */
    size_t cols() const { return cols_; }

    /** Mutable element access (row-major). */
    uint32_t &
    at(size_t row, size_t col)
    {
        return data_[row * cols_ + col];
    }

    /** Element access. */
    uint32_t
    at(size_t row, size_t col) const
    {
        return data_[row * cols_ + col];
    }

    /** Copy out one column (the symbols of one molecule). */
    std::vector<uint32_t> column(size_t col) const;

    /** Overwrite one column. */
    void setColumn(size_t col, const std::vector<uint32_t> &values);

    /** Number of cells that differ from @p other (same shape only). */
    size_t diffCount(const SymbolMatrix &other) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<uint32_t> data_;
};

} // namespace dnastore

#endif // DNASTORE_LAYOUT_MATRIX_HH

/**
 * @file
 * Row reliability ranking for DnaMapper.
 *
 * After two-sided consensus the error probability is lowest at the two
 * ends of a molecule and highest in the middle (Figure 4), and the
 * ordering index occupies the very beginning. DnaMapper (Figure 9)
 * therefore ranks the matrix rows zig-zag from the outside in: the
 * last row is the most reliable data location, then the first, then
 * the second-to-last, then the second, and so on; the middle rows
 * come last. Crucially, only this *ranking* is needed — it is stable
 * across sequencing technologies even though the skew magnitude is not
 * (section 5.1).
 */

#ifndef DNASTORE_LAYOUT_ROW_RANK_HH
#define DNASTORE_LAYOUT_ROW_RANK_HH

#include <cstddef>
#include <vector>

namespace dnastore {

/**
 * Reliability ranking of matrix rows.
 *
 * @param rows Number of matrix rows S.
 * @return Permutation `order` of [0, S): order[r] is the row holding
 *         the r-th most reliable data class. order[0] = S-1 (last
 *         row), order[1] = 0, order[2] = S-2, order[3] = 1, ...
 */
std::vector<size_t> rowReliabilityOrder(size_t rows);

/**
 * Inverse ranking: rank[row] = reliability rank of that row
 * (0 = most reliable).
 */
std::vector<size_t> rowReliabilityRank(size_t rows);

} // namespace dnastore

#endif // DNASTORE_LAYOUT_ROW_RANK_HH

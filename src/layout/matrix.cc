#include "layout/matrix.hh"

#include <stdexcept>

namespace dnastore {

SymbolMatrix::SymbolMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0)
{
    if (rows == 0 || cols == 0)
        throw std::invalid_argument("SymbolMatrix: empty dimensions");
}

std::vector<uint32_t>
SymbolMatrix::column(size_t col) const
{
    if (col >= cols_)
        throw std::out_of_range("SymbolMatrix: column out of range");
    std::vector<uint32_t> out(rows_);
    for (size_t r = 0; r < rows_; ++r)
        out[r] = at(r, col);
    return out;
}

void
SymbolMatrix::setColumn(size_t col, const std::vector<uint32_t> &values)
{
    if (col >= cols_)
        throw std::out_of_range("SymbolMatrix: column out of range");
    if (values.size() != rows_)
        throw std::invalid_argument("SymbolMatrix: bad column height");
    for (size_t r = 0; r < rows_; ++r)
        at(r, col) = values[r];
}

size_t
SymbolMatrix::diffCount(const SymbolMatrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("SymbolMatrix: shape mismatch");
    size_t diff = 0;
    for (size_t i = 0; i < data_.size(); ++i)
        diff += (data_[i] != other.data_[i]);
    return diff;
}

} // namespace dnastore

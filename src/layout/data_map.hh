/**
 * @file
 * Data-to-matrix placement schemes.
 *
 * The data region of the encoding matrix is the first M columns (the
 * remaining E columns hold parity molecules created per codeword after
 * placement; see Figure 1). Two placements are provided:
 *
 *  - Baseline (Figure 1): symbols fill column by column, so each file
 *    chunk maps to one molecule, oblivious to the reliability skew.
 *  - Priority / DnaMapper (Figure 9): symbols arrive sorted from the
 *    most to the least reliability-demanding; slot p goes to row
 *    rowReliabilityOrder[p / M], column p % M, so the most demanding
 *    M symbols stripe across the most reliable row, and so on zig-zag
 *    towards the fragile middle rows.
 */

#ifndef DNASTORE_LAYOUT_DATA_MAP_HH
#define DNASTORE_LAYOUT_DATA_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "layout/codeword_map.hh"
#include "layout/matrix.hh"

namespace dnastore {

/** Placement policies for the data region. */
enum class DataPlacement
{
    Baseline, //!< Column-major file order (Figure 1).
    Priority, //!< Reliability-ranked zig-zag (Figure 9, DnaMapper).
};

/**
 * Place @p symbols into the data region (columns [0, data_cols)).
 *
 * @param m         Target matrix.
 * @param symbols   Exactly rows * data_cols symbols. For Priority
 *                  placement they must be sorted by descending
 *                  reliability need.
 * @param data_cols Number of data columns M.
 * @param placement Placement policy.
 */
void placeData(SymbolMatrix &m, const std::vector<uint32_t> &symbols,
               size_t data_cols, DataPlacement placement);

/**
 * Inverse of placeData: read the data region back into symbol order.
 */
std::vector<uint32_t> extractData(const SymbolMatrix &m, size_t data_cols,
                                  DataPlacement placement);

/**
 * The matrix cell of data slot @p p under a placement (exposed for
 * tests and for per-slot reliability accounting).
 */
MatrixPos dataSlotPosition(size_t p, size_t rows, size_t data_cols,
                           DataPlacement placement);

} // namespace dnastore

#endif // DNASTORE_LAYOUT_DATA_MAP_HH

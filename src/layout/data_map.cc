#include "layout/data_map.hh"

#include <stdexcept>

#include "layout/row_rank.hh"

namespace dnastore {

MatrixPos
dataSlotPosition(size_t p, size_t rows, size_t data_cols,
                 DataPlacement placement)
{
    if (p >= rows * data_cols)
        throw std::out_of_range("dataSlotPosition: slot out of range");
    switch (placement) {
      case DataPlacement::Baseline:
        // Column-major: fill molecule 0 top to bottom, then molecule 1.
        return { p % rows, p / rows };
      case DataPlacement::Priority: {
        static thread_local std::vector<size_t> cached_order;
        static thread_local size_t cached_rows = 0;
        if (cached_rows != rows) {
            cached_order = rowReliabilityOrder(rows);
            cached_rows = rows;
        }
        return { cached_order[p / data_cols], p % data_cols };
      }
    }
    throw std::logic_error("dataSlotPosition: bad placement");
}

void
placeData(SymbolMatrix &m, const std::vector<uint32_t> &symbols,
          size_t data_cols, DataPlacement placement)
{
    if (data_cols > m.cols())
        throw std::invalid_argument("placeData: data_cols > matrix cols");
    if (symbols.size() != m.rows() * data_cols)
        throw std::invalid_argument("placeData: bad symbol count");
    for (size_t p = 0; p < symbols.size(); ++p) {
        MatrixPos pos = dataSlotPosition(p, m.rows(), data_cols,
                                         placement);
        m.at(pos.row, pos.col) = symbols[p];
    }
}

std::vector<uint32_t>
extractData(const SymbolMatrix &m, size_t data_cols,
            DataPlacement placement)
{
    if (data_cols > m.cols())
        throw std::invalid_argument(
            "extractData: data_cols > matrix cols");
    std::vector<uint32_t> out(m.rows() * data_cols);
    for (size_t p = 0; p < out.size(); ++p) {
        MatrixPos pos = dataSlotPosition(p, m.rows(), data_cols,
                                         placement);
        out[p] = m.at(pos.row, pos.col);
    }
    return out;
}

} // namespace dnastore

#include "layout/uneven.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dnastore {

std::vector<size_t>
provisionUneven(const std::vector<double> &weights, size_t total_parity,
                size_t row_len, size_t min_parity)
{
    const size_t rows = weights.size();
    if (rows == 0)
        throw std::invalid_argument("provisionUneven: no rows");
    double sum = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument(
                "provisionUneven: negative weight");
        sum += w;
    }
    if (sum <= 0.0)
        throw std::invalid_argument("provisionUneven: zero total weight");
    const size_t max_parity = row_len - 1;
    if (total_parity < rows * min_parity ||
        total_parity > rows * max_parity) {
        throw std::invalid_argument(
            "provisionUneven: budget outside feasible range");
    }

    // Largest-remainder apportionment above the per-row floor.
    const size_t spread = total_parity - rows * min_parity;
    std::vector<size_t> parity(rows, min_parity);
    std::vector<std::pair<double, size_t>> remainders;
    size_t assigned = 0;
    for (size_t r = 0; r < rows; ++r) {
        double share = double(spread) * weights[r] / sum;
        size_t base = size_t(share);
        parity[r] += base;
        assigned += base;
        remainders.emplace_back(share - double(base), r);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (size_t i = 0; assigned < spread && i < remainders.size(); ++i) {
        ++parity[remainders[i].second];
        ++assigned;
    }

    // Clamp any row that overflowed its codeword and push the excess
    // to the rows with the highest weights that still have room.
    size_t excess = 0;
    for (size_t r = 0; r < rows; ++r) {
        if (parity[r] > max_parity) {
            excess += parity[r] - max_parity;
            parity[r] = max_parity;
        }
    }
    while (excess > 0) {
        size_t best = rows;
        double best_w = -1.0;
        for (size_t r = 0; r < rows; ++r) {
            if (parity[r] < max_parity && weights[r] > best_w) {
                best_w = weights[r];
                best = r;
            }
        }
        if (best == rows)
            throw std::logic_error("provisionUneven: cannot place budget");
        ++parity[best];
        --excess;
    }
    return parity;
}

std::vector<double>
syntheticSkewWeights(size_t rows, double peak_ratio)
{
    if (rows == 0)
        throw std::invalid_argument("syntheticSkewWeights: no rows");
    if (peak_ratio < 1.0)
        throw std::invalid_argument(
            "syntheticSkewWeights: peak_ratio must be >= 1");
    std::vector<double> w(rows);
    const double mid = double(rows - 1) / 2.0;
    for (size_t r = 0; r < rows; ++r) {
        // Raised-cosine bump peaking at the middle row.
        double x = mid > 0.0 ? (double(r) - mid) / mid : 0.0;
        double bump = 0.5 * (1.0 + std::cos(x * M_PI)); // 0 ends, 1 mid
        w[r] = 1.0 + (peak_ratio - 1.0) * bump;
    }
    return w;
}

} // namespace dnastore

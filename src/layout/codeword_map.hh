/**
 * @file
 * Codeword layouts: how ECC codewords are threaded through the matrix.
 *
 * The baseline architecture (Figure 1) makes each matrix row one
 * codeword, so all the errors that pile up in the middle symbols of
 * every molecule land in the same few codewords. Gini (section 4.2,
 * Figure 8) stripes each codeword diagonally so it cycles through all
 * row positions, spreading middle-of-molecule errors evenly over all
 * codewords while still touching every column exactly once (which
 * preserves the baseline's erasure protection: a lost molecule costs
 * each codeword exactly one symbol).
 */

#ifndef DNASTORE_LAYOUT_CODEWORD_MAP_HH
#define DNASTORE_LAYOUT_CODEWORD_MAP_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "layout/matrix.hh"

namespace dnastore {

/** A cell of the encoding matrix. */
struct MatrixPos
{
    size_t row;
    size_t col;

    bool
    operator==(const MatrixPos &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** Identifies a symbol within a codeword. */
struct CodewordPos
{
    size_t codeword; //!< Codeword index in [0, rows).
    size_t symbol;   //!< Symbol index within the codeword, in [0, cols).
};

/**
 * Abstract bijection between (codeword, symbol) pairs and matrix cells.
 *
 * Invariants every implementation must satisfy (property-tested):
 *  - there are exactly `rows` codewords of `cols` symbols each;
 *  - position() is a bijection onto the rows x cols cell grid;
 *  - every codeword visits every column exactly once (erasure safety).
 */
class CodewordMap
{
  public:
    virtual ~CodewordMap() = default;

    /** Number of codewords (= matrix rows). */
    size_t codewords() const { return rows_; }

    /** Symbols per codeword (= matrix columns). */
    size_t length() const { return cols_; }

    /** Matrix cell storing symbol @p t of codeword @p j. */
    virtual MatrixPos position(size_t j, size_t t) const = 0;

    /** Inverse of position(). */
    virtual CodewordPos locate(size_t row, size_t col) const = 0;

    /** Collect codeword @p j from the matrix. */
    std::vector<uint32_t> gather(const SymbolMatrix &m, size_t j) const;

    /** Collect codeword @p j into a reusable buffer (resized to fit). */
    void gatherInto(const SymbolMatrix &m, size_t j,
                    std::vector<uint32_t> &out) const;

    /** Write codeword @p j back into the matrix. */
    void scatter(SymbolMatrix &m, size_t j,
                 const std::vector<uint32_t> &symbols) const;

  protected:
    CodewordMap(size_t rows, size_t cols);

    size_t rows_;
    size_t cols_;
};

/** Baseline layout: codeword j is matrix row j (Figure 1). */
class BaselineMap : public CodewordMap
{
  public:
    BaselineMap(size_t rows, size_t cols);

    MatrixPos position(size_t j, size_t t) const override;
    CodewordPos locate(size_t row, size_t col) const override;
};

/**
 * Gini layout: codeword j occupies cell ((j + t) mod rows, t) for
 * symbol t — a diagonal stripe that wraps through all rows, advancing
 * one column per symbol (Figure 8a). Every codeword sees every column
 * once and every row position essentially cols/rows times.
 */
class GiniMap : public CodewordMap
{
  public:
    GiniMap(size_t rows, size_t cols);

    MatrixPos position(size_t j, size_t t) const override;
    CodewordPos locate(size_t row, size_t col) const override;
};

/**
 * Two-class Gini layout (Figure 8b): a set of reserved rows is kept as
 * plain row codewords (a separate, more reliable class when the
 * reserved rows are the outermost ones), while the remaining rows are
 * diagonally interleaved among themselves.
 *
 * Codeword indices [0, reserved.size()) are the reserved rows in the
 * given order; the rest are the interleaved class.
 */
class GiniClassMap : public CodewordMap
{
  public:
    /**
     * @param rows, cols Matrix shape.
     * @param reserved_rows Rows excluded from interleaving (each < rows,
     *        no duplicates, and strictly fewer than `rows` entries).
     */
    GiniClassMap(size_t rows, size_t cols,
                 const std::vector<size_t> &reserved_rows);

    MatrixPos position(size_t j, size_t t) const override;
    CodewordPos locate(size_t row, size_t col) const override;

    /** Number of reserved (non-interleaved) codewords. */
    size_t reservedCount() const { return reserved_.size(); }

  private:
    std::vector<size_t> reserved_;     // codeword index -> row
    std::vector<size_t> interleaved_;  // class-local index -> row
    std::vector<size_t> classOfRow_;   // row -> position in its class
    std::vector<bool> isReserved_;     // row -> reserved?
};

} // namespace dnastore

#endif // DNASTORE_LAYOUT_CODEWORD_MAP_HH

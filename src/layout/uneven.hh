/**
 * @file
 * Unequal error correction (the straw-man of section 4.1, Figure 7).
 *
 * Uneven ECC provisions a different amount of Reed-Solomon redundancy
 * per matrix row, proportional to an *assumed* skew profile: middle
 * rows (least reliable after two-sided consensus) get more parity,
 * outer rows less. The paper's argument — which the ablation bench
 * reproduces — is that the skew magnitude depends on coverage and
 * sequencing technology, neither of which is knowable at encoding
 * time, so any static provisioning is brittle: provisioned-for-N
 * redundancy fails when the data is read at N-1.
 */

#ifndef DNASTORE_LAYOUT_UNEVEN_HH
#define DNASTORE_LAYOUT_UNEVEN_HH

#include <cstddef>
#include <vector>

namespace dnastore {

/**
 * Split a total parity budget across rows proportionally to weights.
 *
 * @param weights      Per-row expected error weight (e.g., a measured
 *                     or assumed skew profile); must be non-negative
 *                     with a positive sum.
 * @param total_parity Total parity symbols to distribute (the same
 *                     budget the even scheme would spend: S * E).
 * @param row_len      Codeword length n of each row; each row receives
 *                     at least @p min_parity and at most row_len - 1.
 * @param min_parity   Floor per row (default 2).
 * @return Per-row parity counts summing to @p total_parity (up to
 *         rounding pushed into the largest-weight rows).
 */
std::vector<size_t> provisionUneven(const std::vector<double> &weights,
                                    size_t total_parity, size_t row_len,
                                    size_t min_parity = 2);

/**
 * A symmetric skew-profile template: weight grows from the ends
 * towards the middle following the shape of the two-sided consensus
 * error curve. @p peak_ratio is the middle-to-end weight ratio.
 */
std::vector<double> syntheticSkewWeights(size_t rows, double peak_ratio);

} // namespace dnastore

#endif // DNASTORE_LAYOUT_UNEVEN_HH

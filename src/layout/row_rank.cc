#include "layout/row_rank.hh"

namespace dnastore {

std::vector<size_t>
rowReliabilityOrder(size_t rows)
{
    std::vector<size_t> order;
    order.reserve(rows);
    size_t lo = 0, hi = rows;
    // The index sits before row 0, so the far end (last row) is the
    // most reliable *data* location; alternate ends inward.
    while (lo < hi) {
        order.push_back(--hi);
        if (lo < hi)
            order.push_back(lo++);
    }
    return order;
}

std::vector<size_t>
rowReliabilityRank(size_t rows)
{
    auto order = rowReliabilityOrder(rows);
    std::vector<size_t> rank(rows, 0);
    for (size_t r = 0; r < rows; ++r)
        rank[order[r]] = r;
    return rank;
}

} // namespace dnastore

#include "layout/codeword_map.hh"

#include <stdexcept>

namespace dnastore {

CodewordMap::CodewordMap(size_t rows, size_t cols)
    : rows_(rows), cols_(cols)
{
    if (rows == 0 || cols == 0)
        throw std::invalid_argument("CodewordMap: empty shape");
}

std::vector<uint32_t>
CodewordMap::gather(const SymbolMatrix &m, size_t j) const
{
    std::vector<uint32_t> out;
    gatherInto(m, j, out);
    return out;
}

void
CodewordMap::gatherInto(const SymbolMatrix &m, size_t j,
                        std::vector<uint32_t> &out) const
{
    out.resize(cols_);
    for (size_t t = 0; t < cols_; ++t) {
        MatrixPos p = position(j, t);
        out[t] = m.at(p.row, p.col);
    }
}

void
CodewordMap::scatter(SymbolMatrix &m, size_t j,
                     const std::vector<uint32_t> &symbols) const
{
    if (symbols.size() != cols_)
        throw std::invalid_argument("CodewordMap: bad codeword length");
    for (size_t t = 0; t < cols_; ++t) {
        MatrixPos p = position(j, t);
        m.at(p.row, p.col) = symbols[t];
    }
}

BaselineMap::BaselineMap(size_t rows, size_t cols)
    : CodewordMap(rows, cols)
{
}

MatrixPos
BaselineMap::position(size_t j, size_t t) const
{
    return { j, t };
}

CodewordPos
BaselineMap::locate(size_t row, size_t col) const
{
    return { row, col };
}

GiniMap::GiniMap(size_t rows, size_t cols)
    : CodewordMap(rows, cols)
{
}

MatrixPos
GiniMap::position(size_t j, size_t t) const
{
    return { (j + t) % rows_, t };
}

CodewordPos
GiniMap::locate(size_t row, size_t col) const
{
    return { (row + rows_ - (col % rows_)) % rows_, col };
}

GiniClassMap::GiniClassMap(size_t rows, size_t cols,
                           const std::vector<size_t> &reserved_rows)
    : CodewordMap(rows, cols), reserved_(reserved_rows),
      classOfRow_(rows, 0), isReserved_(rows, false)
{
    if (reserved_.size() >= rows)
        throw std::invalid_argument(
            "GiniClassMap: all rows reserved, nothing to interleave");
    for (size_t i = 0; i < reserved_.size(); ++i) {
        size_t row = reserved_[i];
        if (row >= rows)
            throw std::invalid_argument("GiniClassMap: bad reserved row");
        if (isReserved_[row])
            throw std::invalid_argument(
                "GiniClassMap: duplicate reserved row");
        isReserved_[row] = true;
        classOfRow_[row] = i;
    }
    for (size_t row = 0; row < rows; ++row) {
        if (!isReserved_[row]) {
            classOfRow_[row] = interleaved_.size();
            interleaved_.push_back(row);
        }
    }
}

MatrixPos
GiniClassMap::position(size_t j, size_t t) const
{
    if (j < reserved_.size())
        return { reserved_[j], t };
    size_t jj = j - reserved_.size();
    size_t n_inter = interleaved_.size();
    return { interleaved_[(jj + t) % n_inter], t };
}

CodewordPos
GiniClassMap::locate(size_t row, size_t col) const
{
    if (isReserved_[row])
        return { classOfRow_[row], col };
    size_t n_inter = interleaved_.size();
    size_t local = classOfRow_[row];
    size_t jj = (local + n_inter - (col % n_inter)) % n_inter;
    return { reserved_.size() + jj, col };
}

} // namespace dnastore

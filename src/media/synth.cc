#include "media/synth.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hh"

namespace dnastore {

namespace {

/** Bilinearly interpolated random lattice ("value noise"). */
class ValueNoise
{
  public:
    ValueNoise(size_t cells_x, size_t cells_y, Rng &rng)
        : cellsX_(cells_x), cellsY_(cells_y),
          lattice_((cells_x + 1) * (cells_y + 1))
    {
        for (auto &v : lattice_)
            v = rng.nextDouble();
    }

    /** Sample at normalized coordinates u, v in [0, 1]. */
    double
    sample(double u, double v) const
    {
        double fx = u * double(cellsX_);
        double fy = v * double(cellsY_);
        size_t x0 = std::min(size_t(fx), cellsX_ - 1);
        size_t y0 = std::min(size_t(fy), cellsY_ - 1);
        double tx = fx - double(x0);
        double ty = fy - double(y0);
        // Smoothstep for photo-like softness.
        tx = tx * tx * (3.0 - 2.0 * tx);
        ty = ty * ty * (3.0 - 2.0 * ty);
        double v00 = latticeAt(x0, y0), v10 = latticeAt(x0 + 1, y0);
        double v01 = latticeAt(x0, y0 + 1);
        double v11 = latticeAt(x0 + 1, y0 + 1);
        double top = v00 * (1 - tx) + v10 * tx;
        double bot = v01 * (1 - tx) + v11 * tx;
        return top * (1 - ty) + bot * ty;
    }

  private:
    double
    latticeAt(size_t x, size_t y) const
    {
        return lattice_[y * (cellsX_ + 1) + x];
    }

    size_t cellsX_;
    size_t cellsY_;
    std::vector<double> lattice_;
};

struct Blob
{
    double cx, cy, rx, ry, brightness;
};

} // namespace

Image
generateSyntheticPhoto(size_t width, size_t height, uint64_t seed)
{
    Rng rng(seed);
    Image img(width, height);

    // Scene illumination: a tilted linear gradient.
    double gx = rng.nextDouble() * 60.0 - 30.0;
    double gy = rng.nextDouble() * 60.0 - 30.0;
    double base = 90.0 + rng.nextDouble() * 70.0;

    // Soft elliptical "objects".
    std::vector<Blob> blobs;
    size_t n_blobs = 3 + rng.nextBelow(5);
    for (size_t i = 0; i < n_blobs; ++i) {
        blobs.push_back({ rng.nextDouble(), rng.nextDouble(),
                          0.08 + rng.nextDouble() * 0.25,
                          0.08 + rng.nextDouble() * 0.25,
                          rng.nextDouble() * 120.0 - 60.0 });
    }

    // Two octaves of value noise plus fine grain.
    ValueNoise coarse(6, 6, rng);
    ValueNoise fine(24, 24, rng);

    for (size_t y = 0; y < height; ++y) {
        double v = height > 1 ? double(y) / double(height - 1) : 0.0;
        for (size_t x = 0; x < width; ++x) {
            double u = width > 1 ? double(x) / double(width - 1) : 0.0;
            double val = base + gx * (u - 0.5) + gy * (v - 0.5);
            for (const Blob &b : blobs) {
                double dx = (u - b.cx) / b.rx;
                double dy = (v - b.cy) / b.ry;
                double d2 = dx * dx + dy * dy;
                if (d2 < 4.0)
                    val += b.brightness * std::exp(-d2);
            }
            val += (coarse.sample(u, v) - 0.5) * 50.0;
            val += (fine.sample(u, v) - 0.5) * 14.0;
            val += rng.nextGaussian() * 1.5; // sensor grain
            img.at(x, y) = uint8_t(std::clamp(val, 0.0, 255.0));
        }
    }
    return img;
}

Image
generateTexture(size_t width, size_t height, uint64_t seed)
{
    Rng rng(seed ^ 0xa5a5a5a5ULL);
    Image img(width, height);
    ValueNoise n1(16, 16, rng);
    ValueNoise n2(48, 48, rng);
    for (size_t y = 0; y < height; ++y) {
        double v = height > 1 ? double(y) / double(height - 1) : 0.0;
        for (size_t x = 0; x < width; ++x) {
            double u = width > 1 ? double(x) / double(width - 1) : 0.0;
            double val = 128.0 + (n1.sample(u, v) - 0.5) * 90.0 +
                (n2.sample(u, v) - 0.5) * 60.0 +
                rng.nextGaussian() * 6.0;
            img.at(x, y) = uint8_t(std::clamp(val, 0.0, 255.0));
        }
    }
    return img;
}

} // namespace dnastore

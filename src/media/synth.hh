/**
 * @file
 * Procedural generation of photo-like grayscale test images.
 *
 * The paper's workload is a set of 10 private photos of varying
 * resolution; as a substitution (see DESIGN.md) we generate synthetic
 * "photographs": smooth illumination gradients, soft elliptical
 * objects, and multi-octave value noise. What matters for the
 * evaluation is that the images compress like photos (energy
 * concentrated in low DCT frequencies, spatial correlation) so the
 * entropy-coded bitstream exhibits the same position-dependent
 * fragility.
 */

#ifndef DNASTORE_MEDIA_SYNTH_HH
#define DNASTORE_MEDIA_SYNTH_HH

#include <cstdint>

#include "media/image.hh"

namespace dnastore {

/**
 * Generate a deterministic photo-like image.
 *
 * @param width, height Image shape (any positive size).
 * @param seed          Distinct seeds give distinct scenes.
 */
Image generateSyntheticPhoto(size_t width, size_t height, uint64_t seed);

/**
 * Generate a flat-plus-noise "texture" image (higher entropy than a
 * photo; stresses the codec differently).
 */
Image generateTexture(size_t width, size_t height, uint64_t seed);

} // namespace dnastore

#endif // DNASTORE_MEDIA_SYNTH_HH

#include "media/ranking.hh"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "media/sjpeg.hh"
#include "util/bitio.hh"

namespace dnastore {

std::vector<double>
bitFlipQualityLoss(const std::vector<uint8_t> &file, size_t stride,
                   double cap_db)
{
    if (stride == 0)
        throw std::invalid_argument("bitFlipQualityLoss: zero stride");
    SjpegDecodeResult clean = sjpegDecode(file);
    if (!clean.complete)
        throw std::invalid_argument(
            "bitFlipQualityLoss: reference file does not decode");
    const Image &reference = clean.image;

    const size_t n_bits = file.size() * 8;
    std::vector<double> loss;
    loss.reserve(n_bits / stride + 1);
    std::vector<uint8_t> work = file;
    for (size_t bit = 0; bit < n_bits; bit += stride) {
        flipBit(work, bit);
        Image decoded = sjpegDecodeOrGray(work, reference.width(),
                                          reference.height());
        loss.push_back(qualityLossDb(reference, decoded, cap_db));
        flipBit(work, bit); // restore
    }
    return loss;
}

std::vector<size_t>
positionBitRanking(size_t n_bits)
{
    std::vector<size_t> rank(n_bits);
    std::iota(rank.begin(), rank.end(), size_t(0));
    return rank;
}

std::vector<size_t>
oracleBitRanking(const std::vector<uint8_t> &file, double cap_db)
{
    std::vector<double> loss = bitFlipQualityLoss(file, 1, cap_db);
    std::vector<size_t> rank(loss.size());
    std::iota(rank.begin(), rank.end(), size_t(0));
    std::stable_sort(rank.begin(), rank.end(),
                     [&loss](size_t a, size_t b) {
                         return loss[a] > loss[b];
                     });
    return rank;
}

} // namespace dnastore

/**
 * @file
 * Bit-priority ranking methods for image files.
 *
 * DnaMapper needs data bits ranked by how much damage their corruption
 * causes. Two rankings are provided, matching the paper:
 *
 *  - Position heuristic (section 5.3): earlier file bits matter more.
 *    It needs no metadata, never looks at the content (so it works on
 *    ciphertext), and costs nothing.
 *  - Oracle (section 7.3): flip every bit, decode, measure the PSNR
 *    loss, and sort. Exhaustive, content-dependent, storage-hungry —
 *    the upper-bound comparison of Figure 16.
 */

#ifndef DNASTORE_MEDIA_RANKING_HH
#define DNASTORE_MEDIA_RANKING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/**
 * PSNR quality loss caused by flipping each bit of an encoded image
 * file (the measurement behind Figure 10).
 *
 * The loss reference is the clean decode of @p file; a flip that makes
 * the file undecodable scores the full capped loss.
 *
 * @param file   An SJPG-encoded image.
 * @param stride Measure every stride-th bit (1 = all bits).
 * @param cap_db PSNR cap defining the loss scale.
 * @return loss[i] = quality loss (dB) of flipping bit i * stride.
 */
std::vector<double> bitFlipQualityLoss(const std::vector<uint8_t> &file,
                                       size_t stride = 1,
                                       double cap_db = 60.0);

/**
 * Position-based priority ranking: bit i has priority rank i.
 * Returned explicitly for symmetry with the oracle.
 */
std::vector<size_t> positionBitRanking(size_t n_bits);

/**
 * Oracle ranking: bits sorted by descending single-flip quality loss
 * (ties keep file order). Exhaustive: decodes the file once per bit.
 */
std::vector<size_t> oracleBitRanking(const std::vector<uint8_t> &file,
                                     double cap_db = 60.0);

} // namespace dnastore

#endif // DNASTORE_MEDIA_RANKING_HH

/**
 * @file
 * Canonical Huffman coding for the entropy stage of the image codec.
 *
 * Codes are built deterministically from static frequency tables that
 * both the encoder and decoder construct independently, so no code
 * table travels in the file. Like JPEG's entropy coder, the stream is
 * self-synchronizing only by luck: a single flipped bit usually
 * desynchronizes every symbol after it — which is precisely the
 * property the paper's bit-priority heuristic exploits (section 5.3).
 */

#ifndef DNASTORE_MEDIA_HUFFMAN_HH
#define DNASTORE_MEDIA_HUFFMAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitio.hh"

namespace dnastore {

/** A canonical Huffman code over symbols [0, n). */
class HuffmanCode
{
  public:
    /**
     * Build the code for the given symbol frequencies.
     *
     * @param freqs One positive weight per symbol (zero-frequency
     *              symbols still get a code so any symbol remains
     *              encodable); at least two symbols required.
     */
    explicit HuffmanCode(const std::vector<uint64_t> &freqs);

    /** Number of symbols. */
    size_t symbolCount() const { return lengths_.size(); }

    /** Code length in bits for a symbol. */
    int codeLength(size_t symbol) const { return lengths_[symbol]; }

    /** Append the code for @p symbol to the writer. */
    void encode(BitWriter &w, size_t symbol) const;

    /**
     * Decode the next symbol from the reader.
     *
     * @retval The symbol, or -1 if the bits do not form a valid code
     *         (including running off the end of the stream).
     */
    int decode(BitReader &r) const;

  private:
    std::vector<int> lengths_;           // per-symbol code length
    std::vector<uint32_t> codes_;        // per-symbol canonical code
    // Canonical decoding tables, indexed by code length.
    std::vector<uint32_t> firstCode_;    // smallest code of each length
    std::vector<uint32_t> firstIndex_;   // index of that code
    std::vector<uint32_t> countAtLen_;   // number of codes of length
    std::vector<uint32_t> symbolByRank_; // symbols sorted canonically
    int maxLen_ = 0;
};

} // namespace dnastore

#endif // DNASTORE_MEDIA_HUFFMAN_HH

#include "media/huffman.hh"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dnastore {

HuffmanCode::HuffmanCode(const std::vector<uint64_t> &freqs)
{
    const size_t n = freqs.size();
    if (n < 2)
        throw std::invalid_argument("HuffmanCode: need >= 2 symbols");

    // Standard Huffman tree construction over (weight, node) pairs;
    // zero frequencies are bumped to 1 so every symbol is encodable.
    struct Node
    {
        uint64_t weight;
        int left = -1, right = -1; // children, or -1 for leaves
        size_t symbol = 0;
    };
    std::vector<Node> nodes;
    nodes.reserve(2 * n);
    using HeapItem = std::pair<uint64_t, int>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<>> heap;
    for (size_t s = 0; s < n; ++s) {
        nodes.push_back({ std::max<uint64_t>(freqs[s], 1), -1, -1, s });
        heap.emplace(nodes.back().weight, int(s));
    }
    while (heap.size() > 1) {
        auto [wa, a] = heap.top();
        heap.pop();
        auto [wb, b] = heap.top();
        heap.pop();
        nodes.push_back({ wa + wb, a, b, 0 });
        heap.emplace(wa + wb, int(nodes.size() - 1));
    }

    // Depth-first walk to collect code lengths.
    lengths_.assign(n, 0);
    std::vector<std::pair<int, int>> stack{ { heap.top().second, 0 } };
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node &node = nodes[size_t(idx)];
        if (node.left < 0) {
            lengths_[node.symbol] = std::max(depth, 1);
        } else {
            stack.push_back({ node.left, depth + 1 });
            stack.push_back({ node.right, depth + 1 });
        }
    }

    // Canonicalize: sort symbols by (length, symbol), assign
    // consecutive codes per length.
    maxLen_ = *std::max_element(lengths_.begin(), lengths_.end());
    symbolByRank_.resize(n);
    for (size_t s = 0; s < n; ++s)
        symbolByRank_[s] = uint32_t(s);
    std::sort(symbolByRank_.begin(), symbolByRank_.end(),
              [this](uint32_t a, uint32_t b) {
                  if (lengths_[a] != lengths_[b])
                      return lengths_[a] < lengths_[b];
                  return a < b;
              });

    countAtLen_.assign(size_t(maxLen_) + 1, 0);
    for (size_t s = 0; s < n; ++s)
        ++countAtLen_[size_t(lengths_[s])];

    firstCode_.assign(size_t(maxLen_) + 1, 0);
    firstIndex_.assign(size_t(maxLen_) + 1, 0);
    uint32_t code = 0;
    uint32_t index = 0;
    for (int len = 1; len <= maxLen_; ++len) {
        firstCode_[size_t(len)] = code;
        firstIndex_[size_t(len)] = index;
        code = (code + countAtLen_[size_t(len)]) << 1;
        index += countAtLen_[size_t(len)];
    }

    codes_.assign(n, 0);
    for (size_t rank = 0; rank < n; ++rank) {
        uint32_t sym = symbolByRank_[rank];
        int len = lengths_[sym];
        codes_[sym] = firstCode_[size_t(len)] +
            (uint32_t(rank) - firstIndex_[size_t(len)]);
    }
}

void
HuffmanCode::encode(BitWriter &w, size_t symbol) const
{
    w.writeBits(codes_[symbol], lengths_[symbol]);
}

int
HuffmanCode::decode(BitReader &r) const
{
    uint32_t code = 0;
    for (int len = 1; len <= maxLen_; ++len) {
        code = (code << 1) | uint32_t(r.readBit());
        if (r.exhausted())
            return -1;
        uint32_t count = countAtLen_[size_t(len)];
        if (count > 0 && code >= firstCode_[size_t(len)] &&
            code < firstCode_[size_t(len)] + count) {
            uint32_t rank = firstIndex_[size_t(len)] +
                (code - firstCode_[size_t(len)]);
            return int(symbolByRank_[rank]);
        }
    }
    return -1; // no code of any length matches: corrupt stream
}

} // namespace dnastore

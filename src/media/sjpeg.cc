#include "media/sjpeg.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "media/dct.hh"
#include "media/huffman.hh"
#include "util/bitio.hh"

namespace dnastore {

namespace {

constexpr uint8_t kMagic[4] = { 'S', 'J', 'P', 'G' };
constexpr size_t kHeaderBytes = 4 + 2 + 2 + 1; // magic, w, h, quality

constexpr int kMaxCategory = 12;  // DC difference categories 0..12
constexpr int kEob = 0x00;        // AC end-of-block symbol (run=0,size=0)
constexpr int kZrl = 0xf0;        // AC 16-zero run symbol (run=15,size=0)

/** Static DC-category frequencies: small differences dominate. */
const HuffmanCode &
dcCode()
{
    static const HuffmanCode code([] {
        std::vector<uint64_t> f(kMaxCategory + 1);
        for (int cat = 0; cat <= kMaxCategory; ++cat)
            f[size_t(cat)] = uint64_t(1) << (kMaxCategory + 2 -
                                             std::min(cat, kMaxCategory));
        return f;
    }());
    return code;
}

/**
 * Static AC (run, size) frequencies: low run and small size dominate,
 * EOB is the most common symbol. Symbols are run * 16 + size with
 * size in [1, 10], plus EOB and ZRL.
 */
const HuffmanCode &
acCode()
{
    static const HuffmanCode code([] {
        std::vector<uint64_t> f(256, 0);
        f[kEob] = 1u << 20;
        f[kZrl] = 1u << 8;
        for (int run = 0; run <= 15; ++run) {
            for (int size = 1; size <= 10; ++size) {
                double w = double(1u << 18) /
                    ((run + 1.0) * (run + 1.0) * double(1u << size));
                f[size_t(run * 16 + size)] =
                    std::max<uint64_t>(1, uint64_t(w));
            }
        }
        return f;
    }());
    return code;
}

/** JPEG magnitude category: number of bits to represent |v|. */
int
category(int v)
{
    int a = std::abs(v);
    int bits = 0;
    while (a) {
        ++bits;
        a >>= 1;
    }
    return bits;
}

/** JPEG-style magnitude bits: negatives are stored one's-complement. */
uint32_t
magnitudeBits(int v, int cat)
{
    if (v >= 0)
        return uint32_t(v);
    return uint32_t(v + (1 << cat) - 1);
}

int
magnitudeValue(uint32_t bits, int cat)
{
    if (cat == 0)
        return 0;
    if (bits < (1u << (cat - 1)))
        return int(bits) - (1 << cat) + 1;
    return int(bits);
}

} // namespace

std::vector<uint8_t>
sjpegEncode(const Image &img, int quality)
{
    if (img.empty())
        throw std::invalid_argument("sjpegEncode: empty image");
    if (img.width() > 0xffff || img.height() > 0xffff)
        throw std::invalid_argument("sjpegEncode: image too large");

    const auto qtable = quantTable(quality);
    const auto &zz = zigzagOrder();
    const size_t bw = (img.width() + 7) / 8;
    const size_t bh = (img.height() + 7) / 8;

    BitWriter w;
    for (uint8_t m : kMagic)
        w.writeBits(m, 8);
    w.writeBits(uint32_t(img.width()), 16);
    w.writeBits(uint32_t(img.height()), 16);
    w.writeBits(uint32_t(quality), 8);

    int prev_dc = 0;
    for (size_t by = 0; by < bh; ++by) {
        for (size_t bx = 0; bx < bw; ++bx) {
            Block spatial{};
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    spatial[size_t(y * 8 + x)] =
                        double(img.atClamped(long(bx * 8 + size_t(x)),
                                             long(by * 8 + size_t(y)))) -
                        128.0;
            QuantBlock q = quantize(forwardDct(spatial), qtable);

            // DC difference.
            int diff = q[0] - prev_dc;
            prev_dc = q[0];
            int cat = category(diff);
            dcCode().encode(w, size_t(cat));
            if (cat > 0)
                w.writeBits(magnitudeBits(diff, cat), cat);

            // AC run-length coding in zig-zag order.
            int run = 0;
            for (int i = 1; i < 64; ++i) {
                int v = q[zz[size_t(i)]];
                if (v == 0) {
                    ++run;
                    continue;
                }
                while (run >= 16) {
                    acCode().encode(w, kZrl);
                    run -= 16;
                }
                int size = category(v);
                // Clamp to the representable size range (10 bits is
                // plenty for quality <= 100 coefficients).
                size = std::min(size, 10);
                int clamped = std::clamp(v, -(1 << size) + 1,
                                         (1 << size) - 1);
                acCode().encode(w, size_t(run * 16 + size));
                w.writeBits(magnitudeBits(clamped, size), size);
                run = 0;
            }
            if (run > 0)
                acCode().encode(w, kEob);
        }
    }
    return w.take();
}

SjpegDecodeResult
sjpegDecode(const std::vector<uint8_t> &bytes)
{
    SjpegDecodeResult result;
    if (bytes.size() < kHeaderBytes)
        return result;

    BitReader r(bytes);
    for (uint8_t m : kMagic)
        if (r.readBits(8) != m)
            return result;
    size_t width = r.readBits(16);
    size_t height = r.readBits(16);
    int quality = int(r.readBits(8));
    if (width == 0 || height == 0 || quality < 1 || quality > 100)
        return result;

    result.headerOk = true;
    result.image = Image(width, height, 128);
    const auto qtable = quantTable(quality);
    const auto &zz = zigzagOrder();
    const size_t bw = (width + 7) / 8;
    const size_t bh = (height + 7) / 8;
    result.blocksTotal = bw * bh;

    int prev_dc = 0;
    bool broken = false;
    for (size_t b = 0; b < bw * bh && !broken; ++b) {
        QuantBlock q{};
        int cat = dcCode().decode(r);
        if (cat < 0) {
            broken = true;
            break;
        }
        uint32_t mag = uint32_t(r.readBits(cat));
        if (r.exhausted()) {
            broken = true;
            break;
        }
        prev_dc += magnitudeValue(mag, cat);
        q[0] = int16_t(std::clamp(prev_dc, -32768, 32767));

        int i = 1;
        while (i < 64) {
            int sym = acCode().decode(r);
            if (sym < 0) {
                broken = true;
                break;
            }
            if (sym == kEob)
                break;
            int run = sym >> 4;
            int size = sym & 0xf;
            if (sym == kZrl) {
                i += 16;
                continue;
            }
            i += run;
            if (i >= 64) {
                // Run overflows the block: desynchronized stream.
                broken = true;
                break;
            }
            uint32_t bits = uint32_t(r.readBits(size));
            if (r.exhausted()) {
                broken = true;
                break;
            }
            q[zz[size_t(i)]] = int16_t(magnitudeValue(bits, size));
            ++i;
        }
        if (broken)
            break;

        Block spatial = inverseDct(dequantize(q, qtable));
        size_t bx = b % bw, by = b / bw;
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
                size_t px = bx * 8 + size_t(x);
                size_t py = by * 8 + size_t(y);
                if (px < width && py < height) {
                    result.image.at(px, py) = uint8_t(std::clamp(
                        spatial[size_t(y * 8 + x)] + 128.0, 0.0, 255.0));
                }
            }
        }
        ++result.blocksDecoded;
    }

    // Fill undecoded blocks by extending the last DC level, the
    // gray-smear failure mode of real JPEG decoders.
    if (result.blocksDecoded < result.blocksTotal) {
        uint8_t fill = uint8_t(std::clamp(prev_dc + 128, 0, 255));
        for (size_t b = result.blocksDecoded; b < bw * bh; ++b) {
            size_t bx = b % bw, by = b / bw;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    size_t px = bx * 8 + size_t(x);
                    size_t py = by * 8 + size_t(y);
                    if (px < width && py < height)
                        result.image.at(px, py) = fill;
                }
            }
        }
    }
    result.complete = (result.blocksDecoded == result.blocksTotal) &&
        result.headerOk;
    return result;
}

Image
sjpegDecodeOrGray(const std::vector<uint8_t> &bytes,
                  size_t expected_width, size_t expected_height)
{
    SjpegDecodeResult result = sjpegDecode(bytes);
    if (result.headerOk && result.image.width() == expected_width &&
        result.image.height() == expected_height) {
        return result.image;
    }
    return Image(expected_width, expected_height, 128);
}

} // namespace dnastore

#include "media/image.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace dnastore {

Image::Image(size_t width, size_t height, uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill)
{
}

uint8_t
Image::atClamped(long x, long y) const
{
    if (empty())
        return 0;
    long cx = std::clamp(x, 0L, long(width_) - 1);
    long cy = std::clamp(y, 0L, long(height_) - 1);
    return at(size_t(cx), size_t(cy));
}

double
psnr(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("psnr: shape mismatch");
    if (a.empty())
        throw std::invalid_argument("psnr: empty images");
    double sse = 0.0;
    const auto &pa = a.pixels();
    const auto &pb = b.pixels();
    for (size_t i = 0; i < pa.size(); ++i) {
        double d = double(pa[i]) - double(pb[i]);
        sse += d * d;
    }
    if (sse == 0.0)
        return std::numeric_limits<double>::infinity();
    double mse = sse / double(pa.size());
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double
psnrCapped(const Image &a, const Image &b, double cap_db)
{
    return std::min(psnr(a, b), cap_db);
}

double
qualityLossDb(const Image &reference, const Image &test, double cap_db)
{
    return cap_db - psnrCapped(reference, test, cap_db);
}

std::vector<uint8_t>
writePgm(const Image &img)
{
    char header[64];
    int n = std::snprintf(header, sizeof(header), "P5\n%zu %zu\n255\n",
                          img.width(), img.height());
    std::vector<uint8_t> out(header, header + n);
    out.insert(out.end(), img.pixels().begin(), img.pixels().end());
    return out;
}

void
savePgm(const Image &img, const std::string &path)
{
    auto bytes = writePgm(img);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("savePgm: cannot open " + path);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            std::streamsize(bytes.size()));
    if (!f)
        throw std::runtime_error("savePgm: write failed for " + path);
}

Image
readPgm(const std::vector<uint8_t> &bytes)
{
    size_t pos = 0;
    auto skip_space = [&]() {
        while (pos < bytes.size() &&
               (bytes[pos] == ' ' || bytes[pos] == '\n' ||
                bytes[pos] == '\t' || bytes[pos] == '\r')) {
            ++pos;
        }
    };
    auto read_int = [&]() -> size_t {
        skip_space();
        size_t v = 0;
        bool any = false;
        while (pos < bytes.size() && bytes[pos] >= '0' &&
               bytes[pos] <= '9') {
            v = v * 10 + size_t(bytes[pos] - '0');
            ++pos;
            any = true;
        }
        if (!any)
            throw std::invalid_argument("readPgm: bad integer");
        return v;
    };

    if (bytes.size() < 2 || bytes[0] != 'P' || bytes[1] != '5')
        throw std::invalid_argument("readPgm: not a P5 PGM");
    pos = 2;
    size_t w = read_int();
    size_t h = read_int();
    size_t maxval = read_int();
    if (maxval != 255)
        throw std::invalid_argument("readPgm: only maxval 255 supported");
    ++pos; // single whitespace after maxval
    if (bytes.size() - pos < w * h)
        throw std::invalid_argument("readPgm: truncated pixel data");
    Image img(w, h);
    std::copy(bytes.begin() + long(pos),
              bytes.begin() + long(pos + w * h), img.pixels().begin());
    return img;
}

} // namespace dnastore

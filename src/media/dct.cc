#include "media/dct.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnastore {

namespace {

/** cosTable[u][x] = cos((2x+1) u pi / 16) * scale(u). */
struct DctTables
{
    double basis[8][8];

    DctTables()
    {
        for (int u = 0; u < 8; ++u) {
            double scale = (u == 0) ? std::sqrt(1.0 / 8.0)
                                    : std::sqrt(2.0 / 8.0);
            for (int x = 0; x < 8; ++x) {
                basis[u][x] = scale *
                    std::cos((2.0 * x + 1.0) * u * M_PI / 16.0);
            }
        }
    }
};

const DctTables &
tables()
{
    static const DctTables t;
    return t;
}

/** Standard JPEG luminance quantization table (Annex K), raster order. */
constexpr uint16_t kBaseQuant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
};

} // namespace

Block
forwardDct(const Block &spatial)
{
    const auto &t = tables();
    // Separable transform: rows, then columns.
    Block tmp{};
    for (int y = 0; y < 8; ++y) {
        for (int u = 0; u < 8; ++u) {
            double acc = 0.0;
            for (int x = 0; x < 8; ++x)
                acc += spatial[y * 8 + x] * t.basis[u][x];
            tmp[y * 8 + u] = acc;
        }
    }
    Block out{};
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double acc = 0.0;
            for (int y = 0; y < 8; ++y)
                acc += tmp[y * 8 + u] * t.basis[v][y];
            out[v * 8 + u] = acc;
        }
    }
    return out;
}

Block
inverseDct(const Block &freq)
{
    const auto &t = tables();
    Block tmp{};
    for (int u = 0; u < 8; ++u) {
        for (int y = 0; y < 8; ++y) {
            double acc = 0.0;
            for (int v = 0; v < 8; ++v)
                acc += freq[v * 8 + u] * t.basis[v][y];
            tmp[y * 8 + u] = acc;
        }
    }
    Block out{};
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0.0;
            for (int u = 0; u < 8; ++u)
                acc += tmp[y * 8 + u] * t.basis[u][x];
            out[y * 8 + x] = acc;
        }
    }
    return out;
}

std::array<uint16_t, 64>
quantTable(int quality)
{
    if (quality < 1 || quality > 100)
        throw std::invalid_argument("quantTable: quality not in [1,100]");
    int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
    std::array<uint16_t, 64> out{};
    for (int i = 0; i < 64; ++i) {
        int q = (int(kBaseQuant[i]) * scale + 50) / 100;
        out[i] = uint16_t(std::clamp(q, 1, 255));
    }
    return out;
}

QuantBlock
quantize(const Block &freq, const std::array<uint16_t, 64> &table)
{
    QuantBlock out{};
    for (int i = 0; i < 64; ++i)
        out[i] = int16_t(std::lround(freq[i] / double(table[i])));
    return out;
}

Block
dequantize(const QuantBlock &q, const std::array<uint16_t, 64> &table)
{
    Block out{};
    for (int i = 0; i < 64; ++i)
        out[i] = double(q[i]) * double(table[i]);
    return out;
}

const std::array<uint8_t, 64> &
zigzagOrder()
{
    static const std::array<uint8_t, 64> order = [] {
        std::array<uint8_t, 64> o{};
        int idx = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) {
                // Walk the anti-diagonal upwards.
                for (int y = std::min(s, 7); y >= std::max(0, s - 7); --y)
                    o[idx++] = uint8_t(y * 8 + (s - y));
            } else {
                for (int y = std::max(0, s - 7); y <= std::min(s, 7); ++y)
                    o[idx++] = uint8_t(y * 8 + (s - y));
            }
        }
        return o;
    }();
    return order;
}

} // namespace dnastore

/**
 * @file
 * Grayscale image container, PSNR, and PGM I/O.
 */

#ifndef DNASTORE_MEDIA_IMAGE_HH
#define DNASTORE_MEDIA_IMAGE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore {

/** An 8-bit grayscale image. */
class Image
{
  public:
    Image() = default;

    /** Create a @p width x @p height image filled with @p fill. */
    Image(size_t width, size_t height, uint8_t fill = 0);

    size_t width() const { return width_; }
    size_t height() const { return height_; }
    size_t pixelCount() const { return width_ * height_; }
    bool empty() const { return pixelCount() == 0; }

    /** Pixel access (row-major). */
    uint8_t &
    at(size_t x, size_t y)
    {
        return pixels_[y * width_ + x];
    }

    uint8_t
    at(size_t x, size_t y) const
    {
        return pixels_[y * width_ + x];
    }

    /**
     * Clamped read: coordinates outside the image read the nearest
     * edge pixel (used for block padding).
     */
    uint8_t atClamped(long x, long y) const;

    /** Raw pixel buffer. */
    const std::vector<uint8_t> &pixels() const { return pixels_; }
    std::vector<uint8_t> &pixels() { return pixels_; }

  private:
    size_t width_ = 0;
    size_t height_ = 0;
    std::vector<uint8_t> pixels_;
};

/**
 * Peak signal-to-noise ratio between two same-shape images, in dB.
 * Identical images give +infinity.
 *
 * @throws std::invalid_argument on shape mismatch.
 */
double psnr(const Image &a, const Image &b);

/**
 * PSNR capped at @p cap_db, so "identical" compares as cap_db and
 * quality loss (cap - psnrCapped) is 0 for a perfect retrieval. The
 * paper treats up to 1 dB of loss as unnoticeable (section 7.2).
 */
double psnrCapped(const Image &a, const Image &b, double cap_db = 60.0);

/** Quality loss of @p test relative to @p reference, in dB (>= 0). */
double qualityLossDb(const Image &reference, const Image &test,
                     double cap_db = 60.0);

/** Serialize as binary PGM (P5). */
std::vector<uint8_t> writePgm(const Image &img);

/** Write a PGM file to disk. @throws std::runtime_error on failure. */
void savePgm(const Image &img, const std::string &path);

/**
 * Parse a binary PGM (P5) buffer.
 *
 * @throws std::invalid_argument on malformed input.
 */
Image readPgm(const std::vector<uint8_t> &bytes);

} // namespace dnastore

#endif // DNASTORE_MEDIA_IMAGE_HH

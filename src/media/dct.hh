/**
 * @file
 * 8x8 block DCT, quantization tables, and zig-zag scan.
 *
 * The transform stage of the JPEG-like codec: type-II DCT on level-
 * shifted 8x8 blocks, quantization by the standard JPEG luminance
 * table scaled with the conventional quality formula, and the JPEG
 * zig-zag coefficient order.
 */

#ifndef DNASTORE_MEDIA_DCT_HH
#define DNASTORE_MEDIA_DCT_HH

#include <array>
#include <cstdint>

namespace dnastore {

/** One 8x8 block of spatial samples or DCT coefficients. */
using Block = std::array<double, 64>;

/** Quantized coefficients of a block. */
using QuantBlock = std::array<int16_t, 64>;

/** Forward 8x8 DCT-II of a (level-shifted) spatial block. */
Block forwardDct(const Block &spatial);

/** Inverse 8x8 DCT (DCT-III) back to the spatial domain. */
Block inverseDct(const Block &freq);

/**
 * The quantization table for a quality setting in [1, 100], derived
 * from the standard JPEG luminance table with the usual scaling
 * (quality 50 = the table itself; higher is finer).
 */
std::array<uint16_t, 64> quantTable(int quality);

/** Quantize DCT coefficients (round to nearest). */
QuantBlock quantize(const Block &freq,
                    const std::array<uint16_t, 64> &table);

/** Dequantize back to coefficient space. */
Block dequantize(const QuantBlock &q,
                 const std::array<uint16_t, 64> &table);

/** Zig-zag scan order: zigzagOrder()[i] = raster index of scan slot i. */
const std::array<uint8_t, 64> &zigzagOrder();

} // namespace dnastore

#endif // DNASTORE_MEDIA_DCT_HH

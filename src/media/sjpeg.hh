/**
 * @file
 * SJPG: a self-contained JPEG-like grayscale image codec.
 *
 * Encoding pipeline per 8x8 block: level shift, DCT-II, quantization
 * (standard JPEG luminance table scaled by a quality factor), zig-zag
 * scan, then entropy coding with DC-difference categories and AC
 * (run, size) symbols under fixed canonical Huffman codes — the same
 * structure as baseline JPEG.
 *
 * Like JPEG, the format has the two properties the paper's bit
 * ranking heuristic rests on (section 5.3):
 *  - each block depends on previously decoded blocks (DC prediction);
 *  - entropy coding is error-prone: one corrupted bit usually makes
 *    every later bit undecodable.
 * The decoder is deliberately forgiving: on desynchronization it
 * keeps whatever decoded so far and fills the rest of the image by
 * extending the last DC value, which yields the "gray smear from the
 * corruption point" look of damaged JPEGs (Figure 15).
 */

#ifndef DNASTORE_MEDIA_SJPEG_HH
#define DNASTORE_MEDIA_SJPEG_HH

#include <cstdint>
#include <vector>

#include "media/image.hh"

namespace dnastore {

/** Result of a decode attempt. */
struct SjpegDecodeResult
{
    Image image;              //!< Best-effort decoded image.
    bool headerOk = false;    //!< Magic/dimensions parsed successfully.
    bool complete = false;    //!< All blocks decoded cleanly.
    size_t blocksDecoded = 0; //!< Blocks recovered before giving up.
    size_t blocksTotal = 0;   //!< Blocks in a clean encoding.
};

/**
 * Encode a grayscale image.
 *
 * @param img     Source image (any size >= 1x1).
 * @param quality JPEG-style quality in [1, 100].
 */
std::vector<uint8_t> sjpegEncode(const Image &img, int quality);

/**
 * Best-effort decode. Never throws on corrupt data; inspect
 * SjpegDecodeResult::complete. If the header is unusable the image
 * comes back empty and headerOk is false.
 */
SjpegDecodeResult sjpegDecode(const std::vector<uint8_t> &bytes);

/**
 * Decode and always return a comparable image: if the header is
 * damaged, returns a mid-gray image of the expected shape so quality
 * metrics remain computable (catastrophic loss).
 *
 * @param expected_width, expected_height Shape to fall back to.
 */
Image sjpegDecodeOrGray(const std::vector<uint8_t> &bytes,
                        size_t expected_width, size_t expected_height);

} // namespace dnastore

#endif // DNASTORE_MEDIA_SJPEG_HH

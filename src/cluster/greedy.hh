/**
 * @file
 * The greedy single-linkage-to-representative clustering core, shared
 * by the in-memory clusterer (cluster/clusterer.cc) and the streaming
 * engine (cluster/stream.hh).
 *
 * GreedyState consumes reads one at a time — join the closest
 * verified representative or open a new cluster — against a
 * sketch-filtered flat gram index (cluster/gram_index.hh), and owns
 * every scratch buffer the per-read loop needs, so the steady state
 * does no heap allocation. The consumer is deliberately ignorant of
 * where reads live: the in-memory path feeds it views into the
 * caller's vector, the streaming path feeds it records decoded from
 * spill segments, and identical consume sequences produce identical
 * clusterings — that equivalence is the streaming engine's
 * bit-identity contract.
 *
 * Everything here is an internal contract between the cluster/ TUs
 * (and their tests); the public surface stays cluster/clusterer.hh
 * and cluster/stream.hh.
 */

#ifndef DNASTORE_CLUSTER_GREEDY_HH
#define DNASTORE_CLUSTER_GREEDY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/clusterer.hh"
#include "cluster/gram_index.hh"
#include "dna/packed_strand.hh"

namespace dnastore {
namespace cluster_detail {

/** Cheap 64-bit mix for q-gram hashing. */
inline uint64_t
mixHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Sorted unique q-gram hashes of @p read into @p out, truncated to
 * the @p cap smallest (minhash); pass SIZE_MAX for all of them.
 * Reuses @p out's capacity — the reason it is an out-parameter.
 */
void signatureInto(StrandView read, size_t qgram, size_t cap,
                   std::vector<uint64_t> &out);

/**
 * The minimizer: the smallest q-gram hash of the read (0 when the
 * read is shorter than @p qgram). Content-only, so the shard a read
 * lands in never depends on thread count or read order.
 */
uint64_t minimizerOf(StrandView read, size_t qgram);

/**
 * Shard count: explicit, or sized from the read count at a ~512
 * reads-per-shard target (content-only — thread counts must never
 * enter, or the clustering would stop being bit-identical across
 * them; the target instead keeps the shard set comfortably wider
 * than any realistic thread count). No ceiling: a 10M-read soup gets
 * ~19k shards instead of serializing into 64 giant greedy passes.
 */
size_t resolveShardCount(const ClusterParams &params, size_t n_reads);

/**
 * Greedy clustering state: representatives, members, and the
 * sketch-filtered gram index they are found through.
 *
 * Representative strands are copied into an internal arena at
 * open-cluster time, so consumers may discard a read's storage the
 * moment consume() returns — the property the out-of-core shard pass
 * is built on.
 */
class GreedyState
{
  public:
    explicit GreedyState(const ClusterParams &params);

    /**
     * Assign @p read (global id @p global_id) to the best verified
     * cluster, opening one if nothing is within the distance limit.
     */
    void consume(size_t global_id, StrandView read);

    /**
     * The shard-merge step: join-or-open by @p rep exactly like
     * consume(), then fold the whole member list of the shard cluster
     * it represents into the target.
     */
    void consumeGroup(size_t rep_id, StrandView rep,
                      std::vector<size_t> &&members);

    size_t clusterCount() const { return members_.size(); }
    size_t representativeId(size_t c) const { return representative_[c]; }
    StrandView representativeStrand(size_t c) const
    {
        return repArena_.view(c);
    }
    std::vector<size_t> &membersOf(size_t c) { return members_[c]; }

    /**
     * Convert into the public Clustering shape: members ascending,
     * clusters ordered by smallest member. Consumes the state.
     */
    Clustering finalize(size_t n_reads);

  private:
    /** Candidate generation + verification; returns the cluster id. */
    size_t joinOrOpen(size_t rep_id, StrandView read);

    /** Candidates for sig_, ascending, via sketch + flat index. */
    void gatherCandidates();

    /** Smallest verified distance <= limit, earliest on ties. */
    size_t bestCluster(StrandView read, size_t limit);

    /** Open a new cluster represented by @p read, indexing its grams. */
    size_t openCluster(size_t rep_id, StrandView read);

    ClusterParams params_;
    size_t queryCap_;
    bool autoSketch_;

    GramIndex index_;
    GramSketch sketch_;
    StrandArena repArena_;
    std::vector<size_t> representative_;
    std::vector<std::vector<size_t>> members_;

    // Reusable per-read scratch: one signature/candidate/verify set
    // per state instead of a fresh vector per read.
    std::vector<uint64_t> sig_, fullSig_;
    std::vector<size_t> hits_, candidates_;
    std::vector<StrandView> reps_;
    std::vector<uint32_t> dists_;
};

} // namespace cluster_detail
} // namespace dnastore

#endif // DNASTORE_CLUSTER_GREEDY_HH

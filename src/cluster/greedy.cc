#include "cluster/greedy.hh"

#include <algorithm>
#include <limits>

#include "dna/strand.hh"

namespace dnastore {
namespace cluster_detail {

void
signatureInto(StrandView read, size_t qgram, size_t cap,
              std::vector<uint64_t> &out)
{
    out.clear();
    if (read.size() < qgram)
        return;
    uint64_t gram = 0;
    const uint64_t mask = (uint64_t(1) << (2 * qgram)) - 1;
    for (size_t i = 0; i < read.size(); ++i) {
        gram = ((gram << 2) | bitsFromBase(read[i])) & mask;
        if (i + 1 >= qgram)
            out.push_back(mixHash(gram));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (out.size() > cap)
        out.resize(cap);
}

uint64_t
minimizerOf(StrandView read, size_t qgram)
{
    if (read.size() < qgram)
        return 0;
    uint64_t gram = 0;
    const uint64_t mask = (uint64_t(1) << (2 * qgram)) - 1;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < read.size(); ++i) {
        gram = ((gram << 2) | bitsFromBase(read[i])) & mask;
        if (i + 1 >= qgram)
            best = std::min(best, mixHash(gram));
    }
    return best;
}

size_t
resolveShardCount(const ClusterParams &params, size_t n_reads)
{
    if (params.numShards != 0)
        return std::min(params.numShards,
                        std::max<size_t>(n_reads, 1));
    if (n_reads < 2048)
        return 1;
    return n_reads / 512;
}

GreedyState::GreedyState(const ClusterParams &params)
    : params_(params),
      queryCap_(std::max<size_t>(params.signatureSize, 24)),
      autoSketch_(params.sketchBits == 0)
{
    sketch_.reset(autoSketch_ ? 12 : params.sketchBits);
}

void
GreedyState::consume(size_t global_id, StrandView read)
{
    size_t cluster = joinOrOpen(global_id, read);
    members_[cluster].push_back(global_id);
}

void
GreedyState::consumeGroup(size_t rep_id, StrandView rep,
                          std::vector<size_t> &&members)
{
    size_t cluster = joinOrOpen(rep_id, rep);
    auto &dst = members_[cluster];
    if (dst.empty())
        dst = std::move(members);
    else
        dst.insert(dst.end(), members.begin(), members.end());
}

size_t
GreedyState::joinOrOpen(size_t rep_id, StrandView read)
{
    signatureInto(read, params_.qgram, queryCap_, sig_);
    gatherCandidates();
    size_t limit =
        size_t(params_.maxDistanceFrac * double(read.size()));
    size_t cluster = bestCluster(read, limit);
    if (cluster == size_t(-1))
        cluster = openCluster(rep_id, read);
    return cluster;
}

void
GreedyState::gatherCandidates()
{
    hits_.clear();
    candidates_.clear();
    for (uint64_t h : sig_) {
        // The sketch rejects grams no representative ever had —
        // the common case for a noisy read's corrupted grams —
        // before the index is probed at all.
        if (!sketch_.mayContain(GramIndex::fingerprint(h)))
            continue;
        index_.lookup(h, hits_);
    }
    std::sort(hits_.begin(), hits_.end());
    // One shared gram happens by chance; two is a strong hint (tiny
    // signatures keep the single-hit rule so short reads still join).
    for (size_t i = 0; i < hits_.size();) {
        size_t j = i;
        while (j < hits_.size() && hits_[j] == hits_[i])
            ++j;
        if (j - i >= 2 || sig_.size() < 4)
            candidates_.push_back(hits_[i]);
        i = j;
    }
}

size_t
GreedyState::bestCluster(StrandView read, size_t limit)
{
    const size_t k = candidates_.size();
    if (k == 0)
        return size_t(-1);
    reps_.clear();
    for (size_t cluster : candidates_)
        reps_.push_back(repArena_.view(cluster));
    dists_.resize(k);
    editDistanceBatch(read.data(), read.size(), reps_.data(), k,
                      dists_.data());
    size_t best_cluster = size_t(-1);
    size_t best_dist = size_t(-1);
    for (size_t i = 0; i < k; ++i) {
        if (dists_[i] <= limit && dists_[i] < best_dist) {
            best_dist = dists_[i];
            best_cluster = candidates_[i];
        }
    }
    return best_cluster;
}

size_t
GreedyState::openCluster(size_t rep_id, StrandView read)
{
    size_t cluster = members_.size();
    members_.emplace_back();
    representative_.push_back(rep_id);
    repArena_.append(read);
    // Index the representative with ALL its grams so future noisy
    // reads still find it.
    signatureInto(read, params_.qgram, size_t(-1), fullSig_);
    for (uint64_t h : fullSig_) {
        index_.insert(h, cluster);
        sketch_.insert(GramIndex::fingerprint(h));
    }
    // Auto-sized sketches track the index: past ~8 bits per key the
    // false-positive rate decays, so rebuild with headroom.
    if (autoSketch_ && index_.keyCount() * 8 > sketch_.bitCount())
        index_.rebuildSketch(
            sketch_, GramSketch::autoLog2Bits(index_.keyCount() * 2));
    return cluster;
}

Clustering
GreedyState::finalize(size_t n_reads)
{
    // Canonical ids: clusters ordered by smallest member, members
    // ascending. The single-shard greedy pass already produces this
    // order; the sharded merge needs the sort.
    for (auto &m : members_)
        std::sort(m.begin(), m.end());
    std::vector<size_t> order(members_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return members_[a].front() < members_[b].front();
    });

    Clustering out;
    out.clusterOf.assign(n_reads, 0);
    out.members.reserve(order.size());
    for (size_t cluster : order) {
        for (size_t r : members_[cluster])
            out.clusterOf[r] = out.members.size();
        out.members.push_back(std::move(members_[cluster]));
    }
    return out;
}

} // namespace cluster_detail
} // namespace dnastore

/**
 * @file
 * Read clustering by sequence similarity.
 *
 * Before consensus, sequenced reads must be grouped so that each
 * cluster holds the noisy copies of one original strand (paper
 * section 2.1, citing Rashtchian et al. [22]). The paper's evaluation
 * side-steps clustering ("our data is perfectly clustered"); this
 * module provides a real clusterer so the pipeline's perfect-
 * clustering assumption can itself be tested:
 *
 *  - a q-gram (k-mer) signature index buckets reads cheaply;
 *  - candidate pairs within a bucket are verified with banded edit
 *    distance against the cluster representative;
 *  - reads that match no representative start new clusters.
 *
 * This is the standard single-linkage-to-representative scheme used
 * by practical DNA-storage pipelines, linear-ish in the number of
 * reads for well-separated strands.
 */

#ifndef DNASTORE_CLUSTER_CLUSTERER_HH
#define DNASTORE_CLUSTER_CLUSTERER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/** Clustering tuning knobs. */
struct ClusterParams
{
    /** q-gram length for the signature index. */
    size_t qgram = 6;

    /** Number of minimizing q-gram hashes kept per read signature. */
    size_t signatureSize = 4;

    /**
     * Maximum edit distance (as a fraction of read length) to join an
     * existing cluster. 0.25 tolerates ~12% per-strand error rates on
     * both the representative and the read.
     */
    double maxDistanceFrac = 0.25;

    /** Band half-width for the banded edit distance, as a fraction. */
    double bandFrac = 0.3;
};

/** Result of clustering a read set. */
struct Clustering
{
    /** clusterOf[i] = cluster id of read i. */
    std::vector<size_t> clusterOf;

    /** Reads grouped by cluster id. */
    std::vector<std::vector<size_t>> members;

    /** Number of clusters formed. */
    size_t count() const { return members.size(); }
};

/**
 * Banded Levenshtein distance with early exit.
 *
 * @param limit Stop early and return limit + 1 once the distance
 *              provably exceeds @p limit.
 * @param band  Half-width of the diagonal band explored.
 */
size_t bandedEditDistance(const Strand &a, const Strand &b,
                          size_t limit, size_t band);

/** Cluster reads by similarity. Deterministic for a given input. */
Clustering clusterReads(const std::vector<Strand> &reads,
                        const ClusterParams &params = {});

/**
 * Score a clustering against ground truth (pairwise precision/recall).
 *
 * @param truth truth[i] = true cluster of read i.
 */
struct ClusterQuality
{
    double precision = 0.0; //!< P(same true cluster | same predicted).
    double recall = 0.0;    //!< P(same predicted | same true cluster).
};

ClusterQuality scoreClustering(const Clustering &clustering,
                               const std::vector<size_t> &truth);

} // namespace dnastore

#endif // DNASTORE_CLUSTER_CLUSTERER_HH

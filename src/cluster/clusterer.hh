/**
 * @file
 * Read clustering by sequence similarity.
 *
 * Before consensus, sequenced reads must be grouped so that each
 * cluster holds the noisy copies of one original strand (paper
 * section 2.1, citing Rashtchian et al. [22]). The paper's evaluation
 * side-steps clustering ("our data is perfectly clustered"); this
 * module provides a real clusterer so the pipeline's perfect-
 * clustering assumption can itself be tested:
 *
 *  - a q-gram (k-mer) signature index buckets reads cheaply;
 *  - candidate pairs within a bucket are verified with banded edit
 *    distance against the cluster representative;
 *  - reads that match no representative start new clusters.
 *
 * This is the standard single-linkage-to-representative scheme used
 * by practical DNA-storage pipelines, linear-ish in the number of
 * reads for well-separated strands.
 */

#ifndef DNASTORE_CLUSTER_CLUSTERER_HH
#define DNASTORE_CLUSTER_CLUSTERER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/** Clustering tuning knobs. */
struct ClusterParams
{
    /** q-gram length for the signature index. */
    size_t qgram = 6;

    /** Number of minimizing q-gram hashes kept per read signature. */
    size_t signatureSize = 4;

    /**
     * Maximum edit distance (as a fraction of read length) to join an
     * existing cluster. 0.25 tolerates ~12% per-strand error rates on
     * both the representative and the read. Candidates are verified
     * with exact batched edit distances (editDistanceBatch); the
     * standalone bandedEditDistance remains available for callers
     * that want the banded approximation.
     */
    double maxDistanceFrac = 0.25;

    /**
     * Worker threads for the sharded parallel mode: 1 = serial
     * (default), 0 = all hardware threads. The clustering produced is
     * bit-identical for every value — the shard structure depends
     * only on read content, never on the thread count.
     */
    size_t numThreads = 1;

    /**
     * Number of minimizer-signature shards clustered independently
     * before the deterministic shard merge. 0 (default) sizes the
     * shard set from the read count at a ~512 reads-per-shard target
     * (1 for small inputs, no ceiling — a 10M-read soup gets ~19k
     * shards); 1 forces the classic single-pass greedy clustering.
     */
    size_t numShards = 0;

    /**
     * Memory budget for the read soup, in bytes. 0 (default) keeps
     * everything in memory; any other value routes clusterReads
     * through the streaming engine (cluster/stream.hh), which buffers
     * 2-bit packed reads up to the budget and spills the excess to
     * CRC-checksummed shard segments under spillDir. The clustering
     * produced is bit-identical to the in-memory path. The budget
     * governs read buffering only — the representative index scales
     * with the cluster count, not the read count.
     */
    size_t memoryBudgetBytes = 0;

    /**
     * log2 bit-size of the Bloom sketch that pre-filters gram
     * lookups, in [10, 36]. 0 (default) sizes it automatically from
     * the representative count (~8 bits per indexed gram, ~5%
     * false-positive rate). Sketch sizing can never change a
     * clustering — false positives only cost a wasted index probe.
     */
    size_t sketchBits = 0;

    /**
     * Directory for streaming spill segments. Empty (default) uses
     * the system temporary directory. Only consulted when
     * memoryBudgetBytes forces an out-of-core run.
     */
    std::string spillDir;
};

/** Result of clustering a read set. */
struct Clustering
{
    /** clusterOf[i] = cluster id of read i. */
    std::vector<size_t> clusterOf;

    /** Reads grouped by cluster id. */
    std::vector<std::vector<size_t>> members;

    /** Number of clusters formed. */
    size_t count() const { return members.size(); }
};

/**
 * Banded Levenshtein distance with early exit.
 *
 * @param limit Stop early and return limit + 1 once the distance
 *              provably exceeds @p limit.
 * @param band  Half-width of the diagonal band explored.
 */
size_t bandedEditDistance(const Strand &a, const Strand &b,
                          size_t limit, size_t band);

/**
 * Cluster reads by similarity. Deterministic for a given input:
 * results are bit-identical for every ClusterParams::numThreads value
 * and for every SIMD dispatch tier (candidate verification uses exact
 * batched edit distances).
 *
 * With more than one shard, reads are partitioned by the minimizer
 * (smallest q-gram hash) of their content, each shard is clustered
 * independently — this is what parallelizes — and the per-shard
 * clusters are then merged serially in shard order by re-verifying
 * shard representatives against the merged set (Rashtchian et al.'s
 * distributed clustering shape). Cluster ids are canonicalized by
 * each cluster's smallest member index.
 */
Clustering clusterReads(const std::vector<Strand> &reads,
                        const ClusterParams &params = {});

/**
 * Score a clustering against ground truth (pairwise precision/recall).
 *
 * @param truth truth[i] = true cluster of read i.
 */
struct ClusterQuality
{
    double precision = 0.0; //!< P(same true cluster | same predicted).
    double recall = 0.0;    //!< P(same predicted | same true cluster).
};

ClusterQuality scoreClustering(const Clustering &clustering,
                               const std::vector<size_t> &truth);

} // namespace dnastore

#endif // DNASTORE_CLUSTER_CLUSTERER_HH

/**
 * @file
 * Flat sketch-and-index structures for q-gram candidate generation.
 *
 * Candidate generation is the clusterer's asymptotic wall: for every
 * read, each signature gram is looked up in an index of the grams of
 * all cluster representatives. The original node-based
 * `unordered_map<uint64_t, vector<size_t>>` costs a pointer chase and
 * an allocation per distinct gram; at millions of representatives the
 * index no longer fits in cache and every probe is a miss.
 *
 * Two flat replacements, borrowed in spirit from layout-into-bins
 * sketching (chopper-style k-mer count sketches with false-positive
 * correction):
 *
 *  - GramSketch: a tiny Bloom filter over the indexed gram hashes.
 *    Most query grams of a noisy read are corrupted and were never
 *    indexed; the sketch rejects them with one or two probes of a
 *    bit array that stays cache-resident, before the (larger) index
 *    is touched at all. False positives only cost a wasted index
 *    probe — they can never change a clustering.
 *  - GramIndex: open-addressing hash table in a single contiguous
 *    slot array (linear probing), with per-key posting chains kept in
 *    one contiguous entry pool. No per-key allocation, no node
 *    chasing; growth rehashes slots only, never the entries.
 *
 * Both structures are content-deterministic: the stored multiset of
 * (gram, cluster) pairs — and therefore every candidate list derived
 * from them — depends only on the insertion sequence, never on
 * capacity, probe order, or sketch sizing.
 */

#ifndef DNASTORE_CLUSTER_GRAM_INDEX_HH
#define DNASTORE_CLUSTER_GRAM_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/**
 * Bloom filter over 32-bit gram fingerprints (two probes per key).
 *
 * Sized by a log2 bit-count; autoLog2Bits() picks the size for an
 * expected key count at roughly 8 bits per key, which with two probes
 * gives a ~5% theoretical false-positive rate (estimatedFpr()).
 * mayContain() never returns false for an inserted fingerprint.
 */
class GramSketch
{
  public:
    GramSketch() = default;

    /** Clear and size the filter to 2^log2bits bits ([10, 36]). */
    void reset(size_t log2bits);

    /** log2 bit-count targeting ~8 bits per expected key. */
    static size_t autoLog2Bits(size_t expected_keys);

    void
    insert(uint32_t fp)
    {
        uint64_t h = spread(fp);
        bits_[(h & mask_) >> 6] |= uint64_t(1) << (h & 63);
        uint64_t g = h >> 32;
        bits_[(g & mask_) >> 6] |= uint64_t(1) << (g & 63);
    }

    bool
    mayContain(uint32_t fp) const
    {
        uint64_t h = spread(fp);
        if (!(bits_[(h & mask_) >> 6] >> (h & 63) & 1))
            return false;
        uint64_t g = h >> 32;
        return bits_[(g & mask_) >> 6] >> (g & 63) & 1;
    }

    bool empty() const { return bits_.empty(); }
    size_t bitCount() const { return bits_.size() * 64; }

    /**
     * Theoretical false-positive rate for @p keys inserted keys at
     * the current size: (1 - e^(-2k/m))^2 for two probes.
     */
    double estimatedFpr(size_t keys) const;

  private:
    /** 32 -> 64 bit avalanche so the two probe words are independent. */
    static uint64_t
    spread(uint32_t fp)
    {
        uint64_t x = fp;
        x *= 0x9e3779b97f4a7c15ULL;
        x ^= x >> 29;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 32;
        return x;
    }

    std::vector<uint64_t> bits_;
    uint64_t mask_ = 0; //!< bitCount - 1 (bitCount is a power of two).
};

/**
 * gram hash -> postings of cluster ids, in one slot array plus one
 * entry pool.
 *
 * Slots store a 32-bit fingerprint of the (already well-mixed) 64-bit
 * gram hash instead of the full key: a fingerprint collision merges
 * two posting chains, which only adds a spurious candidate that exact
 * verification rejects — never a wrong clustering — and halves the
 * slot footprint at the scales where the index dominates memory.
 *
 * Posting chains are newest-first; callers sort the gathered hits, so
 * per-chain order never reaches a result.
 */
class GramIndex
{
  public:
    GramIndex();

    void clear();

    /** Add @p cluster to @p key's postings (duplicates allowed). */
    void insert(uint64_t key, size_t cluster);

    /** Append every cluster posted under @p key to @p out. */
    void
    lookup(uint64_t key, std::vector<size_t> &out) const
    {
        size_t slot = probe(fingerprint(key));
        uint32_t e = heads_[slot];
        while (e != 0) {
            out.push_back(entries_[e - 1].cluster);
            e = entries_[e - 1].next;
        }
    }

    /** Distinct keys indexed (fingerprint-merged keys count once). */
    size_t keyCount() const { return keys_; }

    /** Total postings stored. */
    size_t entryCount() const { return entries_.size(); }

    /**
     * Rebuild @p sketch from every indexed fingerprint, sized for the
     * current key count (used when the sketch outgrows its bits).
     */
    void rebuildSketch(GramSketch &sketch, size_t log2bits) const;

    /** The fingerprint the slot array stores for @p key. */
    static uint32_t
    fingerprint(uint64_t key)
    {
        // Keys are mixed hashes already; fold the halves so the
        // fingerprint keeps entropy from all 64 bits.
        uint32_t fp = uint32_t(key ^ (key >> 32));
        // 0 marks never-written slots in fps_; remap.
        return fp == 0 ? 1u : fp;
    }

  private:
    /**
     * Slot holding @p fp's chain, or the first free slot of its probe
     * sequence (heads_[slot] == 0).
     */
    size_t
    probe(uint32_t fp) const
    {
        size_t slot = fp & mask_;
        while (heads_[slot] != 0 && fps_[slot] != fp)
            slot = (slot + 1) & mask_;
        return slot;
    }

    void grow();

    struct Entry
    {
        uint32_t cluster;
        uint32_t next; //!< 1-based index into entries_; 0 = end.
    };

    std::vector<uint32_t> fps_;   //!< Slot fingerprints.
    std::vector<uint32_t> heads_; //!< 1-based chain heads; 0 = empty.
    std::vector<Entry> entries_;  //!< Posting pool, insertion order.
    size_t keys_ = 0;             //!< Occupied slots.
    size_t mask_ = 0;             //!< Slot count - 1 (power of two).
};

} // namespace dnastore

#endif // DNASTORE_CLUSTER_GRAM_INDEX_HH

#include "cluster/gram_index.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnastore {

// ------------------------------------------------------------ GramSketch

void
GramSketch::reset(size_t log2bits)
{
    if (log2bits < 10 || log2bits > 36)
        throw std::invalid_argument(
            "GramSketch log2bits must be in [10, 36]");
    size_t words = (size_t(1) << log2bits) / 64;
    bits_.assign(words, 0);
    mask_ = (uint64_t(1) << log2bits) - 1;
}

size_t
GramSketch::autoLog2Bits(size_t expected_keys)
{
    // ~8 bits per key, power-of-two rounded up; floor keeps the
    // filter at least one cache line even for tiny indexes.
    size_t log2bits = 10;
    while (log2bits < 36 &&
           (size_t(1) << log2bits) < expected_keys * 8)
        ++log2bits;
    return log2bits;
}

double
GramSketch::estimatedFpr(size_t keys) const
{
    if (bits_.empty())
        return 1.0;
    double m = double(bitCount());
    double fill = 1.0 - std::exp(-2.0 * double(keys) / m);
    return fill * fill;
}

// ------------------------------------------------------------- GramIndex

namespace {
constexpr size_t kInitialSlots = 1024;
} // namespace

GramIndex::GramIndex()
{
    fps_.assign(kInitialSlots, 0);
    heads_.assign(kInitialSlots, 0);
    mask_ = kInitialSlots - 1;
}

void
GramIndex::clear()
{
    fps_.assign(kInitialSlots, 0);
    heads_.assign(kInitialSlots, 0);
    entries_.clear();
    keys_ = 0;
    mask_ = kInitialSlots - 1;
}

void
GramIndex::insert(uint64_t key, size_t cluster)
{
    if (cluster > 0xffffffffULL)
        throw std::length_error(
            "GramIndex cluster ids are limited to 2^32 - 1");
    if (entries_.size() >= 0xffffffffULL)
        throw std::length_error(
            "GramIndex posting pool is limited to 2^32 - 1 entries");
    // Keep probes short: grow at 1/2 load so the average successful
    // probe stays near two slots.
    if ((keys_ + 1) * 2 > mask_ + 1)
        grow();
    uint32_t fp = fingerprint(key);
    size_t slot = probe(fp);
    if (heads_[slot] == 0) {
        fps_[slot] = fp;
        ++keys_;
    }
    entries_.push_back({ uint32_t(cluster), heads_[slot] });
    heads_[slot] = uint32_t(entries_.size());
}

void
GramIndex::grow()
{
    size_t new_slots = (mask_ + 1) * 2;
    std::vector<uint32_t> fps(new_slots, 0);
    std::vector<uint32_t> heads(new_slots, 0);
    size_t new_mask = new_slots - 1;
    for (size_t s = 0; s <= mask_; ++s) {
        if (heads_[s] == 0)
            continue;
        size_t slot = fps_[s] & new_mask;
        while (heads[slot] != 0)
            slot = (slot + 1) & new_mask;
        fps[slot] = fps_[s];
        heads[slot] = heads_[s];
    }
    fps_ = std::move(fps);
    heads_ = std::move(heads);
    mask_ = new_mask;
}

void
GramIndex::rebuildSketch(GramSketch &sketch, size_t log2bits) const
{
    sketch.reset(log2bits);
    for (size_t s = 0; s <= mask_; ++s) {
        if (heads_[s] != 0)
            sketch.insert(fps_[s]);
    }
}

} // namespace dnastore

#include "cluster/stream.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "cluster/greedy.hh"
#include "util/crc32.hh"
#include "util/errno_text.hh"
#include "util/parallel.hh"
#include "util/simd.hh"

namespace dnastore {

double
StreamStats::gcFraction() const
{
    uint64_t total =
        baseCounts[0] + baseCounts[1] + baseCounts[2] + baseCounts[3];
    if (total == 0)
        return 0.0;
    return double(baseCounts[1] + baseCounts[2]) / double(total);
}

namespace cluster_detail {

void
appendSpillChunk(std::vector<uint8_t> &out, const uint8_t *payload,
                 size_t n)
{
    ByteWriter header;
    header.u32(kSpillMagic);
    header.u32(uint32_t(n));
    header.u32(crc32(payload, n));
    out.insert(out.end(), header.data().begin(), header.data().end());
    out.insert(out.end(), payload, payload + n);
}

namespace {

/** Largest chunk a writer emits; readers reject anything bigger. */
constexpr size_t kMaxChunkBytes = size_t(16) << 20;

/** Parse one chunk's records; bytes are CRC-verified already. */
void
parseRecords(const uint8_t *payload, size_t n,
             const std::function<void(uint64_t, uint64_t, size_t,
                                      const uint64_t *)> &record,
             std::vector<uint64_t> &words)
{
    ByteReader reader(payload, n);
    while (reader.ok() && reader.remaining() > 0) {
        uint64_t id = reader.u64();
        uint64_t minimizer = reader.u64();
        size_t len = reader.u32();
        size_t n_words = packedWordCount(len);
        words.resize(n_words);
        for (size_t w = 0; w < n_words; ++w)
            words[w] = reader.u64();
        if (!reader.ok())
            break;
        record(id, minimizer, len, words.data());
    }
    if (!reader.ok())
        throw SpillError(
            "spill chunk record ran past the chunk payload "
            "(corrupt record framing)");
}

} // namespace

void
parseSpillChunks(const uint8_t *bytes, size_t n,
                 const std::function<void(uint64_t, uint64_t, size_t,
                                          const uint64_t *)> &record)
{
    std::vector<uint64_t> words;
    ByteReader reader(bytes, n);
    while (reader.ok() && reader.remaining() > 0) {
        uint32_t magic = reader.u32();
        uint32_t len = reader.u32();
        uint32_t crc = reader.u32();
        if (!reader.ok())
            throw SpillError("truncated spill chunk header");
        if (magic != kSpillMagic)
            throw SpillError("bad spill chunk magic");
        if (len > kMaxChunkBytes)
            throw SpillError("implausible spill chunk length");
        if (len > reader.remaining())
            throw SpillError("truncated spill chunk payload");
        const uint8_t *payload = bytes + reader.pos();
        reader.skip(len);
        if (crc32(payload, len) != crc)
            throw SpillError("spill chunk CRC mismatch");
        parseRecords(payload, len, record, words);
    }
}

} // namespace cluster_detail

using cluster_detail::appendSpillChunk;
using cluster_detail::kSpillMagic;

namespace {

/** Seal buffered records into a CRC-framed chunk past this size. */
constexpr size_t kChunkTargetBytes = size_t(1) << 20;

std::string
defaultSpillDir()
{
    const char *env = std::getenv("TMPDIR");
    if (env != nullptr && env[0] != '\0')
        return env;
    return "/tmp";
}

uint64_t
nextInstanceTag()
{
    static std::atomic<uint64_t> counter{ 0 };
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

/**
 * One logical segment: an optional on-disk prefix (chunks flushed
 * under memory pressure) followed by sealed in-memory chunks and the
 * currently-open record buffer. Readers see disk chunks first, then
 * memory chunks — exactly the append order.
 */
struct StreamingClusterer::Segment
{
    std::string path;            //!< Empty until first spill.
    std::FILE *file = nullptr;   //!< Open read/write once spilled.
    size_t fileBytes = 0;        //!< Chunk bytes flushed to disk.
    std::vector<uint8_t> chunks; //!< Sealed, CRC-framed chunks.
    ByteWriter open;             //!< Records of the unsealed chunk.
};

/** What survives a shard's greedy pass into the serial merge. */
struct StreamingClusterer::ShardResult
{
    std::vector<size_t> repIds;
    StrandArena reps;
    std::vector<std::vector<size_t>> members;
};

StreamingClusterer::StreamingClusterer(const ClusterParams &params)
    : params_(params),
      spillDir_(params.spillDir.empty() ? defaultSpillDir()
                                        : params.spillDir),
      instanceTag_(nextInstanceTag()),
      log_(std::make_unique<Segment>())
{
    if (params.qgram < 1 || params.qgram > 31)
        throw std::invalid_argument(
            "ClusterParams::qgram must be in [1, 31]");
}

StreamingClusterer::~StreamingClusterer()
{
    if (log_)
        releaseSegment(*log_);
}

void
StreamingClusterer::appendRecord(Segment &seg, uint64_t id,
                                 uint64_t minimizer, StrandView read)
{
    size_t before = seg.open.size();
    seg.open.u64(id);
    seg.open.u64(minimizer);
    seg.open.u32(uint32_t(read.size()));
    size_t n_words = packedWordCount(read.size());
    packScratch_.resize(n_words);
    packBases(read.data(), read.size(), packScratch_.data());
    for (size_t w = 0; w < n_words; ++w)
        seg.open.u64(packScratch_[w]);
    bufferedBytes_ += seg.open.size() - before;
    stats_.peakBufferBytes =
        std::max(stats_.peakBufferBytes, bufferedBytes_);
    if (seg.open.size() >= kChunkTargetBytes)
        sealChunk(seg);
}

void
StreamingClusterer::sealChunk(Segment &seg)
{
    if (seg.open.size() == 0)
        return;
    std::vector<uint8_t> payload = seg.open.take();
    // Framing adds the 12-byte header; budget accounting follows the
    // buffered bytes wherever they live.
    bufferedBytes_ += 12;
    appendSpillChunk(seg.chunks, payload.data(), payload.size());
    seg.open = ByteWriter();
}

void
StreamingClusterer::spillToDisk(Segment &seg)
{
    sealChunk(seg);
    if (seg.chunks.empty())
        return;
    if (seg.file == nullptr) {
        seg.path = spillDir_ + "/dnastream-" +
            std::to_string(getpid()) + "-" +
            std::to_string(instanceTag_) + "-" +
            std::to_string(reinterpret_cast<uintptr_t>(&seg)) +
            ".spill";
        seg.file = std::fopen(seg.path.c_str(), "w+b");
        if (seg.file == nullptr)
            throw SpillError("cannot create spill segment " +
                             seg.path + ": " + errnoText(errno));
    }
    if (std::fwrite(seg.chunks.data(), 1, seg.chunks.size(),
                    seg.file) != seg.chunks.size())
        throw SpillError("short write to spill segment " + seg.path);
    seg.fileBytes += seg.chunks.size();
    stats_.spilledBytes += seg.chunks.size();
    ++stats_.spillChunks;
    bufferedBytes_ -= seg.chunks.size();
    seg.chunks.clear();
    seg.chunks.shrink_to_fit();
}

void
StreamingClusterer::enforceBudget(std::vector<Segment> &segs)
{
    if (params_.memoryBudgetBytes == 0 ||
        bufferedBytes_ <= params_.memoryBudgetBytes)
        return;
    // Deterministic and simple: flush every segment with sealed or
    // open bytes. The schedule can never change a clustering — only
    // where the same bytes wait.
    for (auto &seg : segs)
        spillToDisk(seg);
}

void
StreamingClusterer::releaseSegment(Segment &seg)
{
    if (seg.file != nullptr) {
        std::fclose(seg.file);
        seg.file = nullptr;
    }
    if (!seg.path.empty()) {
        std::remove(seg.path.c_str());
        seg.path.clear();
    }
    bufferedBytes_ -= seg.chunks.size() + seg.open.size();
    seg.chunks.clear();
    seg.chunks.shrink_to_fit();
    seg.open = ByteWriter();
    seg.fileBytes = 0;
}

void
StreamingClusterer::forEachRecord(
    Segment &seg,
    const std::function<void(uint64_t, uint64_t, size_t,
                             const uint64_t *)> &record)
{
    sealChunk(seg);
    if (seg.file != nullptr) {
        if (std::fflush(seg.file) != 0)
            throw SpillError("cannot flush spill segment " +
                             seg.path);
        if (std::fseek(seg.file, 0, SEEK_SET) != 0)
            throw SpillError("cannot rewind spill segment " +
                             seg.path);
        // Bounded read-back: one CRC-framed chunk at a time.
        std::vector<uint8_t> header(12), chunk;
        size_t consumed = 0;
        while (consumed < seg.fileBytes) {
            if (std::fread(header.data(), 1, 12, seg.file) != 12)
                throw SpillError("truncated spill chunk header in " +
                                 seg.path);
            ByteReader hr(header.data(), header.size());
            hr.skip(4); // magic, re-verified by parseSpillChunks
            uint32_t len = hr.u32();
            if (len > cluster_detail::kMaxChunkBytes * 2)
                throw SpillError(
                    "implausible spill chunk length in " + seg.path);
            chunk.resize(12 + len);
            std::memcpy(chunk.data(), header.data(), 12);
            if (std::fread(chunk.data() + 12, 1, len, seg.file) !=
                len)
                throw SpillError("truncated spill chunk in " +
                                 seg.path);
            cluster_detail::parseSpillChunks(chunk.data(),
                                             chunk.size(), record);
            consumed += 12 + len;
        }
    }
    cluster_detail::parseSpillChunks(seg.chunks.data(),
                                     seg.chunks.size(), record);
}

void
StreamingClusterer::add(StrandView read)
{
    if (finished_)
        throw std::logic_error(
            "StreamingClusterer::add after finish");
    uint64_t id = stats_.reads++;
    uint64_t minimizer =
        cluster_detail::minimizerOf(read, params_.qgram);
    // Soup composition through the SIMD histogram kernel; per-read
    // 32-bit lanes, accumulated into 64-bit totals so 100M+ read
    // soups cannot overflow.
    uint32_t counts[4] = { 0, 0, 0, 0 };
    simd::histogram4(reinterpret_cast<const uint8_t *>(read.data()),
                     read.size(), counts);
    for (int b = 0; b < 4; ++b)
        stats_.baseCounts[b] += counts[b];
    appendRecord(*log_, id, minimizer, read);
    if (params_.memoryBudgetBytes != 0 &&
        bufferedBytes_ > params_.memoryBudgetBytes)
        spillToDisk(*log_);
}

Clustering
StreamingClusterer::finish()
{
    if (finished_)
        throw std::logic_error(
            "StreamingClusterer::finish called twice");
    finished_ = true;

    using cluster_detail::GreedyState;
    const size_t n = stats_.reads;
    const size_t shards =
        cluster_detail::resolveShardCount(params_, n);
    stats_.shards = shards;

    Strand unpacked;
    if (shards <= 1) {
        GreedyState state(params_);
        forEachRecord(*log_, [&](uint64_t id, uint64_t, size_t len,
                                 const uint64_t *words) {
            unpacked.resize(len);
            unpackBases(words, len, unpacked.data());
            state.consume(size_t(id), unpacked);
        });
        releaseSegment(*log_);
        return state.finalize(n);
    }

    // ---- Shuffle: stream the log into per-shard segments. Records
    // arrive in ingest (global-id) order and appends preserve it, so
    // every shard segment is id-ascending without sorting.
    std::vector<Segment> shard_segs(shards);
    forEachRecord(*log_, [&](uint64_t id, uint64_t minimizer,
                             size_t len, const uint64_t *words) {
        Segment &seg = shard_segs[minimizer % shards];
        size_t before = seg.open.size();
        seg.open.u64(id);
        seg.open.u64(minimizer);
        seg.open.u32(uint32_t(len));
        size_t n_words = packedWordCount(len);
        for (size_t w = 0; w < n_words; ++w)
            seg.open.u64(words[w]);
        bufferedBytes_ += seg.open.size() - before;
        stats_.peakBufferBytes =
            std::max(stats_.peakBufferBytes, bufferedBytes_);
        if (seg.open.size() >= kChunkTargetBytes)
            sealChunk(seg);
        enforceBudget(shard_segs);
    });
    releaseSegment(*log_);

    // Seal every shard's open chunk here, while still single-threaded:
    // sealChunk accounts into bufferedBytes_, which the concurrent
    // shard workers below must never touch. After this loop the
    // sealChunk call inside forEachRecord is a no-op for every shard,
    // so the workers read purely per-shard state.
    for (auto &seg : shard_segs)
        sealChunk(seg);

    // ---- Cluster each shard independently (the parallel part),
    // keeping only what the merge needs: representative ids +
    // strands and member lists. Shard segments are released the
    // moment their greedy pass ends; they deliberately skip
    // releaseSegment, which would also write shared accounting.
    std::vector<ShardResult> results(shards);
    parallelFor(shards, params_.numThreads, [&](size_t s) {
        GreedyState state(params_);
        Strand local;
        forEachRecord(shard_segs[s],
                      [&](uint64_t id, uint64_t, size_t len,
                          const uint64_t *words) {
                          local.resize(len);
                          unpackBases(words, len, local.data());
                          state.consume(size_t(id), local);
                      });
        ShardResult &out = results[s];
        size_t clusters = state.clusterCount();
        out.repIds.reserve(clusters);
        out.members.reserve(clusters);
        for (size_t c = 0; c < clusters; ++c) {
            out.repIds.push_back(state.representativeId(c));
            out.reps.append(state.representativeStrand(c));
            out.members.push_back(std::move(state.membersOf(c)));
        }
        if (shard_segs[s].file != nullptr) {
            std::fclose(shard_segs[s].file);
            shard_segs[s].file = nullptr;
            std::remove(shard_segs[s].path.c_str());
            shard_segs[s].path.clear();
        }
        shard_segs[s].chunks.clear();
        shard_segs[s].chunks.shrink_to_fit();
    });
    shard_segs.clear();

    // ---- Serial deterministic merge, shard-major — identical to
    // the in-memory clusterer's, so spill schedules, thread counts,
    // and SIMD tiers can never reach the result.
    GreedyState merged(params_);
    for (size_t s = 0; s < shards; ++s) {
        ShardResult &local = results[s];
        for (size_t c = 0; c < local.repIds.size(); ++c)
            merged.consumeGroup(local.repIds[c], local.reps.view(c),
                                std::move(local.members[c]));
        local = ShardResult();
    }
    return merged.finalize(n);
}

Clustering
clusterReadsStreaming(const std::vector<Strand> &reads,
                      const ClusterParams &params)
{
    StreamingClusterer engine(params);
    for (const Strand &read : reads)
        engine.add(read);
    return engine.finish();
}

} // namespace dnastore

/**
 * @file
 * Streaming, bounded-memory read clustering.
 *
 * clusterReads assumes the whole read soup fits in RAM as a
 * std::vector<Strand>; at tens of millions of reads that is the
 * pipeline's asymptotic wall. StreamingClusterer ingests reads one at
 * a time, keeps them 2-bit packed in CRC-32-checksummed segments, and
 * spills to disk whenever the configured memory budget is exceeded —
 * so a 10M+ read soup clusters within a fixed buffer budget on a
 * laptop.
 *
 * Three passes, mirroring the in-memory sharded clusterer exactly:
 *
 *  1. Ingest: each read is packed into an append-only log segment
 *     (record = global id, content minimizer, packed bases). The log
 *     buffers in memory and spills chunk-by-chunk past the budget.
 *  2. Shuffle: once the read count is known, the shard count is
 *     resolved (content-only) and the log is streamed into per-shard
 *     segments by minimizer. Records stay in global-id order within
 *     each shard because the log is consumed in ingest order.
 *  3. Cluster: each shard segment is streamed through the greedy
 *     pass (shards fan out over the thread pool), keeping only
 *     representatives and member lists; the serial deterministic
 *     merge and canonical finalize are shared with clusterReads.
 *
 * Determinism contract: the clustering is bit-identical to
 * clusterReads on the same soup and ClusterParams, for every memory
 * budget (spill or no spill), thread count, and SIMD tier. Corrupt
 * or truncated spill segments raise SpillError — never a wrong
 * clustering (every chunk's CRC is verified before any record in it
 * is parsed).
 */

#ifndef DNASTORE_CLUSTER_STREAM_HH
#define DNASTORE_CLUSTER_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/clusterer.hh"
#include "dna/packed_strand.hh"
#include "util/byteio.hh"

namespace dnastore {

/**
 * A spill segment failed integrity or I/O checks (bad magic, CRC
 * mismatch, truncation, unwritable spill directory). The clustering
 * in progress is abandoned; no partial result escapes.
 */
class SpillError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Observability counters for a streaming run. */
struct StreamStats
{
    size_t reads = 0;         //!< Reads ingested.
    size_t shards = 0;        //!< Shard count resolved at finish().
    size_t peakBufferBytes = 0; //!< High-water mark of buffered segment bytes.
    size_t spilledBytes = 0;  //!< Segment bytes written to disk.
    size_t spillChunks = 0;   //!< CRC-framed chunks written to disk.

    /**
     * Base composition of the ingested soup, accumulated with the
     * SIMD histogram4 kernel during ingest (indexes follow the 2-bit
     * base codes A=0, C=1, G=2, T=3).
     */
    uint64_t baseCounts[4] = { 0, 0, 0, 0 };

    /** Fraction of ingested bases that are G or C (0 when empty). */
    double gcFraction() const;
};

namespace cluster_detail {

/**
 * Spill chunk framing, exposed for the corruption-sweep tests: a
 * chunk is [magic u32][payload length u32][CRC-32 of payload u32]
 * [payload], little-endian. Readers verify magic, a sane length, and
 * the CRC before parsing a single record byte.
 */
constexpr uint32_t kSpillMagic = 0x4c505344; // "DSPL"

/** Frame @p payload as one chunk appended to @p out. */
void appendSpillChunk(std::vector<uint8_t> &out,
                      const uint8_t *payload, size_t n);

/**
 * Parse every chunk in @p bytes, invoking @p record for each spill
 * record (id, minimizer, length, packed words). Throws SpillError on
 * any framing, CRC, or record-bounds violation.
 */
void parseSpillChunks(
    const uint8_t *bytes, size_t n,
    const std::function<void(uint64_t id, uint64_t minimizer,
                             size_t len, const uint64_t *words)>
        &record);

} // namespace cluster_detail

/**
 * Out-of-core greedy clustering engine. Feed reads in global-id
 * order with add(); finish() resolves shards, clusters, and returns
 * the canonical Clustering. Single ingestion thread; finish() fans
 * shard clustering over ClusterParams::numThreads.
 *
 * Spill segments live under ClusterParams::spillDir (system temp
 * directory when empty), are named uniquely per engine instance, and
 * are removed when the engine is destroyed — also on error paths.
 */
class StreamingClusterer
{
  public:
    explicit StreamingClusterer(const ClusterParams &params);
    ~StreamingClusterer();

    StreamingClusterer(const StreamingClusterer &) = delete;
    StreamingClusterer &operator=(const StreamingClusterer &) = delete;

    /** Ingest the next read (global id = number of prior adds). */
    void add(StrandView read);

    /** Cluster everything ingested. Call exactly once. */
    Clustering finish();

    const StreamStats &stats() const { return stats_; }

  private:
    struct Segment;
    struct ShardResult;

    void appendRecord(Segment &seg, uint64_t id, uint64_t minimizer,
                      StrandView read);
    void sealChunk(Segment &seg);
    void spillToDisk(Segment &seg);
    void enforceBudget(std::vector<Segment> &segs);
    void releaseSegment(Segment &seg);
    void forEachRecord(
        Segment &seg,
        const std::function<void(uint64_t id, uint64_t minimizer,
                                 size_t len, const uint64_t *words)>
            &record);

    ClusterParams params_;
    std::string spillDir_;
    uint64_t instanceTag_;
    size_t bufferedBytes_ = 0;
    bool finished_ = false;

    std::unique_ptr<Segment> log_;
    StreamStats stats_;
    std::vector<uint64_t> packScratch_;
};

/**
 * Convenience wrapper: stream @p reads through a StreamingClusterer.
 * Bit-identical to clusterReads(reads, params) by construction;
 * clusterReads itself routes here when params.memoryBudgetBytes is
 * nonzero.
 */
Clustering clusterReadsStreaming(const std::vector<Strand> &reads,
                                 const ClusterParams &params);

} // namespace dnastore

#endif // DNASTORE_CLUSTER_STREAM_HH

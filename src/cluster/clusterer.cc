#include "cluster/clusterer.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "cluster/greedy.hh"
#include "cluster/stream.hh"
#include "dna/packed_strand.hh"
#include "util/parallel.hh"

namespace dnastore {

size_t
bandedEditDistance(const Strand &a, const Strand &b, size_t limit,
                   size_t band)
{
    const size_t n = a.size(), m = b.size();
    size_t len_gap = n > m ? n - m : m - n;
    if (len_gap > limit)
        return limit + 1;
    const size_t inf = std::numeric_limits<size_t>::max() / 2;

    // Rolling rows restricted to |i - j| <= band.
    std::vector<size_t> prev(m + 1, inf), cur(m + 1, inf);
    for (size_t j = 0; j <= std::min(m, band); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 0;
        size_t hi = std::min(m, i + band);
        std::fill(cur.begin(), cur.end(), inf);
        if (lo == 0)
            cur[0] = i;
        size_t row_min = inf;
        for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
            size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            if (prev[j] + 1 < best)
                best = prev[j] + 1;
            if (cur[j - 1] + 1 < best)
                best = cur[j - 1] + 1;
            cur[j] = best;
            row_min = std::min(row_min, best);
        }
        if (lo == 0)
            row_min = std::min(row_min, cur[0]);
        if (row_min > limit)
            return limit + 1;
        std::swap(prev, cur);
    }
    return std::min(prev[m], limit + 1);
}

Clustering
clusterReads(const std::vector<Strand> &reads,
             const ClusterParams &params)
{
    using cluster_detail::GreedyState;

    // 2 * qgram bits must fit a uint64_t hash; qgram 0 would hash
    // every position identically.
    if (params.qgram < 1 || params.qgram > 31)
        throw std::invalid_argument(
            "ClusterParams::qgram must be in [1, 31]");

    // A memory budget means the caller wants the bounded-memory
    // engine; its output is bit-identical to the path below.
    if (params.memoryBudgetBytes != 0)
        return clusterReadsStreaming(reads, params);

    const size_t shards =
        cluster_detail::resolveShardCount(params, reads.size());
    if (shards <= 1) {
        GreedyState state(params);
        for (size_t r = 0; r < reads.size(); ++r)
            state.consume(r, reads[r]);
        return state.finalize(reads.size());
    }

    // Partition by content minimizer and cluster each shard
    // independently; the shard jobs are what the thread pool steals.
    std::vector<std::vector<size_t>> shard_reads(shards);
    for (size_t r = 0; r < reads.size(); ++r) {
        uint64_t min =
            cluster_detail::minimizerOf(reads[r], params.qgram);
        shard_reads[min % shards].push_back(r);
    }

    std::vector<std::unique_ptr<GreedyState>> shard_state(shards);
    parallelFor(shards, params.numThreads, [&](size_t s) {
        auto state = std::make_unique<GreedyState>(params);
        for (size_t r : shard_reads[s])
            state->consume(r, reads[r]);
        shard_state[s] = std::move(state);
    });

    // Deterministic merge, shard-major: re-run the greedy join over
    // shard-cluster representatives, folding whole member lists into
    // the matched global cluster. Thread count never enters here.
    GreedyState merged(params);
    for (size_t s = 0; s < shards; ++s) {
        GreedyState &local = *shard_state[s];
        for (size_t c = 0; c < local.clusterCount(); ++c)
            merged.consumeGroup(local.representativeId(c),
                                local.representativeStrand(c),
                                std::move(local.membersOf(c)));
        shard_state[s].reset();
    }
    return merged.finalize(reads.size());
}

ClusterQuality
scoreClustering(const Clustering &clustering,
                const std::vector<size_t> &truth)
{
    // Contingency counting over sorted labels: pairs agreeing on a
    // label are sum over label groups of C(group, 2), and pairs
    // agreeing on both are the same sum over (pred, truth) groups.
    // O(n log n), exactly equal to the old all-pairs loop.
    const auto &pred = clustering.clusterOf;
    const size_t n = pred.size();

    auto pairsWithin = [](auto &sorted) {
        size_t pairs = 0;
        for (size_t i = 0; i < sorted.size();) {
            size_t j = i;
            while (j < sorted.size() && sorted[j] == sorted[i])
                ++j;
            pairs += (j - i) * (j - i - 1) / 2;
            i = j;
        }
        return pairs;
    };

    std::vector<size_t> by_pred(pred);
    std::sort(by_pred.begin(), by_pred.end());
    size_t same_pred = pairsWithin(by_pred);

    std::vector<size_t> by_truth(truth);
    std::sort(by_truth.begin(), by_truth.end());
    size_t same_truth = pairsWithin(by_truth);

    std::vector<std::pair<size_t, size_t>> both(n);
    for (size_t i = 0; i < n; ++i)
        both[i] = { pred[i], truth[i] };
    std::sort(both.begin(), both.end());
    size_t same_both = pairsWithin(both);

    ClusterQuality q;
    q.precision = same_pred ? double(same_both) / double(same_pred)
                            : 1.0;
    q.recall = same_truth ? double(same_both) / double(same_truth)
                          : 1.0;
    return q;
}

} // namespace dnastore

#include "cluster/clusterer.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "dna/packed_strand.hh"
#include "util/parallel.hh"

namespace dnastore {

size_t
bandedEditDistance(const Strand &a, const Strand &b, size_t limit,
                   size_t band)
{
    const size_t n = a.size(), m = b.size();
    size_t len_gap = n > m ? n - m : m - n;
    if (len_gap > limit)
        return limit + 1;
    const size_t inf = std::numeric_limits<size_t>::max() / 2;

    // Rolling rows restricted to |i - j| <= band.
    std::vector<size_t> prev(m + 1, inf), cur(m + 1, inf);
    for (size_t j = 0; j <= std::min(m, band); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 0;
        size_t hi = std::min(m, i + band);
        std::fill(cur.begin(), cur.end(), inf);
        if (lo == 0)
            cur[0] = i;
        size_t row_min = inf;
        for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
            size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            if (prev[j] + 1 < best)
                best = prev[j] + 1;
            if (cur[j - 1] + 1 < best)
                best = cur[j - 1] + 1;
            cur[j] = best;
            row_min = std::min(row_min, best);
        }
        if (lo == 0)
            row_min = std::min(row_min, cur[0]);
        if (row_min > limit)
            return limit + 1;
        std::swap(prev, cur);
    }
    return std::min(prev[m], limit + 1);
}

namespace {

/** Cheap 64-bit mix for q-gram hashing. */
uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Sorted unique q-gram hashes of a read, optionally truncated to the
 * @p cap smallest (minhash). Representatives are indexed with all
 * their grams; queries use a capped subset, which keeps lookups cheap
 * while making a shared gram between a noisy read and its cluster's
 * representative overwhelmingly likely.
 */
std::vector<uint64_t>
signature(const Strand &read, const ClusterParams &params, size_t cap)
{
    std::vector<uint64_t> hashes;
    if (read.size() < params.qgram)
        return hashes;
    uint64_t gram = 0;
    const uint64_t mask =
        (uint64_t(1) << (2 * params.qgram)) - 1;
    for (size_t i = 0; i < read.size(); ++i) {
        gram = ((gram << 2) | bitsFromBase(read[i])) & mask;
        if (i + 1 >= params.qgram)
            hashes.push_back(mix(gram));
    }
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    if (hashes.size() > cap)
        hashes.resize(cap);
    return hashes;
}

/**
 * The minimizer: the smallest q-gram hash of the read. Content-only,
 * so the shard a read lands in never depends on thread count or read
 * order; noisy copies of one strand usually share it, which keeps
 * same-strand reads in one shard.
 */
uint64_t
minimizer(const Strand &read, const ClusterParams &params)
{
    if (read.size() < params.qgram)
        return 0;
    uint64_t gram = 0;
    const uint64_t mask = (uint64_t(1) << (2 * params.qgram)) - 1;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < read.size(); ++i) {
        gram = ((gram << 2) | bitsFromBase(read[i])) & mask;
        if (i + 1 >= params.qgram)
            best = std::min(best, mix(gram));
    }
    return best;
}

/** Greedy single-linkage-to-representative clustering state. */
struct GreedyClusters
{
    /** cluster (creation order) -> representative read (global id). */
    std::vector<size_t> representative;

    /** cluster -> member reads (global ids, ascending). */
    std::vector<std::vector<size_t>> members;

    /** q-gram hash -> clusters whose representative contains it. */
    std::unordered_map<uint64_t, std::vector<size_t>> index;
};

/**
 * Candidate clusters sharing at least two query hashes with a
 * representative (one shared gram happens by chance; two is a strong
 * hint). Ascending cluster ids.
 */
void
candidateClusters(const GreedyClusters &state,
                  const std::vector<uint64_t> &sig,
                  std::vector<size_t> &hits,
                  std::vector<size_t> &candidates)
{
    hits.clear();
    candidates.clear();
    for (uint64_t h : sig) {
        auto it = state.index.find(h);
        if (it == state.index.end())
            continue;
        for (size_t cluster : it->second)
            hits.push_back(cluster);
    }
    std::sort(hits.begin(), hits.end());
    for (size_t i = 0; i < hits.size();) {
        size_t j = i;
        while (j < hits.size() && hits[j] == hits[i])
            ++j;
        if (j - i >= 2 || sig.size() < 4)
            candidates.push_back(hits[i]);
        i = j;
    }
}

/**
 * Best matching cluster for @p read among @p candidates, by exact
 * batched edit distance against the candidate representatives:
 * smallest distance <= limit wins, earliest candidate on ties.
 * Returns size_t(-1) when nothing is close enough.
 */
size_t
bestCluster(const std::vector<Strand> &reads, const Strand &read,
            const GreedyClusters &state,
            const std::vector<size_t> &candidates, size_t limit)
{
    static thread_local std::vector<StrandView> reps;
    static thread_local std::vector<uint32_t> dists;
    const size_t k = candidates.size();
    if (k == 0)
        return size_t(-1);
    reps.clear();
    for (size_t cluster : candidates)
        reps.push_back(reads[state.representative[cluster]]);
    dists.resize(k);
    editDistanceBatch(read.data(), read.size(), reps.data(), k,
                      dists.data());
    size_t best_cluster = size_t(-1);
    size_t best_dist = size_t(-1);
    for (size_t i = 0; i < k; ++i) {
        if (dists[i] <= limit && dists[i] < best_dist) {
            best_dist = dists[i];
            best_cluster = candidates[i];
        }
    }
    return best_cluster;
}

/** Open a new cluster represented by read @p r, indexing its grams. */
size_t
openCluster(GreedyClusters &state, const std::vector<Strand> &reads,
            size_t r, const ClusterParams &params)
{
    size_t cluster = state.members.size();
    state.members.emplace_back();
    state.representative.push_back(r);
    // Index the representative with ALL its grams so future noisy
    // reads still find it.
    auto full = signature(reads[r], params, size_t(-1));
    for (uint64_t h : full)
        state.index[h].push_back(cluster);
    return cluster;
}

/**
 * Greedy clustering of the reads selected by @p subset (global ids,
 * ascending), in read order — the classic serial algorithm.
 */
GreedyClusters
greedyCluster(const std::vector<Strand> &reads,
              const std::vector<size_t> &subset,
              const ClusterParams &params)
{
    GreedyClusters state;
    const size_t query_cap =
        std::max<size_t>(params.signatureSize, 24);
    std::vector<size_t> hits, candidates;
    for (size_t r : subset) {
        const Strand &read = reads[r];
        auto sig = signature(read, params, query_cap);
        candidateClusters(state, sig, hits, candidates);
        size_t limit = size_t(params.maxDistanceFrac *
                              double(read.size()));
        size_t cluster =
            bestCluster(reads, read, state, candidates, limit);
        if (cluster == size_t(-1))
            cluster = openCluster(state, reads, r, params);
        state.members[cluster].push_back(r);
    }
    return state;
}

/** Shard count: explicit, or sized from the read count (content-only). */
size_t
resolveShardCount(const ClusterParams &params, size_t n_reads)
{
    if (params.numShards != 0)
        return std::min(params.numShards, std::max<size_t>(n_reads, 1));
    if (n_reads < 2048)
        return 1;
    return std::min<size_t>(64, n_reads / 512);
}

/** Convert greedy state into the public Clustering shape. */
Clustering
finalize(GreedyClusters &&state, size_t n_reads)
{
    // Canonical ids: clusters ordered by smallest member, members
    // ascending. The single-shard greedy pass already produces this
    // order; the sharded merge needs the sort.
    for (auto &m : state.members)
        std::sort(m.begin(), m.end());
    std::vector<size_t> order(state.members.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return state.members[a].front() < state.members[b].front();
    });

    Clustering out;
    out.clusterOf.assign(n_reads, 0);
    out.members.reserve(order.size());
    for (size_t cluster : order) {
        for (size_t r : state.members[cluster])
            out.clusterOf[r] = out.members.size();
        out.members.push_back(std::move(state.members[cluster]));
    }
    return out;
}

} // namespace

Clustering
clusterReads(const std::vector<Strand> &reads,
             const ClusterParams &params)
{
    // 2 * qgram bits must fit a uint64_t hash; qgram 0 would hash
    // every position identically.
    if (params.qgram < 1 || params.qgram > 31)
        throw std::invalid_argument(
            "ClusterParams::qgram must be in [1, 31]");

    const size_t shards = resolveShardCount(params, reads.size());
    if (shards <= 1) {
        std::vector<size_t> all(reads.size());
        for (size_t r = 0; r < reads.size(); ++r)
            all[r] = r;
        return finalize(greedyCluster(reads, all, params),
                        reads.size());
    }

    // Partition by content minimizer and cluster each shard
    // independently; the shard jobs are what the thread pool steals.
    std::vector<std::vector<size_t>> shard_reads(shards);
    for (size_t r = 0; r < reads.size(); ++r)
        shard_reads[minimizer(reads[r], params) % shards].push_back(r);

    std::vector<GreedyClusters> shard_state(shards);
    parallelFor(shards, params.numThreads, [&](size_t s) {
        shard_state[s] = greedyCluster(reads, shard_reads[s], params);
    });

    // Deterministic merge, shard-major: re-run the greedy join over
    // shard-cluster representatives, folding whole member lists into
    // the matched global cluster. Thread count never enters here.
    GreedyClusters merged;
    const size_t query_cap =
        std::max<size_t>(params.signatureSize, 24);
    std::vector<size_t> hits, candidates;
    for (size_t s = 0; s < shards; ++s) {
        GreedyClusters &local = shard_state[s];
        for (size_t c = 0; c < local.members.size(); ++c) {
            size_t rep = local.representative[c];
            const Strand &rep_read = reads[rep];
            auto sig = signature(rep_read, params, query_cap);
            candidateClusters(merged, sig, hits, candidates);
            size_t limit = size_t(params.maxDistanceFrac *
                                  double(rep_read.size()));
            size_t target =
                bestCluster(reads, rep_read, merged, candidates, limit);
            if (target == size_t(-1))
                target = openCluster(merged, reads, rep, params);
            auto &dst = merged.members[target];
            dst.insert(dst.end(), local.members[c].begin(),
                       local.members[c].end());
        }
    }
    return finalize(std::move(merged), reads.size());
}

ClusterQuality
scoreClustering(const Clustering &clustering,
                const std::vector<size_t> &truth)
{
    // Pairwise counting over all read pairs, O(n^2) but only used by
    // tests and diagnostics.
    const auto &pred = clustering.clusterOf;
    size_t same_both = 0, same_pred = 0, same_truth = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        for (size_t j = i + 1; j < pred.size(); ++j) {
            bool p = pred[i] == pred[j];
            bool t = truth[i] == truth[j];
            same_both += (p && t);
            same_pred += p;
            same_truth += t;
        }
    }
    ClusterQuality q;
    q.precision = same_pred ? double(same_both) / double(same_pred)
                            : 1.0;
    q.recall = same_truth ? double(same_both) / double(same_truth)
                          : 1.0;
    return q;
}

} // namespace dnastore

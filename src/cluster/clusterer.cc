#include "cluster/clusterer.hh"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace dnastore {

size_t
bandedEditDistance(const Strand &a, const Strand &b, size_t limit,
                   size_t band)
{
    const size_t n = a.size(), m = b.size();
    size_t len_gap = n > m ? n - m : m - n;
    if (len_gap > limit)
        return limit + 1;
    const size_t inf = std::numeric_limits<size_t>::max() / 2;

    // Rolling rows restricted to |i - j| <= band.
    std::vector<size_t> prev(m + 1, inf), cur(m + 1, inf);
    for (size_t j = 0; j <= std::min(m, band); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        size_t lo = i > band ? i - band : 0;
        size_t hi = std::min(m, i + band);
        std::fill(cur.begin(), cur.end(), inf);
        if (lo == 0)
            cur[0] = i;
        size_t row_min = inf;
        for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
            size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            size_t best = prev[j - 1] + cost;
            if (prev[j] + 1 < best)
                best = prev[j] + 1;
            if (cur[j - 1] + 1 < best)
                best = cur[j - 1] + 1;
            cur[j] = best;
            row_min = std::min(row_min, best);
        }
        if (lo == 0)
            row_min = std::min(row_min, cur[0]);
        if (row_min > limit)
            return limit + 1;
        std::swap(prev, cur);
    }
    return std::min(prev[m], limit + 1);
}

namespace {

/** Cheap 64-bit mix for q-gram hashing. */
uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Sorted unique q-gram hashes of a read, optionally truncated to the
 * @p cap smallest (minhash). Representatives are indexed with all
 * their grams; queries use a capped subset, which keeps lookups cheap
 * while making a shared gram between a noisy read and its cluster's
 * representative overwhelmingly likely.
 */
std::vector<uint64_t>
signature(const Strand &read, const ClusterParams &params, size_t cap)
{
    std::vector<uint64_t> hashes;
    if (read.size() < params.qgram)
        return hashes;
    uint64_t gram = 0;
    const uint64_t mask =
        (uint64_t(1) << (2 * params.qgram)) - 1;
    for (size_t i = 0; i < read.size(); ++i) {
        gram = ((gram << 2) | bitsFromBase(read[i])) & mask;
        if (i + 1 >= params.qgram)
            hashes.push_back(mix(gram));
    }
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    if (hashes.size() > cap)
        hashes.resize(cap);
    return hashes;
}

} // namespace

Clustering
clusterReads(const std::vector<Strand> &reads,
             const ClusterParams &params)
{
    Clustering out;
    out.clusterOf.assign(reads.size(), 0);

    // Representatives of formed clusters and a q-gram hash index over
    // their signatures.
    std::vector<size_t> representative; // cluster -> read index
    std::unordered_map<uint64_t, std::vector<size_t>> index;

    const size_t query_cap =
        std::max<size_t>(params.signatureSize, 24);
    for (size_t r = 0; r < reads.size(); ++r) {
        const Strand &read = reads[r];
        auto sig = signature(read, params, query_cap);

        // Candidate clusters sharing at least two query hashes with a
        // representative (one shared gram happens by chance; two is a
        // strong hint).
        std::vector<size_t> hits;
        for (uint64_t h : sig) {
            auto it = index.find(h);
            if (it == index.end())
                continue;
            for (size_t cluster : it->second)
                hits.push_back(cluster);
        }
        std::sort(hits.begin(), hits.end());
        std::vector<size_t> candidates;
        for (size_t i = 0; i < hits.size();) {
            size_t j = i;
            while (j < hits.size() && hits[j] == hits[i])
                ++j;
            if (j - i >= 2 || sig.size() < 4)
                candidates.push_back(hits[i]);
            i = j;
        }

        // Verify against representatives with banded edit distance.
        size_t best_cluster = size_t(-1);
        size_t best_dist = size_t(-1);
        size_t limit = size_t(params.maxDistanceFrac *
                              double(read.size()));
        size_t band = std::max<size_t>(
            4, size_t(params.bandFrac * double(read.size())));
        for (size_t cluster : candidates) {
            const Strand &rep = reads[representative[cluster]];
            size_t d = bandedEditDistance(read, rep, limit, band);
            if (d <= limit && d < best_dist) {
                best_dist = d;
                best_cluster = cluster;
            }
        }

        if (best_cluster == size_t(-1)) {
            best_cluster = out.members.size();
            out.members.emplace_back();
            representative.push_back(r);
            // Index the representative with ALL its grams so future
            // noisy reads still find it.
            auto full = signature(read, params, size_t(-1));
            for (uint64_t h : full)
                index[h].push_back(best_cluster);
        }
        out.clusterOf[r] = best_cluster;
        out.members[best_cluster].push_back(r);
    }
    return out;
}

ClusterQuality
scoreClustering(const Clustering &clustering,
                const std::vector<size_t> &truth)
{
    // Pairwise counting over all read pairs, O(n^2) but only used by
    // tests and diagnostics.
    const auto &pred = clustering.clusterOf;
    size_t same_both = 0, same_pred = 0, same_truth = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        for (size_t j = i + 1; j < pred.size(); ++j) {
            bool p = pred[i] == pred[j];
            bool t = truth[i] == truth[j];
            same_both += (p && t);
            same_pred += p;
            same_truth += t;
        }
    }
    ClusterQuality q;
    q.precision = same_pred ? double(same_both) / double(same_pred)
                            : 1.0;
    q.recall = same_truth ? double(same_both) / double(same_truth)
                          : 1.0;
    return q;
}

} // namespace dnastore

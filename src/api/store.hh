/**
 * @file
 * `dnastore::api::Store` — the stable public façade over the storage
 * pipeline.
 *
 * A Store is one simulated DNA storage unit: named objects go in with
 * put(), the unit is synthesized (encode + channel read pools) on
 * demand, and objects come back out of get() through the full noisy
 * read path — channel, consensus, Reed-Solomon — configured by the
 * builder-validated StoreOptions/ChannelOptions. No call on this
 * surface throws: every fallible operation returns Status or
 * Result<T> (api/status.hh).
 *
 * Batched asynchronous work goes through submit(), which returns a
 * Future backed by one dispatcher thread per job. EncodeJob and
 * DecodeJob run serially on that thread; a TrialJob additionally
 * fans its trial batch out over the process-wide work-stealing
 * ThreadPool (TrialJob::threads wide) with the Scenario Lab's
 * determinism contract: the series is bit-identical for every
 * thread count, because all per-trial randomness derives from
 * pre-drawn seeds and results land in per-trial slots aggregated
 * serially.
 *
 *  - EncodeJob:  snapshot the store's objects and produce the
 *                synthesizable unit text (header + one ACGT strand
 *                per line, the CLI's `encode` format).
 *  - DecodeJob:  parse unit text (self-describing header) and decode
 *                it back into named objects.
 *  - TrialJob:   run N Monte-Carlo channel trials (one per pre-drawn
 *                seed), the Scenario Lab's unit of work.
 *
 * Threading contract: submitted job bodies hold their own snapshots
 * (a shared reference to the simulator they were submitted against,
 * copies of the objects/params they need), so in-flight jobs run
 * safely alongside later put()/retrieve calls on the owning thread —
 * a rebuild just swaps in a new simulator while the job finishes on
 * the old one. The Store's own methods are not internally
 * synchronized: call them from one thread at a time.
 */

#ifndef DNASTORE_API_STORE_HH
#define DNASTORE_API_STORE_HH

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/health.hh"
#include "api/options.hh"
#include "api/pool_file.hh"
#include "api/status.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"

namespace dnastore {
namespace api {

/** Library version (also `dnastore --version`). */
const char *version();

/** One stored object's directory entry. */
struct ObjectInfo
{
    std::string name;
    size_t bytes = 0;
};

/**
 * Everything one retrieval pass produced. A retrieval that loses
 * data still *returns* (exact=false, possibly decoded=false) so
 * callers can study graceful degradation; only get() treats loss as
 * an error.
 */
struct Retrieval
{
    /** Reads per cluster this pass used (gamma mean when gamma). */
    size_t coverage = 0;

    /** Recovered stream matches the stored bits exactly. */
    bool exact = false;

    /** Directory parsed and objects split (may still be inexact). */
    bool decoded = false;

    /** Recovered objects (empty when !decoded). */
    FileBundle objects;

    size_t correctedErrors = 0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
    size_t indexFaults = 0;

    /** Errors corrected per codeword (reliability-skew analysis). */
    std::vector<size_t> errorsPerCodeword;

    /** Real-clusterer passes only. */
    bool clustered = false;
    size_t clustersFound = 0;
    double precision = 0.0;
    double recall = 0.0;
};

/** Synthesizable unit text: the EncodeJob artifact. */
struct EncodedArtifact
{
    std::string header;                //!< "#dnastore m=... scheme=..."
    std::vector<std::string> strands;  //!< One ACGT line per molecule.
    size_t payloadBits = 0;
    StorageConfig config;
    LayoutScheme scheme = LayoutScheme::Gini;

    /** Header + strands, newline-terminated (the `encode` file). */
    std::string text() const;
};

/** Decoded unit text: the DecodeJob artifact. */
struct DecodedObjects
{
    std::vector<NamedFile> files;
    bool exact = false;
    size_t correctedErrors = 0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
};

/** One Monte-Carlo trial's outcome (TrialJob artifact entry). */
struct TrialResult
{
    bool success = false;
    double byteErrorRate = 0.0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
    size_t correctedErrors = 0;
    size_t readsGenerated = 0;
    size_t clustersDropped = 0;
    double precision = 0.0; //!< Clustered trials only.
    double recall = 0.0;    //!< Clustered trials only.

    // Aging trials only (TrialJob::agingEpochs > 0); success and
    // byteErrorRate then describe the FINAL epoch.
    std::vector<uint8_t> epochSuccess; //!< Decode success per epoch.
    size_t readsLost = 0;              //!< Reads lost to aging.
    size_t scrubRepaired = 0;          //!< Clusters scrub rewrote.
};

/** TrialJob artifact: per-trial results, in trial order. */
struct TrialSeries
{
    std::vector<TrialResult> trials;
};

/** Encode the store's current objects into unit text. */
struct EncodeJob
{
};

/** Decode unit text (produced by EncodeJob / `dnastore encode`). */
struct DecodeJob
{
    std::string text;
};

/**
 * Run one Monte-Carlo channel trial per seed. Seeds are pre-drawn by
 * the caller (serially, from its own stream) so the fan-out schedule
 * can never leak into the results — the Scenario Lab contract.
 */
struct TrialJob
{
    std::vector<uint64_t> trialSeeds;

    /** Fan-out width (1 = serial, 0 = all hardware threads). */
    size_t threads = 1;

    /** Group reads with the store's ClusterOptions per trial. */
    bool useClusterer = false;

    /**
     * When > 0, each trial runs the aging loop instead of a single
     * decode: synthesize a trial-local pool, then per epoch age it
     * one step, optionally scrub it, and decode — TrialResult's
     * epochSuccess records the curve. Needs a channel with an aging
     * profile and fixed coverage; the clusterer and gamma coverage
     * are rejected (FailedPrecondition).
     */
    size_t agingEpochs = 0;

    /** Scrub after each epoch's decay (the closed loop under test). */
    bool scrubEachEpoch = false;

    /** Scrub policy of the per-epoch scrubs. */
    ScrubOptions scrub;
};

/**
 * Scrub the store's pool asynchronously: the probe decode, policy
 * selection, and any rewrites run on the job's dispatcher thread
 * against the store's own pool (this job mutates the store — the
 * retrieveAll() memo is invalidated when repairs land). Do not run
 * pool-backed retrievals on the owning thread while a ScrubJob is in
 * flight; queue them after Future::get().
 */
struct ScrubJob
{
    ScrubOptions options;
};

/** How openFile() treats the opened store. */
enum class OpenMode
{
    /** Mutable: put() works, and the unit can be re-synthesized. */
    ReadWrite,

    /**
     * Immutable view of the file's contents: put() is
     * FailedPrecondition. Opening never writes, so any number of
     * processes can serve retrievals from one pool file at once.
     */
    ReadOnly,
};

/**
 * Runtime knobs of openFile(). These are deliberately NOT part of the
 * durable format — they describe the opening process, not the data —
 * so the same file can open serial in a test and wide in a daemon.
 */
struct OpenOptions
{
    OpenMode mode = OpenMode::ReadWrite;

    /** Worker threads for decode/cluster loops (1 serial, 0 = all). */
    size_t threads = 1;

    /** Hold restored/regenerated read pools 2-bit packed. */
    bool packedReadPools = false;
};

/**
 * Handle to an asynchronously running job. get() blocks until the
 * job finishes and yields its Result exactly once; calling get() on
 * a consumed or default-constructed Future yields a
 * FailedPrecondition Result instead of throwing (the boundary's
 * no-throw rule applies to Futures too). Destroying a Future waits
 * for the job (no detached work outlives the caller).
 */
template <typename T>
class Future
{
  public:
    Future() = default;
    explicit Future(std::future<T> fut) : fut_(std::move(fut)) {}

    bool valid() const { return fut_.valid(); }

    void
    wait() const
    {
        if (fut_.valid())
            fut_.wait();
    }

    T
    get()
    {
        if (!fut_.valid())
            return T(Status::failedPrecondition(
                "Future already consumed (or never bound to a job)"));
        return fut_.get();
    }

  private:
    std::future<T> fut_;
};

/** The public storage façade. One Store = one encoding unit. */
class Store
{
  public:
    /**
     * Open a store. Both option sets are builder-validated here:
     * an invalid parameter yields the documented InvalidArgument
     * status instead of a constructed object, so everything behind
     * the façade can assume validated configuration.
     */
    static Result<Store> open(const StoreOptions &options,
                              const ChannelOptions &channel
                              = ChannelOptions());

    /**
     * Open a store from a durable `.dnapool` file (Store::save's
     * output). The saved geometry, layout, unit seed, manifest, and
     * — when present — read pools are restored; the reopened store's
     * get()/retrieveAll() answers are byte-identical to the saved
     * store's. The manifest is re-encoded on open and checked against
     * the saved unit strand for strand, so a file whose sections
     * disagree (all checksums intact) is still caught: DataLoss.
     *
     * Errors: NotFound (no such file), DataLoss (corruption — the
     * message names the failing section), FailedPrecondition (a
     * format version this build does not read, a channel needing
     * more coverage than the saved pools hold, or a structurally
     * foreign file), InvalidArgument (bad @p channel).
     */
    static Result<Store> openFile(const std::string &path,
                                  const ChannelOptions &channel
                                  = ChannelOptions(),
                                  const OpenOptions &options
                                  = OpenOptions());

    /**
     * Open a store from already-parsed pool file contents — exactly
     * what openFile() does after readPoolFile(), exposed so a caller
     * that already parsed the file (e.g. to adopt its saved pool
     * depth as a channel default) does not pay a second read+parse
     * of the whole store. @p origin names the source in error
     * messages. Same validation, integrity cross-check, and errors
     * as openFile(), minus NotFound.
     */
    static Result<Store> openContents(PoolFileContents contents,
                                      const ChannelOptions &channel
                                      = ChannelOptions(),
                                      const OpenOptions &options
                                      = OpenOptions(),
                                      const std::string &origin
                                      = "pool contents");

    /**
     * Save the store to a durable `.dnapool` file. With @p with_pools
     * the unit is synthesized first (if needed) and the read pools
     * are stored alongside it; otherwise only the encoded unit and
     * manifest are written and a later openFile() regenerates pools
     * deterministically from the saved unit seed. Unavailable on I/O
     * failure, CapacityExceeded/Internal when the unit cannot build.
     */
    Status save(const std::string &path, bool with_pools = true);

    /** True when openFile() opened this store OpenMode::ReadOnly. */
    bool readOnly() const;

    Store(Store &&) noexcept;
    Store &operator=(Store &&) noexcept;
    ~Store();

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    // ------------------------------------------------------- manifest
    /**
     * Add an object. InvalidArgument for an illegal name,
     * AlreadyExists for a duplicate, CapacityExceeded when the
     * object would overflow the unit.
     */
    Status put(const std::string &name, std::vector<uint8_t> data);

    /** Directory of stored objects, in insertion order. */
    std::vector<ObjectInfo> list() const;

    bool contains(const std::string &name) const;
    size_t objectCount() const;

    /** Total payload bytes across objects (directory excluded). */
    size_t totalBytes() const;

    // ------------------------------------------------------ retrieval
    /**
     * Encode the unit and generate its channel read pools. Implicit
     * before the first retrieval (and after any put()); exposed so
     * synthesis cost can be paid — or measured — explicitly.
     * Always re-synthesizes when called directly.
     */
    Status synthesize();

    /**
     * Retrieve one object through the noisy channel. NotFound if no
     * such object, DataLoss when the channel defeated the decoder.
     */
    Result<std::vector<uint8_t>> get(const std::string &name);

    /**
     * Retrieve everything at the configured coverage model. The
     * result is deterministic while the store is clean, so it is
     * memoized: repeated calls (and the get()s built on them) cost
     * one decode pass until the next put() or synthesize().
     */
    Result<Retrieval> retrieveAll();

    /**
     * Retrieve everything at an explicit fixed coverage (pool
     * prefix; must not exceed the channel's maxCoverage()). Always
     * decodes — explicit-coverage sweeps bypass the memo.
     */
    Result<Retrieval> retrieveAt(size_t coverage);

    /**
     * Smallest coverage in [lo, hi] whose retrieval is exact;
     * Unavailable when none is.
     */
    Result<size_t> minExactCoverage(size_t lo, size_t hi);

    // ------------------------------------------------ durability loop
    /**
     * Measure the pool's health with one full-depth probe decode:
     * per-cluster live reads and consensus agreement, per-codeword
     * RS correction split and remaining margin. Read-only (works on
     * read-only stores); synthesizes first if needed. The report —
     * and its toJson() rendering — is byte-identical at any thread
     * count and SIMD tier.
     */
    Result<HealthReport> health();

    /**
     * Apply @p epochs of the channel's aging profile to the pool:
     * per epoch, whole reads are lost and surviving bases substitute.
     * Deterministic (epoch seeds derive from the unit seed and a
     * monotone epoch counter: age(1);age(1) decays exactly like
     * age(2)). Invalidates the retrieveAll() memo.
     *
     * @return Reads lost across the epochs.
     *
     * Errors: FailedPrecondition on a read-only store or a channel
     * with no aging profile (ChannelOptions::aging).
     */
    Result<size_t> age(size_t epochs);

    /**
     * Scrub the pool: probe-decode at full depth, select the clusters
     * @p options call low-margin, and — when every codeword decoded,
     * so the recovered data is trustworthy — rewrite each selected
     * cluster with fresh full-depth reads of its repaired strand.
     * Repairs invalidate the retrieveAll() memo.
     *
     * Errors: FailedPrecondition on a read-only store; Unavailable
     * when clusters need repair but some codeword failed at the
     * current depth (every column then embeds an untrusted symbol, so
     * no rewrite is safe — transient: deeper coverage can clear it).
     */
    Result<ScrubReport> scrub(const ScrubOptions &options
                              = ScrubOptions());

    // ----------------------------------------------------- async jobs
    // Every submit() on a moved-from (or torn-down) Store yields a
    // ready Unavailable Future instead of dereferencing the dead
    // handle — the one state in which the façade cannot serve at all.
    Future<Result<EncodedArtifact>> submit(const EncodeJob &job);
    Future<Result<DecodedObjects>> submit(const DecodeJob &job);
    Future<Result<TrialSeries>> submit(const TrialJob &job);
    Future<Result<ScrubReport>> submit(const ScrubJob &job);

    // ----------------------------------------------------- inspection
    const StoreOptions &options() const;
    const ChannelOptions &channel() const;

    /**
     * The unit geometry retrievals will use. Under autoGeometry the
     * preset is re-resolved against the current objects.
     */
    StorageConfig unitConfig() const;

    /** Payload capacity of the unit, in bytes (geometry-resolved). */
    size_t capacityBytes() const;

    /** Strands in the synthesized unit (0 before synthesis). */
    size_t strandCount() const;

  private:
    struct Rep;
    explicit Store(std::unique_ptr<Rep> rep);

    /**
     * The memoized configured-coverage pass, shared: get() reads
     * through it without copying the recovered objects; the
     * value-returning retrieveAll() copies once for its caller.
     */
    Result<std::shared_ptr<const Retrieval>> retrieveCached();

    std::unique_ptr<Rep> rep_;
};

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_STORE_HH

/**
 * @file
 * Builder-validated configuration for the public `dnastore::api`
 * surface.
 *
 * Three fluent builders — StoreOptions (unit geometry + execution
 * knobs), ChannelOptions (error model, stressors, coverage, seeds),
 * and ClusterOptions (read-clustering knobs) — are the single source
 * of truth for parameter validation: the CLI's flag checks delegate
 * here, so the CLI and the API reject identical inputs with identical
 * messages. Every rejected parameter maps to
 * StatusCode::InvalidArgument with a message naming the parameter and
 * the offending value.
 *
 * Builders never throw; setters record values and validate() reports
 * the first broken constraint. A Store refuses to open on an invalid
 * builder, so everything behind the façade can assume validated
 * configuration.
 */

#ifndef DNASTORE_API_OPTIONS_HH
#define DNASTORE_API_OPTIONS_HH

#include <cstdint>
#include <string>

#include "api/status.hh"
#include "channel/coverage.hh"
#include "channel/stressors.hh"
#include "cluster/clusterer.hh"
#include "pipeline/config.hh"

namespace dnastore {
namespace api {

/**
 * Unit geometry and execution knobs of a Store.
 *
 * Defaults to the tinyTest geometry with the Gini layout. The
 * geometry presets mirror StorageConfig's; autoGeometry() instead
 * picks the smallest preset that fits the stored payload at
 * synthesis time (the CLI's behavior).
 */
class StoreOptions
{
  public:
    StoreOptions() : cfg_(StorageConfig::tinyTest()) {}

    /** Geometry presets. */
    static StoreOptions tiny();
    static StoreOptions bench();
    static StoreOptions paper();

    /** Size the unit to the payload at synthesis time (tiny/bench). */
    StoreOptions &autoGeometry(bool on);

    /** Adopt a complete geometry (e.g. a Scenario's config). */
    StoreOptions &config(const StorageConfig &cfg);

    StoreOptions &symbolBits(unsigned bits);
    StoreOptions &rows(size_t rows);
    StoreOptions &paritySymbols(size_t parity);
    StoreOptions &primerLen(size_t bases);
    StoreOptions &primerKey(uint64_t key);
    StoreOptions &layout(LayoutScheme scheme);

    /** Worker threads for decode/cluster loops (1 serial, 0 = all). */
    StoreOptions &threads(size_t n);

    /** Store read pools 2-bit packed (quarter the memory). */
    StoreOptions &packedReadPools(bool on);

    /** Seed of the unit's read pools / profile channel. */
    StoreOptions &unitSeed(uint64_t seed);

    /** First broken constraint as InvalidArgument; Ok when valid. */
    Status validate() const;

    // Resolved accessors.
    const StorageConfig &config() const { return cfg_; }
    LayoutScheme layout() const { return scheme_; }
    bool autoGeometry() const { return autoGeometry_; }
    uint64_t unitSeed() const { return unitSeed_; }

  private:
    StorageConfig cfg_;
    LayoutScheme scheme_ = LayoutScheme::Gini;
    bool autoGeometry_ = false;
    uint64_t unitSeed_ = 20220618;
};

/**
 * Read-clustering knobs (the API face of ClusterParams).
 */
class ClusterOptions
{
  public:
    ClusterOptions() = default;

    /** Adopt existing ClusterParams (e.g. a Scenario's). */
    static ClusterOptions fromParams(const ClusterParams &params);

    /** q-gram length of the signature index, in [1, 31]. */
    ClusterOptions &qgram(size_t q);

    /** Minimizing q-gram hashes kept per read signature (>= 1). */
    ClusterOptions &signatureSize(size_t n);

    /** Max edit distance to join a cluster, fraction of read length. */
    ClusterOptions &maxDistanceFrac(double frac);

    /** Worker threads for the sharded mode (1 serial, 0 = all). */
    ClusterOptions &threads(size_t n);

    /** Minimizer shards (0 = auto, 1 = classic single pass). */
    ClusterOptions &shards(size_t n);

    /**
     * Memory budget for read buffering, in MiB. 0 (default) keeps the
     * soup in memory; any other value routes clustering through the
     * streaming out-of-core engine (bit-identical output, spills past
     * the budget to checksummed segments under spillDir()).
     */
    ClusterOptions &memoryBudgetMb(size_t mb);

    /**
     * log2 bit-size of the gram-lookup Bloom sketch, 0 = auto-sized
     * or explicitly in [10, 36]. Never changes a clustering — only
     * how often the gram index is probed fruitlessly.
     */
    ClusterOptions &sketchBits(size_t log2bits);

    /** Spill directory for streaming runs ("" = system temp dir). */
    ClusterOptions &spillDir(const std::string &dir);

    /** First broken constraint as InvalidArgument; Ok when valid. */
    Status validate() const;

    const ClusterParams &params() const { return params_; }

  private:
    ClusterParams params_;
};

/**
 * Channel shape, coverage distribution, seeds, and (optionally) the
 * real clusterer a Store retrieves through.
 *
 * The error model is either a uniform-split total rate (errorRate),
 * explicit per-type rates (rates) — the two are mutually exclusive,
 * as on the CLI — or a full ChannelProfile with stressors (profile).
 */
class ChannelOptions
{
  public:
    /**
     * Defaults: 6% uniform-split error, fixed coverage 10. profile_
     * is only consulted when profile() was called — channelProfile()
     * resolves the flat model from errorRate()/rates() otherwise.
     */
    ChannelOptions() = default;

    /** Uniform split: p/3 insertion, p/3 deletion, p/3 substitution. */
    ChannelOptions &errorRate(double p);

    /** Explicit per-type rates (excludes errorRate). */
    ChannelOptions &rates(double ins, double del, double sub);

    /** Full channel profile: base model plus stressors (Scenario Lab). */
    ChannelOptions &profile(const ChannelProfile &profile);

    /**
     * Aging/decay model driving Store::age(): per-epoch strand-loss
     * and per-base substitution rates, both in [0, 1]. Combinable
     * with any channel shape; when a full profile() is also set, this
     * overrides the profile's own aging member.
     */
    ChannelOptions &aging(const AgingProfile &aging);

    /** Fixed reads per cluster (reverts any earlier gammaCoverage). */
    ChannelOptions &coverage(size_t readsPerCluster);

    /**
     * Gamma-distributed coverage. Combinable with cluster() only on
     * the per-trial path (TrialJob); the pool-backed retrievals
     * reject the pairing.
     */
    ChannelOptions &gammaCoverage(double mean, double shape);

    /** Adopt an existing CoverageModel (fixed or gamma). */
    ChannelOptions &coverage(const CoverageModel &model);

    /** Retrieve through the real clusterer instead of perfect groups. */
    ChannelOptions &cluster(const ClusterOptions &options);

    /** Seed for gamma coverage draws at retrieval time. */
    ChannelOptions &drawSeed(uint64_t seed);

    /** First broken constraint as InvalidArgument; Ok when valid. */
    Status validate() const;

    // Resolved accessors (meaningful once validate().ok()).
    ChannelProfile channelProfile() const;
    CoverageModel coverageModel() const;
    size_t fixedCoverage() const { return coverage_; }
    bool hasGamma() const { return gammaMean_ > 0.0; }
    double gammaMean() const { return gammaMean_; }
    double gammaShape() const { return gammaShape_; }
    bool hasCluster() const { return clusterSet_; }
    bool hasAging() const
    {
        return channelProfile().aging.enabled();
    }
    const ClusterParams &clusterParams() const;
    uint64_t drawSeed() const { return drawSeed_; }

    /**
     * Largest coverage any retrieval will draw: the fixed coverage,
     * or — under gamma coverage — three times the mean plus slack so
     * the pool cap stays out of the distribution's realistic range.
     */
    size_t maxCoverage() const;

  private:
    ChannelProfile profile_;
    AgingProfile aging_;
    bool agingSet_ = false;
    double errorRate_ = 0.06;
    bool errorRateSet_ = false;
    double insRate_ = 0.0, delRate_ = 0.0, subRate_ = 0.0;
    bool ratesSet_ = false;
    bool profileSet_ = false;
    size_t coverage_ = 10;
    double gammaMean_ = 0.0;
    double gammaShape_ = 0.0;
    ClusterParams cluster_;
    bool clusterSet_ = false;
    uint64_t drawSeed_ = 20220618;
};


/**
 * printf-style helper for builder messages ("coverage must be >= 1",
 * "gamma-shape must be > 0 (got -2)"). Exposed so the CLI can phrase
 * its own few remaining complaints (file I/O, unknown flags)
 * consistently.
 */
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_OPTIONS_HH

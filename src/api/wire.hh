/**
 * @file
 * Stable wire encoding of the `api::Status` taxonomy.
 *
 * The `dnastored` daemon extends the façade's no-throw contract
 * across a socket: every response frame carries one of these u32
 * codes, so a remote caller can switch on the same taxonomy a local
 * caller gets from Status::code(). The numeric values are a wire
 * contract — pinned here, independent of the StatusCode enumerator
 * order — and may never be renumbered, only appended to.
 *
 * Codes the local taxonomy maps onto the wire:
 *
 *   0  OK                   5  FAILED_PRECONDITION
 *   1  INVALID_ARGUMENT     6  DATA_LOSS
 *   2  NOT_FOUND            7  UNAVAILABLE
 *   3  ALREADY_EXISTS       8  INTERNAL
 *   4  CAPACITY_EXCEEDED
 *
 * An unknown incoming code (a future server's new status) decodes to
 * StatusCode::Internal rather than failing the frame, so old clients
 * degrade to "something went wrong over there" instead of a protocol
 * error.
 */

#ifndef DNASTORE_API_WIRE_HH
#define DNASTORE_API_WIRE_HH

#include <cstdint>

#include "api/status.hh"

namespace dnastore {
namespace api {

/** The pinned wire value of @p code. */
uint32_t statusCodeToWire(StatusCode code);

/**
 * The StatusCode a wire value names. Unknown values (a newer peer's
 * codes) map to StatusCode::Internal; @p known — when non-null —
 * reports whether the value was recognized.
 */
StatusCode statusCodeFromWire(uint32_t wire, bool *known = nullptr);

/** Rebuild a Status from its wire code + message fields. */
Status statusFromWire(uint32_t wire, const std::string &message);

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_WIRE_HH

#include "api/options.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace dnastore {
namespace api {

std::string
formatMessage(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

// ------------------------------------------------------------ StoreOptions

StoreOptions
StoreOptions::tiny()
{
    StoreOptions opt;
    opt.cfg_ = StorageConfig::tinyTest();
    return opt;
}

StoreOptions
StoreOptions::bench()
{
    StoreOptions opt;
    opt.cfg_ = StorageConfig::benchScale();
    return opt;
}

StoreOptions
StoreOptions::paper()
{
    StoreOptions opt;
    opt.cfg_ = StorageConfig::paperScale();
    return opt;
}

StoreOptions &
StoreOptions::autoGeometry(bool on)
{
    autoGeometry_ = on;
    return *this;
}

StoreOptions &
StoreOptions::config(const StorageConfig &cfg)
{
    // Execution knobs (threads, packed pools) ride on the adopted
    // config, as they do in StorageConfig itself.
    cfg_ = cfg;
    return *this;
}

StoreOptions &
StoreOptions::symbolBits(unsigned bits)
{
    cfg_.symbolBits = bits;
    return *this;
}

StoreOptions &
StoreOptions::rows(size_t rows)
{
    cfg_.rows = rows;
    return *this;
}

StoreOptions &
StoreOptions::paritySymbols(size_t parity)
{
    cfg_.paritySymbols = parity;
    return *this;
}

StoreOptions &
StoreOptions::primerLen(size_t bases)
{
    cfg_.primerLen = bases;
    return *this;
}

StoreOptions &
StoreOptions::primerKey(uint64_t key)
{
    cfg_.primerKey = key;
    return *this;
}

StoreOptions &
StoreOptions::layout(LayoutScheme scheme)
{
    scheme_ = scheme;
    return *this;
}

StoreOptions &
StoreOptions::threads(size_t n)
{
    cfg_.numThreads = n;
    return *this;
}

StoreOptions &
StoreOptions::packedReadPools(bool on)
{
    cfg_.packedReadPools = on;
    return *this;
}

StoreOptions &
StoreOptions::unitSeed(uint64_t seed)
{
    unitSeed_ = seed;
    return *this;
}

Status
StoreOptions::validate() const
{
    // Geometry constraints live in StorageConfig::check() so the
    // throwing validate() and this builder can never drift apart.
    if (const char *err = cfg_.check())
        return Status::invalidArgument(err);
    return Status();
}

// ---------------------------------------------------------- ChannelOptions

ChannelOptions &
ChannelOptions::errorRate(double p)
{
    errorRate_ = p;
    errorRateSet_ = true;
    return *this;
}

ChannelOptions &
ChannelOptions::rates(double ins, double del, double sub)
{
    insRate_ = ins;
    delRate_ = del;
    subRate_ = sub;
    ratesSet_ = true;
    return *this;
}

ChannelOptions &
ChannelOptions::profile(const ChannelProfile &profile)
{
    profile_ = profile;
    profileSet_ = true;
    return *this;
}

ChannelOptions &
ChannelOptions::aging(const AgingProfile &aging)
{
    aging_ = aging;
    agingSet_ = true;
    return *this;
}

ChannelOptions &
ChannelOptions::coverage(size_t readsPerCluster)
{
    // Last call wins: fixed coverage reverts any earlier
    // gammaCoverage() so a reused builder never mixes the two.
    coverage_ = readsPerCluster;
    gammaMean_ = 0.0;
    gammaShape_ = 0.0;
    return *this;
}

ChannelOptions &
ChannelOptions::gammaCoverage(double mean, double shape)
{
    gammaMean_ = mean;
    gammaShape_ = shape;
    return *this;
}

ChannelOptions &
ChannelOptions::coverage(const CoverageModel &model)
{
    // Round-trips exactly: fixed(n) stores mean_ = n, and
    // coverageModel() rebuilds fixed(coverage_) / gamma(mean, shape)
    // from the same values.
    if (model.isFixed())
        return coverage(size_t(model.mean()));
    return gammaCoverage(model.mean(), model.shape());
}

ChannelOptions &
ChannelOptions::cluster(const ClusterOptions &options)
{
    cluster_ = options.params();
    clusterSet_ = true;
    return *this;
}

ChannelOptions &
ChannelOptions::drawSeed(uint64_t seed)
{
    drawSeed_ = seed;
    return *this;
}

Status
ChannelOptions::validate() const
{
    // Channel shape: exactly one of error-rate, per-type rates, or a
    // full profile.
    if (errorRateSet_ && ratesSet_)
        return Status::invalidArgument(
            "error-rate cannot be combined with "
            "ins-rate/del-rate/sub-rate (give the per-type rates only)");
    if (profileSet_ && (errorRateSet_ || ratesSet_))
        return Status::invalidArgument(
            "a channel profile cannot be combined with "
            "error-rate/ins-rate/del-rate/sub-rate (set the profile's "
            "base model instead)");
    // Non-finite gates come first: every ordered comparison below is
    // false for NaN, so without them NaN rates/means sail through
    // validation and poison the channel maths downstream.
    if (ratesSet_) {
        if (!std::isfinite(insRate_))
            return Status::invalidArgument(formatMessage(
                "ins-rate must be finite (got %g)", insRate_));
        if (!std::isfinite(delRate_))
            return Status::invalidArgument(formatMessage(
                "del-rate must be finite (got %g)", delRate_));
        if (!std::isfinite(subRate_))
            return Status::invalidArgument(formatMessage(
                "sub-rate must be finite (got %g)", subRate_));
        if (insRate_ < 0.0)
            return Status::invalidArgument(formatMessage(
                "ins-rate must be >= 0 (got %g)", insRate_));
        if (delRate_ < 0.0)
            return Status::invalidArgument(formatMessage(
                "del-rate must be >= 0 (got %g)", delRate_));
        if (subRate_ < 0.0)
            return Status::invalidArgument(formatMessage(
                "sub-rate must be >= 0 (got %g)", subRate_));
    } else if (!profileSet_) {
        if (!std::isfinite(errorRate_))
            return Status::invalidArgument(formatMessage(
                "error-rate must be finite (got %g)", errorRate_));
        if (errorRate_ < 0.0 || errorRate_ > 1.0)
            return Status::invalidArgument(formatMessage(
                "error-rate must be in [0, 1] (got %g)", errorRate_));
    }

    const ChannelProfile resolved = channelProfile();
    if (!std::isfinite(resolved.base.insertion) ||
        !std::isfinite(resolved.base.deletion) ||
        !std::isfinite(resolved.base.substitution))
        return Status::invalidArgument(formatMessage(
            "error rates must be finite (ins=%g del=%g sub=%g)",
            resolved.base.insertion, resolved.base.deletion,
            resolved.base.substitution));
    if (!resolved.base.valid())
        return Status::invalidArgument(formatMessage(
            "invalid error rates (ins=%g del=%g sub=%g): each must be "
            ">= 0 and their total at most 1",
            resolved.base.insertion, resolved.base.deletion,
            resolved.base.substitution));
    if (!resolved.ramp.valid())
        return Status::invalidArgument(
            "invalid positional ramp (startFrac outside [0,1] or "
            "negative multiplier)");
    if (!resolved.pcr.valid())
        return Status::invalidArgument(
            "invalid PCR profile (efficiency/errorRate outside [0,1] "
            "or maxLineage == 0)");
    if (!resolved.dropout.valid())
        return Status::invalidArgument(
            "invalid dropout profile (rate outside [0,1] or "
            "burstLen == 0)");
    if (!std::isfinite(resolved.aging.strandLossRate) ||
        !std::isfinite(resolved.aging.substitutionRate))
        return Status::invalidArgument(formatMessage(
            "aging rates must be finite (strand-loss %g / "
            "substitution %g)",
            resolved.aging.strandLossRate,
            resolved.aging.substitutionRate));
    if (!resolved.aging.valid())
        return Status::invalidArgument(formatMessage(
            "invalid aging profile (strand-loss %g / substitution %g "
            "must each be in [0, 1])",
            resolved.aging.strandLossRate,
            resolved.aging.substitutionRate));

    // Coverage.
    if (coverage_ == 0)
        return Status::invalidArgument("coverage must be >= 1");
    const bool gamma = gammaMean_ != 0.0 || gammaShape_ != 0.0;
    if (gamma) {
        if (!std::isfinite(gammaMean_))
            return Status::invalidArgument(formatMessage(
                "gamma-mean must be finite (got %g)", gammaMean_));
        if (!std::isfinite(gammaShape_))
            return Status::invalidArgument(formatMessage(
                "gamma-shape must be finite (got %g)", gammaShape_));
        if (gammaShape_ <= 0.0)
            return Status::invalidArgument(formatMessage(
                "gamma-shape must be > 0 (got %g)", gammaShape_));
        if (gammaMean_ <= 0.0)
            return Status::invalidArgument(formatMessage(
                "gamma-mean must be > 0 (got %g)", gammaMean_));
        // gamma + cluster is NOT rejected here: per-trial read
        // generation (TrialJob/runTrial) supports the combination;
        // only the pool-backed retrieval path cannot, and Store
        // rejects it there.
    }

    // Clustering knobs.
    if (clusterSet_) {
        ClusterOptions check = ClusterOptions::fromParams(cluster_);
        Status status = check.validate();
        if (!status.ok())
            return status;
    }
    return Status();
}

ChannelProfile
ChannelOptions::channelProfile() const
{
    ChannelProfile resolved;
    if (profileSet_) {
        resolved = profile_;
    } else {
        resolved.base = ratesSet_
            ? ErrorModel::custom(insRate_, delRate_, subRate_)
            : ErrorModel::uniform(errorRate_);
    }
    if (agingSet_)
        resolved.aging = aging_;
    return resolved;
}

CoverageModel
ChannelOptions::coverageModel() const
{
    if (hasGamma())
        return CoverageModel::gamma(gammaMean_, gammaShape_);
    return CoverageModel::fixed(coverage_);
}

const ClusterParams &
ChannelOptions::clusterParams() const
{
    return cluster_;
}

size_t
ChannelOptions::maxCoverage() const
{
    if (!hasGamma())
        return coverage_;
    // Gamma draws are capped by the pool size; 3x the mean (+ slack)
    // keeps the cap out of the distribution's realistic range.
    size_t gamma_cap = size_t(gammaMean_ * 3.0) + 8;
    return coverage_ > gamma_cap ? coverage_ : gamma_cap;
}

// ---------------------------------------------------------- ClusterOptions

ClusterOptions
ClusterOptions::fromParams(const ClusterParams &params)
{
    ClusterOptions opt;
    opt.params_ = params;
    return opt;
}

ClusterOptions &
ClusterOptions::qgram(size_t q)
{
    params_.qgram = q;
    return *this;
}

ClusterOptions &
ClusterOptions::signatureSize(size_t n)
{
    params_.signatureSize = n;
    return *this;
}

ClusterOptions &
ClusterOptions::maxDistanceFrac(double frac)
{
    params_.maxDistanceFrac = frac;
    return *this;
}

ClusterOptions &
ClusterOptions::threads(size_t n)
{
    params_.numThreads = n;
    return *this;
}

ClusterOptions &
ClusterOptions::shards(size_t n)
{
    params_.numShards = n;
    return *this;
}

ClusterOptions &
ClusterOptions::memoryBudgetMb(size_t mb)
{
    params_.memoryBudgetBytes = mb << 20;
    return *this;
}

ClusterOptions &
ClusterOptions::sketchBits(size_t log2bits)
{
    params_.sketchBits = log2bits;
    return *this;
}

ClusterOptions &
ClusterOptions::spillDir(const std::string &dir)
{
    params_.spillDir = dir;
    return *this;
}

Status
ClusterOptions::validate() const
{
    // 2 bits per base must fit the 64-bit signature hash.
    if (params_.qgram < 1 || params_.qgram > 31)
        return Status::invalidArgument(
            "cluster-qgram must be in [1, 31]");
    if (params_.signatureSize < 1)
        return Status::invalidArgument(
            "cluster signatureSize must be >= 1");
    if (!std::isfinite(params_.maxDistanceFrac))
        return Status::invalidArgument(formatMessage(
            "cluster-maxdist must be finite (got %g)",
            params_.maxDistanceFrac));
    if (!(params_.maxDistanceFrac > 0.0) || params_.maxDistanceFrac > 1.0)
        return Status::invalidArgument(formatMessage(
            "cluster-maxdist must be in (0, 1] (got %g)",
            params_.maxDistanceFrac));
    if (params_.sketchBits != 0 &&
        (params_.sketchBits < 10 || params_.sketchBits > 36))
        return Status::invalidArgument(formatMessage(
            "cluster-sketch-bits must be 0 (auto) or in [10, 36] "
            "(got %zu)",
            params_.sketchBits));
    return Status();
}

} // namespace api
} // namespace dnastore

/**
 * @file
 * The durable `.dnapool` store format: versioned, checksummed
 * serialization of one encoding unit and (optionally) its synthesized
 * read pools. This is what Store::save() writes and Store::openFile()
 * reads, and what `dnastore pack` / `dnastore unpack` move around.
 *
 * Layout (all integers little-endian, host-independent):
 *
 *   header (20 bytes)
 *     8   magic "DNAPOOL\0"
 *     4   format version (kPoolFormatVersion)
 *     4   section count
 *     4   CRC-32 over the preceding 16 bytes
 *   section, repeated `section count` times
 *     4   section id (1 config, 2 manifest, 3 unit, 4 pools)
 *     8   payload length in bytes
 *     n   payload
 *     4   CRC-32 over id + length + payload
 *
 * Integrity contract: every section's CRC is verified *before* its
 * payload is parsed, so a single flipped bit anywhere in a section —
 * its internal length fields included — surfaces as DataLoss naming
 * the failing section, never as a misparse. The header CRC covers the
 * version field and is checked first, so a corrupted version byte is
 * also DataLoss ("header"); a *valid* header carrying an unknown
 * version is FailedPrecondition (a future writer's file, not bit
 * rot). Unknown section ids with valid CRCs are skipped, which is how
 * later minor revisions can add sections without breaking v1 readers.
 *
 * Sections 1-3 are mandatory; section 4 (pools) is present only when
 * the store was synthesized at save time. A pool-less file reopens
 * fine: pools regenerate deterministically from the saved unit seed.
 */

#ifndef DNASTORE_API_POOL_FILE_HH
#define DNASTORE_API_POOL_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hh"
#include "dna/strand.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"

namespace dnastore {
namespace api {

/**
 * Format version this build writes and the newest it can read.
 * v2 added per-cluster read counts to the pools section (pools may
 * be ragged after aging; v1 pools were rectangular).
 */
inline constexpr uint32_t kPoolFormatVersion = 2;

/** Section ids of the v1 format. */
enum : uint32_t
{
    kSectionConfig = 1,
    kSectionManifest = 2,
    kSectionUnit = 3,
    kSectionPools = 4,
};

/** Stable human name of a section id ("config", "manifest", ...). */
const char *poolSectionName(uint32_t id);

/** Everything a `.dnapool` file carries. */
struct PoolFileContents
{
    /**
     * Resolved unit geometry. Runtime execution knobs (numThreads,
     * packedReadPools) are deliberately NOT stored — they belong to
     * the opening process, not the data — and come back defaulted.
     */
    StorageConfig config;
    LayoutScheme scheme = LayoutScheme::Gini;
    uint64_t unitSeed = 0;

    /** The stored objects (the manifest). */
    FileBundle manifest;

    /** The encoded unit, for open-time integrity cross-checking. */
    size_t payloadBits = 0;
    std::vector<Strand> strands;

    /**
     * Synthesized read pools (present only when saved with pools).
     * Clusters may hold fewer than poolMaxCoverage reads: aging
     * (Store::age) loses whole strands, and a post-aging save
     * persists the ragged pool exactly as it decayed.
     */
    bool hasPools = false;
    size_t poolMaxCoverage = 0;
    std::vector<std::vector<Strand>> pools;
};

/** Serialize to the on-disk byte layout (never fails). */
std::vector<uint8_t> serializePoolFile(const PoolFileContents &contents);

/**
 * Parse the on-disk byte layout. DataLoss names the corrupted or
 * truncated section; FailedPrecondition reports a wrong file type,
 * an unsupported (but intact) format version, or a CRC-valid file
 * whose structure is not ours.
 */
Result<PoolFileContents> parsePoolFile(const std::vector<uint8_t> &bytes);

/**
 * serializePoolFile + atomic replacement: the bytes stream into a
 * sibling `<path>.tmp`, are fsync'd, and rename() over @p path, so a
 * crash mid-save never destroys a previously good file. Unavailable
 * on I/O errors (the temp file is removed).
 */
Status writePoolFile(const std::string &path,
                     const PoolFileContents &contents);

/** Read + parsePoolFile (NotFound when @p path cannot be opened). */
Result<PoolFileContents> readPoolFile(const std::string &path);

/** One section's byte span within a serialized pool file. */
struct PoolFileSection
{
    uint32_t id = 0;       //!< Section id (0 for the header span).
    size_t begin = 0;      //!< First byte of the span.
    size_t end = 0;        //!< One past the last byte.
    const char *name = ""; //!< poolSectionName(id), or "header".
};

/**
 * Enumerate the header and section spans of a serialized pool file
 * without parsing payloads (the corruption tests flip one byte per
 * span and assert DataLoss names it). FailedPrecondition / DataLoss
 * when even the skeleton cannot be walked.
 */
Result<std::vector<PoolFileSection>> poolFileSections(
    const std::vector<uint8_t> &bytes);

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_POOL_FILE_HH

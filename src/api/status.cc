#include "api/status.hh"

namespace dnastore {
namespace api {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::NotFound:
        return "NOT_FOUND";
      case StatusCode::AlreadyExists:
        return "ALREADY_EXISTS";
      case StatusCode::CapacityExceeded:
        return "CAPACITY_EXCEEDED";
      case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::DataLoss:
        return "DATA_LOSS";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
      case StatusCode::Internal:
        return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string out = statusCodeName(code_);
    out += ": ";
    out += message_;
    return out;
}

} // namespace api
} // namespace dnastore

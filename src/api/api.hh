/**
 * @file
 * Umbrella header of the public `dnastore::api` surface.
 *
 * `#include "api/api.hh"` pulls in the whole façade: Status/Result
 * (status.hh), the builder-validated option types (options.hh), and
 * the Store with its async job API (store.hh). Each header is also
 * self-sufficient on its own — CI compiles every header under
 * `src/api/` standalone to keep it that way.
 */

#ifndef DNASTORE_API_API_HH
#define DNASTORE_API_API_HH

#include "api/health.hh"
#include "api/options.hh"
#include "api/pool_file.hh"
#include "api/status.hh"
#include "api/store.hh"

#endif // DNASTORE_API_API_HH

#include "api/wire.hh"

namespace dnastore {
namespace api {

uint32_t
statusCodeToWire(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                 return 0;
      case StatusCode::InvalidArgument:    return 1;
      case StatusCode::NotFound:           return 2;
      case StatusCode::AlreadyExists:      return 3;
      case StatusCode::CapacityExceeded:   return 4;
      case StatusCode::FailedPrecondition: return 5;
      case StatusCode::DataLoss:           return 6;
      case StatusCode::Unavailable:        return 7;
      case StatusCode::Internal:           return 8;
    }
    return 8; // Unreachable; a corrupted enum reads as Internal.
}

StatusCode
statusCodeFromWire(uint32_t wire, bool *known)
{
    if (known != nullptr)
        *known = wire <= 8;
    switch (wire) {
      case 0: return StatusCode::Ok;
      case 1: return StatusCode::InvalidArgument;
      case 2: return StatusCode::NotFound;
      case 3: return StatusCode::AlreadyExists;
      case 4: return StatusCode::CapacityExceeded;
      case 5: return StatusCode::FailedPrecondition;
      case 6: return StatusCode::DataLoss;
      case 7: return StatusCode::Unavailable;
      default: return StatusCode::Internal;
    }
}

Status
statusFromWire(uint32_t wire, const std::string &message)
{
    StatusCode code = statusCodeFromWire(wire);
    if (code == StatusCode::Ok)
        return Status();
    return Status(code, message);
}

} // namespace api
} // namespace dnastore

#include "api/pool_file.hh"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "api/options.hh"
#include "util/byteio.hh"
#include "util/crc32.hh"

namespace dnastore {
namespace api {

namespace {

const char kMagic[8] = { 'D', 'N', 'A', 'P', 'O', 'O', 'L', '\0' };
constexpr size_t kHeaderBytes = 20;

/** Two-bit pack a strand after a u32 length prefix. */
void
writeStrand(ByteWriter &w, const Strand &s)
{
    w.u32(uint32_t(s.size()));
    uint8_t packed = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        packed |= uint8_t(bitsFromBase(s[i]) << (2 * (i % 4)));
        if (i % 4 == 3) {
            w.u8(packed);
            packed = 0;
        }
    }
    if (s.size() % 4 != 0)
        w.u8(packed);
}

/** Inverse of writeStrand; false when the reader underflows. */
bool
readStrand(ByteReader &r, Strand &out)
{
    const uint32_t len = r.u32();
    const size_t packed_len = (size_t(len) + 3) / 4;
    if (!r.ok() || packed_len > r.remaining())
        return false;
    out.clear();
    out.reserve(len);
    uint8_t packed = 0;
    for (size_t i = 0; i < len; ++i) {
        if (i % 4 == 0)
            packed = r.u8();
        out.push_back(baseFromBits(packed >> (2 * (i % 4))));
    }
    return r.ok();
}

std::vector<uint8_t>
configPayload(const PoolFileContents &c)
{
    ByteWriter w;
    w.u32(c.config.symbolBits);
    w.u64(c.config.rows);
    w.u64(c.config.paritySymbols);
    w.u64(c.config.primerLen);
    w.u64(c.config.primerKey);
    w.u8(uint8_t(c.scheme));
    w.u64(c.unitSeed);
    return w.take();
}

std::vector<uint8_t>
manifestPayload(const FileBundle &bundle)
{
    ByteWriter w;
    w.u32(uint32_t(bundle.fileCount()));
    for (const auto &f : bundle.files()) {
        w.u8(uint8_t(f.name.size()));
        w.str(f.name);
        w.u64(f.data.size());
        w.bytes(f.data);
    }
    return w.take();
}

std::vector<uint8_t>
unitPayload(const PoolFileContents &c)
{
    ByteWriter w;
    w.u64(c.payloadBits);
    w.u64(c.strands.size());
    for (const auto &s : c.strands)
        writeStrand(w, s);
    return w.take();
}

std::vector<uint8_t>
poolsPayload(const PoolFileContents &c)
{
    ByteWriter w;
    w.u64(c.pools.size());
    w.u64(c.poolMaxCoverage);
    // Pools may be ragged (aging loses whole reads), so each cluster
    // carries its own read count (v2 of the format).
    for (const auto &cluster : c.pools) {
        w.u32(uint32_t(cluster.size()));
        for (const auto &read : cluster)
            writeStrand(w, read);
    }
    return w.take();
}

void
appendSection(ByteWriter &out, uint32_t id,
              const std::vector<uint8_t> &payload)
{
    ByteWriter body;
    body.u32(id);
    body.u64(payload.size());
    body.bytes(payload);
    const uint32_t crc = crc32(body.data());
    out.bytes(body.data());
    out.u32(crc);
}

Status
malformed(uint32_t id)
{
    return Status::failedPrecondition(formatMessage(
        "pool file '%s' section is malformed (checksum valid, "
        "structure is not ours)",
        poolSectionName(id)));
}

Status
corrupted(const char *what)
{
    return Status::dataLoss(formatMessage(
        "pool file corrupted: '%s' section failed its checksum "
        "(truncation or bit rot)",
        what));
}

Status
parseConfig(const std::vector<uint8_t> &payload, PoolFileContents &c)
{
    ByteReader r(payload);
    c.config = StorageConfig();
    c.config.symbolBits = unsigned(r.u32());
    c.config.rows = size_t(r.u64());
    c.config.paritySymbols = size_t(r.u64());
    c.config.primerLen = size_t(r.u64());
    c.config.primerKey = r.u64();
    const uint8_t scheme = r.u8();
    c.unitSeed = r.u64();
    if (!r.ok() || r.remaining() != 0)
        return malformed(kSectionConfig);
    if (scheme > uint8_t(LayoutScheme::DnaMapper))
        return Status::failedPrecondition(formatMessage(
            "pool file names unknown layout scheme id %u", scheme));
    c.scheme = LayoutScheme(scheme);
    if (const char *err = c.config.check())
        return Status::failedPrecondition(formatMessage(
            "pool file geometry is invalid: %s", err));
    return Status();
}

Status
parseManifest(const std::vector<uint8_t> &payload, PoolFileContents &c)
{
    ByteReader r(payload);
    const uint32_t count = r.u32();
    c.manifest = FileBundle();
    for (uint32_t i = 0; i < count; ++i) {
        const uint8_t name_len = r.u8();
        std::string name = r.str(name_len);
        const uint64_t data_len = r.u64();
        if (!r.ok() || data_len > r.remaining())
            return malformed(kSectionManifest);
        std::vector<uint8_t> data = r.vec(size_t(data_len));
        try {
            c.manifest.add(name, std::move(data));
        } catch (const std::invalid_argument &) {
            return malformed(kSectionManifest);
        }
    }
    if (!r.ok() || r.remaining() != 0)
        return malformed(kSectionManifest);
    return Status();
}

Status
parseUnit(const std::vector<uint8_t> &payload, PoolFileContents &c)
{
    ByteReader r(payload);
    c.payloadBits = size_t(r.u64());
    const uint64_t strand_count = r.u64();
    if (!r.ok() || strand_count > r.remaining())
        return malformed(kSectionUnit);
    c.strands.assign(size_t(strand_count), Strand());
    for (auto &s : c.strands) {
        if (!readStrand(r, s))
            return malformed(kSectionUnit);
    }
    if (r.remaining() != 0)
        return malformed(kSectionUnit);
    return Status();
}

Status
parsePools(const std::vector<uint8_t> &payload, PoolFileContents &c)
{
    ByteReader r(payload);
    const uint64_t cluster_count = r.u64();
    const uint64_t max_coverage = r.u64();
    if (!r.ok() || cluster_count > r.remaining() ||
        max_coverage > r.remaining())
        return malformed(kSectionPools);
    c.pools.assign(size_t(cluster_count), {});
    for (auto &cluster : c.pools) {
        const uint32_t reads = r.u32();
        if (!r.ok() || reads > max_coverage ||
            reads > r.remaining())
            return malformed(kSectionPools);
        cluster.assign(size_t(reads), Strand());
        for (auto &read : cluster) {
            if (!readStrand(r, read))
                return malformed(kSectionPools);
        }
    }
    if (r.remaining() != 0)
        return malformed(kSectionPools);
    c.hasPools = true;
    c.poolMaxCoverage = size_t(max_coverage);
    return Status();
}

/**
 * Walk the section skeleton: ids, payload spans, CRC verdicts. The
 * shared core of parsePoolFile and poolFileSections, so a file the
 * parser rejects is rejected identically by the span enumerator.
 */
Status
walkSections(const std::vector<uint8_t> &bytes,
             std::vector<PoolFileSection> &sections)
{
    // Magic first: a foreign file should read as "not ours", not as a
    // corrupted pool file, even when it is shorter than our header.
    if (bytes.size() >= sizeof(kMagic) &&
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return Status::failedPrecondition(
            "not a dnastore pool file (bad magic)");
    if (bytes.size() < kHeaderBytes)
        return corrupted("header");
    ByteReader header(bytes.data(), kHeaderBytes);
    header.skip(sizeof(kMagic));
    const uint32_t version = header.u32();
    const uint32_t section_count = header.u32();
    const uint32_t header_crc = header.u32();
    // The CRC covers the version field and is checked before it: a
    // flipped version byte is bit rot (DataLoss), not a future file.
    if (crc32(bytes.data(), 16) != header_crc)
        return corrupted("header");
    if (version != kPoolFormatVersion)
        return Status::failedPrecondition(formatMessage(
            "pool file format version %u is not supported by this "
            "build (supported: %u)",
            version, kPoolFormatVersion));
    sections.push_back({ 0, 0, kHeaderBytes, "header" });

    ByteReader r(bytes.data(), bytes.size());
    r.skip(kHeaderBytes);
    for (uint32_t i = 0; i < section_count; ++i) {
        const size_t begin = r.pos();
        const uint32_t id = r.u32();
        const uint64_t len = r.u64();
        // Bound before touching the payload: a corrupted length must
        // fail the CRC of what is actually there, not walk off the
        // end. remaining() must still cover payload + trailing CRC.
        if (!r.ok() || len > r.remaining() ||
            r.remaining() - size_t(len) < 4) {
            return corrupted(r.ok() ? poolSectionName(id) : "header");
        }
        r.skip(size_t(len));
        const uint32_t stored_crc = r.u32();
        if (crc32(bytes.data() + begin, 12 + size_t(len)) != stored_crc)
            return corrupted(poolSectionName(id));
        sections.push_back(
            { id, begin, r.pos(), poolSectionName(id) });
    }
    if (r.remaining() != 0)
        return Status::dataLoss(formatMessage(
            "pool file has %zu trailing bytes after the last section",
            r.remaining()));
    return Status();
}

} // namespace

const char *
poolSectionName(uint32_t id)
{
    switch (id) {
    case kSectionConfig:
        return "config";
    case kSectionManifest:
        return "manifest";
    case kSectionUnit:
        return "unit";
    case kSectionPools:
        return "pools";
    default:
        return "unknown";
    }
}

std::vector<uint8_t>
serializePoolFile(const PoolFileContents &contents)
{
    ByteWriter header;
    header.bytes(reinterpret_cast<const uint8_t *>(kMagic),
                 sizeof(kMagic));
    header.u32(kPoolFormatVersion);
    const uint32_t section_count = contents.hasPools ? 4 : 3;
    header.u32(section_count);
    header.u32(crc32(header.data()));

    ByteWriter out;
    out.bytes(header.data());
    appendSection(out, kSectionConfig, configPayload(contents));
    appendSection(out, kSectionManifest,
                  manifestPayload(contents.manifest));
    appendSection(out, kSectionUnit, unitPayload(contents));
    if (contents.hasPools)
        appendSection(out, kSectionPools, poolsPayload(contents));
    return out.take();
}

Result<PoolFileContents>
parsePoolFile(const std::vector<uint8_t> &bytes)
{
    std::vector<PoolFileSection> sections;
    Status status = walkSections(bytes, sections);
    if (!status.ok())
        return status;

    PoolFileContents out;
    bool seen[5] = { false, false, false, false, false };
    for (const PoolFileSection &s : sections) {
        if (s.id == 0)
            continue; // Header span.
        if (s.id <= kSectionPools) {
            if (seen[s.id])
                return Status::failedPrecondition(formatMessage(
                    "pool file repeats its '%s' section", s.name));
            seen[s.id] = true;
        }
        // CRC already verified by walkSections; payload starts after
        // the 12-byte id+length prefix and stops before the CRC.
        const std::vector<uint8_t> payload(
            bytes.begin() + long(s.begin) + 12,
            bytes.begin() + long(s.end) - 4);
        switch (s.id) {
        case kSectionConfig:
            status = parseConfig(payload, out);
            break;
        case kSectionManifest:
            status = parseManifest(payload, out);
            break;
        case kSectionUnit:
            status = parseUnit(payload, out);
            break;
        case kSectionPools:
            status = parsePools(payload, out);
            break;
        default:
            break; // Unknown id, valid CRC: a later revision's
                   // optional section. Skip it.
        }
        if (!status.ok())
            return status;
    }
    for (uint32_t id : { uint32_t(kSectionConfig),
                         uint32_t(kSectionManifest),
                         uint32_t(kSectionUnit) }) {
        if (!seen[id])
            return Status::failedPrecondition(formatMessage(
                "pool file is missing its mandatory '%s' section",
                poolSectionName(id)));
    }
    if (out.hasPools && out.pools.size() != out.strands.size())
        return Status::failedPrecondition(
            "pool file's pools do not match its unit (cluster count "
            "!= strand count)");
    return out;
}

Status
writePoolFile(const std::string &path, const PoolFileContents &contents)
{
    const std::vector<uint8_t> bytes = serializePoolFile(contents);
    // Crash-safe replacement: stream into a sibling temp file, flush
    // it to stable storage, then rename() over the target. A crash or
    // power loss mid-save leaves any previous good file untouched (at
    // worst plus a stale .tmp sibling, overwritten by the next save).
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return Status::unavailable(formatMessage(
            "cannot open '%s' for writing", tmp.c_str()));
    const size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool synced = std::fflush(f) == 0;
#ifndef _WIN32
    synced = synced && ::fsync(fileno(f)) == 0;
#endif
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !synced || !closed) {
        std::remove(tmp.c_str());
        return Status::unavailable(formatMessage(
            "write to '%s' failed (%zu of %zu bytes durable)",
            tmp.c_str(), written, bytes.size()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::unavailable(formatMessage(
            "cannot move '%s' into place as '%s'", tmp.c_str(),
            path.c_str()));
    }
    return Status();
}

Result<PoolFileContents>
readPoolFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::notFound(formatMessage(
            "cannot open pool file '%s'", path.c_str()));
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return Status::unavailable(formatMessage(
            "I/O error reading pool file '%s'", path.c_str()));
    return parsePoolFile(bytes);
}

Result<std::vector<PoolFileSection>>
poolFileSections(const std::vector<uint8_t> &bytes)
{
    std::vector<PoolFileSection> sections;
    Status status = walkSections(bytes, sections);
    if (!status.ok())
        return status;
    return sections;
}

} // namespace api
} // namespace dnastore

/**
 * @file
 * Pool health telemetry and scrub reporting for the `dnastore::api`
 * surface — the measure-and-repair half of the durability loop.
 *
 * Store::health() threads one full-depth probe decode up from the
 * pipeline: per-cluster live reads and consensus agreement, the
 * Reed-Solomon correction split (true errors vs erasures) and the
 * remaining correction margin per codeword. Store::scrub() acts on
 * it: clusters the policy calls low-margin are re-synthesized at full
 * depth from the RS-repaired data.
 *
 * Both report types render to JSON deterministically: fixed key
 * order, locale-independent number formatting ("%.12g" with the
 * decimal point forced to '.'), no timestamps — byte-identical output
 * for byte-identical state, at any thread count. CI diffs these
 * renderings across thread counts and SIMD tiers.
 */

#ifndef DNASTORE_API_HEALTH_HH
#define DNASTORE_API_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dnastore {
namespace api {

/** One cluster's probe: the read arena behind one strand. */
struct ClusterHealthEntry
{
    size_t reads = 0;       //!< Live reads (aging loses them).
    bool indexOk = false;   //!< Consensus framed and indexed validly.
    bool claimed = false;   //!< Won its column claim.
    uint64_t column = 0;    //!< Claimed column (valid when indexOk).
    double agreement = 0.0; //!< Mean read/consensus agreement [0, 1].
};

/** One codeword's probe: the RS decode across the unit. */
struct CodewordHealthEntry
{
    bool ok = false;              //!< RS decoded this codeword.
    size_t errorsCorrected = 0;   //!< True errors (cost 2 parity each).
    size_t erasuresCorrected = 0; //!< Erasures (cost 1 parity each).

    /**
     * Remaining correction budget: paritySymbols - (2*errors +
     * erasures). -1 when the codeword failed.
     */
    int margin = 0;
};

/** Unit-level health snapshot (Store::health). */
struct HealthReport
{
    size_t clusters = 0;
    size_t liveReads = 0;       //!< Reads surviving across clusters.
    size_t poolCoverage = 0;    //!< Pool depth when fully populated.
    size_t emptyClusters = 0;   //!< Clusters aged down to zero reads.
    size_t indexFaults = 0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
    size_t agedEpochs = 0;      //!< Decay epochs applied so far.
    bool exact = false;         //!< Full-depth decode was clean.
    double meanAgreement = 0.0; //!< Over non-empty clusters.
    double minAgreement = 0.0;  //!< Over non-empty clusters.
    int minMargin = 0;          //!< Min codeword margin (-1 = failed).
    std::vector<ClusterHealthEntry> perCluster;
    std::vector<CodewordHealthEntry> perCodeword;

    /**
     * Deterministic JSON rendering (fixed key order, locale-proof
     * numbers). @p detail includes the per-cluster and per-codeword
     * arrays; without it only the unit-level summary is emitted.
     */
    std::string toJson(bool detail = true) const;
};

/**
 * When the scrubber repairs a cluster (Store::scrub). The defaults
 * select only clusters that lost their column claim — the minimal
 * "repair what is already failing" policy; raise the thresholds to
 * repair proactively.
 */
struct ScrubOptions
{
    /** Repair clusters with fewer live reads than this. */
    size_t minReads = 0;

    /** Repair clusters whose consensus agreement falls below this. */
    double minAgreement = 0.0;

    /** Rewrite every cluster regardless of margin. */
    bool repairAll = false;
};

/** What one scrub pass did (Store::scrub / ScrubJob artifact). */
struct ScrubReport
{
    size_t clustersScanned = 0;
    size_t lowMargin = 0; //!< Clusters the policy selected.
    size_t repaired = 0;  //!< Clusters rewritten at full depth.
    size_t unrepairable = 0;    //!< Selected but unsafe to rewrite.
    size_t failedCodewords = 0; //!< Codewords failing the probe decode.
    size_t readsRewritten = 0;
    bool repairable = false; //!< Probe decode recovered every codeword.

    /** Deterministic JSON rendering (fixed key order). */
    std::string toJson() const;
};

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_HEALTH_HH

/**
 * @file
 * Status-based error model of the public `dnastore::api` surface.
 *
 * Nothing in `api/` throws across the API boundary: fallible calls
 * return a Status (or a Result<T> carrying a value on success), with
 * a machine-checkable StatusCode and a human-readable message. The
 * codes are a deliberate, stable contract — callers may switch on
 * them — while messages are for logs and terminals and may be
 * reworded between releases.
 *
 * Code semantics:
 *
 *  - Ok                  success; Status::ok() is true.
 *  - InvalidArgument     a parameter failed builder validation
 *                        (rates, geometry, cluster knobs, object
 *                        names). The same checks — and the same
 *                        messages — back the CLI's flag validation.
 *  - NotFound            a named object/resource does not exist.
 *  - AlreadyExists       an object with that name is already stored.
 *  - CapacityExceeded    the payload does not fit one encoding unit.
 *  - FailedPrecondition  the call is valid but not in this state
 *                        (e.g. decoding a unit whose header does not
 *                        parse).
 *  - DataLoss            the channel won: the decoder could not
 *                        reassemble the stored stream.
 *  - Unavailable         no value satisfies the query (e.g. no
 *                        coverage in the searched range decodes
 *                        exactly).
 *  - Internal            an unexpected failure surfaced from the
 *                        lower layers; the message carries the
 *                        original description.
 */

#ifndef DNASTORE_API_STATUS_HH
#define DNASTORE_API_STATUS_HH

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dnastore {
namespace api {

/** Stable error taxonomy of the public API. */
enum class StatusCode
{
    Ok = 0,
    InvalidArgument,
    NotFound,
    AlreadyExists,
    CapacityExceeded,
    FailedPrecondition,
    DataLoss,
    Unavailable,
    Internal,
};

/** Canonical SCREAMING_SNAKE name of a code (stable, log-friendly). */
const char *statusCodeName(StatusCode code);

/** An error code plus a human-readable message; Ok carries neither. */
class Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status okStatus() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }
    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::NotFound, std::move(msg));
    }
    static Status
    alreadyExists(std::string msg)
    {
        return Status(StatusCode::AlreadyExists, std::move(msg));
    }
    static Status
    capacityExceeded(std::string msg)
    {
        return Status(StatusCode::CapacityExceeded, std::move(msg));
    }
    static Status
    failedPrecondition(std::string msg)
    {
        return Status(StatusCode::FailedPrecondition, std::move(msg));
    }
    static Status
    dataLoss(std::string msg)
    {
        return Status(StatusCode::DataLoss, std::move(msg));
    }
    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::Unavailable, std::move(msg));
    }
    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "INVALID_ARGUMENT: <message>". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A Status or a value: the return type of fallible API calls that
 * produce something. Constructible implicitly from either a T or a
 * non-Ok Status, so `return Status::notFound(...)` and
 * `return std::move(bytes)` both work from the same function.
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be Ok (asserted). */
    Result(Status status) : status_(std::move(status))
    {
        assert(!status_.ok() && "Result error ctor needs a non-Ok Status");
        // An Ok status without a value would make ok() lie; demote it
        // so release builds stay safe.
        if (status_.ok())
            status_ = Status::internal("Result constructed from Ok status "
                                       "without a value");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    /** The value; only meaningful when ok(). */
    T &value() { return assertOk(), *value_; }
    const T &value() const { return assertOk(), *value_; }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    void
    assertOk() const
    {
        assert(value_.has_value() && "Result::value() on an error Result");
    }

    Status status_;
    std::optional<T> value_;
};

} // namespace api
} // namespace dnastore

#endif // DNASTORE_API_STATUS_HH

#include "api/store.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "api/pool_file.hh"
#include "dna/strand.hh"
#include "pipeline/simulator.hh"
#include "util/parallel.hh"

namespace dnastore {
namespace api {

const char *
version()
{
    return "0.7.0";
}

std::string
EncodedArtifact::text() const
{
    std::string out = header;
    out += '\n';
    for (const auto &strand : strands) {
        out += strand;
        out += '\n';
    }
    return out;
}

namespace {

/** A Future that is already resolved (builder errors, bad state). */
template <typename T>
Future<Result<T>>
readyFuture(Status status)
{
    std::promise<Result<T>> promise;
    promise.set_value(Result<T>(std::move(status)));
    return Future<Result<T>>(promise.get_future());
}

Retrieval
mapRetrieval(const RetrievalResult &result)
{
    Retrieval out;
    out.coverage = result.coverage;
    out.exact = result.exactPayload;
    out.decoded = result.decoded.bundleOk;
    out.objects = result.decoded.bundle;
    out.correctedErrors = result.decoded.stats.totalCorrected();
    out.erasedColumns = result.decoded.stats.erasedColumns;
    out.failedCodewords = result.decoded.stats.failedCodewords;
    out.indexFaults = result.decoded.stats.indexFaults;
    out.errorsPerCodeword = result.decoded.stats.errorsPerCodeword;
    return out;
}

HealthReport
mapHealth(const UnitHealth &health)
{
    HealthReport out;
    out.clusters = health.clusters;
    out.liveReads = health.liveReads;
    out.poolCoverage = health.poolCoverage;
    out.emptyClusters = health.emptyClusters;
    out.indexFaults = health.indexFaults;
    out.erasedColumns = health.erasedColumns;
    out.failedCodewords = health.failedCodewords;
    out.agedEpochs = health.agedEpochs;
    out.exact = health.exact;
    out.meanAgreement = health.meanAgreement;
    out.minAgreement = health.minAgreement;
    out.minMargin = health.minMargin;
    out.perCluster.reserve(health.perCluster.size());
    for (const ClusterHealth &c : health.perCluster)
        out.perCluster.push_back(
            { c.reads, c.indexOk, c.claimed, c.column, c.agreement });
    out.perCodeword.reserve(health.perCodeword.size());
    for (const CodewordHealth &cw : health.perCodeword)
        out.perCodeword.push_back({ cw.ok, cw.errorsCorrected,
                                    cw.erasuresCorrected, cw.margin });
    return out;
}

/**
 * ScrubOptions is a plain struct (no builder), so the non-finite gate
 * lives at the two consumption points: a NaN minAgreement would make
 * every `agreement < minAgreement` comparison false and silently turn
 * the policy into a no-op.
 */
Status
checkScrubOptions(const ScrubOptions &options)
{
    if (!std::isfinite(options.minAgreement))
        return Status::invalidArgument(formatMessage(
            "scrub min-agreement must be finite (got %g)",
            options.minAgreement));
    return Status();
}

ScrubPolicy
mapScrubOptions(const ScrubOptions &options)
{
    ScrubPolicy policy;
    policy.minReads = options.minReads;
    policy.minAgreement = options.minAgreement;
    policy.repairAll = options.repairAll;
    return policy;
}

ScrubReport
mapScrubReport(const PoolScrubReport &report)
{
    ScrubReport out;
    out.clustersScanned = report.clustersScanned;
    out.lowMargin = report.lowMargin;
    out.repaired = report.repaired;
    out.unrepairable = report.unrepairable;
    out.failedCodewords = report.failedCodewords;
    out.readsRewritten = report.readsRewritten;
    out.repairable = report.repairable;
    return out;
}

std::string
unitHeader(const StorageConfig &cfg, LayoutScheme scheme)
{
    std::string header = formatMessage(
        "#dnastore m=%u rows=%zu parity=%zu primer=%zu scheme=%s",
        cfg.symbolBits, cfg.rows, cfg.paritySymbols, cfg.primerLen,
        layoutSchemeName(scheme));
    // The primer pair derives from primerKey; a non-default key must
    // survive the artifact or DecodeJob would search for the wrong
    // primers. Omitted for the default so pre-existing unit files
    // (which never carried a key) stay byte-identical.
    if (cfg.primerKey != 1)
        header += formatMessage(" key=%llu",
                                (unsigned long long)cfg.primerKey);
    return header;
}

} // namespace

/** Everything behind the façade. Heap-allocated so submitted jobs can
 *  hold a stable pointer across Store moves. */
struct Store::Rep
{
    StoreOptions options;
    ChannelOptions channel;
    FileBundle bundle;
    /**
     * Shared so an in-flight async job keeps its simulator snapshot
     * alive even when a later put()+retrieve rebuilds the unit: the
     * job captures the shared_ptr, the Rep just swaps in a new one.
     */
    std::shared_ptr<StorageSimulator> sim;

    /** sim holds an encoded unit (prepare() at least). */
    bool prepared = false;

    /** sim also holds read pools (store()). */
    bool synthesized = false;

    /** Objects changed since sim was built. */
    bool dirty = true;

    /** Geometry sim was built with (autoGeometry re-resolves). */
    StorageConfig resolvedCfg;

    /**
     * Memoized configured-coverage retrieval: deterministic for a
     * fixed channel while the unit is clean, so N get() calls cost
     * one decode pass, not N. Invalidated by put() and rebuilds.
     */
    std::shared_ptr<const Retrieval> lastRetrieval;

    /**
     * Pool mutation counter, bumped by every repair that lands (sync
     * age()/scrub() and — on their own thread — in-flight ScrubJobs).
     * retrieveCached() serves the memo only when the generation it
     * was decoded at still matches, so a stale memo can never serve
     * pre-repair bytes. Shared so a ScrubJob outliving a Store move
     * still invalidates through it.
     */
    std::shared_ptr<std::atomic<uint64_t>> poolGeneration =
        std::make_shared<std::atomic<uint64_t>>(0);

    /** Value of *poolGeneration when lastRetrieval was decoded. */
    uint64_t memoGeneration = 0;

    /** openFile(OpenMode::ReadOnly): put() is FailedPrecondition. */
    bool readOnly = false;

    /**
     * Slack auto-geometry keeps between the payload and the preset's
     * capacity (the directory grows between check and encode).
     */
    static constexpr size_t kAutoSlackBits = 1024;

    /**
     * The geometry a payload of @p serialized_bits would resolve to —
     * the ONE capacity source of truth: resolveConfig() asks it about
     * the stored objects, put()'s admission control asks it about the
     * candidate bundle, so the two can never disagree about what
     * fits.
     */
    Result<StorageConfig>
    resolveConfigFor(size_t serialized_bits) const
    {
        if (!options.autoGeometry()) {
            StorageConfig cfg = options.config();
            if (serialized_bits > cfg.capacityBits())
                return Status::capacityExceeded(formatMessage(
                    "payload (%zu bytes serialized) exceeds the unit "
                    "capacity (%zu bytes)",
                    serialized_bits / 8, cfg.capacityBytes()));
            return cfg;
        }
        // The CLI's behavior: smallest preset that fits, with slack
        // for the directory growing between check and encode.
        for (StorageConfig cfg : { StorageConfig::tinyTest(),
                                   StorageConfig::benchScale() }) {
            cfg.numThreads = options.config().numThreads;
            cfg.packedReadPools = options.config().packedReadPools;
            if (serialized_bits + kAutoSlackBits <= cfg.capacityBits())
                return cfg;
        }
        return Status::capacityExceeded(formatMessage(
            "payload too large for one unit (max ~%zu bytes)",
            StorageConfig::benchScale().capacityBytes()));
    }

    Result<StorageConfig>
    resolveConfig() const
    {
        return resolveConfigFor(bundle.serializedBits());
    }

    /** Encode (and pool) the unit; @p with_pools = store() vs prepare(). */
    Status
    build(bool with_pools)
    {
        Result<StorageConfig> cfg = resolveConfig();
        if (!cfg.ok())
            return cfg.status();
        try {
            sim = std::make_shared<StorageSimulator>(
                *cfg, options.layout(), channel.channelProfile(),
                options.unitSeed());
            if (with_pools)
                sim->store(bundle, channel.maxCoverage());
            else
                sim->prepare(bundle);
        } catch (const std::exception &e) {
            // A half-built unit must not satisfy a later
            // ensure*(): drop the simulator AND the clean flags so
            // the next call rebuilds from scratch.
            sim.reset();
            prepared = false;
            synthesized = false;
            dirty = true;
            lastRetrieval.reset();
            return Status::internal(e.what());
        }
        resolvedCfg = *cfg;
        prepared = true;
        synthesized = with_pools;
        dirty = false;
        lastRetrieval.reset();
        return Status();
    }

    Status
    ensureSynthesized()
    {
        if (synthesized && !dirty)
            return Status();
        return build(/*with_pools=*/true);
    }

    Status
    ensurePrepared()
    {
        if (prepared && !dirty)
            return Status();
        return build(/*with_pools=*/false);
    }
};

Store::Store(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
Store::Store(Store &&) noexcept = default;
Store &Store::operator=(Store &&) noexcept = default;
Store::~Store() = default;

Result<Store>
Store::open(const StoreOptions &options, const ChannelOptions &channel)
{
    Status status = options.validate();
    if (!status.ok())
        return status;
    status = channel.validate();
    if (!status.ok())
        return status;
    auto rep = std::make_unique<Rep>();
    rep->options = options;
    rep->channel = channel;
    return Store(std::move(rep));
}

Result<Store>
Store::openFile(const std::string &path, const ChannelOptions &channel,
                const OpenOptions &open_options)
{
    Result<PoolFileContents> contents = readPoolFile(path);
    if (!contents.ok())
        return contents.status();
    return openContents(std::move(*contents), channel, open_options,
                        path);
}

Result<Store>
Store::openContents(PoolFileContents file, const ChannelOptions &channel,
                    const OpenOptions &open_options,
                    const std::string &origin)
{
    Status status = channel.validate();
    if (!status.ok())
        return status;

    // The saved pools bound what this store can retrieve at; a
    // channel that would draw deeper must say so now, not DataLoss
    // later.
    if (file.hasPools && channel.maxCoverage() > file.poolMaxCoverage)
        return Status::failedPrecondition(formatMessage(
            "the channel needs pool depth %zu but '%s' holds pools "
            "of depth %zu (reopen with a shallower channel, or "
            "re-save with a deeper one)",
            channel.maxCoverage(), origin.c_str(),
            file.poolMaxCoverage));

    // Runtime knobs come from the opening process, never the file.
    StorageConfig cfg = file.config;
    cfg.numThreads = open_options.threads;
    cfg.packedReadPools = open_options.packedReadPools;

    StoreOptions store_options;
    store_options.config(cfg)
        .layout(file.scheme)
        .unitSeed(file.unitSeed);
    status = store_options.validate();
    if (!status.ok())
        return status;

    auto rep = std::make_unique<Rep>();
    rep->options = store_options;
    rep->channel = channel;
    rep->bundle = file.manifest;
    rep->readOnly = open_options.mode == OpenMode::ReadOnly;
    try {
        rep->sim = std::make_shared<StorageSimulator>(
            cfg, file.scheme, channel.channelProfile(),
            file.unitSeed);
        if (file.hasPools)
            rep->sim->restore(file.manifest, file.pools,
                              file.poolMaxCoverage);
        else
            rep->sim->prepare(file.manifest);
    } catch (const std::invalid_argument &e) {
        return Status::failedPrecondition(formatMessage(
            "'%s' cannot be restored: %s", origin.c_str(), e.what()));
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
    // Integrity cross-check: every section already passed its
    // checksum, but the sections must also agree with EACH OTHER —
    // re-encoding the saved manifest under the saved geometry must
    // reproduce the saved unit exactly, or the file pairs a manifest
    // with somebody else's strands.
    if (rep->sim->unit().payloadBits != file.payloadBits ||
        rep->sim->unit().strands != file.strands)
        return Status::dataLoss(formatMessage(
            "'%s': the unit section does not match the manifest's "
            "re-encoding (sections are individually intact but "
            "mutually inconsistent)",
            origin.c_str()));
    rep->resolvedCfg = cfg;
    rep->prepared = true;
    rep->synthesized = file.hasPools;
    rep->dirty = false;
    return Store(std::move(rep));
}

Status
Store::save(const std::string &path, bool with_pools)
{
    Status status = with_pools ? rep_->ensureSynthesized()
                               : rep_->ensurePrepared();
    if (!status.ok())
        return status;
    PoolFileContents contents;
    contents.config = rep_->resolvedCfg;
    contents.scheme = rep_->options.layout();
    contents.unitSeed = rep_->options.unitSeed();
    contents.manifest = rep_->bundle;
    contents.payloadBits = rep_->sim->unit().payloadBits;
    contents.strands = rep_->sim->unit().strands;
    if (with_pools && rep_->sim->hasPool()) {
        contents.hasPools = true;
        contents.poolMaxCoverage = rep_->sim->poolCoverage();
        try {
            contents.pools = rep_->sim->snapshotPool();
        } catch (const std::exception &e) {
            return Status::internal(e.what());
        }
    }
    return writePoolFile(path, contents);
}

bool
Store::readOnly() const
{
    return rep_->readOnly;
}

Status
Store::put(const std::string &name, std::vector<uint8_t> data)
{
    if (rep_->readOnly)
        return Status::failedPrecondition(
            "the store was opened read-only; put() is not available");
    if (const char *err = FileBundle::checkName(name))
        return Status::invalidArgument(err);
    if (rep_->bundle.find(name))
        return Status::alreadyExists(formatMessage(
            "an object named '%s' is already stored", name.c_str()));
    // The directory's fixed-width fields cap object size and count;
    // pre-check so the no-throw boundary never sees add() throw.
    if (const char *err =
            FileBundle::checkAdd(rep_->bundle.fileCount(), data.size()))
        return Status::invalidArgument(err);

    // Admission control: reject an object that cannot fit the unit
    // now, instead of failing synthesis later. Directory cost per
    // object: 1 length byte + name + u32 size. The verdict comes from
    // resolveConfigFor — the same source of truth synthesis resolves
    // against — so admission and encoding can never disagree.
    const size_t candidate_bits = rep_->bundle.serializedBits() +
        (1 + name.size() + 4 + data.size()) * 8;
    Result<StorageConfig> cfg = rep_->resolveConfigFor(candidate_bits);
    if (!cfg.ok())
        return Status::capacityExceeded(formatMessage(
            "object '%s' (%zu bytes) would overflow the unit: %s",
            name.c_str(), data.size(),
            cfg.status().message().c_str()));

    rep_->bundle.add(name, std::move(data));
    rep_->dirty = true;
    rep_->lastRetrieval.reset();
    return Status();
}

std::vector<ObjectInfo>
Store::list() const
{
    std::vector<ObjectInfo> out;
    out.reserve(rep_->bundle.fileCount());
    for (const auto &file : rep_->bundle.files())
        out.push_back({ file.name, file.data.size() });
    return out;
}

bool
Store::contains(const std::string &name) const
{
    return rep_->bundle.find(name) != nullptr;
}

size_t
Store::objectCount() const
{
    return rep_->bundle.fileCount();
}

size_t
Store::totalBytes() const
{
    return rep_->bundle.totalBytes();
}

Status
Store::synthesize()
{
    return rep_->build(/*with_pools=*/true);
}

Result<std::shared_ptr<const Retrieval>>
Store::retrieveCached()
{
    // The pool-backed retrieval cannot combine gamma coverage with
    // the real clusterer (retrieveClustered reads fixed pool
    // prefixes); per-trial read generation (TrialJob) can.
    if (rep_->channel.hasGamma() && rep_->channel.hasCluster())
        return Status::invalidArgument(
            "cluster and gamma-mean/gamma-shape cannot be combined");
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    // Clean store + fixed channel = deterministic result; serve the
    // memoized pass (ensureSynthesized left it in place) — unless a
    // repair landed since it was decoded (age(), scrub(), or an
    // async ScrubJob bump the pool generation).
    if (rep_->lastRetrieval &&
        rep_->memoGeneration == rep_->poolGeneration->load())
        return rep_->lastRetrieval;
    rep_->lastRetrieval.reset();
    // Sampled BEFORE the decode: a repair landing mid-pass leaves the
    // memo stamped stale, so the next call decodes again.
    const uint64_t generation = rep_->poolGeneration->load();
    const ChannelOptions &chan = rep_->channel;
    try {
        Retrieval out;
        if (chan.hasGamma()) {
            out = mapRetrieval(rep_->sim->retrieveGamma(
                chan.gammaMean(), chan.gammaShape(),
                chan.drawSeed()));
        } else if (chan.hasCluster()) {
            ClusteredRetrievalResult clustered =
                rep_->sim->retrieveClustered(chan.fixedCoverage(),
                                             chan.clusterParams());
            out = mapRetrieval(clustered.result);
            out.clustered = true;
            out.clustersFound = clustered.clustersFound;
            out.precision = clustered.quality.precision;
            out.recall = clustered.quality.recall;
        } else {
            out = mapRetrieval(
                rep_->sim->retrieve(chan.fixedCoverage()));
        }
        rep_->memoGeneration = generation;
        rep_->lastRetrieval =
            std::make_shared<const Retrieval>(std::move(out));
        return rep_->lastRetrieval;
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Result<Retrieval>
Store::retrieveAll()
{
    Result<std::shared_ptr<const Retrieval>> cached =
        retrieveCached();
    if (!cached.ok())
        return cached.status();
    return **cached;
}

Result<Retrieval>
Store::retrieveAt(size_t coverage)
{
    if (coverage == 0)
        return Status::invalidArgument("coverage must be >= 1");
    if (coverage > rep_->channel.maxCoverage())
        return Status::invalidArgument(formatMessage(
            "coverage %zu exceeds the synthesized pool depth %zu",
            coverage, rep_->channel.maxCoverage()));
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    try {
        return mapRetrieval(rep_->sim->retrieve(coverage));
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Result<std::vector<uint8_t>>
Store::get(const std::string &name)
{
    if (!rep_->bundle.find(name))
        return Status::notFound(
            formatMessage("no object named '%s'", name.c_str()));
    // Read through the shared memo: repeated gets cost one decode
    // pass and copy only the requested object's bytes.
    Result<std::shared_ptr<const Retrieval>> cached =
        retrieveCached();
    if (!cached.ok())
        return cached.status();
    const Retrieval &retrieval = **cached;
    if (!retrieval.decoded)
        return Status::dataLoss(formatMessage(
            "the channel defeated the decoder (%zu codewords failed, "
            "%zu columns erased); the directory is unrecoverable",
            retrieval.failedCodewords, retrieval.erasedColumns));
    if (!retrieval.exact)
        return Status::dataLoss(formatMessage(
            "the unit decoded with errors (%zu codewords failed); "
            "retrieveAll() exposes the partial recovery",
            retrieval.failedCodewords));
    const NamedFile *file = retrieval.objects.find(name);
    if (file == nullptr)
        return Status::dataLoss(formatMessage(
            "object '%s' missing from the recovered directory",
            name.c_str()));
    return file->data;
}

Result<size_t>
Store::minExactCoverage(size_t lo, size_t hi)
{
    if (lo == 0 || hi < lo)
        return Status::invalidArgument(formatMessage(
            "coverage range [%zu, %zu] is empty or starts at 0", lo,
            hi));
    if (hi > rep_->channel.maxCoverage())
        return Status::invalidArgument(formatMessage(
            "coverage %zu exceeds the synthesized pool depth %zu", hi,
            rep_->channel.maxCoverage()));
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    try {
        std::optional<size_t> min_cov =
            rep_->sim->minCoverageForExact(lo, hi);
        if (!min_cov)
            return Status::unavailable(formatMessage(
                "no coverage in [%zu, %zu] decodes exactly", lo, hi));
        return *min_cov;
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Result<HealthReport>
Store::health()
{
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    try {
        return mapHealth(rep_->sim->probeHealth());
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Result<size_t>
Store::age(size_t epochs)
{
    if (rep_->readOnly)
        return Status::failedPrecondition(
            "the store was opened read-only; age() is not available");
    if (!rep_->channel.hasAging())
        return Status::failedPrecondition(
            "the channel has no aging profile; set "
            "ChannelOptions::aging before calling age()");
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    try {
        size_t lost = rep_->sim->age(epochs);
        rep_->poolGeneration->fetch_add(1);
        rep_->lastRetrieval.reset();
        return lost;
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Result<ScrubReport>
Store::scrub(const ScrubOptions &options)
{
    if (rep_->readOnly)
        return Status::failedPrecondition(
            "the store was opened read-only; scrub() is not "
            "available");
    if (Status bad = checkScrubOptions(options); !bad.ok())
        return bad;
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return status;
    try {
        PoolScrubReport report =
            rep_->sim->scrub(mapScrubOptions(options));
        if (report.repaired > 0) {
            rep_->poolGeneration->fetch_add(1);
            rep_->lastRetrieval.reset();
        }
        if (!report.repairable && report.lowMargin > 0)
            return Status::unavailable(formatMessage(
                "%zu clusters need repair but %zu codewords failed at "
                "the current read depth, so the recovered data cannot "
                "be trusted for rewriting; retry after re-synthesis "
                "or at deeper coverage",
                report.lowMargin, report.failedCodewords));
        return mapScrubReport(report);
    } catch (const std::exception &e) {
        return Status::internal(e.what());
    }
}

Future<Result<EncodedArtifact>>
Store::submit(const EncodeJob &)
{
    if (!rep_)
        return readyFuture<EncodedArtifact>(Status::unavailable(
            "the store was moved from or torn down; nothing can be "
            "submitted against it"));
    Result<StorageConfig> cfg = rep_->resolveConfig();
    if (!cfg.ok())
        return readyFuture<EncodedArtifact>(cfg.status());
    // Snapshot the objects now: later put() calls must not race the
    // running job.
    return Future<Result<EncodedArtifact>>(std::async(
        std::launch::async,
        [cfg = *cfg, scheme = rep_->options.layout(),
         bundle = rep_->bundle]() -> Result<EncodedArtifact> {
            try {
                UnitEncoder encoder(cfg, scheme);
                EncodedUnit unit = encoder.encode(bundle);
                EncodedArtifact artifact;
                artifact.header = unitHeader(cfg, scheme);
                artifact.strands.reserve(unit.strands.size());
                for (const auto &strand : unit.strands)
                    artifact.strands.push_back(strandToString(strand));
                artifact.payloadBits = unit.payloadBits;
                artifact.config = cfg;
                artifact.scheme = scheme;
                return artifact;
            } catch (const std::exception &e) {
                return Status::internal(e.what());
            }
        }));
}

Future<Result<DecodedObjects>>
Store::submit(const DecodeJob &job)
{
    if (!rep_)
        return readyFuture<DecodedObjects>(Status::unavailable(
            "the store was moved from or torn down; nothing can be "
            "submitted against it"));
    return Future<Result<DecodedObjects>>(std::async(
        std::launch::async,
        [text = job.text,
         threads = rep_->options.config().numThreads]()
            -> Result<DecodedObjects> {
            // Parse the self-describing header. Unit files may carry
            // CRLF line endings (they travel through mail and
            // Windows editors); the parser strips the '\r' so the
            // trailing field never absorbs it.
            size_t eol = text.find('\n');
            std::string header = text.substr(
                0, eol == std::string::npos ? text.size() : eol);
            if (!header.empty() && header.back() == '\r')
                header.pop_back();
            StorageConfig cfg;
            char scheme_name[32] = "gini";
            unsigned m = 0;
            size_t rows = 0, parity = 0, primer = 0;
            int consumed = 0;
            if (std::sscanf(header.c_str(),
                            "#dnastore m=%u rows=%zu parity=%zu "
                            "primer=%zu scheme=%31s%n",
                            &m, &rows, &parity, &primer, scheme_name,
                            &consumed) != 5)
                return Status::failedPrecondition("bad unit header");
            cfg.symbolBits = m;
            cfg.rows = rows;
            cfg.paritySymbols = parity;
            cfg.primerLen = primer;
            cfg.numThreads = threads;
            // Optional key= field (written only for non-default
            // primer keys; older unit files never carry it). The
            // primer pair derives from this key, so a value that
            // does not parse exactly must be an error — silently
            // decoding with key 0 would search for the wrong primers
            // and mis-frame every strand.
            // Editors and copy-paste leave stray blanks around the
            // header; any run of spaces/tabs before the field or at
            // end of line is framing, not a trailing field.
            std::string rest = header.substr(size_t(consumed));
            const size_t first = rest.find_first_not_of(" \t");
            const size_t last = rest.find_last_not_of(" \t");
            rest = first == std::string::npos
                ? std::string()
                : rest.substr(first, last - first + 1);
            if (!rest.empty()) {
                if (rest.compare(0, 4, "key=") != 0)
                    return Status::failedPrecondition(formatMessage(
                        "unrecognized trailing field in unit header: "
                        "'%s'",
                        rest.c_str()));
                const char *digits = rest.c_str() + 4;
                if (!std::isdigit(
                        static_cast<unsigned char>(*digits)))
                    return Status::failedPrecondition(formatMessage(
                        "malformed key= field in unit header: '%s' "
                        "is not an unsigned integer",
                        digits));
                errno = 0;
                char *end = nullptr;
                unsigned long long key =
                    std::strtoull(digits, &end, 10);
                if (errno == ERANGE || *end != '\0')
                    return Status::failedPrecondition(formatMessage(
                        "malformed key= field in unit header: '%s' "
                        "is not an unsigned 64-bit integer",
                        digits));
                cfg.primerKey = key;
            }
            bool scheme_ok = true;
            LayoutScheme scheme =
                layoutSchemeFromName(scheme_name, &scheme_ok);
            if (!scheme_ok)
                return Status::failedPrecondition(formatMessage(
                    "unknown scheme '%s' in unit header", scheme_name));
            if (const char *err = cfg.check())
                return Status::failedPrecondition(err);

            try {
                // Each line is one read; a noiseless unit file makes
                // each line its own single-read cluster.
                std::vector<std::vector<Strand>> clusters;
                size_t line_no = 1;
                size_t pos =
                    eol == std::string::npos ? text.size() : eol + 1;
                while (pos < text.size()) {
                    size_t next = text.find('\n', pos);
                    if (next == std::string::npos)
                        next = text.size();
                    ++line_no;
                    size_t len = next - pos;
                    // Tolerate CRLF: the '\r' is line framing, not a
                    // (bogus) base.
                    if (len > 0 && text[pos + len - 1] == '\r')
                        --len;
                    if (len > 0 && text[pos] != '#') {
                        try {
                            clusters.push_back({ strandFromString(
                                text.substr(pos, len)) });
                        } catch (const std::invalid_argument &) {
                            // A non-ACGT character is a malformed
                            // artifact, not an internal failure.
                            return Status::failedPrecondition(
                                formatMessage(
                                    "unit file line %zu is not a DNA "
                                    "strand (non-ACGT character)",
                                    line_no));
                        }
                    }
                    pos = next + 1;
                }
                UnitDecoder decoder(cfg, scheme);
                DecodedUnit unit = decoder.decode(clusters);
                if (!unit.bundleOk)
                    return Status::dataLoss(
                        "decoding failed (unrecoverable unit)");
                DecodedObjects out;
                out.files = unit.bundle.files();
                out.exact = unit.exact;
                out.correctedErrors = unit.stats.totalCorrected();
                out.erasedColumns = unit.stats.erasedColumns;
                out.failedCodewords = unit.stats.failedCodewords;
                return out;
            } catch (const std::exception &e) {
                return Status::internal(e.what());
            }
        }));
}

Future<Result<TrialSeries>>
Store::submit(const TrialJob &job)
{
    if (!rep_)
        return readyFuture<TrialSeries>(Status::unavailable(
            "the store was moved from or torn down; nothing can be "
            "submitted against it"));
    if (job.useClusterer && !rep_->channel.hasCluster())
        return readyFuture<TrialSeries>(Status::failedPrecondition(
            "TrialJob.useClusterer needs ClusterOptions on the "
            "store's channel"));
    if (job.agingEpochs > 0) {
        // The aging loop owns a trial-local fixed-depth pool; the
        // per-trial gamma/clusterer machinery does not compose with
        // epoch-wise decay (and has no pool for scrub to rewrite).
        if (job.useClusterer || rep_->channel.hasGamma())
            return readyFuture<TrialSeries>(Status::failedPrecondition(
                "TrialJob.agingEpochs needs fixed coverage without "
                "the clusterer (gamma coverage and useClusterer do "
                "not compose with the aging loop)"));
        if (!rep_->channel.hasAging())
            return readyFuture<TrialSeries>(Status::failedPrecondition(
                "TrialJob.agingEpochs needs an aging profile on the "
                "store's channel (ChannelOptions::aging)"));
    }
    // Encoding happens on the submitting thread so concurrent jobs
    // only ever touch the simulator through const trial paths.
    Status status = rep_->ensurePrepared();
    if (!status.ok())
        return readyFuture<TrialSeries>(std::move(status));

    // The shared_ptr keeps this simulator snapshot alive for the
    // job's whole run, even if a later put()+retrieve rebuilds the
    // store's unit. The cluster params are copied for the same
    // reason.
    std::shared_ptr<const StorageSimulator> sim = rep_->sim;
    CoverageModel coverage = rep_->channel.coverageModel();
    std::shared_ptr<const ClusterParams> cluster;
    if (job.useClusterer)
        cluster = std::make_shared<const ClusterParams>(
            rep_->channel.clusterParams());
    const size_t aging_epochs = job.agingEpochs;
    const bool scrub_each_epoch = job.scrubEachEpoch;
    const ScrubPolicy policy = mapScrubOptions(job.scrub);
    const size_t fixed_coverage = rep_->channel.fixedCoverage();
    return Future<Result<TrialSeries>>(std::async(
        std::launch::async,
        [sim, coverage, cluster, seeds = job.trialSeeds,
         threads = job.threads, aging_epochs, scrub_each_epoch,
         policy, fixed_coverage]() -> Result<TrialSeries> {
            try {
                TrialSeries series;
                series.trials.resize(seeds.size());
                // Per-trial seeds were pre-drawn serially by the
                // caller and every trial writes its own slot, so the
                // series is bit-identical for every thread count and
                // steal schedule (the Scenario Lab contract).
                parallelFor(seeds.size(), threads, [&](size_t t) {
                    TrialResult &rec = series.trials[t];
                    if (aging_epochs > 0) {
                        AgingTrialOutcome outcome = sim->runAgingTrial(
                            fixed_coverage, seeds[t], aging_epochs,
                            scrub_each_epoch, policy);
                        rec.epochSuccess = outcome.epochSuccess;
                        rec.success = !outcome.epochSuccess.empty() &&
                            outcome.epochSuccess.back() != 0;
                        rec.byteErrorRate =
                            outcome.epochByteErrorRate.empty()
                                ? 0.0
                                : outcome.epochByteErrorRate.back();
                        rec.readsLost = outcome.readsLost;
                        rec.scrubRepaired = outcome.repaired;
                        return;
                    }
                    TrialOutcome outcome =
                        sim->runTrial(coverage, seeds[t],
                                      cluster.get());
                    rec.success = outcome.result.exactPayload;
                    rec.byteErrorRate = outcome.byteErrorRate;
                    rec.erasedColumns =
                        outcome.result.decoded.stats.erasedColumns;
                    rec.failedCodewords =
                        outcome.result.decoded.stats.failedCodewords;
                    rec.correctedErrors =
                        outcome.result.decoded.stats.totalCorrected();
                    rec.readsGenerated = outcome.readsGenerated;
                    rec.clustersDropped = outcome.clustersDropped;
                    rec.precision = outcome.quality.precision;
                    rec.recall = outcome.quality.recall;
                });
                return series;
            } catch (const std::exception &e) {
                return Status::internal(e.what());
            }
        }));
}

Future<Result<ScrubReport>>
Store::submit(const ScrubJob &job)
{
    if (!rep_)
        return readyFuture<ScrubReport>(Status::unavailable(
            "the store was moved from or torn down; nothing can be "
            "submitted against it"));
    if (rep_->readOnly)
        return readyFuture<ScrubReport>(Status::failedPrecondition(
            "the store was opened read-only; scrub is not available"));
    if (Status bad = checkScrubOptions(job.options); !bad.ok())
        return readyFuture<ScrubReport>(std::move(bad));
    Status status = rep_->ensureSynthesized();
    if (!status.ok())
        return readyFuture<ScrubReport>(std::move(status));

    // Unlike the other jobs this one MUTATES the shared simulator
    // (that is its purpose: the repairs must land in the store's
    // pool). The generation counter travels as a shared_ptr so the
    // memo is invalidated even if the Store moves while the job runs.
    std::shared_ptr<StorageSimulator> sim = rep_->sim;
    std::shared_ptr<std::atomic<uint64_t>> generation =
        rep_->poolGeneration;
    const ScrubPolicy policy = mapScrubOptions(job.options);
    return Future<Result<ScrubReport>>(std::async(
        std::launch::async,
        [sim, generation, policy]() -> Result<ScrubReport> {
            try {
                PoolScrubReport report = sim->scrub(policy);
                if (report.repaired > 0)
                    generation->fetch_add(1);
                if (!report.repairable && report.lowMargin > 0)
                    return Status::unavailable(formatMessage(
                        "%zu clusters need repair but %zu codewords "
                        "failed at the current read depth, so the "
                        "recovered data cannot be trusted for "
                        "rewriting; retry after re-synthesis or at "
                        "deeper coverage",
                        report.lowMargin, report.failedCodewords));
                return mapScrubReport(report);
            } catch (const std::exception &e) {
                return Status::internal(e.what());
            }
        }));
}

const StoreOptions &
Store::options() const
{
    return rep_->options;
}

const ChannelOptions &
Store::channel() const
{
    return rep_->channel;
}

StorageConfig
Store::unitConfig() const
{
    Result<StorageConfig> cfg = rep_->resolveConfig();
    return cfg.ok() ? *cfg : rep_->options.config();
}

size_t
Store::capacityBytes() const
{
    return unitConfig().capacityBytes();
}

size_t
Store::strandCount() const
{
    return rep_->prepared && !rep_->dirty
        ? rep_->sim->unit().strands.size()
        : 0;
}

} // namespace api
} // namespace dnastore

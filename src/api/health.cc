#include "api/health.hh"

#include <cstdio>
#include <sstream>

namespace dnastore {
namespace api {

namespace {

/**
 * %.12g with the decimal separator normalized to '.' — snprintf
 * honors LC_NUMERIC, and the byte-identity contract of these
 * renderings must not depend on the host program's locale.
 */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    std::string out = buf;
    for (auto &c : out) {
        if (c == ',')
            c = '.';
    }
    return out;
}

const char *
fmtBool(bool b)
{
    return b ? "true" : "false";
}

} // namespace

std::string
HealthReport::toJson(bool detail) const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"clusters\": " << clusters << ",\n";
    out << "  \"live_reads\": " << liveReads << ",\n";
    out << "  \"pool_coverage\": " << poolCoverage << ",\n";
    out << "  \"empty_clusters\": " << emptyClusters << ",\n";
    out << "  \"index_faults\": " << indexFaults << ",\n";
    out << "  \"erased_columns\": " << erasedColumns << ",\n";
    out << "  \"failed_codewords\": " << failedCodewords << ",\n";
    out << "  \"aged_epochs\": " << agedEpochs << ",\n";
    out << "  \"exact\": " << fmtBool(exact) << ",\n";
    out << "  \"mean_agreement\": " << fmtDouble(meanAgreement) << ",\n";
    out << "  \"min_agreement\": " << fmtDouble(minAgreement) << ",\n";
    out << "  \"min_margin\": " << minMargin;
    if (detail) {
        out << ",\n  \"per_cluster\": [\n";
        for (size_t c = 0; c < perCluster.size(); ++c) {
            const ClusterHealthEntry &e = perCluster[c];
            out << "    {\"reads\": " << e.reads
                << ", \"index_ok\": " << fmtBool(e.indexOk)
                << ", \"claimed\": " << fmtBool(e.claimed)
                << ", \"column\": " << e.column
                << ", \"agreement\": " << fmtDouble(e.agreement) << "}"
                << (c + 1 < perCluster.size() ? "," : "") << "\n";
        }
        out << "  ],\n  \"per_codeword\": [\n";
        for (size_t j = 0; j < perCodeword.size(); ++j) {
            const CodewordHealthEntry &e = perCodeword[j];
            out << "    {\"ok\": " << fmtBool(e.ok)
                << ", \"errors_corrected\": " << e.errorsCorrected
                << ", \"erasures_corrected\": " << e.erasuresCorrected
                << ", \"margin\": " << e.margin << "}"
                << (j + 1 < perCodeword.size() ? "," : "") << "\n";
        }
        out << "  ]";
    }
    out << "\n}\n";
    return out.str();
}

std::string
ScrubReport::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"clusters_scanned\": " << clustersScanned << ",\n";
    out << "  \"low_margin\": " << lowMargin << ",\n";
    out << "  \"repaired\": " << repaired << ",\n";
    out << "  \"unrepairable\": " << unrepairable << ",\n";
    out << "  \"failed_codewords\": " << failedCodewords << ",\n";
    out << "  \"reads_rewritten\": " << readsRewritten << ",\n";
    out << "  \"repairable\": " << fmtBool(repairable) << "\n";
    out << "}\n";
    return out.str();
}

} // namespace api
} // namespace dnastore

#include "util/simd.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define DNASTORE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dnastore {
namespace simd {

namespace {

/** Portable popcount (no POPCNT instruction assumed). */
inline uint32_t
popcount64(uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    return uint32_t((x * 0x0101010101010101ULL) >> 56);
}

// ------------------------------------------------------------- scalar tier

void
histogram4Scalar(const uint8_t *vals, size_t n, uint32_t counts[4])
{
    uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    for (size_t i = 0; i < n; ++i) {
        uint8_t v = vals[i];
        c0 += (v == 0);
        c1 += (v == 1);
        c2 += (v == 2);
        c3 += (v == 3);
    }
    counts[0] += c0;
    counts[1] += c1;
    counts[2] += c2;
    counts[3] += c3;
}

size_t
matchRunForwardScalar(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t x, y;
        std::memcpy(&x, a + i, 8);
        std::memcpy(&y, b + i, 8);
        if (x != y)
            return i + size_t(__builtin_ctzll(x ^ y)) / 8;
    }
    while (i < n && a[i] == b[i])
        ++i;
    return i;
}

size_t
matchRunBackwardScalar(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t r = n;
    for (; r >= 8; r -= 8) {
        uint64_t x, y;
        std::memcpy(&x, a + r - 8, 8);
        std::memcpy(&y, b + r - 8, 8);
        if (x != y) {
            // Little-endian: the highest byte holds a[r-1].
            return (n - r) + size_t(__builtin_clzll(x ^ y)) / 8;
        }
    }
    while (r > 0 && a[r - 1] == b[r - 1])
        --r;
    return n - r;
}

size_t
diffCountPackedScalar(const uint64_t *a, const uint64_t *b, size_t words)
{
    size_t total = 0;
    for (size_t w = 0; w < words; ++w) {
        uint64_t x = a[w] ^ b[w];
        // Fold each 2-bit field to its low bit, then count fields.
        total += popcount64((x | (x >> 1)) & 0x5555555555555555ULL);
    }
    return total;
}

/**
 * One-lane Myers global edit distance over a prebuilt peq table.
 * The recurrence (Hyyrö's block formulation) matches editDistanceRange
 * in dna/strand.cc step for step; every tier of myersBatch reduces to
 * this computation, which is what makes the tiers bit-identical.
 */
uint32_t
myersSingle(const uint64_t *peq, size_t m, size_t blocks,
            const uint8_t *text, size_t n)
{
    static thread_local std::vector<uint64_t> vp, vn;
    vp.assign(blocks, ~uint64_t(0));
    vn.assign(blocks, 0);

    size_t score = m;
    const unsigned last_shift = unsigned((m - 1) & 63);
    for (size_t j = 0; j < n; ++j) {
        const uint64_t *eq_row = peq + size_t(text[j]) * blocks;
        int hin = 1;
        for (size_t blk = 0; blk < blocks; ++blk) {
            uint64_t eq = eq_row[blk];
            const uint64_t pv = vp[blk], mv = vn[blk];
            const uint64_t xv = eq | mv;
            if (hin < 0)
                eq |= 1;
            const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
            uint64_t ph = mv | ~(xh | pv);
            uint64_t mh = pv & xh;
            if (blk == blocks - 1) {
                score += (ph >> last_shift) & 1;
                score -= (mh >> last_shift) & 1;
            }
            const int hout = (ph >> 63) ? 1 : ((mh >> 63) ? -1 : 0);
            ph <<= 1;
            mh <<= 1;
            if (hin < 0)
                mh |= 1;
            else if (hin > 0)
                ph |= 1;
            vp[blk] = mh | ~(xv | ph);
            vn[blk] = ph & xv;
            hin = hout;
        }
    }
    return uint32_t(score);
}

void
myersBatchScalar(const uint64_t *peq, size_t m, size_t blocks,
                 const uint8_t *const *texts, const size_t *lens,
                 size_t k, uint32_t *dists)
{
    for (size_t l = 0; l < k; ++l) {
        dists[l] = lens[l] == 0
            ? uint32_t(m)
            : myersSingle(peq, m, blocks, texts[l], lens[l]);
    }
}

#ifdef DNASTORE_SIMD_X86

// ------------------------------------------------------------ SSE4.2 tier

__attribute__((target("sse4.2,popcnt"))) void
histogram4Sse(const uint8_t *vals, size_t n, uint32_t counts[4])
{
    uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    size_t i = 0;
    const __m128i k0 = _mm_setzero_si128();
    const __m128i k1 = _mm_set1_epi8(1);
    const __m128i k2 = _mm_set1_epi8(2);
    const __m128i k3 = _mm_set1_epi8(3);
    for (; i + 16 <= n; i += 16) {
        __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(vals + i));
        c0 += uint32_t(
            _mm_popcnt_u32(uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(v, k0)))));
        c1 += uint32_t(
            _mm_popcnt_u32(uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(v, k1)))));
        c2 += uint32_t(
            _mm_popcnt_u32(uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(v, k2)))));
        c3 += uint32_t(
            _mm_popcnt_u32(uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(v, k3)))));
    }
    counts[0] += c0;
    counts[1] += c1;
    counts[2] += c2;
    counts[3] += c3;
    if (i < n)
        histogram4Scalar(vals + i, n - i, counts);
}

__attribute__((target("sse4.2,popcnt"))) size_t
matchRunForwardSse(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i));
        uint32_t ne =
            ~uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))) & 0xffffu;
        if (ne != 0)
            return i + size_t(__builtin_ctz(ne));
    }
    return i + matchRunForwardScalar(a + i, b + i, n - i);
}

__attribute__((target("sse4.2,popcnt"))) size_t
matchRunBackwardSse(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t r = n;
    for (; r >= 16; r -= 16) {
        __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + r - 16));
        __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + r - 16));
        uint32_t ne =
            ~uint32_t(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))) & 0xffffu;
        if (ne != 0) {
            unsigned hi = 31u - unsigned(__builtin_clz(ne));
            return (n - r) + (15u - hi);
        }
    }
    return (n - r) + matchRunBackwardScalar(a, b, r);
}

__attribute__((target("sse4.2,popcnt"))) size_t
diffCountPackedSse(const uint64_t *a, const uint64_t *b, size_t words)
{
    uint64_t total = 0;
    for (size_t w = 0; w < words; ++w) {
        uint64_t x = a[w] ^ b[w];
        total += uint64_t(
            _mm_popcnt_u64((x | (x >> 1)) & 0x5555555555555555ULL));
    }
    return size_t(total);
}

// -------------------------------------------------------------- AVX2 tier

__attribute__((target("avx2,popcnt"))) void
histogram4Avx2(const uint8_t *vals, size_t n, uint32_t counts[4])
{
    uint32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    size_t i = 0;
    const __m256i k0 = _mm256_setzero_si256();
    const __m256i k1 = _mm256_set1_epi8(1);
    const __m256i k2 = _mm256_set1_epi8(2);
    const __m256i k3 = _mm256_set1_epi8(3);
    for (; i + 32 <= n; i += 32) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vals + i));
        c0 += uint32_t(_mm_popcnt_u32(
            uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k0)))));
        c1 += uint32_t(_mm_popcnt_u32(
            uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k1)))));
        c2 += uint32_t(_mm_popcnt_u32(
            uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k2)))));
        c3 += uint32_t(_mm_popcnt_u32(
            uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, k3)))));
    }
    counts[0] += c0;
    counts[1] += c1;
    counts[2] += c2;
    counts[3] += c3;
    if (i < n)
        histogram4Scalar(vals + i, n - i, counts);
}

__attribute__((target("avx2,popcnt"))) size_t
matchRunForwardAvx2(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        uint32_t ne =
            ~uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
        if (ne != 0)
            return i + size_t(__builtin_ctz(ne));
    }
    return i + matchRunForwardScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2,popcnt"))) size_t
matchRunBackwardAvx2(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t r = n;
    for (; r >= 32; r -= 32) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + r - 32));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + r - 32));
        uint32_t ne =
            ~uint32_t(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
        if (ne != 0)
            return (n - r) + size_t(__builtin_clz(ne));
    }
    return (n - r) + matchRunBackwardScalar(a, b, r);
}

__attribute__((target("avx2,popcnt"))) size_t
diffCountPackedAvx2(const uint64_t *a, const uint64_t *b, size_t words)
{
    // Mula's nibble-LUT popcount, accumulated through psadbw.
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nib = _mm256_set1_epi8(0x0f);
    const __m256i pair = _mm256_set1_epi64x(0x5555555555555555LL);
    __m256i acc = _mm256_setzero_si256();
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m256i xa =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + w));
        __m256i xb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + w));
        __m256i x = _mm256_xor_si256(xa, xb);
        x = _mm256_and_si256(
            _mm256_or_si256(x, _mm256_srli_epi64(x, 1)), pair);
        __m256i lo = _mm256_and_si256(x, nib);
        __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), nib);
        __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    size_t total = size_t(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
    if (w < words)
        total += diffCountPackedSse(a + w, b + w, words - w);
    return total;
}

__attribute__((target("avx2,popcnt"))) void
myersBatch4Avx2(const uint64_t *peq, size_t m, size_t blocks,
                const uint8_t *const *texts, const size_t *lens,
                size_t k, uint32_t *dists)
{
    // Lane l runs pattern-vs-texts[l]; retired lanes read an all-zero
    // match row so their state keeps stepping without branching.
    static thread_local std::vector<uint64_t> vp, vn, zero_row;
    vp.assign(4 * blocks, ~uint64_t(0));
    vn.assign(4 * blocks, 0);
    zero_row.assign(blocks, 0);

    const uint8_t *text[4];
    size_t len[4];
    size_t max_len = 0, open = 0;
    for (size_t l = 0; l < 4; ++l) {
        text[l] = l < k ? texts[l] : nullptr;
        len[l] = l < k ? lens[l] : 0;
        if (l < k && len[l] == 0)
            dists[l] = uint32_t(m);
        if (len[l] > 0)
            ++open;
        if (len[l] > max_len)
            max_len = len[l];
    }
    if (open == 0)
        return;

    const unsigned last_shift = unsigned((m - 1) & 63);
    const __m256i one = _mm256_set1_epi64x(1);
    __m256i score = _mm256_set1_epi64x(int64_t(m));
    for (size_t j = 0; j < max_len; ++j) {
        const uint64_t *row[4];
        for (size_t l = 0; l < 4; ++l) {
            row[l] = j < len[l] ? peq + size_t(text[l][j]) * blocks
                                : zero_row.data();
        }
        __m256i hp = one;                    // horizontal carry +1 in
        __m256i hn = _mm256_setzero_si256(); // horizontal carry -1 in
        for (size_t blk = 0; blk < blocks; ++blk) {
            const __m256i eq0 = _mm256_set_epi64x(
                int64_t(row[3][blk]), int64_t(row[2][blk]),
                int64_t(row[1][blk]), int64_t(row[0][blk]));
            __m256i pv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(vp.data() + 4 * blk));
            __m256i mv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(vn.data() + 4 * blk));
            const __m256i xv = _mm256_or_si256(eq0, mv);
            const __m256i eq = _mm256_or_si256(eq0, hn);
            const __m256i sum =
                _mm256_add_epi64(_mm256_and_si256(eq, pv), pv);
            const __m256i xh =
                _mm256_or_si256(_mm256_xor_si256(sum, pv), eq);
            __m256i ph = _mm256_or_si256(
                mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv),
                                        _mm256_set1_epi64x(-1)));
            __m256i mh = _mm256_and_si256(pv, xh);
            if (blk == blocks - 1) {
                score = _mm256_add_epi64(
                    score,
                    _mm256_and_si256(_mm256_srli_epi64(ph, int(last_shift)),
                                     one));
                score = _mm256_sub_epi64(
                    score,
                    _mm256_and_si256(_mm256_srli_epi64(mh, int(last_shift)),
                                     one));
            }
            const __m256i hout_p = _mm256_srli_epi64(ph, 63);
            const __m256i hout_n = _mm256_srli_epi64(mh, 63);
            ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), hp);
            mh = _mm256_or_si256(_mm256_slli_epi64(mh, 1), hn);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(vp.data() + 4 * blk),
                _mm256_or_si256(
                    mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph),
                                            _mm256_set1_epi64x(-1))));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(vn.data() + 4 * blk),
                _mm256_and_si256(ph, xv));
            hp = hout_p;
            hn = hout_n;
        }
        if (j + 1 == len[0] || j + 1 == len[1] || j + 1 == len[2] ||
            j + 1 == len[3]) {
            uint64_t s[4];
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(s), score);
            for (size_t l = 0; l < k; ++l) {
                if (j + 1 == len[l]) {
                    dists[l] = uint32_t(s[l]);
                    --open;
                }
            }
            if (open == 0)
                return;
        }
    }
}

#endif // DNASTORE_SIMD_X86

// --------------------------------------------------------------- dispatch

struct Dispatch
{
    Level level = Level::Scalar;
    void (*histogram4)(const uint8_t *, size_t, uint32_t[4]) =
        histogram4Scalar;
    size_t (*matchF)(const uint8_t *, const uint8_t *, size_t) =
        matchRunForwardScalar;
    size_t (*matchB)(const uint8_t *, const uint8_t *, size_t) =
        matchRunBackwardScalar;
    size_t (*diffPacked)(const uint64_t *, const uint64_t *, size_t) =
        diffCountPackedScalar;
};

Level
detectBestLevel()
{
#ifdef DNASTORE_SIMD_X86
    const char *force = std::getenv("DNASTORE_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0')
        return Level::Scalar;
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    if (__builtin_cpu_supports("sse4.2") &&
        __builtin_cpu_supports("popcnt"))
        return Level::Sse42;
#endif
    return Level::Scalar;
}

Dispatch
makeDispatch(Level level)
{
    Dispatch d;
    d.level = Level::Scalar;
#ifdef DNASTORE_SIMD_X86
    if (level >= Level::Sse42) {
        d.level = Level::Sse42;
        d.histogram4 = histogram4Sse;
        d.matchF = matchRunForwardSse;
        d.matchB = matchRunBackwardSse;
        d.diffPacked = diffCountPackedSse;
    }
    if (level >= Level::Avx2) {
        d.level = Level::Avx2;
        d.histogram4 = histogram4Avx2;
        d.matchF = matchRunForwardAvx2;
        d.matchB = matchRunBackwardAvx2;
        d.diffPacked = diffCountPackedAvx2;
    }
#else
    (void)level;
#endif
    return d;
}

/**
 * Immutable table for each tier, built once. setLevel swaps an atomic
 * pointer between them, so kernels racing with the test hook read one
 * coherent table instead of a half-rewritten one (either tier is
 * correct — all tiers are bit-identical).
 */
const Dispatch &
tierTable(Level level)
{
    static const Dispatch tables[3] = {
        makeDispatch(Level::Scalar),
        makeDispatch(Level::Sse42),
        makeDispatch(Level::Avx2),
    };
    return tables[static_cast<size_t>(level)];
}

std::atomic<const Dispatch *> &
dispatchPtr()
{
    static std::atomic<const Dispatch *> p{
        &tierTable(detectBestLevel())};
    return p;
}

const Dispatch &
dispatch()
{
    return *dispatchPtr().load(std::memory_order_acquire);
}

} // namespace

Level
activeLevel()
{
    return dispatch().level;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Sse42:
        return "sse4.2";
      case Level::Avx2:
        return "avx2";
      default:
        return "scalar";
    }
}

Level
setLevel(Level level)
{
    Level best = detectBestLevel();
    // A forced-scalar environment still allows explicit test overrides
    // up to the hardware's capability.
#ifdef DNASTORE_SIMD_X86
    if (level > best) {
        Level hw = Level::Scalar;
        if (__builtin_cpu_supports("avx2"))
            hw = Level::Avx2;
        else if (__builtin_cpu_supports("sse4.2") &&
                 __builtin_cpu_supports("popcnt"))
            hw = Level::Sse42;
        if (level > hw)
            level = hw;
    }
#else
    level = best;
#endif
    const Dispatch &table = tierTable(level);
    dispatchPtr().store(&table, std::memory_order_release);
    return table.level;
}

namespace detail {

void
histogram4Wide(const uint8_t *vals, size_t n, uint32_t counts[4])
{
    dispatch().histogram4(vals, n, counts);
}

size_t
matchRunForwardWide(const uint8_t *a, const uint8_t *b, size_t n)
{
    return dispatch().matchF(a, b, n);
}

size_t
matchRunBackwardWide(const uint8_t *a, const uint8_t *b, size_t n)
{
    return dispatch().matchB(a, b, n);
}

} // namespace detail

size_t
diffCountPacked(const uint64_t *a, const uint64_t *b, size_t words)
{
    return dispatch().diffPacked(a, b, words);
}

void
myersBatch(const uint64_t *peq, size_t m, size_t blocks,
           const uint8_t *const *texts, const size_t *lens, size_t k,
           uint32_t *dists)
{
#ifdef DNASTORE_SIMD_X86
    if (dispatch().level == Level::Avx2 && k > 1) {
        // The AVX2 kernel drives at most 4 lanes; chunk larger
        // batches so every tier fills all of dists[0..k).
        for (size_t base = 0; base < k; base += 4) {
            size_t lanes = std::min<size_t>(4, k - base);
            if (lanes > 1)
                myersBatch4Avx2(peq, m, blocks, texts + base,
                                lens + base, lanes, dists + base);
            else
                myersBatchScalar(peq, m, blocks, texts + base,
                                 lens + base, lanes, dists + base);
        }
        return;
    }
#endif
    myersBatchScalar(peq, m, blocks, texts, lens, k, dists);
}

} // namespace simd
} // namespace dnastore

/**
 * @file
 * Thread-safe errno formatting.
 *
 * `std::strerror` returns a pointer into internal (possibly shared)
 * storage and is not required to be thread-safe — the daemon calls
 * into error formatting from per-connection reader threads, exactly
 * where a racing strerror could hand back a torn message (flagged by
 * clang-tidy's concurrency-mt-unsafe). errnoText wraps strerror_r
 * (either glibc flavor) over a caller-stack buffer instead.
 */

#ifndef DNASTORE_UTIL_ERRNO_TEXT_HH
#define DNASTORE_UTIL_ERRNO_TEXT_HH

#include <string>

namespace dnastore {

/** The strerror message for @p err, safe from any thread. */
std::string errnoText(int err);

} // namespace dnastore

#endif // DNASTORE_UTIL_ERRNO_TEXT_HH

#include "util/errno_text.hh"

#include <cstdio>
#include <cstring>

namespace dnastore {

namespace {

// strerror_r has two flavors: XSI returns int (0 on success, the
// message in the buffer), GNU returns char* (which may point at the
// buffer or at a static string). Overload resolution picks the right
// unpacking for whichever this libc provides.
[[maybe_unused]] const char *
unpackStrerror(int rc, const char *buf)
{
    return rc == 0 ? buf : nullptr;
}

[[maybe_unused]] const char *
unpackStrerror(const char *res, const char *)
{
    return res;
}

} // namespace

std::string
errnoText(int err)
{
    char buf[256];
    buf[0] = '\0';
    const char *msg = unpackStrerror(strerror_r(err, buf, sizeof buf), buf);
    if (msg != nullptr && msg[0] != '\0')
        return msg;
    char fallback[32];
    std::snprintf(fallback, sizeof fallback, "error %d", err);
    return fallback;
}

} // namespace dnastore

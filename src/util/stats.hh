/**
 * @file
 * Small statistics helpers used by the profilers and benchmarks.
 */

#ifndef DNASTORE_UTIL_STATS_HH
#define DNASTORE_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace dnastore {

/** Online mean/variance accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    size_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Gini inequality index of a non-negative sample set.
 *
 * Returns a value in [0, 1): 0 means perfectly equal, values near 1
 * mean the total is concentrated in few samples. Used to quantify how
 * unevenly errors are distributed across ECC codewords (the property
 * the paper's Gini interleaver equalizes, and its namesake).
 */
double giniIndex(const std::vector<double> &samples);

/** p-th percentile (0..100) via linear interpolation; empty -> 0. */
double percentile(std::vector<double> samples, double p);

} // namespace dnastore

#endif // DNASTORE_UTIL_STATS_HH

/**
 * @file
 * Runtime-dispatched SIMD kernels for the decode-path inner loops.
 *
 * Three loop families dominate the retrieve side of the pipeline:
 * consensus column voting (base histograms and unanimity-run
 * detection), packed-strand mismatch counting, and Myers bit-parallel
 * edit distance for cluster candidate verification. Each kernel here
 * has an AVX2 path, an SSE4.2 path, and a portable scalar fallback;
 * the implementation is chosen once at startup from CPUID, and every
 * path returns bit-identical results so the choice never changes an
 * output (the determinism suites run with DNASTORE_FORCE_SCALAR=1 to
 * prove it).
 *
 * The vector paths are compiled with per-function target attributes,
 * so the library stays runnable on any x86-64 (and non-x86 builds use
 * the scalar path throughout) without -march flags.
 */

#ifndef DNASTORE_UTIL_SIMD_HH
#define DNASTORE_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace dnastore {
namespace simd {

/** Instruction-set tiers the kernels dispatch over. */
enum class Level
{
    Scalar = 0, //!< Portable C++ (also the DNASTORE_FORCE_SCALAR path).
    Sse42 = 1,  //!< 16-byte compares + hardware popcount.
    Avx2 = 2,   //!< 32-byte compares, gathered Myers lanes.
};

/**
 * The dispatch tier in use. Detected once from CPUID; the
 * DNASTORE_FORCE_SCALAR environment variable (any non-empty value)
 * pins it to Scalar for fallback-coverage runs.
 */
Level activeLevel();

/** Human-readable tier name ("scalar", "sse4.2", "avx2"). */
const char *levelName(Level level);

/**
 * Override the dispatch tier, clamped to what the CPU supports.
 * Testing hook: lets one process compare tiers against each other.
 * Returns the tier actually selected.
 *
 * Thread-safe: the swap is an atomic pointer flip between immutable
 * per-tier tables, so kernels already in flight (e.g. on persistent
 * pool workers) simply finish on the tier they started with — which
 * is output-identical by the bit-identity contract above.
 */
Level setLevel(Level level);

namespace detail {
// Dispatched wide-input implementations; the inline entry points
// below peel the short cases so hot loops with tiny operands skip the
// indirect call entirely. Results are bit-identical on every tier.
void histogram4Wide(const uint8_t *vals, size_t n, uint32_t counts[4]);
size_t matchRunForwardWide(const uint8_t *a, const uint8_t *b,
                           size_t n);
size_t matchRunBackwardWide(const uint8_t *a, const uint8_t *b,
                            size_t n);
} // namespace detail

/**
 * Accumulate a histogram of the values in vals[0..n) into counts[4].
 * Values must be in {0, 1, 2, 3} (2-bit base codes); counts are
 * added to, not reset. Narrow columns (consensus at typical
 * coverage) count inline through packed 16-bit-lane counters; wide
 * ones take the vector compare/popcount path.
 */
inline void
histogram4(const uint8_t *vals, size_t n, uint32_t counts[4])
{
    if (n >= 32) {
        detail::histogram4Wide(vals, n, counts);
        return;
    }
    // 4 packed 16-bit counters: one add per value, no store-forward
    // stalls on the counter array.
    uint64_t packed = 0;
    for (size_t i = 0; i < n; ++i)
        packed += uint64_t(1) << (16 * vals[i]);
    counts[0] += uint32_t(packed & 0xffff);
    counts[1] += uint32_t((packed >> 16) & 0xffff);
    counts[2] += uint32_t((packed >> 32) & 0xffff);
    counts[3] += uint32_t((packed >> 48) & 0xffff);
}

/** Length of the longest common prefix of a[0..n) and b[0..n). */
inline size_t
matchRunForward(const uint8_t *a, const uint8_t *b, size_t n)
{
    // Most consensus runs end within a word; peel the first 8 bytes
    // inline before dispatching to the vector sweep.
    if (n >= 8) {
        uint64_t x, y;
        __builtin_memcpy(&x, a, 8);
        __builtin_memcpy(&y, b, 8);
        if (x != y)
            return size_t(__builtin_ctzll(x ^ y)) / 8;
        if (n == 8)
            return 8;
        return 8 + detail::matchRunForwardWide(a + 8, b + 8, n - 8);
    }
    size_t i = 0;
    while (i < n && a[i] == b[i])
        ++i;
    return i;
}

/**
 * Length of the longest common suffix of a[0..n) and b[0..n): the
 * largest k with a[n-1-t] == b[n-1-t] for all t < k.
 */
inline size_t
matchRunBackward(const uint8_t *a, const uint8_t *b, size_t n)
{
    if (n >= 8) {
        uint64_t x, y;
        __builtin_memcpy(&x, a + n - 8, 8);
        __builtin_memcpy(&y, b + n - 8, 8);
        if (x != y)
            return size_t(__builtin_clzll(x ^ y)) / 8;
        if (n == 8)
            return 8;
        return 8 + detail::matchRunBackwardWide(a, b, n - 8);
    }
    size_t r = n;
    while (r > 0 && a[r - 1] == b[r - 1])
        --r;
    return n - r;
}

/**
 * Number of differing 2-bit fields between the packed words a[0..words)
 * and b[0..words) (32 fields per word). Trailing pad fields count only
 * if they differ, so zero-padded strands compare cleanly.
 */
size_t diffCountPacked(const uint64_t *a, const uint64_t *b,
                       size_t words);

/**
 * Advance k independent Myers global-edit-distance automata that
 * share one pattern.
 *
 * @param peq    Pattern match masks, laid out [base * blocks + block]
 *               (4 * blocks words), as built by editDistanceBatch.
 * @param m      Pattern length in bases (>= 1).
 * @param blocks ceil(m / 64) 64-row blocks.
 * @param texts  k text base pointers (2-bit codes, one byte per
 *               base). Any k; the vector tier internally chunks the
 *               batch into groups of 4.
 * @param lens   Text lengths.
 * @param dists  Out: exact Levenshtein distance pattern vs text i,
 *               filled for all k texts on every tier.
 *
 * The AVX2 path runs four automata at a time in the four 64-bit lanes
 * of a vector register, column-lockstep; shorter texts retire their
 * lane's score early. Scalar/SSE tiers run the same recurrence one
 * text at a time; results are bit-identical.
 */
void myersBatch(const uint64_t *peq, size_t m, size_t blocks,
                const uint8_t *const *texts, const size_t *lens,
                size_t k, uint32_t *dists);

} // namespace simd
} // namespace dnastore

#endif // DNASTORE_UTIL_SIMD_HH

#include "util/rng.hh"

#include <cmath>

namespace dnastore {

uint64_t
splitmix64Mix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

/** splitmix64 stream, used to expand the user seed into xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    return splitmix64Mix(x);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
    // Avoid the pathological all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    // Lemire-style rejection to remove modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

int64_t
Rng::nextInRange(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(nextBelow(
        static_cast<uint64_t>(hi - lo + 1)));
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * mul;
    haveSpareGaussian_ = true;
    return u * mul;
}

double
Rng::nextGamma(double shape, double scale)
{
    if (shape < 1.0) {
        // Boost the shape and correct with a power of a uniform draw.
        double u = nextDouble();
        while (u == 0.0)
            u = nextDouble();
        return nextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = nextGaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = nextDouble();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v * scale;
        }
    }
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace dnastore

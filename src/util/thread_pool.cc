#include "util/thread_pool.hh"

#include <algorithm>

#include "util/parallel.hh"

namespace dnastore {

namespace {

/**
 * True while the current thread is executing inside a pool job; nested
 * forEach calls run inline instead of re-entering the pool.
 */
thread_local bool tl_in_pool_job = false;

/** Hard cap on persistent workers (oversubscription guard). */
constexpr size_t kMaxWorkers = 256;

} // namespace

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

size_t
ThreadPool::spawnedWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_.size();
}

void
ThreadPool::ensureWorkers(size_t wanted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    wanted = std::min(wanted, kMaxWorkers);
    while (workers_.size() < wanted) {
        size_t slot = workers_.size();
        workers_.emplace_back([this, slot] { workerMain(slot); });
    }
}

void
ThreadPool::workerMain(size_t slot)
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            // Participant 0 is the caller; worker `slot` is slot + 1.
            // Extra workers beyond the job's participant count sit
            // out. Decided under mutex_ from jobParticipants_: the
            // Job lives on the caller's stack and only counted
            // participants keep it alive, so an uncounted worker must
            // not dereference job_ at all — by the time it runs, the
            // counted ones may have finished and forEach returned.
            if (job_ != nullptr && slot + 1 < jobParticipants_)
                job = job_;
        }
        if (job != nullptr)
            participate(*job, slot + 1);
    }
}

void
ThreadPool::participate(Job &job, size_t participant)
{
    tl_in_pool_job = true;
    std::vector<Slice> &slices = *job.slices;
    const size_t p_count = job.participants;
    const size_t grain = job.grain;

    // Claim grain-sized chunks, own slice first, then steal in ring
    // order. fetch_add makes each index claimable exactly once no
    // matter how many thieves race on a slice.
    for (size_t v = 0; v < p_count; ++v) {
        Slice &s = slices[(participant + v) % p_count];
        for (;;) {
            size_t begin = s.next.fetch_add(grain);
            if (begin >= s.end)
                break;
            size_t end = std::min(begin + grain, s.end);
            try {
                for (size_t i = begin; i < end; ++i)
                    (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.errMutex);
                if (!job.error || begin < job.errorIndex) {
                    job.error = std::current_exception();
                    job.errorIndex = begin;
                }
                // This participant stops claiming further work; the
                // rest of the loop still completes on the others.
                v = p_count;
                break;
            }
        }
    }
    tl_in_pool_job = false;

    if (job.unfinished.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
    }
}

void
ThreadPool::forEach(size_t n, size_t num_threads, size_t grain,
                    const std::function<void(size_t)> &body)
{
    size_t participants =
        std::min(resolveThreadCount(num_threads), n);
    participants = std::min(participants, kMaxWorkers + 1);
    if (participants <= 1 || tl_in_pool_job) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    if (grain == 0) {
        // Small enough chunks that stealing can smooth imbalance,
        // large enough that the fetch_add traffic stays negligible.
        grain = std::max<size_t>(1, n / (participants * 8));
        grain = std::min<size_t>(grain, 64);
    }

    // One pool job at a time. A caller that finds the pool busy runs
    // its loop inline on its own thread instead of blocking idle —
    // independent top-level loops from different threads still
    // overlap, they just don't both get the workers.
    std::unique_lock<std::mutex> runLock(runMutex_, std::try_to_lock);
    if (!runLock.owns_lock()) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    ensureWorkers(participants - 1);

    std::vector<Slice> slices(participants);
    for (size_t p = 0; p < participants; ++p) {
        // Contiguous slices, remainder spread over the first ones.
        size_t base = n / participants, extra = n % participants;
        size_t begin = p * base + std::min(p, extra);
        slices[p].next.store(begin, std::memory_order_relaxed);
        slices[p].end = begin + base + (p < extra ? 1 : 0);
    }

    Job job;
    job.body = &body;
    job.slices = &slices;
    job.participants = participants;
    job.grain = grain;
    job.unfinished.store(participants, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        jobParticipants_ = participants;
        ++epoch_;
    }
    wake_.notify_all();

    participate(job, 0);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.unfinished.load(std::memory_order_acquire) == 0;
        });
        job_ = nullptr;
        jobParticipants_ = 0;
    }

    if (job.error)
        std::rethrow_exception(job.error);
}

} // namespace dnastore

/**
 * @file
 * Little-endian bounded byte readers and writers.
 *
 * The fixed-width integer substrate of the durable `.dnapool` store
 * format (api/pool_file.hh). Two deliberate contracts:
 *
 *  - ByteWriter always emits little-endian, independent of the host,
 *    so a pool file written on any machine opens on any other;
 *  - ByteReader is *bounded*: a read that would run past the end of
 *    the buffer returns zero, poisons the reader (ok() goes false,
 *    and stays false), and never touches out-of-range memory — a
 *    truncated or length-corrupted section parses to a clean error
 *    instead of UB. Callers check ok() once at the end of a parse
 *    rather than after every field.
 */

#ifndef DNASTORE_UTIL_BYTEIO_HH
#define DNASTORE_UTIL_BYTEIO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore {

/** Appends little-endian fields to a growable byte buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        appendLe(v, 2);
    }

    void
    u32(uint32_t v)
    {
        appendLe(v, 4);
    }

    void
    u64(uint64_t v)
    {
        appendLe(v, 8);
    }

    /** Append raw bytes verbatim. */
    void
    bytes(const uint8_t *data, size_t n)
    {
        bytes_.insert(bytes_.end(), data, data + n);
    }

    void
    bytes(const std::vector<uint8_t> &data)
    {
        bytes(data.data(), data.size());
    }

    /** Append a string's bytes (no length prefix, no terminator). */
    void
    str(const std::string &s)
    {
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    size_t size() const { return bytes_.size(); }
    const std::vector<uint8_t> &data() const { return bytes_; }

    /** Move the accumulated buffer out. */
    std::vector<uint8_t>
    take()
    {
        return std::move(bytes_);
    }

  private:
    void
    appendLe(uint64_t v, int width)
    {
        for (int i = 0; i < width; ++i)
            bytes_.push_back(uint8_t(v >> (8 * i)));
    }

    std::vector<uint8_t> bytes_;
};

/** Bounded little-endian reader over a byte range (not owning). */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t n) : data_(data), size_(n) {}

    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {}

    /** False once any read ran past the end (sticky). */
    bool ok() const { return ok_; }

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }

    uint8_t
    u8()
    {
        return uint8_t(readLe(1));
    }

    uint16_t
    u16()
    {
        return uint16_t(readLe(2));
    }

    uint32_t
    u32()
    {
        return uint32_t(readLe(4));
    }

    uint64_t
    u64()
    {
        return readLe(8);
    }

    /**
     * Copy @p n bytes into @p out. On underflow nothing is copied,
     * the reader is poisoned, and false is returned.
     */
    bool
    read(uint8_t *out, size_t n)
    {
        if (!take(n))
            return false;
        for (size_t i = 0; i < n; ++i)
            out[i] = data_[pos_ - n + i];
        return true;
    }

    /** Read @p n bytes as a string ("" and poisoned on underflow). */
    std::string
    str(size_t n)
    {
        if (!take(n))
            return std::string();
        return std::string(
            reinterpret_cast<const char *>(data_ + pos_ - n), n);
    }

    /** Read @p n bytes as a vector (empty and poisoned on underflow). */
    std::vector<uint8_t>
    vec(size_t n)
    {
        if (!take(n))
            return {};
        return std::vector<uint8_t>(data_ + pos_ - n, data_ + pos_);
    }

    /** Advance @p n bytes; false (poisoned) on underflow. */
    bool
    skip(size_t n)
    {
        return take(n);
    }

  private:
    /** Claim @p n bytes; on underflow poison and consume nothing. */
    bool
    take(size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    uint64_t
    readLe(int width)
    {
        if (!take(size_t(width)))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < width; ++i)
            v |= uint64_t(data_[pos_ - size_t(width) + size_t(i)])
                << (8 * i);
        return v;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace dnastore

#endif // DNASTORE_UTIL_BYTEIO_HH

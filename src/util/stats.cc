#include "util/stats.hh"

#include <algorithm>
#include <cmath>

namespace dnastore {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
giniIndex(const std::vector<double> &samples)
{
    size_t n = samples.size();
    if (n == 0)
        return 0.0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    double cum_weighted = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        cum_weighted += double(i + 1) * sorted[i];
        total += sorted[i];
    }
    if (total <= 0.0)
        return 0.0;
    return (2.0 * cum_weighted) / (double(n) * total) -
        (double(n) + 1.0) / double(n);
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    double rank = (p / 100.0) * double(samples.size() - 1);
    size_t lo = size_t(rank);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = rank - double(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace dnastore

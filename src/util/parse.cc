#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace dnastore {

bool
parseU64(const std::string &text, uint64_t *out, std::string *err)
{
    auto fail = [&](const char *why) {
        if (err != nullptr)
            *err = why;
        return false;
    };
    if (text.empty())
        return fail("empty value");
    if (text[0] == '-')
        return fail("must be non-negative");
    // strtoull itself skips whitespace and accepts '+', '0x', and
    // locale oddities; requiring every character to be a decimal
    // digit keeps the accepted language exactly [0-9]+.
    for (char c : text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return fail("not a decimal integer");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE)
        return fail("out of range for a 64-bit value");
    if (end != text.c_str() + text.size())
        return fail("not a decimal integer");
    *out = v;
    return true;
}

bool
parseF64(const std::string &text, double *out, std::string *err)
{
    auto fail = [&](const char *why) {
        if (err != nullptr)
            *err = why;
        return false;
    };
    if (text.empty())
        return fail("empty value");
    if (std::isspace(static_cast<unsigned char>(text[0])))
        return fail("not a number");
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || end == text.c_str())
        return fail("not a number");
    if (errno == ERANGE && std::isinf(v))
        return fail("magnitude out of range for a double");
    *out = v;
    return true;
}

} // namespace dnastore

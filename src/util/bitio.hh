/**
 * @file
 * MSB-first bit-level readers and writers over byte buffers.
 *
 * Used by the DNA payload packers (2 bits per base) and by the
 * entropy-coded image format, both of which address sub-byte fields.
 */

#ifndef DNASTORE_UTIL_BITIO_HH
#define DNASTORE_UTIL_BITIO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/** Appends bits MSB-first into a growable byte buffer. */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Append the low @p count bits of @p value, most significant first. */
    void writeBits(uint32_t value, int count);

    /** Append a single bit. */
    void writeBit(bool bit);

    /** Pad with zero bits to the next byte boundary. */
    void alignToByte();

    /** Number of bits written so far. */
    size_t bitCount() const { return bitCount_; }

    /** Finish (pads to a byte) and return the accumulated buffer. */
    std::vector<uint8_t> take();

    /** Read-only view of the buffer; call alignToByte() first. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
    size_t bitCount_ = 0;
};

/** Reads bits MSB-first from a byte buffer. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes.data()), bitLimit_(bytes.size() * 8)
    {}

    BitReader(const uint8_t *data, size_t n_bytes)
        : bytes_(data), bitLimit_(n_bytes * 8)
    {}

    /**
     * Read @p count bits (MSB-first).
     *
     * @retval The bits read; if the buffer is exhausted mid-read, the
     *         missing low bits are zero and exhausted() becomes true.
     */
    uint32_t readBits(int count);

    /** Read a single bit (0 past the end; sets exhausted()). */
    int readBit();

    /** Skip to the next byte boundary. */
    void alignToByte();

    /** True once a read ran past the end of the buffer. */
    bool exhausted() const { return exhausted_; }

    /** Bits consumed so far. */
    size_t bitPosition() const { return bitPos_; }

    /** Total number of bits available. */
    size_t bitLimit() const { return bitLimit_; }

  private:
    const uint8_t *bytes_;
    size_t bitLimit_;
    size_t bitPos_ = 0;
    bool exhausted_ = false;
};

/** Flip bit @p bit_index (MSB-first order) in @p bytes. */
void flipBit(std::vector<uint8_t> &bytes, size_t bit_index);

/** Get bit @p bit_index (MSB-first order) of @p bytes. */
int getBit(const std::vector<uint8_t> &bytes, size_t bit_index);

/** Set bit @p bit_index (MSB-first order) of @p bytes to @p value. */
void setBit(std::vector<uint8_t> &bytes, size_t bit_index, int value);

} // namespace dnastore

#endif // DNASTORE_UTIL_BITIO_HH

/**
 * @file
 * Shared work-stealing thread pool behind the pipeline's parallel
 * loops.
 *
 * PR 1's parallelFor spawned fresh threads per call and split the index
 * range into one static block per worker, so a slow block (a cluster
 * with pathological reads, a codeword with many errors) left the other
 * workers idle, and every call paid thread start-up. This pool keeps
 * one set of persistent workers for the whole process and schedules
 * each loop as stealable chunks: every participant owns a contiguous
 * slice and claims grain-sized batches from it; participants that
 * drain their slice steal batches from the slowest slice instead of
 * going idle. Persistent workers also keep the decoder's
 * thread_local scratch (RsScratch, consensus buffers) warm across
 * calls.
 *
 * Determinism: each index runs exactly once and callers keep writes
 * disjoint per index, so results are bit-identical for every thread
 * count and every steal schedule — the same contract parallelFor
 * always had.
 */

#ifndef DNASTORE_UTIL_THREAD_POOL_HH
#define DNASTORE_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dnastore {

class ThreadPool
{
  public:
    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool used by parallelFor. Workers are spawned
     * lazily on first parallel call and reused ever after.
     */
    static ThreadPool &shared();

    /**
     * Run body(i) for every i in [0, n), on up to @p num_threads
     * participants (the calling thread included; 0 = all hardware
     * threads), stealing chunks of about @p grain indices (0 = auto).
     *
     * Runs inline when one participant suffices or when called from
     * inside a pool worker (nested parallelism executes serially
     * rather than deadlocking). The first exception thrown by any
     * iteration (lowest-starting chunk wins) is rethrown on the
     * calling thread after the loop completes.
     */
    void forEach(size_t n, size_t num_threads, size_t grain,
                 const std::function<void(size_t)> &body);

    /** Persistent workers spawned so far (for introspection/tests). */
    size_t spawnedWorkers() const;

  private:
    /** One participant's stealable slice of the index range. */
    struct alignas(64) Slice
    {
        std::atomic<size_t> next{0};
        size_t end = 0;
    };

    struct Job
    {
        const std::function<void(size_t)> *body = nullptr;
        std::vector<Slice> *slices = nullptr;
        size_t participants = 0;
        size_t grain = 1;
        std::atomic<size_t> unfinished{0};
        std::mutex errMutex;
        std::exception_ptr error;
        size_t errorIndex = 0;
    };

    void ensureWorkers(size_t wanted);
    void workerMain(size_t slot);
    void participate(Job &job, size_t participant);

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;
    /**
     * Participant count of the current job, mirrored from the Job so
     * workers can decide whether they take part while still holding
     * mutex_. Workers that sit out must never touch *job_ (it lives
     * on the caller's stack and is only kept alive until the counted
     * participants finish).
     */
    size_t jobParticipants_ = 0;
    uint64_t epoch_ = 0;
    bool stop_ = false;

    /**
     * Marks the pool as occupied by one top-level forEach; callers
     * that find it taken execute their loop inline instead of
     * blocking (see forEach).
     */
    std::mutex runMutex_;
};

} // namespace dnastore

#endif // DNASTORE_UTIL_THREAD_POOL_HH

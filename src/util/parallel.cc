#include "util/parallel.hh"

#include <thread>

#include "util/thread_pool.hh"

namespace dnastore {

size_t
resolveThreadCount(size_t requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : size_t(hw);
}

void
parallelFor(size_t n, size_t num_threads,
            const std::function<void(size_t)> &body)
{
    // All parallel loops share the persistent work-stealing pool: no
    // per-call thread spawn, dynamic chunk scheduling instead of one
    // static block per worker, and per-worker thread_local scratch
    // stays warm across calls.
    ThreadPool::shared().forEach(n, num_threads, /*grain=*/0, body);
}

} // namespace dnastore

#include "util/parallel.hh"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace dnastore {

size_t
resolveThreadCount(size_t requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : size_t(hw);
}

void
parallelFor(size_t n, size_t num_threads,
            const std::function<void(size_t)> &body)
{
    size_t workers = std::min(resolveThreadCount(num_threads), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        // Contiguous blocks, remainder spread over the first workers.
        size_t base = n / workers, extra = n % workers;
        size_t begin = w * base + std::min(w, extra);
        size_t end = begin + base + (w < extra ? 1 : 0);
        threads.emplace_back([&, w, begin, end] {
            try {
                for (size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
                errors[w] = std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (auto &err : errors)
        if (err)
            std::rethrow_exception(err);
}

} // namespace dnastore

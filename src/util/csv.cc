#include "util/csv.hh"

#include <stdexcept>

namespace dnastore {

CsvWriter::CsvWriter(std::ostream &out,
                     const std::vector<std::string> &columns)
    : out_(out), nColumns_(columns.size())
{
    bool first = true;
    for (const auto &c : columns) {
        out_ << (first ? "" : ",") << c;
        first = false;
    }
    out_ << '\n';
}

void
CsvWriter::writeLine(const std::string &line, size_t n_fields)
{
    if (n_fields != nColumns_)
        throw std::logic_error("CsvWriter: field count mismatch");
    out_ << line << '\n';
}

} // namespace dnastore

#include "util/crc32.hh"

#include <array>

namespace dnastore {

namespace {

/** The reflected IEEE table, built once (thread-safe static init). */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t n, uint32_t crc)
{
    const auto &table = crcTable();
    uint32_t c = crc ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const std::vector<uint8_t> &data, uint32_t crc)
{
    return crc32(data.data(), data.size(), crc);
}

} // namespace dnastore

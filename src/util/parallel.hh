/**
 * @file
 * Minimal deterministic parallel-for used by the pipeline hot paths.
 *
 * The simulator parallelizes embarrassingly parallel per-cluster and
 * per-codeword loops. Work runs on the shared work-stealing pool
 * (util/thread_pool.hh): each participant owns a contiguous slice of
 * the range and drains it in stealable chunks, so a slow cluster no
 * longer idles the other workers. Callers are responsible for making
 * iterations independent (disjoint writes, per-iteration RNG
 * streams), which also makes the results bit-identical for every
 * thread count and steal schedule.
 */

#ifndef DNASTORE_UTIL_PARALLEL_HH
#define DNASTORE_UTIL_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace dnastore {

/**
 * Resolve a thread-count knob: 0 means all hardware threads, any
 * other value is used as-is. Always returns at least 1.
 */
size_t resolveThreadCount(size_t requested);

/**
 * Run body(i) for every i in [0, n).
 *
 * Executes inline when @p num_threads resolves to 1 or n < 2;
 * otherwise dispatches stealable chunks onto the shared pool. The
 * first exception thrown by any iteration (lowest-starting chunk
 * wins) is rethrown on the calling thread after the loop completes.
 */
void parallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)> &body);

} // namespace dnastore

#endif // DNASTORE_UTIL_PARALLEL_HH

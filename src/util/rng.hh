/**
 * @file
 * Deterministic pseudo-random number generation for all simulations.
 *
 * Every stochastic component in the library (channel, coverage sampling,
 * synthetic workload generation) draws from an explicitly passed Rng so
 * that experiments are reproducible from a single seed.
 */

#ifndef DNASTORE_UTIL_RNG_HH
#define DNASTORE_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/**
 * The splitmix64 finalizer: a stateless 64-bit mixer. Used to expand
 * seeds into generator state and wherever a cheap position-keyed
 * pseudo-random value is needed (e.g. the constrained codec's trit
 * whitening) — one definition, so the constants can never diverge.
 */
uint64_t splitmix64Mix(uint64_t z);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Chosen over std::mt19937 for speed and for a guaranteed stable output
 * sequence across standard-library implementations, which keeps the
 * benchmark outputs reproducible bit-for-bit.
 */
class Rng
{
  public:
    /** Seed the generator; distinct seeds give independent streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInRange(int64_t lo, int64_t hi);

    /** Standard normal via Marsaglia polar method. */
    double nextGaussian();

    /**
     * Gamma-distributed draw (Marsaglia-Tsang squeeze method).
     *
     * @param shape Shape parameter k > 0.
     * @param scale Scale parameter theta > 0.
     */
    double nextGamma(double shape, double scale);

    /** Fork an independent child stream (splitmix of a fresh draw). */
    Rng fork();

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace dnastore

#endif // DNASTORE_UTIL_RNG_HH

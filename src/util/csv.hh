/**
 * @file
 * Minimal CSV row emission for benchmark outputs.
 *
 * Every bench binary prints its figure data as CSV rows so the series
 * the paper plots can be re-plotted directly from the bench output.
 */

#ifndef DNASTORE_UTIL_CSV_HH
#define DNASTORE_UTIL_CSV_HH

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace dnastore {

/** Streams rows of comma-separated values with a fixed header. */
class CsvWriter
{
  public:
    /** @param out Destination stream; @param columns Header names. */
    CsvWriter(std::ostream &out, const std::vector<std::string> &columns);

    /** Emit one row; the number of fields must match the header. */
    template <typename... Ts>
    void
    row(const Ts &...fields)
    {
        std::ostringstream oss;
        bool first = true;
        ((oss << (first ? "" : ",") << fields, first = false), ...);
        writeLine(oss.str(), sizeof...(fields));
    }

  private:
    void writeLine(const std::string &line, size_t n_fields);

    std::ostream &out_;
    size_t nColumns_;
};

} // namespace dnastore

#endif // DNASTORE_UTIL_CSV_HH

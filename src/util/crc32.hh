/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Guards every section of the durable `.dnapool` store format
 * (api/pool_file.hh): a single flipped bit anywhere in a section
 * changes its checksum, so truncation and bit-rot surface as a named
 * integrity failure instead of a silent mis-decode. Table-driven,
 * one 1 KiB table built on first use; incremental via the running
 * `crc` parameter so multi-buffer sections need no concatenation.
 */

#ifndef DNASTORE_UTIL_CRC32_HH
#define DNASTORE_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/**
 * CRC-32 of @p data, continuing from @p crc (pass the previous call's
 * return value to checksum a logical stream in pieces; 0 to start).
 */
uint32_t crc32(const uint8_t *data, size_t n, uint32_t crc = 0);

/** Convenience overload over a whole buffer. */
uint32_t crc32(const std::vector<uint8_t> &data, uint32_t crc = 0);

} // namespace dnastore

#endif // DNASTORE_UTIL_CRC32_HH

#include "util/bitio.hh"

namespace dnastore {

void
BitWriter::writeBits(uint32_t value, int count)
{
    // Byte-at-a-time: splice up to 8 bits per step into the current
    // byte instead of looping per bit (this runs once per symbol on
    // the stream pack/unpack hot paths).
    while (count > 0) {
        size_t byte_index = bitCount_ >> 3;
        if (byte_index >= bytes_.size())
            bytes_.push_back(0);
        int free_bits = 8 - int(bitCount_ & 7);
        int take = count < free_bits ? count : free_bits;
        uint32_t chunk =
            (value >> (count - take)) & ((uint32_t(1) << take) - 1);
        bytes_[byte_index] |= uint8_t(chunk << (free_bits - take));
        bitCount_ += size_t(take);
        count -= take;
    }
}

void
BitWriter::writeBit(bool bit)
{
    size_t byte_index = bitCount_ >> 3;
    if (byte_index >= bytes_.size())
        bytes_.push_back(0);
    if (bit)
        bytes_[byte_index] |= uint8_t(0x80u >> (bitCount_ & 7));
    ++bitCount_;
}

void
BitWriter::alignToByte()
{
    while (bitCount_ & 7)
        writeBit(false);
}

std::vector<uint8_t>
BitWriter::take()
{
    alignToByte();
    bitCount_ = 0;
    return std::move(bytes_);
}

uint32_t
BitReader::readBits(int count)
{
    // Byte-at-a-time with the historical tail semantics: bits past
    // the end of the buffer read as zero and set exhausted().
    uint32_t v = 0;
    while (count > 0) {
        if (bitPos_ >= bitLimit_) {
            exhausted_ = true;
            // Missing low bits are zero (count == 32 implies v == 0).
            return count < 32 ? v << count : 0;
        }
        int in_byte = 8 - int(bitPos_ & 7);
        int avail = bitLimit_ - bitPos_ < size_t(in_byte)
            ? int(bitLimit_ - bitPos_) : in_byte;
        int take = count < avail ? count : avail;
        uint32_t chunk =
            (uint32_t(bytes_[bitPos_ >> 3]) >> (in_byte - take)) &
            ((uint32_t(1) << take) - 1);
        v = (v << take) | chunk;
        bitPos_ += size_t(take);
        count -= take;
    }
    return v;
}

int
BitReader::readBit()
{
    if (bitPos_ >= bitLimit_) {
        exhausted_ = true;
        return 0;
    }
    int bit = (bytes_[bitPos_ >> 3] >> (7 - (bitPos_ & 7))) & 1;
    ++bitPos_;
    return bit;
}

void
BitReader::alignToByte()
{
    bitPos_ = (bitPos_ + 7) & ~size_t(7);
    if (bitPos_ > bitLimit_)
        bitPos_ = bitLimit_;
}

void
flipBit(std::vector<uint8_t> &bytes, size_t bit_index)
{
    bytes[bit_index >> 3] ^= uint8_t(0x80u >> (bit_index & 7));
}

int
getBit(const std::vector<uint8_t> &bytes, size_t bit_index)
{
    return (bytes[bit_index >> 3] >> (7 - (bit_index & 7))) & 1;
}

void
setBit(std::vector<uint8_t> &bytes, size_t bit_index, int value)
{
    uint8_t mask = uint8_t(0x80u >> (bit_index & 7));
    if (value)
        bytes[bit_index >> 3] |= mask;
    else
        bytes[bit_index >> 3] &= uint8_t(~mask);
}

} // namespace dnastore

#include "util/bitio.hh"

namespace dnastore {

void
BitWriter::writeBits(uint32_t value, int count)
{
    for (int i = count - 1; i >= 0; --i)
        writeBit((value >> i) & 1u);
}

void
BitWriter::writeBit(bool bit)
{
    size_t byte_index = bitCount_ >> 3;
    if (byte_index >= bytes_.size())
        bytes_.push_back(0);
    if (bit)
        bytes_[byte_index] |= uint8_t(0x80u >> (bitCount_ & 7));
    ++bitCount_;
}

void
BitWriter::alignToByte()
{
    while (bitCount_ & 7)
        writeBit(false);
}

std::vector<uint8_t>
BitWriter::take()
{
    alignToByte();
    bitCount_ = 0;
    return std::move(bytes_);
}

uint32_t
BitReader::readBits(int count)
{
    uint32_t v = 0;
    for (int i = 0; i < count; ++i)
        v = (v << 1) | uint32_t(readBit());
    return v;
}

int
BitReader::readBit()
{
    if (bitPos_ >= bitLimit_) {
        exhausted_ = true;
        return 0;
    }
    int bit = (bytes_[bitPos_ >> 3] >> (7 - (bitPos_ & 7))) & 1;
    ++bitPos_;
    return bit;
}

void
BitReader::alignToByte()
{
    bitPos_ = (bitPos_ + 7) & ~size_t(7);
    if (bitPos_ > bitLimit_)
        bitPos_ = bitLimit_;
}

void
flipBit(std::vector<uint8_t> &bytes, size_t bit_index)
{
    bytes[bit_index >> 3] ^= uint8_t(0x80u >> (bit_index & 7));
}

int
getBit(const std::vector<uint8_t> &bytes, size_t bit_index)
{
    return (bytes[bit_index >> 3] >> (7 - (bit_index & 7))) & 1;
}

void
setBit(std::vector<uint8_t> &bytes, size_t bit_index, int value)
{
    uint8_t mask = uint8_t(0x80u >> (bit_index & 7));
    if (value)
        bytes[bit_index >> 3] |= mask;
    else
        bytes[bit_index >> 3] &= uint8_t(~mask);
}

} // namespace dnastore

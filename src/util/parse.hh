/**
 * @file
 * Strict numeric parsing for untrusted text (CLI flags, wire fields).
 *
 * The bare `strtoull(s, nullptr, 10)` idiom accepts anything with a
 * digit prefix — "4x" parses as 4, "foo" as 0, "-3" wraps to a huge
 * unsigned — so a typo'd flag silently becomes a very different run.
 * These helpers reject anything that is not the full, in-range
 * decimal spelling of the value:
 *
 *  - empty strings and lone signs;
 *  - leading whitespace and trailing junk ("4x", "1.5.2", "12 ");
 *  - negative input to the unsigned parser (including "-0");
 *  - out-of-range magnitudes (ERANGE in either direction for u64,
 *    overflow to +/-inf for f64 — denormal underflow is accepted);
 *  - "nan"/"inf" spellings in parseF64 are *syntactically* accepted
 *    (the option builders reject non-finite values with their own
 *    message), but the error string names them for callers that
 *    want to refuse earlier.
 *
 * On failure: false is returned, *out is untouched, and *err (when
 * non-null) holds a short reason without the offending text — the
 * caller owns quoting it, so messages compose as
 * "--seed: <reason> (got 'foo')".
 */

#ifndef DNASTORE_UTIL_PARSE_HH
#define DNASTORE_UTIL_PARSE_HH

#include <cstdint>
#include <string>

namespace dnastore {

/** Strict unsigned decimal: digits only, full width, in range. */
bool parseU64(const std::string &text, uint64_t *out,
              std::string *err = nullptr);

/** Strict floating point: full-width strtod parse, no overflow. */
bool parseF64(const std::string &text, double *out,
              std::string *err = nullptr);

} // namespace dnastore

#endif // DNASTORE_UTIL_PARSE_HH

#include "consensus/profiler.hh"

#include <algorithm>

#include "channel/ids_channel.hh"
#include "consensus/median_bnb.hh"
#include "util/rng.hh"

namespace dnastore {

double
SkewProfile::peak() const
{
    double p = 0.0;
    for (double e : errorRate)
        p = std::max(p, e);
    return p;
}

double
SkewProfile::mean() const
{
    if (errorRate.empty())
        return 0.0;
    double sum = 0.0;
    for (double e : errorRate)
        sum += e;
    return sum / double(errorRate.size());
}

SkewProfile
profilePositionalError(const Reconstructor &reconstruct,
                       size_t strand_len, size_t coverage,
                       const ErrorModel &model, size_t trials,
                       uint64_t seed)
{
    Rng rng(seed);
    IdsChannel channel(model);
    std::vector<size_t> wrong(strand_len, 0);
    size_t used = 0, excluded = 0;

    for (size_t t = 0; t < trials; ++t) {
        Strand original(strand_len);
        for (auto &b : original)
            b = baseFromBits(unsigned(rng.nextBelow(4)));
        auto reads = channel.transmitCluster(original, coverage, rng);
        Strand estimate = reconstruct(reads, strand_len);
        if (estimate.size() != strand_len) {
            ++excluded;
            continue;
        }
        ++used;
        for (size_t i = 0; i < strand_len; ++i)
            if (estimate[i] != original[i])
                ++wrong[i];
    }

    SkewProfile profile;
    profile.trials = used;
    profile.excluded = excluded;
    profile.errorRate.resize(strand_len, 0.0);
    if (used > 0)
        for (size_t i = 0; i < strand_len; ++i)
            profile.errorRate[i] = double(wrong[i]) / double(used);
    return profile;
}

namespace {

/** Apply the binary IDS channel (p/3 each) to a bit string. */
Seq
distortBits(const Seq &original, double p, Rng &rng)
{
    Seq out;
    out.reserve(original.size() + 4);
    const double p_ins = p / 3.0;
    const double p_del = 2.0 * p / 3.0;
    for (uint8_t bit : original) {
        double u = rng.nextDouble();
        if (u < p_ins) {
            out.push_back(uint8_t(rng.nextBelow(2)));
            out.push_back(bit);
        } else if (u < p_del) {
            // deleted
        } else if (u < p) {
            out.push_back(uint8_t(1 - bit));
        } else {
            out.push_back(bit);
        }
    }
    return out;
}

} // namespace

SkewProfile
profileOptimalMedianError(size_t bit_len, size_t coverage, double p,
                          size_t trials, uint64_t seed)
{
    Rng rng(seed);
    std::vector<size_t> wrong(bit_len, 0);
    size_t used = 0;

    for (size_t t = 0; t < trials; ++t) {
        Seq original(bit_len);
        for (auto &bit : original)
            bit = uint8_t(rng.nextBelow(2));
        std::vector<Seq> traces;
        traces.reserve(coverage);
        for (size_t r = 0; r < coverage; ++r)
            traces.push_back(distortBits(original, p, rng));

        MedianResult median = constrainedMedian(traces, bit_len, 2);
        Seq picked = adversarialPick(median.optima, original);
        ++used;
        for (size_t i = 0; i < bit_len; ++i)
            if (picked[i] != original[i])
                ++wrong[i];
    }

    SkewProfile profile;
    profile.trials = used;
    profile.excluded = 0;
    profile.errorRate.resize(bit_len, 0.0);
    if (used > 0)
        for (size_t i = 0; i < bit_len; ++i)
            profile.errorRate[i] = double(wrong[i]) / double(used);
    return profile;
}

} // namespace dnastore

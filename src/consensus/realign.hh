/**
 * @file
 * Iterative realignment consensus (Sabary-style reconstruction).
 *
 * A re-implementation of the idea behind the iterative DNA
 * reconstruction algorithm of Sabary et al. [23], the "state-of-the-
 * art" reconstructor of the paper's Figure 5: start from an initial
 * estimate, align every read against it with edit-distance traceback,
 * take per-position plurality votes (including insertion and deletion
 * votes), rebuild the estimate, and repeat until it stabilizes.
 *
 * Unlike the one-/two-way reconstructions, the output length is not
 * guaranteed to equal the target length — exactly the property the
 * paper notes for [23]; the skew profiler excludes wrong-length
 * outputs the same way the paper does (Figure 5, footnote 2).
 */

#ifndef DNASTORE_CONSENSUS_REALIGN_HH
#define DNASTORE_CONSENSUS_REALIGN_HH

#include <cstddef>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/**
 * Reconstruct a strand by iterative realignment.
 *
 * @param reads      Noisy copies of the original strand.
 * @param target_len Known length L of the original (used to pick the
 *                   initial estimate; the output may differ in length).
 * @param iterations Maximum refinement rounds.
 */
Strand reconstructIterative(const std::vector<Strand> &reads,
                            size_t target_len, size_t iterations = 5);

/**
 * Reusable DP buffers for alignToReference. One per thread; the
 * matrices grow to the largest alignment seen and are then reused so
 * realignment rounds perform no per-read allocation.
 */
struct RealignScratch
{
    std::vector<uint16_t> dist;
    std::vector<uint8_t> move;
};

/**
 * Align @p read against @p reference with minimal edit distance and
 * return, for every reference position, the read base aligned to it
 * (-1 when the alignment deletes that reference position). Insertions
 * are reported per reference gap in @p ins_after: ins_after[j] lists
 * read bases inserted between reference positions j-1 and j
 * (ins_after[0] = before the first base).
 *
 * Exposed for testing.
 */
void alignToReference(const Strand &reference, const Strand &read,
                      std::vector<int> *aligned,
                      std::vector<std::vector<Base>> *ins_after);

/** As above, with caller-provided DP scratch (allocation-free warm). */
void alignToReference(const Strand &reference, const Strand &read,
                      std::vector<int> *aligned,
                      std::vector<std::vector<Base>> *ins_after,
                      RealignScratch &scratch);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_REALIGN_HH

/**
 * @file
 * Positional-error profilers: measure the reliability skew.
 *
 * These drive Figures 3, 4, 5, and 6 of the paper: generate random
 * original strands, push clusters of noisy copies through a
 * reconstruction algorithm, and record the probability of an incorrect
 * base/bit at each position.
 */

#ifndef DNASTORE_CONSENSUS_PROFILER_HH
#define DNASTORE_CONSENSUS_PROFILER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "channel/error_model.hh"
#include "dna/strand.hh"

namespace dnastore {

/** Any strand reconstructor: reads + known length -> estimate. */
using Reconstructor =
    std::function<Strand(const std::vector<Strand> &, size_t)>;

/** Measured positional error profile. */
struct SkewProfile
{
    /** errorRate[i] = P(reconstructed base i is wrong). */
    std::vector<double> errorRate;

    /** Trials that produced a usable (correct-length) estimate. */
    size_t trials = 0;

    /**
     * Trials excluded because the reconstructor returned the wrong
     * length (the paper excludes those too; see Figure 5, footnote 2).
     */
    size_t excluded = 0;

    /** Largest per-position error rate (the peak of the skew curve). */
    double peak() const;

    /** Mean per-position error rate. */
    double mean() const;
};

/**
 * Profile a reconstructor's positional error over random DNA strands.
 *
 * @param reconstruct Algorithm under test.
 * @param strand_len  Original strand length L.
 * @param coverage    Reads per cluster N.
 * @param model       IDS channel error model.
 * @param trials      Number of random original strands.
 * @param seed        RNG seed.
 */
SkewProfile profilePositionalError(const Reconstructor &reconstruct,
                                   size_t strand_len, size_t coverage,
                                   const ErrorModel &model, size_t trials,
                                   uint64_t seed);

/**
 * Profile the *optimal* reconstruction over a binary alphabet with the
 * adversarial tie-break of section 3.2 (Figure 6). The channel applies
 * insertions, deletions, and substitutions with total probability
 * @p p, one third each.
 *
 * @param bit_len  Original bit-string length (paper: 20).
 * @param coverage Traces per cluster N.
 * @param p        Total per-position error probability (paper: 0.2).
 * @param trials   Number of random original strings.
 * @param seed     RNG seed.
 */
SkewProfile profileOptimalMedianError(size_t bit_len, size_t coverage,
                                      double p, size_t trials,
                                      uint64_t seed);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_PROFILER_HH

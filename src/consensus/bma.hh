/**
 * @file
 * One-way Bitwise/Base-wise Majority Alignment (BMA) consensus.
 *
 * Implements the left-to-right lookahead-majority reconstruction the
 * paper walks through in Figure 2: at each output position the reads
 * vote on the consensus base; disagreeing reads are classified as
 * having suffered an insertion, deletion, or substitution by looking
 * ahead, and their cursors are re-synchronized accordingly. Errors in
 * this classification propagate towards the end of the strand, which
 * is the root cause of the reliability skew (section 3.1).
 */

#ifndef DNASTORE_CONSENSUS_BMA_HH
#define DNASTORE_CONSENSUS_BMA_HH

#include <cstddef>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/**
 * Reconstruct a strand of known length from noisy reads, scanning
 * left to right.
 *
 * @param reads      Noisy copies of the original strand.
 * @param target_len Known length L of the original strand.
 * @return The consensus estimate, exactly @p target_len bases long.
 */
Strand reconstructOneWay(const std::vector<Strand> &reads,
                         size_t target_len);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_BMA_HH

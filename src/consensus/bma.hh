/**
 * @file
 * One-way Bitwise/Base-wise Majority Alignment (BMA) consensus.
 *
 * Implements the left-to-right lookahead-majority reconstruction the
 * paper walks through in Figure 2: at each output position the reads
 * vote on the consensus base; disagreeing reads are classified as
 * having suffered an insertion, deletion, or substitution by looking
 * ahead, and their cursors are re-synchronized accordingly. Errors in
 * this classification propagate towards the end of the strand, which
 * is the root cause of the reliability skew (section 3.1).
 */

#ifndef DNASTORE_CONSENSUS_BMA_HH
#define DNASTORE_CONSENSUS_BMA_HH

#include <cstddef>
#include <vector>

#include "dna/packed_strand.hh"
#include "dna/strand.hh"

namespace dnastore {

/**
 * Reusable per-call working state for the BMA reconstructions. One
 * scratch per thread; buffers grow once and are then reused so the
 * per-cluster loop performs no heap allocation.
 */
struct BmaScratch
{
    std::vector<size_t> cursor;

    /** Gathered current-position bases (histogram kernel input). */
    std::vector<uint8_t> column;

    /** Per active read: the next 8 bases packed one per byte. */
    std::vector<uint64_t> window;

    /** Per active read: valid byte count in window (<= 8). */
    std::vector<uint8_t> windowLen;

    /** Per active read: index into the reads array. */
    std::vector<uint32_t> activeRead;
};

/**
 * Reconstruct a strand of known length from noisy reads, scanning
 * left to right.
 *
 * @param reads      Noisy copies of the original strand.
 * @param target_len Known length L of the original strand.
 * @return The consensus estimate, exactly @p target_len bases long.
 */
Strand reconstructOneWay(const std::vector<Strand> &reads,
                         size_t target_len);

/**
 * View-based variant for the hot path: reconstruct from @p n_reads
 * strand views into @p out (cleared and refilled), reusing @p scratch.
 * Bit-identical to the vector overload.
 */
void reconstructOneWayInto(const StrandView *reads, size_t n_reads,
                           size_t target_len, BmaScratch &scratch,
                           Strand &out);

/**
 * Reconstruct as if every read were reversed, without materializing
 * the reversed reads: the output estimates the reversed original.
 * Bit-identical to reversing each read and calling reconstructOneWay.
 */
void reconstructOneWayReversed(const StrandView *reads, size_t n_reads,
                               size_t target_len, BmaScratch &scratch,
                               Strand &out);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_BMA_HH

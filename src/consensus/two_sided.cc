#include "consensus/two_sided.hh"

#include "consensus/bma.hh"

namespace dnastore {

Strand
reconstructTwoSided(const std::vector<Strand> &reads, size_t target_len)
{
    Strand forward = reconstructOneWay(reads, target_len);

    std::vector<Strand> rev_reads;
    rev_reads.reserve(reads.size());
    for (const Strand &r : reads)
        rev_reads.push_back(reversed(r));
    Strand backward = reversed(reconstructOneWay(rev_reads, target_len));

    // Best of both worlds: the forward pass is most accurate near the
    // beginning, the backward pass near the end.
    Strand out;
    out.reserve(target_len);
    size_t half = target_len / 2;
    out.insert(out.end(), forward.begin(), forward.begin() + long(half));
    out.insert(out.end(), backward.begin() + long(half), backward.end());
    return out;
}

} // namespace dnastore

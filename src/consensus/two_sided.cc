#include "consensus/two_sided.hh"

namespace dnastore {

void
reconstructTwoSidedInto(const StrandView *reads, size_t n_reads,
                        size_t target_len, TwoSidedScratch &scratch,
                        Strand &out)
{
    // The combiner keeps only forward[0, half) and the last
    // target_len - half entries of the backward estimate, and BMA is
    // strictly left-to-right (output position p depends only on
    // positions before it), so each pass reconstructs just the prefix
    // it contributes: half the work of two full passes, bit-identical
    // output.
    const size_t half = target_len / 2;
    reconstructOneWayInto(reads, n_reads, half, scratch.bma,
                          scratch.forward);
    // scratch.backward estimates the reversed original; position i of
    // the original is its position target_len - 1 - i.
    reconstructOneWayReversed(reads, n_reads, target_len - half,
                              scratch.bma, scratch.backward);

    // Best of both worlds: the forward pass is most accurate near the
    // beginning, the backward pass near the end.
    out.clear();
    out.reserve(target_len);
    out.insert(out.end(), scratch.forward.begin(),
               scratch.forward.begin() + long(half));
    for (size_t i = half; i < target_len; ++i)
        out.push_back(scratch.backward[target_len - 1 - i]);
}

Strand
reconstructTwoSided(const std::vector<Strand> &reads, size_t target_len)
{
    static thread_local std::vector<StrandView> views;
    static thread_local TwoSidedScratch scratch;
    views.assign(reads.begin(), reads.end());
    Strand out;
    reconstructTwoSidedInto(views.data(), views.size(), target_len,
                            scratch, out);
    return out;
}

} // namespace dnastore

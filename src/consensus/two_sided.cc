#include "consensus/two_sided.hh"

namespace dnastore {

void
reconstructTwoSidedInto(const StrandView *reads, size_t n_reads,
                        size_t target_len, TwoSidedScratch &scratch,
                        Strand &out)
{
    reconstructOneWayInto(reads, n_reads, target_len, scratch.bma,
                          scratch.forward);
    // scratch.backward estimates the reversed original; position i of
    // the original is its position target_len - 1 - i.
    reconstructOneWayReversed(reads, n_reads, target_len, scratch.bma,
                              scratch.backward);

    // Best of both worlds: the forward pass is most accurate near the
    // beginning, the backward pass near the end.
    const size_t half = target_len / 2;
    out.clear();
    out.reserve(target_len);
    out.insert(out.end(), scratch.forward.begin(),
               scratch.forward.begin() + long(half));
    for (size_t i = half; i < target_len; ++i)
        out.push_back(scratch.backward[target_len - 1 - i]);
}

Strand
reconstructTwoSided(const std::vector<Strand> &reads, size_t target_len)
{
    static thread_local std::vector<StrandView> views;
    static thread_local TwoSidedScratch scratch;
    views.assign(reads.begin(), reads.end());
    Strand out;
    reconstructTwoSidedInto(views.data(), views.size(), target_len,
                            scratch, out);
    return out;
}

} // namespace dnastore

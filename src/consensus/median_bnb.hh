/**
 * @file
 * Exact constrained edit-distance median via branch and bound.
 *
 * The paper (section 3.2) demonstrates that the reliability skew is
 * fundamental — not an artifact of a particular heuristic — by finding
 * *optimal* reconstructions of short strings by brute force: all
 * strings of the target length whose summed edit distance to the noisy
 * traces is minimal, with ties broken adversarially (favoring accuracy
 * in the middle over the ends, i.e., *against* the expected skew).
 * The skew survives even then (Figure 6).
 *
 * This module implements that search as a depth-first branch and bound
 * over string prefixes. For each trace we keep the DP row of edit
 * distances between the current prefix and all trace prefixes; an
 * admissible lower bound prunes the exponential search down to
 * practical sizes for L around 20, as in the paper.
 */

#ifndef DNASTORE_CONSENSUS_MEDIAN_BNB_HH
#define DNASTORE_CONSENSUS_MEDIAN_BNB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/** A string over a small alphabet {0 .. sigma-1}. */
using Seq = std::vector<uint8_t>;

/** Result of a constrained-median search. */
struct MedianResult
{
    /** All length-L strings achieving the minimal distance sum. */
    std::vector<Seq> optima;

    /** The minimal summed edit distance. */
    size_t cost = 0;

    /** True if the optima list was truncated at the configured cap. */
    bool capped = false;
};

/**
 * Find every string of length @p target_len over an alphabet of size
 * @p sigma minimizing the sum of edit distances to @p traces.
 *
 * @param traces     Noisy copies (each a Seq over the same alphabet).
 * @param target_len Required output length L.
 * @param sigma      Alphabet size (2 for the paper's binary study).
 * @param max_optima Cap on the number of collected co-optimal strings.
 */
MedianResult constrainedMedian(const std::vector<Seq> &traces,
                               size_t target_len, unsigned sigma,
                               size_t max_optima = 4096);

/**
 * Adversarial tie-break from the paper: among co-optimal strings, pick
 * the one that is most accurate towards the middle and least accurate
 * towards the ends relative to @p original, attempting to *reverse*
 * the expected skew.
 */
Seq adversarialPick(const std::vector<Seq> &optima, const Seq &original);

/** Sum of edit distances from @p s to every trace (reference impl). */
size_t medianCost(const Seq &s, const std::vector<Seq> &traces);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_MEDIAN_BNB_HH

/**
 * @file
 * Two-sided (2-way) consensus reconstruction.
 *
 * Exploits the symmetry of the consensus problem (section 3.1): run the
 * one-way reconstruction left-to-right and right-to-left, then keep the
 * first half of the forward estimate and the second half of the
 * backward estimate. Error probability then peaks in the middle of the
 * strand instead of growing towards the end (Figure 4). This is the
 * algorithm used by the state-of-the-art storage pipeline the paper
 * builds on, and by this library's own pipeline.
 */

#ifndef DNASTORE_CONSENSUS_TWO_SIDED_HH
#define DNASTORE_CONSENSUS_TWO_SIDED_HH

#include <cstddef>
#include <vector>

#include "consensus/bma.hh"
#include "dna/packed_strand.hh"
#include "dna/strand.hh"

namespace dnastore {

/**
 * Reusable working state for reconstructTwoSided: the BMA cursor
 * buffer plus the forward/backward estimates. One per thread.
 */
struct TwoSidedScratch
{
    BmaScratch bma;
    Strand forward;
    Strand backward;
};

/**
 * Reconstruct a strand of known length from noisy reads using the
 * two-sided procedure.
 *
 * @param reads      Noisy copies of the original strand.
 * @param target_len Known length L of the original strand.
 * @return The consensus estimate, exactly @p target_len bases long.
 */
Strand reconstructTwoSided(const std::vector<Strand> &reads,
                           size_t target_len);

/**
 * View-based variant for the hot path: reconstruct from @p n_reads
 * strand views into @p out (cleared and refilled), reusing
 * @p scratch. The backward pass reads the views through a reversing
 * lens instead of materializing reversed copies. Bit-identical to the
 * vector overload.
 */
void reconstructTwoSidedInto(const StrandView *reads, size_t n_reads,
                             size_t target_len, TwoSidedScratch &scratch,
                             Strand &out);

} // namespace dnastore

#endif // DNASTORE_CONSENSUS_TWO_SIDED_HH

#include "consensus/realign.hh"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace dnastore {

void
alignToReference(const Strand &reference, const Strand &read,
                 std::vector<int> *aligned,
                 std::vector<std::vector<Base>> *ins_after)
{
    static thread_local RealignScratch scratch;
    alignToReference(reference, read, aligned, ins_after, scratch);
}

void
alignToReference(const Strand &reference, const Strand &read,
                 std::vector<int> *aligned,
                 std::vector<std::vector<Base>> *ins_after,
                 RealignScratch &scratch)
{
    const size_t n = reference.size();
    const size_t m = read.size();

    // Full DP matrix with traceback. Moves: 0 = diagonal (match/sub),
    // 1 = up (delete reference base), 2 = left (insert read base).
    std::vector<uint16_t> &dist = scratch.dist;
    std::vector<uint8_t> &move = scratch.move;
    dist.resize((n + 1) * (m + 1));
    move.resize((n + 1) * (m + 1));
    auto at = [m](size_t i, size_t j) { return i * (m + 1) + j; };

    for (size_t j = 0; j <= m; ++j) {
        dist[at(0, j)] = uint16_t(j);
        move[at(0, j)] = 2;
    }
    for (size_t i = 1; i <= n; ++i) {
        dist[at(i, 0)] = uint16_t(i);
        move[at(i, 0)] = 1;
        for (size_t j = 1; j <= m; ++j) {
            uint16_t diag = dist[at(i - 1, j - 1)] +
                (reference[i - 1] == read[j - 1] ? 0 : 1);
            uint16_t up = dist[at(i - 1, j)] + 1;
            uint16_t left = dist[at(i, j - 1)] + 1;
            // Prefer diagonal moves on ties for alignment stability.
            if (diag <= up && diag <= left) {
                dist[at(i, j)] = diag;
                move[at(i, j)] = 0;
            } else if (up <= left) {
                dist[at(i, j)] = up;
                move[at(i, j)] = 1;
            } else {
                dist[at(i, j)] = left;
                move[at(i, j)] = 2;
            }
        }
    }

    aligned->assign(n, -1);
    // resize + clear (not assign) keeps the inner vectors' capacity,
    // so repeated realignment rounds stop churning tiny allocations.
    ins_after->resize(n + 1);
    for (auto &v : *ins_after)
        v.clear();
    size_t i = n, j = m;
    while (i > 0 || j > 0) {
        uint8_t mv = move[at(i, j)];
        if (i > 0 && j > 0 && mv == 0) {
            (*aligned)[i - 1] = int(bitsFromBase(read[j - 1]));
            --i;
            --j;
        } else if (i > 0 && (j == 0 || mv == 1)) {
            --i; // reference base deleted in the read
        } else {
            (*ins_after)[i].push_back(read[j - 1]);
            --j;
        }
    }
}

Strand
reconstructIterative(const std::vector<Strand> &reads, size_t target_len,
                     size_t iterations)
{
    if (reads.empty())
        return Strand(target_len, Base::A);

    // Initial estimate: the read whose length is closest to the target.
    size_t best_read = 0;
    size_t best_gap = size_t(-1);
    for (size_t r = 0; r < reads.size(); ++r) {
        size_t gap = size_t(std::llabs(
            static_cast<long long>(reads[r].size()) -
            static_cast<long long>(target_len)));
        if (gap < best_gap) {
            best_gap = gap;
            best_read = r;
        }
    }
    Strand estimate = reads[best_read];
    if (estimate.empty())
        estimate = Strand(target_len, Base::A);

    const size_t n_reads = reads.size();
    RealignScratch align_scratch;
    for (size_t iter = 0; iter < iterations; ++iter) {
        const size_t len = estimate.size();
        // Per-position base votes, deletion votes, and insertion votes.
        std::vector<std::array<int, kNumBases>> votes(
            len, std::array<int, kNumBases>{});
        std::vector<int> del_votes(len, 0);
        std::vector<std::array<int, kNumBases>> ins_votes(
            len + 1, std::array<int, kNumBases>{});
        std::vector<int> ins_total(len + 1, 0);

        std::vector<int> aligned;
        std::vector<std::vector<Base>> ins_after;
        for (const Strand &read : reads) {
            alignToReference(estimate, read, &aligned, &ins_after,
                             align_scratch);
            for (size_t i = 0; i < len; ++i) {
                if (aligned[i] >= 0)
                    ++votes[i][size_t(aligned[i])];
                else
                    ++del_votes[i];
            }
            for (size_t i = 0; i <= len; ++i) {
                for (Base b : ins_after[i]) {
                    ++ins_votes[i][bitsFromBase(b)];
                    ++ins_total[i];
                }
            }
        }

        // Rebuild: emit insertion consensus where a majority of reads
        // inserted, drop positions a majority deleted, otherwise take
        // the plurality base.
        Strand next;
        next.reserve(len + 2);
        auto emit_insertions = [&](size_t gap) {
            if (size_t(ins_total[gap]) * 2 > n_reads) {
                int best = 0;
                for (int b = 1; b < kNumBases; ++b)
                    if (ins_votes[gap][b] > ins_votes[gap][best])
                        best = b;
                next.push_back(baseFromBits(unsigned(best)));
            }
        };
        for (size_t i = 0; i < len; ++i) {
            emit_insertions(i);
            int aligned_votes = 0;
            int best = 0;
            for (int b = 0; b < kNumBases; ++b) {
                aligned_votes += votes[i][b];
                if (votes[i][b] > votes[i][best])
                    best = b;
            }
            if (del_votes[i] > aligned_votes)
                continue;
            next.push_back(baseFromBits(unsigned(best)));
        }
        emit_insertions(len);

        if (next == estimate)
            break;
        estimate = std::move(next);
        if (estimate.empty()) {
            estimate = Strand(target_len, Base::A);
            break;
        }
    }

    // Length correction: when the estimate missed the known length,
    // delete the weakest-supported positions or insert the strongest
    // insertion candidates until it fits (the length-aware step of
    // practical reconstructors).
    if (estimate.size() != target_len && !estimate.empty()) {
        const size_t len = estimate.size();
        std::vector<std::array<int, kNumBases>> votes(
            len, std::array<int, kNumBases>{});
        std::vector<std::array<int, kNumBases>> ins_votes(
            len + 1, std::array<int, kNumBases>{});
        std::vector<int> ins_total(len + 1, 0);
        std::vector<int> aligned;
        std::vector<std::vector<Base>> ins_after;
        for (const Strand &read : reads) {
            alignToReference(estimate, read, &aligned, &ins_after,
                             align_scratch);
            for (size_t i = 0; i < len; ++i)
                if (aligned[i] >= 0)
                    ++votes[i][size_t(aligned[i])];
            for (size_t i = 0; i <= len; ++i) {
                for (Base b : ins_after[i]) {
                    ++ins_votes[i][bitsFromBase(b)];
                    ++ins_total[i];
                }
            }
        }
        if (estimate.size() > target_len) {
            // Support of a position = votes for its current base.
            std::vector<std::pair<int, size_t>> support;
            for (size_t i = 0; i < len; ++i)
                support.emplace_back(
                    votes[i][bitsFromBase(estimate[i])], i);
            std::sort(support.begin(), support.end());
            std::vector<bool> drop(len, false);
            for (size_t k = 0; k < len - target_len; ++k)
                drop[support[k].second] = true;
            Strand fixed;
            fixed.reserve(target_len);
            for (size_t i = 0; i < len; ++i)
                if (!drop[i])
                    fixed.push_back(estimate[i]);
            estimate = std::move(fixed);
        } else {
            // Insert at the gaps with the most insertion votes.
            std::vector<std::pair<int, size_t>> gaps;
            for (size_t i = 0; i <= len; ++i)
                gaps.emplace_back(-ins_total[i], i);
            std::sort(gaps.begin(), gaps.end());
            std::vector<std::pair<size_t, Base>> inserts;
            for (size_t k = 0; k < target_len - len; ++k) {
                size_t gap = gaps[k % gaps.size()].second;
                int best = 0;
                for (int b = 1; b < kNumBases; ++b)
                    if (ins_votes[gap][b] > ins_votes[gap][best])
                        best = b;
                inserts.emplace_back(gap, baseFromBits(unsigned(best)));
            }
            std::sort(inserts.begin(), inserts.end(),
                      [](const auto &a, const auto &b) {
                          return a.first > b.first;
                      });
            for (const auto &[gap, base] : inserts)
                estimate.insert(estimate.begin() + long(gap), base);
        }
    }
    return estimate;
}

} // namespace dnastore

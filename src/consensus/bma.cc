#include "consensus/bma.hh"

#include <array>

namespace dnastore {

namespace {

/** Majority base among the given votes; ties break to the lowest. */
int
majority(const std::array<int, kNumBases> &votes)
{
    int best = 0;
    for (int b = 1; b < kNumBases; ++b)
        if (votes[b] > votes[best])
            best = b;
    return best;
}

/** Lookahead window used to classify an outlier's error type. */
constexpr size_t kWindow = 3;

/** Base @p i of read @p r, optionally through a reversing lens. */
template <bool kRev>
inline Base
readAt(const StrandView &r, size_t i)
{
    return kRev ? r[r.size() - 1 - i] : r[i];
}

/**
 * The one-way lookahead-majority scan, shared by the forward and
 * reversed entry points. Reads are only ever accessed through
 * readAt<kRev>, so the reversed pass needs no materialized copies.
 */
template <bool kRev>
void
reconstructCore(const StrandView *reads, size_t n, size_t target_len,
                BmaScratch &scratch, Strand &out)
{
    std::vector<size_t> &cursor = scratch.cursor;
    cursor.assign(n, 0);
    out.clear();
    out.reserve(target_len);

    Base last_consensus = Base::A;
    for (size_t pos = 0; pos < target_len; ++pos) {
        // Vote on the current base across active reads.
        std::array<int, kNumBases> votes{};
        size_t active = 0;
        for (size_t r = 0; r < n; ++r) {
            if (cursor[r] < reads[r].size()) {
                ++votes[bitsFromBase(readAt<kRev>(reads[r], cursor[r]))];
                ++active;
            }
        }
        if (active == 0) {
            // All reads exhausted: pad with the last consensus base.
            out.push_back(last_consensus);
            continue;
        }
        int best_vote = majority(votes);
        Base c = baseFromBits(unsigned(best_vote));

        // Unanimity fast path: with no outlier there is nothing to
        // classify, so the lookahead estimation below is dead weight;
        // advance every active cursor and move on. At realistic error
        // rates this skips the dominant cost for most positions.
        if (votes[best_vote] == int(active)) {
            for (size_t r = 0; r < n; ++r) {
                if (cursor[r] < reads[r].size())
                    ++cursor[r];
            }
            out.push_back(c);
            last_consensus = c;
            continue;
        }

        // Estimate the next kWindow consensus bases from the reads
        // that agree at the current position. These drive the
        // error-type classification below, mirroring the Figure 2
        // reasoning ("the next two characters are GT in most
        // sequences..."). One pass per read fills all windows.
        std::array<std::array<int, kNumBases>, kWindow> nv{};
        std::array<int, kWindow> voters{};
        for (size_t r = 0; r < n; ++r) {
            size_t cur = cursor[r];
            const StrandView &read = reads[r];
            if (cur >= read.size() || readAt<kRev>(read, cur) != c)
                continue;
            for (size_t w = 0; w < kWindow; ++w) {
                if (cur + w + 1 >= read.size())
                    break;
                ++nv[w][bitsFromBase(readAt<kRev>(read, cur + w + 1))];
                ++voters[w];
            }
        }
        std::array<Base, kWindow> next{};
        std::array<bool, kWindow> have_next{};
        for (size_t w = 0; w < kWindow; ++w) {
            have_next[w] = voters[w] > 0;
            next[w] = baseFromBits(unsigned(majority(nv[w])));
        }

        // Classify each outlier read by scoring the three hypotheses
        // over the lookahead window and resynchronize its cursor.
        for (size_t r = 0; r < n; ++r) {
            size_t cur = cursor[r];
            if (cur >= reads[r].size())
                continue;
            if (readAt<kRev>(reads[r], cur) == c) {
                cursor[r] = cur + 1;
                continue;
            }
            const StrandView &read = reads[r];
            auto read_at = [&read](size_t i, Base expect) {
                return i < read.size() && readAt<kRev>(read, i) == expect;
            };
            // Score each hypothesis with the same number of evidence
            // terms (kWindow) so no hypothesis is favored merely by
            // having more chances to match (this matters on repeated
            // bases, where an asymmetric insertion score would win
            // spuriously and desynchronize the read).
            //
            // Substitution: read[cur] is a corrupted c; the window
            // after it should match the upcoming consensus.
            int score_sub = 0;
            // Insertion: read[cur] is an extra base; c and then the
            // upcoming consensus follow it.
            int score_ins = read_at(cur + 1, c) ? 1 : 0;
            // Deletion: the read lost c; read[cur] itself should
            // match the upcoming consensus.
            int score_del = 0;
            for (size_t w = 0; w < kWindow; ++w) {
                if (!have_next[w])
                    continue;
                score_sub += read_at(cur + 1 + w, next[w]) ? 1 : 0;
                if (w + 1 < kWindow)
                    score_ins += read_at(cur + 2 + w, next[w]) ? 1 : 0;
                score_del += read_at(cur + w, next[w]) ? 1 : 0;
            }
            if (score_sub >= score_ins && score_sub >= score_del) {
                cursor[r] = cur + 1; // substitution
            } else if (score_ins >= score_del) {
                cursor[r] = cur + 2; // insertion: skip it, consume c
            } else {
                // deletion: c is missing from the read; keep cursor.
            }
        }
        out.push_back(c);
        last_consensus = c;
    }
}

} // namespace

void
reconstructOneWayInto(const StrandView *reads, size_t n_reads,
                      size_t target_len, BmaScratch &scratch,
                      Strand &out)
{
    reconstructCore<false>(reads, n_reads, target_len, scratch, out);
}

void
reconstructOneWayReversed(const StrandView *reads, size_t n_reads,
                          size_t target_len, BmaScratch &scratch,
                          Strand &out)
{
    reconstructCore<true>(reads, n_reads, target_len, scratch, out);
}

Strand
reconstructOneWay(const std::vector<Strand> &reads, size_t target_len)
{
    static thread_local std::vector<StrandView> views;
    static thread_local BmaScratch scratch;
    views.assign(reads.begin(), reads.end());
    Strand out;
    reconstructCore<false>(views.data(), views.size(), target_len,
                           scratch, out);
    return out;
}

} // namespace dnastore

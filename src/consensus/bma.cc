#include "consensus/bma.hh"

#include <array>
#include <cstring>
#include <stdexcept>

#include "util/simd.hh"

namespace dnastore {

namespace {

/** Majority base among the given votes; ties break to the lowest. */
int
majority(const std::array<uint32_t, kNumBases> &votes)
{
    int best = 0;
    for (int b = 1; b < kNumBases; ++b)
        if (votes[size_t(b)] > votes[size_t(best)])
            best = b;
    return best;
}

/** Lookahead window used to classify an outlier's error type. */
constexpr size_t kWindow = 3;

/** Base @p i of read @p r, optionally through a reversing lens. */
template <bool kRev>
inline Base
readAt(const StrandView &r, size_t i)
{
    return kRev ? r[r.size() - 1 - i] : r[i];
}

/** Raw byte pointer of a view (Base is a uint8_t enum). */
inline const uint8_t *
bytes(const StrandView &r)
{
    return reinterpret_cast<const uint8_t *>(r.data());
}

/**
 * The next min(rem, 8) bases of the read starting at lens position
 * @p cur, packed one per byte (byte i = base cur + i); missing bytes
 * are zero. One word load serves the vote, the lookahead windows, and
 * the outlier classification, replacing up to eight scattered
 * per-base fetches. The reversed lens walks the strand downward, so
 * the load is byte-swapped into lens order.
 */
template <bool kRev>
inline uint64_t
loadWindow(const StrandView &read, size_t cur, size_t rem)
{
    const uint8_t *base = bytes(read);
    if (!kRev) {
        uint64_t w;
        if (rem >= 8) {
            std::memcpy(&w, base + cur, 8);
            return w;
        }
        w = 0;
        std::memcpy(&w, base + cur, rem);
        return w;
    }
    size_t p = read.size() - 1 - cur;
    uint64_t t;
    if (p >= 7) {
        std::memcpy(&t, base + p - 7, 8);
        return __builtin_bswap64(t);
    }
    t = 0;
    std::memcpy(&t, base, p + 1);
    return __builtin_bswap64(t) >> (8 * (7 - p));
}

/**
 * Length of the run of positions, starting at the current cursors,
 * over which reads @p read and @p read0 agree — at most @p cap
 * positions. Through the reversing lens the windows walk down the
 * strands, so the comparison is a common-suffix scan of the
 * underlying bytes.
 */
template <bool kRev>
inline size_t
agreeRun(const StrandView &read, size_t cur, const StrandView &read0,
         size_t cur0, size_t cap)
{
    if (!kRev)
        return simd::matchRunForward(bytes(read) + cur,
                                     bytes(read0) + cur0, cap);
    size_t p = read.size() - 1 - cur;
    size_t p0 = read0.size() - 1 - cur0;
    return simd::matchRunBackward(bytes(read) + p + 1 - cap,
                                  bytes(read0) + p0 + 1 - cap, cap);
}

/**
 * The one-way lookahead-majority scan, shared by the forward and
 * reversed entry points. Reads are only ever accessed through
 * readAt<kRev> (or its bulk equivalents), so the reversed pass needs
 * no materialized copies.
 *
 * Positions where every active read agrees are the common case at
 * realistic error rates, and a whole run of them is detected with one
 * vectorized compare per read (32 bases per step) instead of a
 * per-position vote: the run's bases are emitted in bulk and every
 * cursor jumps forward by the run length, which is exactly what the
 * per-position unanimity fast path did one base at a time.
 * Disagreeing positions take the vote path: one packed 8-base window
 * load per active read feeds the SIMD column histogram, the lookahead
 * majority windows, and the Figure 2 error-type classification.
 */
template <bool kRev>
void
reconstructCore(const StrandView *reads, size_t n, size_t target_len,
                BmaScratch &scratch, Strand &out)
{
    // The packed 16-bit vote counters bound the cluster size; real
    // coverages are orders of magnitude below this.
    if (n >= 0xffff)
        throw std::invalid_argument(
            "BMA consensus supports at most 65534 reads per cluster");

    std::vector<size_t> &cursor = scratch.cursor;
    cursor.assign(n, 0);
    out.clear();
    out.reserve(target_len);

    std::vector<uint8_t> &column = scratch.column;
    std::vector<uint64_t> &window = scratch.window;
    std::vector<uint8_t> &wlen = scratch.windowLen;
    std::vector<uint32_t> &aread = scratch.activeRead;

    Base last_consensus = Base::A;
    size_t pos = 0;
    while (pos < target_len) {
        // Cheap unanimity probe: find the first active read and check
        // whether every other active read shows the same base. Run
        // positions (the common case) pay only these one-byte loads.
        size_t first = n;
        bool unanimous = true;
        Base c = Base::A;
        for (size_t r = 0; r < n; ++r) {
            if (cursor[r] >= reads[r].size())
                continue;
            Base b = readAt<kRev>(reads[r], cursor[r]);
            if (first == n) {
                first = r;
                c = b;
            } else if (b != c) {
                unanimous = false;
                break;
            }
        }

        if (first == n) {
            // All reads exhausted: pad with the last consensus base.
            out.push_back(last_consensus);
            ++pos;
            continue;
        }

        if (unanimous) {
            // Extend the unanimous stretch as far as every active
            // read keeps matching the first active read (equality is
            // transitive, so pairwise-vs-first suffices): one
            // vectorized compare per read covers the whole run
            // instead of a vote per position.
            size_t run = target_len - pos;
            for (size_t r = first; r < n; ++r) {
                if (cursor[r] < reads[r].size())
                    run = std::min(run, reads[r].size() - cursor[r]);
            }
            const StrandView &read0 = reads[first];
            for (size_t r = first + 1; r < n && run > 1; ++r) {
                if (cursor[r] >= reads[r].size())
                    continue;
                run = agreeRun<kRev>(reads[r], cursor[r], read0,
                                     cursor[first], run);
            }
            // run >= 1: the probe already matched the current bases.
            for (size_t i = 0; i < run; ++i)
                out.push_back(readAt<kRev>(read0, cursor[first] + i));
            for (size_t r = first; r < n; ++r) {
                if (cursor[r] < reads[r].size())
                    cursor[r] += run;
            }
            last_consensus = out.back();
            pos += run;
            continue;
        }

        // Vote path. Gather each active read's packed 8-base window
        // once; everything below runs on the gathered words.
        column.resize(n);
        window.resize(n);
        wlen.resize(n);
        aread.resize(n);
        size_t active = 0;
        for (size_t r = 0; r < n; ++r) {
            size_t cur = cursor[r];
            if (cur >= reads[r].size())
                continue;
            size_t rem = reads[r].size() - cur;
            uint64_t w = loadWindow<kRev>(reads[r], cur, rem);
            column[active] = uint8_t(w & 0xff);
            window[active] = w;
            wlen[active] = uint8_t(rem < 8 ? rem : 8);
            aread[active] = uint32_t(r);
            ++active;
        }

        // Column base histogram (SIMD kernel), then majority vote.
        std::array<uint32_t, kNumBases> votes{};
        simd::histogram4(column.data(), active, votes.data());
        int best_vote = majority(votes);
        c = baseFromBits(unsigned(best_vote));
        const uint8_t c_byte = uint8_t(c);

        // Estimate the next kWindow consensus bases from the reads
        // that agree at the current position. These drive the
        // error-type classification below, mirroring the Figure 2
        // reasoning ("the next two characters are GT in most
        // sequences..."). The gathered windows already hold the
        // lookahead bases.
        // Each window position's votes live in one packed word of
        // four 16-bit counters (same trick as the narrow histogram).
        std::array<uint64_t, kWindow> nv_packed{};
        std::array<uint32_t, kWindow> voters{};
        for (size_t a = 0; a < active; ++a) {
            if (column[a] != c_byte)
                continue;
            const uint64_t w = window[a];
            const size_t len = wlen[a];
            // Branchless: an out-of-range window position contributes
            // a zero addend instead of taking a data-dependent branch.
            for (size_t wi = 0; wi < kWindow; ++wi) {
                uint64_t valid = uint64_t(wi + 1 < len);
                nv_packed[wi] += valid
                    << (16 * ((w >> (8 * (wi + 1))) & 0xff));
                voters[wi] += uint32_t(valid);
            }
        }
        std::array<Base, kWindow> next{};
        std::array<bool, kWindow> have_next{};
        for (size_t w = 0; w < kWindow; ++w) {
            have_next[w] = voters[w] > 0;
            std::array<uint32_t, kNumBases> nv = {
                uint32_t(nv_packed[w] & 0xffff),
                uint32_t((nv_packed[w] >> 16) & 0xffff),
                uint32_t((nv_packed[w] >> 32) & 0xffff),
                uint32_t((nv_packed[w] >> 48) & 0xffff),
            };
            next[w] = baseFromBits(unsigned(majority(nv)));
        }

        // Classify each outlier read by scoring the three hypotheses
        // over the lookahead window and resynchronize its cursor.
        // Every probe reads the gathered window word (all hypothesis
        // offsets fit in its 8 bases).
        for (size_t a = 0; a < active; ++a) {
            const size_t r = aread[a];
            const size_t cur = cursor[r];
            if (column[a] == c_byte) {
                cursor[r] = cur + 1;
                continue;
            }
            const uint64_t w = window[a];
            const size_t len = wlen[a];
            // Branchless probe: 1 when the window holds @p expect at
            // @p off, 0 otherwise (including out of range).
            auto at = [w, len](size_t off, Base expect) -> int {
                return int(off < len) &
                    int(uint8_t((w >> (8 * off)) & 0xff) ==
                        uint8_t(expect));
            };
            // Score each hypothesis with the same number of evidence
            // terms (kWindow) so no hypothesis is favored merely by
            // having more chances to match (this matters on repeated
            // bases, where an asymmetric insertion score would win
            // spuriously and desynchronize the read).
            //
            // Substitution: read[cur] is a corrupted c; the window
            // after it should match the upcoming consensus.
            int score_sub = 0;
            // Insertion: read[cur] is an extra base; c and then the
            // upcoming consensus follow it.
            int score_ins = at(1, c);
            // Deletion: the read lost c; read[cur] itself should
            // match the upcoming consensus.
            int score_del = 0;
            for (size_t wi = 0; wi < kWindow; ++wi) {
                const int have = int(have_next[wi]);
                score_sub += have & at(1 + wi, next[wi]);
                if (wi + 1 < kWindow)
                    score_ins += have & at(2 + wi, next[wi]);
                score_del += have & at(wi, next[wi]);
            }
            if (score_sub >= score_ins && score_sub >= score_del) {
                cursor[r] = cur + 1; // substitution
            } else if (score_ins >= score_del) {
                cursor[r] = cur + 2; // insertion: skip it, consume c
            } else {
                // deletion: c is missing from the read; keep cursor.
            }
        }
        out.push_back(c);
        last_consensus = c;
        ++pos;
    }
}

} // namespace

void
reconstructOneWayInto(const StrandView *reads, size_t n_reads,
                      size_t target_len, BmaScratch &scratch,
                      Strand &out)
{
    reconstructCore<false>(reads, n_reads, target_len, scratch, out);
}

void
reconstructOneWayReversed(const StrandView *reads, size_t n_reads,
                          size_t target_len, BmaScratch &scratch,
                          Strand &out)
{
    reconstructCore<true>(reads, n_reads, target_len, scratch, out);
}

Strand
reconstructOneWay(const std::vector<Strand> &reads, size_t target_len)
{
    static thread_local std::vector<StrandView> views;
    static thread_local BmaScratch scratch;
    views.assign(reads.begin(), reads.end());
    Strand out;
    reconstructCore<false>(views.data(), views.size(), target_len,
                           scratch, out);
    return out;
}

} // namespace dnastore

#include "consensus/median_bnb.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace dnastore {

namespace {

/** DFS state shared across the branch-and-bound recursion. */
struct Search
{
    const std::vector<Seq> &traces;
    size_t targetLen;
    unsigned sigma;
    size_t maxOptima;

    // rows[t] holds the DP row for trace t at the current depth:
    // rows[t][j] = edit distance(prefix, traces[t][0..j)).
    std::vector<std::vector<uint32_t>> rows;
    Seq prefix;

    size_t best = std::numeric_limits<size_t>::max();
    std::vector<Seq> optima;
    bool capped = false;

    explicit Search(const std::vector<Seq> &tr, size_t len, unsigned s,
                    size_t cap)
        : traces(tr), targetLen(len), sigma(s), maxOptima(cap)
    {
        rows.reserve(traces.size());
        for (const Seq &t : traces) {
            std::vector<uint32_t> row(t.size() + 1);
            for (size_t j = 0; j <= t.size(); ++j)
                row[j] = uint32_t(j);
            rows.push_back(std::move(row));
        }
        prefix.reserve(len);
    }

    /**
     * Admissible lower bound on the total cost of any completion of
     * the current prefix with exactly @p rem more symbols: matching a
     * suffix of length (m-j) with rem symbols costs at least
     * |rem - (m-j)| additional edits.
     */
    size_t
    lowerBound(size_t rem) const
    {
        size_t sum = 0;
        for (size_t t = 0; t < traces.size(); ++t) {
            const auto &row = rows[t];
            const size_t m = traces[t].size();
            uint64_t lb = std::numeric_limits<uint64_t>::max();
            for (size_t j = 0; j <= m; ++j) {
                uint64_t tail = uint64_t(std::llabs(
                    static_cast<long long>(rem) -
                    static_cast<long long>(m - j)));
                lb = std::min(lb, row[j] + tail);
            }
            sum += size_t(lb);
        }
        return sum;
    }

    void
    dfs()
    {
        const size_t depth = prefix.size();
        if (depth == targetLen) {
            size_t cost = 0;
            for (size_t t = 0; t < traces.size(); ++t)
                cost += rows[t][traces[t].size()];
            if (cost < best) {
                best = cost;
                optima.clear();
                capped = false;
            }
            if (cost == best) {
                if (optima.size() < maxOptima)
                    optima.push_back(prefix);
                else
                    capped = true;
            }
            return;
        }
        size_t lb = lowerBound(targetLen - depth);
        if (lb > best)
            return;

        std::vector<std::vector<uint32_t>> saved = rows;
        for (unsigned a = 0; a < sigma; ++a) {
            // Advance every DP row by symbol a.
            for (size_t t = 0; t < traces.size(); ++t) {
                const Seq &trace = traces[t];
                auto &row = rows[t];
                const auto &prev = saved[t];
                row[0] = prev[0] + 1;
                for (size_t j = 1; j <= trace.size(); ++j) {
                    uint32_t sub = prev[j - 1] +
                        (trace[j - 1] == a ? 0u : 1u);
                    row[j] = std::min({ prev[j] + 1, row[j - 1] + 1,
                                        sub });
                }
            }
            prefix.push_back(uint8_t(a));
            dfs();
            prefix.pop_back();
        }
        rows = std::move(saved);
    }
};

} // namespace

MedianResult
constrainedMedian(const std::vector<Seq> &traces, size_t target_len,
                  unsigned sigma, size_t max_optima)
{
    if (sigma < 2)
        throw std::invalid_argument("constrainedMedian: sigma < 2");
    for (const Seq &t : traces)
        for (uint8_t c : t)
            if (c >= sigma)
                throw std::invalid_argument(
                    "constrainedMedian: symbol out of alphabet");

    Search search(traces, target_len, sigma, max_optima);
    search.dfs();

    MedianResult result;
    result.cost = search.best;
    result.optima = std::move(search.optima);
    result.capped = search.capped;
    return result;
}

Seq
adversarialPick(const std::vector<Seq> &optima, const Seq &original)
{
    if (optima.empty())
        throw std::invalid_argument("adversarialPick: no candidates");
    const size_t len = original.size();
    long best_score = std::numeric_limits<long>::min();
    const Seq *best = &optima.front();
    for (const Seq &cand : optima) {
        long score = 0;
        size_t n = std::min(cand.size(), len);
        for (size_t i = 0; i < n; ++i) {
            // Centrality weight: 0 at the ends, maximal in the middle.
            long w = long(std::min(i, len - 1 - i));
            score += (cand[i] == original[i]) ? w : -w;
        }
        if (score > best_score) {
            best_score = score;
            best = &cand;
        }
    }
    return *best;
}

size_t
medianCost(const Seq &s, const std::vector<Seq> &traces)
{
    size_t sum = 0;
    for (const Seq &t : traces) {
        const size_t n = s.size(), m = t.size();
        std::vector<size_t> row(m + 1);
        for (size_t j = 0; j <= m; ++j)
            row[j] = j;
        for (size_t i = 1; i <= n; ++i) {
            size_t diag = row[0];
            row[0] = i;
            for (size_t j = 1; j <= m; ++j) {
                size_t cost = (s[i - 1] == t[j - 1]) ? 0 : 1;
                size_t val = std::min({ row[j] + 1, row[j - 1] + 1,
                                        diag + cost });
                diag = row[j];
                row[j] = val;
            }
        }
        sum += row[m];
    }
    return sum;
}

} // namespace dnastore

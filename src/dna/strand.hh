/**
 * @file
 * DNA strand container and sequence-level utilities.
 */

#ifndef DNASTORE_DNA_STRAND_HH
#define DNASTORE_DNA_STRAND_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dna/nucleotide.hh"

namespace dnastore {

/** A synthetic DNA strand: an ordered sequence of bases. */
using Strand = std::vector<Base>;

/** Render a strand as an ACGT string. */
std::string strandToString(const Strand &s);

/**
 * Parse an ACGT string into a strand.
 *
 * @throws std::invalid_argument on any non-ACGT character.
 */
Strand strandFromString(const std::string &str);

/** Reverse of a strand (no complementing). */
Strand reversed(const Strand &s);

/** Reverse complement, the form a strand takes on the opposite helix. */
Strand reverseComplement(const Strand &s);

/** Fraction of bases that are G or C, in [0, 1]; 0 for empty strands. */
double gcContent(const Strand &s);

/** Length of the longest run of a repeated base (homopolymer). */
size_t maxHomopolymerRun(const Strand &s);

/**
 * Levenshtein edit distance between two strands (unit costs for
 * insertion, deletion, and substitution).
 *
 * Computed with Myers' bit-parallel algorithm (Hyyrö's block
 * formulation): 64 DP rows advance per word operation, over
 * thread-local scratch bit vectors, so the steady state does no heap
 * allocation. Fuzz-checked against a full-matrix reference.
 */
size_t editDistance(const Strand &a, const Strand &b);

/** Edit distance over raw base ranges (same DP as editDistance). */
size_t editDistanceRange(const Base *a, size_t na, const Base *b,
                         size_t nb);

/**
 * Batched edit distance: dists[i] = Levenshtein distance between
 * @p pattern and texts[i], for all @p k texts.
 *
 * The pattern's Myers match masks are built once and shared by every
 * comparison, and texts are verified four at a time in the 64-bit
 * lanes of the SIMD kernel (util/simd.hh) when available. Results
 * are exact and bit-identical to editDistance on every dispatch
 * tier; this is the candidate-verification primitive behind read
 * clustering, where one read is checked against several cluster
 * representatives at once.
 */
class StrandView;
void editDistanceBatch(const Base *pattern, size_t m,
                       const StrandView *texts, size_t k,
                       uint32_t *dists);

/** Number of positions where equal-length prefixes differ. */
size_t hammingDistance(const Strand &a, const Strand &b);

} // namespace dnastore

#endif // DNASTORE_DNA_STRAND_HH

#include "dna/primer.hh"

#include <algorithm>

#include "util/rng.hh"

namespace dnastore {

namespace {

/** Generate one primer satisfying GC and homopolymer constraints. */
Strand
generatePrimer(Rng &rng, size_t primer_len)
{
    for (;;) {
        Strand p;
        p.reserve(primer_len);
        for (size_t i = 0; i < primer_len; ++i)
            p.push_back(baseFromBits(unsigned(rng.nextBelow(4))));
        double gc = gcContent(p);
        if (primer_len >= 4 && (gc < 0.4 || gc > 0.6))
            continue;
        if (maxHomopolymerRun(p) > 3)
            continue;
        return p;
    }
}

/** Edit distance between a strand window and a primer. */
size_t
windowDistance(const Strand &read, size_t begin, size_t len,
               const Strand &primer)
{
    size_t end = std::min(read.size(), begin + len);
    Strand window(read.begin() + long(begin), read.begin() + long(end));
    return editDistance(window, primer);
}

} // namespace

PrimerPair
makePrimerPair(uint64_t key_id, size_t primer_len)
{
    // Mix the key id so that adjacent ids give unrelated primers.
    Rng rng(key_id * 0x2545f4914f6cdd1dULL + 0x632be59bd9b4e019ULL);
    PrimerPair pair;
    pair.forward = generatePrimer(rng, primer_len);
    pair.backward = generatePrimer(rng, primer_len);
    return pair;
}

Strand
attachPrimers(const PrimerPair &pair, const Strand &payload)
{
    Strand out;
    out.reserve(pair.forward.size() + payload.size() +
                pair.backward.size());
    out.insert(out.end(), pair.forward.begin(), pair.forward.end());
    out.insert(out.end(), payload.begin(), payload.end());
    out.insert(out.end(), pair.backward.begin(), pair.backward.end());
    return out;
}

bool
stripPrimers(const PrimerPair &pair, const Strand &read,
             size_t max_edits, Strand *payload)
{
    const size_t flen = pair.forward.size();
    const size_t blen = pair.backward.size();
    if (read.size() < flen + blen)
        return false;

    if (windowDistance(read, 0, flen, pair.forward) > max_edits)
        return false;
    if (windowDistance(read, read.size() - blen, blen, pair.backward) >
        max_edits) {
        return false;
    }
    if (payload) {
        payload->assign(read.begin() + long(flen),
                        read.end() - long(blen));
    }
    return true;
}

} // namespace dnastore

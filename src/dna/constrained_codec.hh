/**
 * @file
 * Homopolymer-avoiding rotation codec (the Goldman-style constraint
 * coding of paper section 2.1).
 *
 * Some sequencing chemistries misread runs of identical bases, so
 * practical encoders avoid homopolymers at the cost of information
 * density. This codec maps each 1.58-bit symbol (a ternary digit) to
 * one base by *rotating* away from the previously emitted base: the
 * three possible digits select among the three bases different from
 * the previous one, so no two consecutive bases are ever equal.
 *
 * The paper's evaluation uses the maximum-density 2-bit/base mapping
 * "without loss of generality"; this codec exists so the library
 * covers the constrained regime too, and so the constraint-violation
 * detection trick (a homopolymer in a read *proves* an error there)
 * is available.
 *
 * GC content: each trit is whitened by a fixed position-indexed
 * pseudo-random rotation (shared by encoder and decoder, so the
 * mapping stays invertible and costs no capacity). Structured
 * payloads — constant fills, short periods — therefore make the same
 * uniform-looking base choices as random data, and the GC content of
 * any non-trivial strand concentrates tightly around 1/2 instead of
 * drifting with the payload's digit pattern. The homopolymer-free
 * property remains structural (guaranteed for every payload).
 */

#ifndef DNASTORE_DNA_CONSTRAINED_CODEC_HH
#define DNASTORE_DNA_CONSTRAINED_CODEC_HH

#include <cstdint>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/**
 * Encode bytes into a homopolymer-free strand.
 *
 * The byte stream is re-expressed in base 3 (5 trits per byte, since
 * 3^5 = 243 < 256 a 6th trit carries the overflow — concretely each
 * byte maps to 6 trits of its base-3 representation, capacity
 * 3^6 = 729 >= 256) and each trit rotates the base selection.
 *
 * @param bytes Input payload.
 * @param start Base preceding the strand (defaults to A; the first
 *              emitted base differs from it).
 */
Strand encodeConstrained(const std::vector<uint8_t> &bytes,
                         Base start = Base::A);

/**
 * Decode a homopolymer-free strand back to bytes.
 *
 * @param s     Encoded strand (length must be a multiple of 6).
 * @param start Must match the value given to encodeConstrained.
 * @param ok    Set to false if the strand violates the constraint
 *              (two equal consecutive bases) or has a bad length —
 *              which, per the paper, doubles as error *detection*.
 */
std::vector<uint8_t> decodeConstrained(const Strand &s,
                                       Base start = Base::A,
                                       bool *ok = nullptr);

/** Bits-per-base information density of this codec (log2(3) ~ 1.58). */
double constrainedDensity();

} // namespace dnastore

#endif // DNASTORE_DNA_CONSTRAINED_CODEC_HH

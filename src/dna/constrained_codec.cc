#include "dna/constrained_codec.hh"

#include <cmath>

#include "util/rng.hh"

namespace dnastore {

namespace {

/** The three bases different from @p prev, in canonical order. */
void
alternatives(Base prev, Base out[3])
{
    int k = 0;
    for (unsigned v = 0; v < 4; ++v) {
        Base b = baseFromBits(v);
        if (b != prev)
            out[k++] = b;
    }
}

/** Index of @p b among the three alternatives to @p prev; -1 if b==prev. */
int
tritOf(Base prev, Base b)
{
    if (b == prev)
        return -1;
    Base alt[3];
    alternatives(prev, alt);
    for (int t = 0; t < 3; ++t)
        if (alt[t] == b)
            return t;
    return -1;
}

constexpr size_t kTritsPerByte = 6; // 3^6 = 729 >= 256

/**
 * Whitening rotation for the trit at strand position @p i: a fixed
 * splitmix64-derived stream, identical for encode and decode. Without
 * it, structured payloads (constant fills, short periods) repeat the
 * same digit pattern forever and can walk the GC content far from
 * 1/2; rotating each digit by a pseudo-random amount makes every
 * payload's base choices look uniform, so GC concentrates tightly
 * around 1/2 — the statistical GC constraint real synthesis pipelines
 * get from payload randomization — while the homopolymer-free
 * guarantee stays structural.
 */
unsigned
whitenAt(size_t i)
{
    return unsigned(
        splitmix64Mix((uint64_t(i) + 1) * 0x9e3779b97f4a7c15ULL) % 3);
}

} // namespace

Strand
encodeConstrained(const std::vector<uint8_t> &bytes, Base start)
{
    Strand out;
    out.reserve(bytes.size() * kTritsPerByte);
    Base prev = start;
    for (uint8_t byte : bytes) {
        // Base-3 digits of the byte, most significant first.
        int digits[kTritsPerByte];
        unsigned v = byte;
        for (size_t i = kTritsPerByte; i-- > 0;) {
            digits[i] = int(v % 3);
            v /= 3;
        }
        for (int digit : digits) {
            Base alt[3];
            alternatives(prev, alt);
            Base b = alt[(unsigned(digit) + whitenAt(out.size())) % 3];
            out.push_back(b);
            prev = b;
        }
    }
    return out;
}

std::vector<uint8_t>
decodeConstrained(const Strand &s, Base start, bool *ok)
{
    if (ok)
        *ok = true;
    std::vector<uint8_t> out;
    if (s.size() % kTritsPerByte != 0) {
        if (ok)
            *ok = false;
        return out;
    }
    out.reserve(s.size() / kTritsPerByte);
    Base prev = start;
    for (size_t i = 0; i < s.size(); i += kTritsPerByte) {
        unsigned value = 0;
        for (size_t j = 0; j < kTritsPerByte; ++j) {
            int trit = tritOf(prev, s[i + j]);
            if (trit >= 0)
                trit = int((unsigned(trit) + 3 - whitenAt(i + j)) % 3);
            if (trit < 0) {
                // Constraint violated: a repeated base proves an
                // error at this position (paper section 2.1).
                if (ok)
                    *ok = false;
                return out;
            }
            value = value * 3 + unsigned(trit);
            prev = s[i + j];
        }
        if (value > 0xff) {
            if (ok)
                *ok = false;
            return out;
        }
        out.push_back(uint8_t(value));
    }
    return out;
}

double
constrainedDensity()
{
    return std::log2(3.0);
}

} // namespace dnastore

/**
 * @file
 * Binary <-> DNA base codecs.
 *
 * The paper assumes the maximum-density direct mapping of two bits per
 * base (00=A, 01=C, 10=G, 11=T); these helpers pack byte buffers, raw
 * bit fields, and fixed-width integers into base sequences and back.
 */

#ifndef DNASTORE_DNA_CODEC_HH
#define DNASTORE_DNA_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/** Encode a byte buffer into bases, two bits per base, MSB-first. */
Strand encodeBytes(const std::vector<uint8_t> &bytes);

/**
 * Decode bases back into bytes (inverse of encodeBytes).
 *
 * If the strand does not hold a whole number of bytes, the trailing
 * bits are dropped.
 */
std::vector<uint8_t> decodeBytes(const Strand &s);

/** Encode the low @p n_bits bits of @p value (must be even) into bases. */
Strand encodeUint(uint64_t value, int n_bits);

/**
 * Decode @p n_bits bits (n_bits/2 bases) starting at base offset
 * @p base_offset of @p s into an unsigned integer (MSB-first).
 * Out-of-range bases read as zero.
 */
uint64_t decodeUint(const Strand &s, size_t base_offset, int n_bits);

/** Append @p n_bits bits of @p value to @p out as bases. */
void appendUint(Strand &out, uint64_t value, int n_bits);

} // namespace dnastore

#endif // DNASTORE_DNA_CODEC_HH

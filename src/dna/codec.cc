#include "dna/codec.hh"

#include <stdexcept>

namespace dnastore {

Strand
encodeBytes(const std::vector<uint8_t> &bytes)
{
    Strand out;
    out.reserve(bytes.size() * 4);
    for (uint8_t byte : bytes) {
        for (int shift = 6; shift >= 0; shift -= 2)
            out.push_back(baseFromBits(byte >> shift));
    }
    return out;
}

std::vector<uint8_t>
decodeBytes(const Strand &s)
{
    std::vector<uint8_t> out;
    out.reserve(s.size() / 4);
    for (size_t i = 0; i + 4 <= s.size(); i += 4) {
        uint8_t byte = 0;
        for (size_t j = 0; j < 4; ++j)
            byte = uint8_t((byte << 2) | bitsFromBase(s[i + j]));
        out.push_back(byte);
    }
    return out;
}

Strand
encodeUint(uint64_t value, int n_bits)
{
    Strand out;
    appendUint(out, value, n_bits);
    return out;
}

void
appendUint(Strand &out, uint64_t value, int n_bits)
{
    if (n_bits % 2 != 0)
        throw std::invalid_argument("appendUint: n_bits must be even");
    for (int shift = n_bits - 2; shift >= 0; shift -= 2)
        out.push_back(baseFromBits(unsigned(value >> shift)));
}

uint64_t
decodeUint(const Strand &s, size_t base_offset, int n_bits)
{
    if (n_bits % 2 != 0)
        throw std::invalid_argument("decodeUint: n_bits must be even");
    uint64_t v = 0;
    for (int i = 0; i < n_bits / 2; ++i) {
        size_t idx = base_offset + size_t(i);
        unsigned bits = idx < s.size() ? bitsFromBase(s[idx]) : 0u;
        v = (v << 2) | bits;
    }
    return v;
}

} // namespace dnastore

#include "dna/strand.hh"

#include <algorithm>
#include <stdexcept>

namespace dnastore {

std::string
strandToString(const Strand &s)
{
    std::string out;
    out.reserve(s.size());
    for (Base b : s)
        out.push_back(baseToChar(b));
    return out;
}

Strand
strandFromString(const std::string &str)
{
    Strand out;
    out.reserve(str.size());
    for (char c : str) {
        bool ok = false;
        Base b = charToBase(c, &ok);
        if (!ok)
            throw std::invalid_argument("invalid base character in strand");
        out.push_back(b);
    }
    return out;
}

Strand
reversed(const Strand &s)
{
    return Strand(s.rbegin(), s.rend());
}

Strand
reverseComplement(const Strand &s)
{
    Strand out;
    out.reserve(s.size());
    for (auto it = s.rbegin(); it != s.rend(); ++it)
        out.push_back(complement(*it));
    return out;
}

double
gcContent(const Strand &s)
{
    if (s.empty())
        return 0.0;
    size_t gc = 0;
    for (Base b : s)
        if (b == Base::G || b == Base::C)
            ++gc;
    return double(gc) / double(s.size());
}

size_t
maxHomopolymerRun(const Strand &s)
{
    size_t best = s.empty() ? 0 : 1;
    size_t run = 1;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] == s[i - 1]) {
            ++run;
            best = std::max(best, run);
        } else {
            run = 1;
        }
    }
    return best;
}

size_t
editDistance(const Strand &a, const Strand &b)
{
    const size_t n = a.size(), m = b.size();
    std::vector<size_t> row(m + 1);
    for (size_t j = 0; j <= m; ++j)
        row[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= m; ++j) {
            size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
            size_t best = std::min({ row[j] + 1, row[j - 1] + 1,
                                     diag + cost });
            diag = row[j];
            row[j] = best;
        }
    }
    return row[m];
}

size_t
hammingDistance(const Strand &a, const Strand &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t d = 0;
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            ++d;
    return d;
}

} // namespace dnastore

#include "dna/strand.hh"

#include <algorithm>
#include <stdexcept>

#include "dna/packed_strand.hh"
#include "util/simd.hh"

namespace dnastore {

std::string
strandToString(const Strand &s)
{
    std::string out;
    out.resize(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        out[i] = baseToChar(s[i]);
    return out;
}

Strand
strandFromString(const std::string &str)
{
    Strand out;
    out.resize(str.size());
    for (size_t i = 0; i < str.size(); ++i) {
        bool ok = false;
        out[i] = charToBase(str[i], &ok);
        if (!ok)
            throw std::invalid_argument("invalid base character in strand");
    }
    return out;
}

Strand
reversed(const Strand &s)
{
    const size_t n = s.size();
    Strand out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = s[n - 1 - i];
    return out;
}

Strand
reverseComplement(const Strand &s)
{
    const size_t n = s.size();
    Strand out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = complement(s[n - 1 - i]);
    return out;
}

double
gcContent(const Strand &s)
{
    if (s.empty())
        return 0.0;
    size_t gc = 0;
    for (Base b : s)
        if (b == Base::G || b == Base::C)
            ++gc;
    return double(gc) / double(s.size());
}

size_t
maxHomopolymerRun(const Strand &s)
{
    size_t best = s.empty() ? 0 : 1;
    size_t run = 1;
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] == s[i - 1]) {
            ++run;
            best = std::max(best, run);
        } else {
            run = 1;
        }
    }
    return best;
}

size_t
editDistanceRange(const Base *a, size_t na, const Base *b, size_t nb)
{
    // Myers' bit-parallel algorithm (Hyyrö's block formulation for
    // global distance): the DP column is encoded as vertical-delta
    // bit vectors VP/VN, advanced 64 rows per word operation instead
    // of one cell at a time. The 4-letter alphabet makes the Peq
    // match masks tiny. All buffers are thread-local scratch, so the
    // steady state is allocation-free.
    //
    // The pattern is the shorter strand (fewer 64-row blocks).
    if (nb > na) {
        std::swap(a, b);
        std::swap(na, nb);
    }
    if (nb == 0)
        return na;

    const size_t m = nb;
    const size_t blocks = (m + 63) / 64;
    static thread_local std::vector<uint64_t> peq; // per base, per block
    static thread_local std::vector<uint64_t> vp, vn;
    peq.assign(size_t(kNumBases) * blocks, 0);
    for (size_t i = 0; i < m; ++i)
        peq[size_t(bitsFromBase(b[i])) * blocks + (i >> 6)] |=
            uint64_t(1) << (i & 63);
    // Global alignment boundary D(i, 0) = i: all vertical deltas +1.
    vp.assign(blocks, ~uint64_t(0));
    vn.assign(blocks, 0);

    size_t score = m;
    const uint64_t last_bit = uint64_t(1) << ((m - 1) & 63);
    for (size_t j = 0; j < na; ++j) {
        const uint64_t *eq_row =
            peq.data() + size_t(bitsFromBase(a[j])) * blocks;
        // Boundary D(0, j) = j: horizontal carry into row 0 is +1.
        int hin = 1;
        for (size_t blk = 0; blk < blocks; ++blk) {
            uint64_t eq = eq_row[blk];
            const uint64_t pv = vp[blk], mv = vn[blk];
            const uint64_t xv = eq | mv;
            if (hin < 0)
                eq |= 1;
            const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
            uint64_t ph = mv | ~(xh | pv);
            uint64_t mh = pv & xh;
            if (blk == blocks - 1) {
                // Track the score at the true last pattern row; the
                // pad rows above it only ever receive carries.
                if (ph & last_bit)
                    ++score;
                if (mh & last_bit)
                    --score;
            }
            const int hout =
                (ph >> 63) ? 1 : ((mh >> 63) ? -1 : 0);
            ph <<= 1;
            mh <<= 1;
            if (hin < 0)
                mh |= 1;
            else if (hin > 0)
                ph |= 1;
            vp[blk] = mh | ~(xv | ph);
            vn[blk] = ph & xv;
            hin = hout;
        }
    }
    return score;
}

size_t
editDistance(const Strand &a, const Strand &b)
{
    return editDistanceRange(a.data(), a.size(), b.data(), b.size());
}

void
editDistanceBatch(const Base *pattern, size_t m,
                  const StrandView *texts, size_t k, uint32_t *dists)
{
    if (m == 0) {
        for (size_t i = 0; i < k; ++i)
            dists[i] = uint32_t(texts[i].size());
        return;
    }

    // Build the pattern's match masks once; every text comparison
    // reuses them. Myers blocks advance 64 DP rows per word (or per
    // vector lane) operation.
    const size_t blocks = (m + 63) / 64;
    static thread_local std::vector<uint64_t> peq;
    peq.assign(size_t(kNumBases) * blocks, 0);
    for (size_t i = 0; i < m; ++i)
        peq[size_t(bitsFromBase(pattern[i])) * blocks + (i >> 6)] |=
            uint64_t(1) << (i & 63);

    static thread_local std::vector<const uint8_t *> ptrs;
    static thread_local std::vector<size_t> lens;
    ptrs.resize(k);
    lens.resize(k);
    for (size_t i = 0; i < k; ++i) {
        ptrs[i] = reinterpret_cast<const uint8_t *>(texts[i].data());
        lens[i] = texts[i].size();
    }
    simd::myersBatch(peq.data(), m, blocks, ptrs.data(), lens.data(),
                     k, dists);
}

size_t
hammingDistance(const Strand &a, const Strand &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t d = 0;
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            ++d;
    return d;
}

} // namespace dnastore

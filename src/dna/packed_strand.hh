/**
 * @file
 * Flat-memory strand containers for the simulation hot path.
 *
 * The simulator's steady state handles millions of noisy reads; storing
 * each as its own heap-allocated std::vector<Base> costs an allocation,
 * a pointer chase, and cache-line padding per read. This layer provides
 * the flat alternatives:
 *
 *  - StrandView: a non-owning span over bases, so algorithms can run on
 *    strands stored anywhere (a Strand, an arena, a decoded buffer)
 *    without copying.
 *  - StrandArena: an append-only pool that keeps many strands in one
 *    contiguous base buffer, so a cluster's reads share cache lines and
 *    the per-read allocation disappears.
 *  - PackedStrand / PackedArena: 2-bit base packing (32 bases per
 *    64-bit word) with bulk pack/unpack, for read pools that must hold
 *    production-scale read sets in memory.
 */

#ifndef DNASTORE_DNA_PACKED_STRAND_HH
#define DNASTORE_DNA_PACKED_STRAND_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dna/strand.hh"

namespace dnastore {

/** Non-owning view of a contiguous run of bases. */
class StrandView
{
  public:
    StrandView() = default;

    StrandView(const Base *data, size_t size) : data_(data), size_(size) {}

    /** A whole Strand viewed in place (no copy). */
    StrandView(const Strand &s) : data_(s.data()), size_(s.size()) {}

    const Base *data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    Base operator[](size_t i) const { return data_[i]; }

    const Base *begin() const { return data_; }
    const Base *end() const { return data_ + size_; }

    /** Materialize an owning copy. */
    Strand toStrand() const { return Strand(data_, data_ + size_); }

  private:
    const Base *data_ = nullptr;
    size_t size_ = 0;
};

bool operator==(StrandView a, StrandView b);
inline bool
operator!=(StrandView a, StrandView b)
{
    return !(a == b);
}

/**
 * Append-only pool of strands in one contiguous base buffer.
 *
 * Build strands either whole (append) or incrementally (push +
 * endStrand). Views are stable only while no further bases are
 * appended: take them after the arena is fully built.
 */
class StrandArena
{
  public:
    StrandArena() { offsets_.push_back(0); }

    /** Drop all strands but keep the allocated capacity. */
    void
    clear()
    {
        bases_.clear();
        offsets_.clear();
        offsets_.push_back(0);
    }

    /** Pre-size the buffers so the build loop never reallocates. */
    void
    reserve(size_t total_bases, size_t n_strands)
    {
        bases_.reserve(total_bases);
        offsets_.reserve(n_strands + 1);
    }

    /** Append a whole strand; @p s must not alias this arena. */
    void
    append(StrandView s)
    {
        bases_.insert(bases_.end(), s.begin(), s.end());
        offsets_.push_back(bases_.size());
    }

    /** Append one base to the strand currently being built. */
    void push(Base b) { bases_.push_back(b); }

    /**
     * Append a new strand of @p n uninitialized bases and return its
     * writable start. The pointer is valid until the next append.
     */
    Base *
    appendUninitialized(size_t n)
    {
        size_t off = bases_.size();
        bases_.resize(off + n);
        offsets_.push_back(bases_.size());
        return bases_.data() + off;
    }

    /** Finish the strand currently being built (may be empty). */
    void endStrand() { offsets_.push_back(bases_.size()); }

    size_t strandCount() const { return offsets_.size() - 1; }
    size_t totalBases() const { return bases_.size(); }

    StrandView
    view(size_t i) const
    {
        return StrandView(bases_.data() + offsets_[i],
                          offsets_[i + 1] - offsets_[i]);
    }

  private:
    std::vector<Base> bases_;
    std::vector<size_t> offsets_;
};

/** Pack bases 2 bits each into 64-bit words, low bits first. */
void packBases(const Base *bases, size_t n, uint64_t *words);

/** Inverse of packBases. */
void unpackBases(const uint64_t *words, size_t n, Base *bases);

/** Words needed to hold @p n packed bases. */
inline size_t
packedWordCount(size_t n)
{
    return (n + 31) / 32;
}

/** One strand stored 2 bits per base (32 bases per word). */
class PackedStrand
{
  public:
    PackedStrand() = default;

    explicit PackedStrand(StrandView s) { pack(s); }

    /** Replace the contents with a packed copy of @p s. */
    void pack(StrandView s);

    /** Unpack into @p out (resized to fit). */
    void unpack(Strand &out) const;

    /** Unpack into a fresh Strand. */
    Strand
    unpack() const
    {
        Strand out;
        unpack(out);
        return out;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Random access without unpacking. */
    Base
    at(size_t i) const
    {
        return static_cast<Base>((words_[i >> 5] >> ((i & 31) * 2)) & 3);
    }

    /**
     * Number of positions where this strand and @p other differ,
     * computed on the packed words directly (2-bit XOR compare +
     * popcount, SIMD-dispatched): the Hamming distance without an
     * unpack. Both strands must have the same length.
     */
    size_t mismatchCount(const PackedStrand &other) const;

    size_t wordCount() const { return words_.size(); }

  private:
    std::vector<uint64_t> words_;
    size_t size_ = 0;
};

bool operator==(const PackedStrand &a, const PackedStrand &b);

/**
 * Append-only pool of 2-bit-packed strands, each starting on a word
 * boundary so strands pack and unpack with whole-word operations.
 * Quarters the memory of a StrandArena at the cost of an unpack step
 * before random-access algorithms run.
 */
class PackedArena
{
  public:
    void
    clear()
    {
        words_.clear();
        wordOffsets_.clear();
        sizes_.clear();
    }

    void
    reserve(size_t total_bases, size_t n_strands)
    {
        words_.reserve(packedWordCount(total_bases) + n_strands);
        wordOffsets_.reserve(n_strands);
        sizes_.reserve(n_strands);
    }

    /** Append a packed copy of @p s. */
    void append(StrandView s);

    size_t strandCount() const { return sizes_.size(); }

    /** Length in bases of strand @p i. */
    size_t size(size_t i) const { return sizes_[i]; }

    /** Unpack strand @p i into @p out (resized to fit). */
    void unpackInto(size_t i, Strand &out) const;

    /** Unpack strand @p i as a new strand appended to @p out. */
    void unpackInto(size_t i, StrandArena &out) const;

    size_t wordCount() const { return words_.size(); }

  private:
    std::vector<uint64_t> words_;
    std::vector<size_t> wordOffsets_;
    std::vector<uint32_t> sizes_;
};

/**
 * A set of reads grouped into clusters, as strand views plus cluster
 * offsets — the decoder-facing shape of a read pool query. The views
 * either alias external storage (a pool's arenas, caller vectors) or
 * the batch's own scratch arena when the source needed unpacking.
 */
struct ReadBatch
{
    StrandArena scratch;            //!< Backing store when views can't alias.
    std::vector<StrandView> views;  //!< All reads, cluster-concatenated.
    std::vector<size_t> offsets;    //!< clusters() + 1 cluster boundaries.

    void
    clear()
    {
        scratch.clear();
        views.clear();
        offsets.clear();
    }

    size_t
    clusters() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }

    const StrandView *
    cluster(size_t c) const
    {
        return views.data() + offsets[c];
    }

    size_t
    clusterSize(size_t c) const
    {
        return offsets[c + 1] - offsets[c];
    }
};

} // namespace dnastore

#endif // DNASTORE_DNA_PACKED_STRAND_HH

#include "dna/nucleotide.hh"

namespace dnastore {

char
baseToChar(Base b)
{
    static constexpr char chars[kNumBases] = { 'A', 'C', 'G', 'T' };
    return chars[static_cast<uint8_t>(b) & 3u];
}

Base
charToBase(char c, bool *ok)
{
    if (ok)
        *ok = true;
    switch (c) {
      case 'A': case 'a': return Base::A;
      case 'C': case 'c': return Base::C;
      case 'G': case 'g': return Base::G;
      case 'T': case 't': return Base::T;
      default:
        if (ok)
            *ok = false;
        return Base::A;
    }
}

Base
complement(Base b)
{
    // A(00)<->T(11), C(01)<->G(10): complement is bitwise NOT in 2 bits.
    return static_cast<Base>(~static_cast<uint8_t>(b) & 3u);
}

} // namespace dnastore

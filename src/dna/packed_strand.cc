#include "dna/packed_strand.hh"

#include <cstring>

#include "util/simd.hh"

namespace dnastore {

bool
operator==(StrandView a, StrandView b)
{
    if (a.size() != b.size())
        return false;
    if (a.size() == 0 || a.data() == b.data())
        return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(Base)) == 0;
}

void
packBases(const Base *bases, size_t n, uint64_t *words)
{
    size_t full = n / 32;
    for (size_t w = 0; w < full; ++w) {
        const Base *p = bases + w * 32;
        uint64_t word = 0;
        for (size_t j = 0; j < 32; ++j)
            word |= uint64_t(static_cast<uint8_t>(p[j])) << (2 * j);
        words[w] = word;
    }
    size_t rest = n % 32;
    if (rest) {
        const Base *p = bases + full * 32;
        uint64_t word = 0;
        for (size_t j = 0; j < rest; ++j)
            word |= uint64_t(static_cast<uint8_t>(p[j])) << (2 * j);
        words[full] = word;
    }
}

void
unpackBases(const uint64_t *words, size_t n, Base *bases)
{
    size_t full = n / 32;
    for (size_t w = 0; w < full; ++w) {
        uint64_t word = words[w];
        Base *p = bases + w * 32;
        for (size_t j = 0; j < 32; ++j)
            p[j] = static_cast<Base>((word >> (2 * j)) & 3);
    }
    size_t rest = n % 32;
    if (rest) {
        uint64_t word = words[full];
        Base *p = bases + full * 32;
        for (size_t j = 0; j < rest; ++j)
            p[j] = static_cast<Base>((word >> (2 * j)) & 3);
    }
}

void
PackedStrand::pack(StrandView s)
{
    size_ = s.size();
    words_.assign(packedWordCount(size_), 0);
    if (size_)
        packBases(s.data(), size_, words_.data());
}

void
PackedStrand::unpack(Strand &out) const
{
    out.resize(size_);
    if (size_)
        unpackBases(words_.data(), size_, out.data());
}

size_t
PackedStrand::mismatchCount(const PackedStrand &other) const
{
    // Pad fields beyond size() are zero on both sides, so whole-word
    // compares never produce phantom mismatches.
    return simd::diffCountPacked(words_.data(), other.words_.data(),
                                 words_.size());
}

bool
operator==(const PackedStrand &a, const PackedStrand &b)
{
    if (a.size() != b.size())
        return false;
    return a.mismatchCount(b) == 0;
}

void
PackedArena::append(StrandView s)
{
    size_t off = words_.size();
    size_t n_words = packedWordCount(s.size());
    words_.resize(off + n_words, 0);
    if (!s.empty())
        packBases(s.data(), s.size(), words_.data() + off);
    wordOffsets_.push_back(off);
    sizes_.push_back(uint32_t(s.size()));
}

void
PackedArena::unpackInto(size_t i, Strand &out) const
{
    out.resize(sizes_[i]);
    if (sizes_[i])
        unpackBases(words_.data() + wordOffsets_[i], sizes_[i],
                    out.data());
}

void
PackedArena::unpackInto(size_t i, StrandArena &out) const
{
    size_t n = sizes_[i];
    Base *dst = out.appendUninitialized(n);
    if (n)
        unpackBases(words_.data() + wordOffsets_[i], n, dst);
}

} // namespace dnastore

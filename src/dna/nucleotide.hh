/**
 * @file
 * Nucleotide base type and conversions.
 */

#ifndef DNASTORE_DNA_NUCLEOTIDE_HH
#define DNASTORE_DNA_NUCLEOTIDE_HH

#include <cstdint>

namespace dnastore {

/**
 * One DNA base. The numeric values implement the paper's maximum-
 * density coding scheme directly: 00=A, 01=C, 10=G, 11=T.
 */
enum class Base : uint8_t { A = 0, C = 1, G = 2, T = 3 };

/** Number of distinct bases (alphabet size). */
inline constexpr int kNumBases = 4;

/** Convert a base to its character ('A', 'C', 'G', 'T'). */
char baseToChar(Base b);

/**
 * Convert a character to a base.
 *
 * @param c One of "ACGTacgt".
 * @param ok Set to false if @p c is not a valid base character.
 */
Base charToBase(char c, bool *ok = nullptr);

/** Watson-Crick complement (A<->T, C<->G). */
Base complement(Base b);

/** Base from the low two bits of @p v. */
inline Base
baseFromBits(unsigned v)
{
    return static_cast<Base>(v & 3u);
}

/** Two-bit value of a base. */
inline unsigned
bitsFromBase(Base b)
{
    return static_cast<unsigned>(b);
}

} // namespace dnastore

#endif // DNASTORE_DNA_NUCLEOTIDE_HH

/**
 * @file
 * PCR primer generation and framing.
 *
 * Each file (key) in a DNA key-value store is tagged with a pair of
 * primer sequences: one prepended and one appended to every strand of
 * the file (paper section 2.1). Primers act as the PCR random-access
 * key; here they are generated deterministically from a key id subject
 * to biochemical plausibility constraints (balanced GC content, no long
 * homopolymers).
 */

#ifndef DNASTORE_DNA_PRIMER_HH
#define DNASTORE_DNA_PRIMER_HH

#include <cstddef>
#include <cstdint>

#include "dna/strand.hh"

namespace dnastore {

/** A forward/reverse primer pair identifying one stored object. */
struct PrimerPair
{
    Strand forward;  //!< Prepended to every strand of the object.
    Strand backward; //!< Appended to every strand of the object.
};

/**
 * Deterministically derive a primer pair for a key.
 *
 * The generated primers satisfy GC content in [0.4, 0.6] and contain
 * no homopolymer longer than 3 bases, the usual synthesis guidance.
 *
 * @param key_id   Object key; distinct keys get distinct primers.
 * @param primer_len Bases per primer (paper: 20 each, 40 total).
 */
PrimerPair makePrimerPair(uint64_t key_id, size_t primer_len);

/** Frame a payload with a primer pair: forward + payload + backward. */
Strand attachPrimers(const PrimerPair &pair, const Strand &payload);

/**
 * Remove primer framing from a read.
 *
 * Matches the primer regions approximately: the read's leading and
 * trailing windows must be within @p max_edits edit distance of the
 * expected primers. Returns true and writes the payload (everything
 * between the matched windows) on success.
 */
bool stripPrimers(const PrimerPair &pair, const Strand &read,
                  size_t max_edits, Strand *payload);

} // namespace dnastore

#endif // DNASTORE_DNA_PRIMER_HH

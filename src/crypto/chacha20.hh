/**
 * @file
 * ChaCha20 stream cipher (RFC 8439 core).
 *
 * The paper stores end-to-end encrypted files (section 6.1) and argues
 * that DnaMapper's content-agnostic, position-based bit ranking is the
 * reason approximate storage still works on ciphertext: a stream
 * cipher XORs a keystream, so bit i of the ciphertext corrupts exactly
 * bit i of the plaintext — position (and thus priority) survives
 * encryption. This module provides that substrate.
 */

#ifndef DNASTORE_CRYPTO_CHACHA20_HH
#define DNASTORE_CRYPTO_CHACHA20_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/** ChaCha20 keystream generator / XOR cipher. */
class ChaCha20
{
  public:
    /**
     * @param key     256-bit key.
     * @param nonce   96-bit nonce.
     * @param counter Initial block counter (RFC 8439 uses 1 for AEAD;
     *                0 is fine for pure stream encryption).
     */
    ChaCha20(const std::array<uint8_t, 32> &key,
             const std::array<uint8_t, 12> &nonce, uint32_t counter = 0);

    /**
     * XOR the keystream into @p data in place. Encryption and
     * decryption are the same operation; a fresh ChaCha20 object (same
     * key/nonce/counter) must be used for each.
     */
    void apply(std::vector<uint8_t> &data);

    /** Convenience: encrypted copy of @p data. */
    std::vector<uint8_t> applied(std::vector<uint8_t> data);

    /** Derive a key deterministically from a 64-bit seed (tests/demo). */
    static std::array<uint8_t, 32> deriveKey(uint64_t seed);

    /** Derive a nonce deterministically from a 64-bit seed. */
    static std::array<uint8_t, 12> deriveNonce(uint64_t seed);

  private:
    void refill();

    std::array<uint32_t, 16> state_;
    std::array<uint8_t, 64> block_;
    size_t blockPos_ = 64; // forces refill on first use
};

} // namespace dnastore

#endif // DNASTORE_CRYPTO_CHACHA20_HH

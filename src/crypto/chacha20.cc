#include "crypto/chacha20.hh"

namespace dnastore {

namespace {

uint32_t
rotl32(uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

uint32_t
load32(const uint8_t *p)
{
    return uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
        (uint32_t(p[2]) << 16) | (uint32_t(p[3]) << 24);
}

} // namespace

ChaCha20::ChaCha20(const std::array<uint8_t, 32> &key,
                   const std::array<uint8_t, 12> &nonce, uint32_t counter)
{
    // "expand 32-byte k" constants.
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        state_[4 + i] = load32(key.data() + 4 * i);
    state_[12] = counter;
    for (int i = 0; i < 3; ++i)
        state_[13 + i] = load32(nonce.data() + 4 * i);
}

void
ChaCha20::refill()
{
    std::array<uint32_t, 16> x = state_;
    for (int round = 0; round < 10; ++round) {
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) {
        uint32_t word = x[i] + state_[i];
        block_[4 * i + 0] = uint8_t(word);
        block_[4 * i + 1] = uint8_t(word >> 8);
        block_[4 * i + 2] = uint8_t(word >> 16);
        block_[4 * i + 3] = uint8_t(word >> 24);
    }
    ++state_[12];
    blockPos_ = 0;
}

void
ChaCha20::apply(std::vector<uint8_t> &data)
{
    for (auto &byte : data) {
        if (blockPos_ >= block_.size())
            refill();
        byte ^= block_[blockPos_++];
    }
}

std::vector<uint8_t>
ChaCha20::applied(std::vector<uint8_t> data)
{
    apply(data);
    return data;
}

std::array<uint8_t, 32>
ChaCha20::deriveKey(uint64_t seed)
{
    std::array<uint8_t, 32> key{};
    uint64_t x = seed;
    for (size_t i = 0; i < key.size(); ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        key[i] = uint8_t((x * 0x2545f4914f6cdd1dULL) >> 56);
    }
    return key;
}

std::array<uint8_t, 12>
ChaCha20::deriveNonce(uint64_t seed)
{
    std::array<uint8_t, 12> nonce{};
    uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
    for (size_t i = 0; i < nonce.size(); ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        nonce[i] = uint8_t((x * 0x2545f4914f6cdd1dULL) >> 56);
    }
    return nonce;
}

} // namespace dnastore

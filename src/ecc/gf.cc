#include "ecc/gf.hh"

#include <stdexcept>

namespace dnastore {

namespace {

/** Standard primitive polynomials for GF(2^m), m = 2..16. */
constexpr uint32_t kPrimitivePolys[17] = {
    0, 0,
    0x7,     // m=2:  x^2 + x + 1
    0xb,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11d,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201b,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x4443,  // m=14: x^14 + x^10 + x^6 + x + 1
    0x8003,  // m=15: x^15 + x + 1
    0x1100b, // m=16: x^16 + x^12 + x^3 + x + 1
};

} // namespace

GaloisField::GaloisField(unsigned m)
    : m_(m)
{
    if (m < 2 || m > 16)
        throw std::invalid_argument("GaloisField: m must be in [2, 16]");
    n_ = (uint32_t(1) << m) - 1;
    poly_ = kPrimitivePolys[m];

    // uint16_t entries: element values and logs are both < 2^16 for
    // every supported degree, and the halved footprint keeps the
    // m=16 tables (256 KB exp + 128 KB log) resident in L2.
    exp_.resize(size_t(n_) * 2);
    log_.assign(size_t(n_) + 1, 0);
    uint32_t x = 1;
    for (uint32_t i = 0; i < n_; ++i) {
        exp_[i] = uint16_t(x);
        log_[x] = uint16_t(i);
        x <<= 1;
        if (x > n_)
            x ^= poly_;
    }
    // Duplicate the table so mul() can skip a modular reduction.
    for (uint32_t i = 0; i < n_; ++i)
        exp_[n_ + i] = exp_[i];
}

uint32_t
GaloisField::div(uint32_t a, uint32_t b) const
{
    if (b == 0)
        throw std::domain_error("GaloisField: division by zero");
    if (a == 0)
        return 0;
    return exp_[log_[a] + n_ - log_[b]];
}

uint32_t
GaloisField::inverse(uint32_t a) const
{
    if (a == 0)
        throw std::domain_error("GaloisField: inverse of zero");
    return exp_[n_ - log_[a]];
}

uint32_t
GaloisField::pow(uint32_t a, uint64_t e) const
{
    if (a == 0)
        return e == 0 ? 1 : 0;
    uint64_t le = (uint64_t(log_[a]) * (e % n_)) % n_;
    return exp_[le];
}

uint32_t
GaloisField::logOf(uint32_t a) const
{
    if (a == 0)
        throw std::domain_error("GaloisField: log of zero");
    return log_[a];
}

} // namespace dnastore

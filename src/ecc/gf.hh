/**
 * @file
 * Galois field GF(2^m) arithmetic, m = 2..16, table based.
 *
 * The paper's storage architecture uses Reed-Solomon codes over
 * GF(2^16) (65535-symbol codewords); the benchmark-scale configuration
 * uses GF(2^10). This class supports the whole range with log/antilog
 * tables built from standard primitive polynomials.
 */

#ifndef DNASTORE_ECC_GF_HH
#define DNASTORE_ECC_GF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore {

/** Finite field GF(2^m) with multiplication via log/antilog tables. */
class GaloisField
{
  public:
    /**
     * Construct GF(2^m).
     *
     * @param m Field degree in [2, 16].
     * @throws std::invalid_argument for unsupported degrees.
     */
    explicit GaloisField(unsigned m);

    /** Field degree m (bits per symbol). */
    unsigned degree() const { return m_; }

    /** Number of nonzero elements, 2^m - 1 (= max codeword length). */
    uint32_t order() const { return n_; }

    /** Field size 2^m. */
    uint32_t size() const { return n_ + 1; }

    /** Add (= subtract) two elements. */
    static uint32_t add(uint32_t a, uint32_t b) { return a ^ b; }

    /** Multiply two elements. */
    uint32_t
    mul(uint32_t a, uint32_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[log_[a] + log_[b]];
    }

    /** Divide a by b; b must be nonzero. */
    uint32_t div(uint32_t a, uint32_t b) const;

    /** Multiplicative inverse of a nonzero element. */
    uint32_t inverse(uint32_t a) const;

    /** a raised to integer power e (e may exceed the group order). */
    uint32_t pow(uint32_t a, uint64_t e) const;

    /** alpha^e for the canonical primitive element alpha. */
    uint32_t
    alphaPow(uint64_t e) const
    {
        return exp_[e % n_];
    }

    /** Discrete log base alpha of a nonzero element. */
    uint32_t logOf(uint32_t a) const;

    /** The primitive polynomial used (bit i = coefficient of x^i). */
    uint32_t primitivePoly() const { return poly_; }

    /**
     * Raw log table (size 2^m; entry 0 is unused). Logs fit uint16_t
     * for every supported degree, which halves the table footprint and
     * keeps the m=16 hot set inside L2. Hot loops that have already
     * excluded zero operands can fuse lookups directly:
     * `exp[log[a] + log[b]]` is mul(a, b) for nonzero a, b.
     */
    const uint16_t *logData() const { return log_.data(); }

    /** Raw antilog table, size 2n: expData()[i] = alpha^(i mod n). */
    const uint16_t *expData() const { return exp_.data(); }

  private:
    unsigned m_;
    uint32_t n_;
    uint32_t poly_;
    std::vector<uint16_t> exp_; // exp_[i] = alpha^i, length 2n
    std::vector<uint16_t> log_; // log_[a] = i with alpha^i = a
};

} // namespace dnastore

#endif // DNASTORE_ECC_GF_HH

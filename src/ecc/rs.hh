/**
 * @file
 * Reed-Solomon codec with full errors-and-erasures decoding.
 *
 * Systematic RS(n, k) over GF(2^m) with n = 2^m - 1, exactly the
 * construction of the paper's baseline storage architecture (Figure 1):
 * each codeword row holds M = k data symbols and E = n - k redundancy
 * symbols; the decoder corrects up to E erasures, or up to E/2 errors,
 * or any mix with (2 * errors + erasures) <= E.
 *
 * Decoding is classical: syndromes, erasure-modified Berlekamp-Massey,
 * Chien search, Forney's algorithm. The hot path is engineered for the
 * simulator's realistic operating point, where most received codewords
 * are clean or erasure-only:
 *
 *  - syndromes use a fused Horner loop on the raw log/antilog tables
 *    (one log and one antilog lookup per step instead of a full mul);
 *  - an all-zero-syndrome early-out returns before any buffer copy;
 *  - erasure-only decodes (Berlekamp-Massey found no errors) skip the
 *    Chien search entirely — the bad positions are the erasures;
 *  - the post-correction verification updates the syndromes
 *    incrementally from the applied error values, O(bad * E) instead
 *    of recomputing O(n * E);
 *  - all working buffers live in an RsScratch that callers (or a
 *    thread-local default) reuse, so steady-state decodes perform no
 *    heap allocation.
 */

#ifndef DNASTORE_ECC_RS_HH
#define DNASTORE_ECC_RS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ecc/gf.hh"

namespace dnastore {

/** Outcome of a codeword decode. */
struct RsDecodeResult
{
    bool success = false;          //!< True if decoding converged.
    size_t errorsCorrected = 0;    //!< Unknown-location errors fixed.
    size_t erasuresCorrected = 0;  //!< Erasure positions repaired.
};

/**
 * Reusable working buffers for ReedSolomon::decode. A default-
 * constructed scratch works for any code; buffers grow to the high-
 * water mark of the codes it serves and are then reused allocation-
 * free. Not thread-safe: use one scratch per thread.
 */
struct RsScratch
{
    std::vector<uint32_t> syn, work, gamma, modified, lambda, prev, tmp,
        psi, omega, psiDeriv, chien, evals;
    std::vector<size_t> badPositions;
    std::vector<uint32_t> badX;
};

/**
 * Systematic Reed-Solomon codec over GF(2^m).
 *
 * Codewords are laid out data-first: positions [0, k) hold the data
 * symbols, positions [k, n) the parity symbols.
 */
class ReedSolomon
{
  public:
    /**
     * @param gf    Field; codewords have n = gf.order() symbols.
     * @param n_par Number of parity symbols E (0 < E < n).
     */
    ReedSolomon(const GaloisField &gf, size_t n_par);

    /** Codeword length n. */
    size_t n() const { return n_; }

    /** Data symbols per codeword k = n - E. */
    size_t k() const { return n_ - nPar_; }

    /** Parity symbols per codeword E. */
    size_t parity() const { return nPar_; }

    /**
     * Encode @p data (k symbols) into a codeword of n symbols.
     *
     * @throws std::invalid_argument if data.size() != k().
     */
    std::vector<uint32_t> encode(const std::vector<uint32_t> &data) const;

    /**
     * Decode a codeword in place.
     *
     * @param codeword  n received symbols; corrected on success.
     * @param erasures  Known-bad positions (each in [0, n)); their
     *                  symbol values are ignored.
     * @return Decode status and correction counts. On failure the
     *         codeword is left unmodified.
     */
    RsDecodeResult decode(std::vector<uint32_t> &codeword,
                          const std::vector<size_t> &erasures = {}) const;

    /**
     * Decode with caller-provided scratch buffers (allocation-free
     * once the scratch is warm). The two-argument overload uses a
     * thread-local scratch and is equivalent.
     */
    RsDecodeResult decode(std::vector<uint32_t> &codeword,
                          const std::vector<size_t> &erasures,
                          RsScratch &scratch) const;

    /** True if @p codeword is a valid codeword (all syndromes zero). */
    bool isCodeword(const std::vector<uint32_t> &codeword) const;

    /** The field this code is defined over. */
    const GaloisField &field() const { return gf_; }

  private:
    /** Fused-Horner syndromes of @p cw (n symbols) into @p syn. */
    void syndromesInto(const uint32_t *cw,
                       std::vector<uint32_t> &syn) const;

    const GaloisField &gf_;
    size_t n_;
    size_t nPar_;
    std::vector<uint32_t> generator_; // generator polynomial, low-first
    std::vector<int32_t> genLog_;     // log of each coeff, -1 for zero
};

} // namespace dnastore

#endif // DNASTORE_ECC_RS_HH

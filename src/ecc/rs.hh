/**
 * @file
 * Reed-Solomon codec with full errors-and-erasures decoding.
 *
 * Systematic RS(n, k) over GF(2^m) with n = 2^m - 1, exactly the
 * construction of the paper's baseline storage architecture (Figure 1):
 * each codeword row holds M = k data symbols and E = n - k redundancy
 * symbols; the decoder corrects up to E erasures, or up to E/2 errors,
 * or any mix with (2 * errors + erasures) <= E.
 *
 * Decoding is classical: syndromes, erasure-modified Berlekamp-Massey,
 * Chien search, Forney's algorithm.
 */

#ifndef DNASTORE_ECC_RS_HH
#define DNASTORE_ECC_RS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ecc/gf.hh"

namespace dnastore {

/** Outcome of a codeword decode. */
struct RsDecodeResult
{
    bool success = false;          //!< True if decoding converged.
    size_t errorsCorrected = 0;    //!< Unknown-location errors fixed.
    size_t erasuresCorrected = 0;  //!< Erasure positions repaired.
};

/**
 * Systematic Reed-Solomon codec over GF(2^m).
 *
 * Codewords are laid out data-first: positions [0, k) hold the data
 * symbols, positions [k, n) the parity symbols.
 */
class ReedSolomon
{
  public:
    /**
     * @param gf    Field; codewords have n = gf.order() symbols.
     * @param n_par Number of parity symbols E (0 < E < n).
     */
    ReedSolomon(const GaloisField &gf, size_t n_par);

    /** Codeword length n. */
    size_t n() const { return n_; }

    /** Data symbols per codeword k = n - E. */
    size_t k() const { return n_ - nPar_; }

    /** Parity symbols per codeword E. */
    size_t parity() const { return nPar_; }

    /**
     * Encode @p data (k symbols) into a codeword of n symbols.
     *
     * @throws std::invalid_argument if data.size() != k().
     */
    std::vector<uint32_t> encode(const std::vector<uint32_t> &data) const;

    /**
     * Decode a codeword in place.
     *
     * @param codeword  n received symbols; corrected on success.
     * @param erasures  Known-bad positions (each in [0, n)); their
     *                  symbol values are ignored.
     * @return Decode status and correction counts. On failure the
     *         codeword is left unmodified.
     */
    RsDecodeResult decode(std::vector<uint32_t> &codeword,
                          const std::vector<size_t> &erasures = {}) const;

    /** True if @p codeword is a valid codeword (all syndromes zero). */
    bool isCodeword(const std::vector<uint32_t> &codeword) const;

    /** The field this code is defined over. */
    const GaloisField &field() const { return gf_; }

  private:
    std::vector<uint32_t> computeSyndromes(
        const std::vector<uint32_t> &codeword) const;

    const GaloisField &gf_;
    size_t n_;
    size_t nPar_;
    std::vector<uint32_t> generator_; // generator polynomial, low-first
};

} // namespace dnastore

#endif // DNASTORE_ECC_RS_HH

#include "ecc/rs.hh"

#include <algorithm>
#include <stdexcept>

namespace dnastore {

namespace {

/** Polynomial product, coefficients low-order first. */
std::vector<uint32_t>
polyMul(const GaloisField &gf, const std::vector<uint32_t> &a,
        const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> out(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gf.mul(a[i], b[j]);
    }
    return out;
}

/** Polynomial product into a reusable output buffer. */
void
polyMulInto(const GaloisField &gf, const std::vector<uint32_t> &a,
            const std::vector<uint32_t> &b, std::vector<uint32_t> &out)
{
    out.assign(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gf.mul(a[i], b[j]);
    }
}

/**
 * Evaluate a polynomial (low-first coefficients) at nonzero x with a
 * fused Horner loop: the multiplier's log is hoisted so each step is
 * one log and one antilog lookup.
 */
uint32_t
polyEvalAt(const GaloisField &gf, const uint32_t *p, size_t len,
           uint32_t x)
{
    const uint16_t *lg = gf.logData();
    const uint16_t *ex = gf.expData();
    const uint32_t lx = lg[x];
    uint32_t acc = 0;
    for (size_t i = len; i-- > 0;)
        acc = (acc ? ex[lg[acc] + lx] : 0) ^ p[i];
    return acc;
}

} // namespace

ReedSolomon::ReedSolomon(const GaloisField &gf, size_t n_par)
    : gf_(gf), n_(gf.order()), nPar_(n_par)
{
    if (n_par == 0 || n_par >= n_)
        throw std::invalid_argument("ReedSolomon: bad parity count");

    // Generator g(x) = prod_{i=1}^{E} (x - alpha^i); roots at
    // alpha^1 .. alpha^E so the Forney formula needs no position
    // exponent correction (fcr = 1).
    generator_ = { 1 };
    for (size_t i = 1; i <= nPar_; ++i)
        generator_ = polyMul(gf_, generator_, { gf_.alphaPow(i), 1 });

    genLog_.resize(generator_.size());
    for (size_t i = 0; i < generator_.size(); ++i)
        genLog_[i] = generator_[i]
            ? int32_t(gf_.logOf(generator_[i])) : -1;
}

std::vector<uint32_t>
ReedSolomon::encode(const std::vector<uint32_t> &data) const
{
    if (data.size() != k())
        throw std::invalid_argument("ReedSolomon: data size != k");

    const uint16_t *lg = gf_.logData();
    const uint16_t *ex = gf_.expData();

    // Systematic encoding: remainder of data * x^E divided by g(x).
    // Work with the data high-order first for the long division; the
    // feedback log is hoisted so each tap is a single antilog lookup.
    std::vector<uint32_t> rem(nPar_, 0);
    for (size_t i = data.size(); i-- > 0;) {
        uint32_t feedback = data[i] ^ rem[nPar_ - 1];
        if (feedback) {
            const uint32_t lf = lg[feedback];
            for (size_t j = nPar_; j-- > 1;) {
                rem[j] = rem[j - 1] ^
                    (genLog_[j] >= 0 ? ex[lf + uint32_t(genLog_[j])]
                                     : 0);
            }
            rem[0] =
                genLog_[0] >= 0 ? ex[lf + uint32_t(genLog_[0])] : 0;
        } else {
            for (size_t j = nPar_; j-- > 1;)
                rem[j] = rem[j - 1];
            rem[0] = 0;
        }
    }

    std::vector<uint32_t> codeword;
    codeword.reserve(n_);
    codeword.insert(codeword.end(), data.begin(), data.end());
    // Parity symbols: codeword positions k..n-1.
    for (size_t j = 0; j < nPar_; ++j)
        codeword.push_back(rem[j]);
    return codeword;
}

void
ReedSolomon::syndromesInto(const uint32_t *cw,
                           std::vector<uint32_t> &syn) const
{
    // The codeword polynomial c(x) maps position i to the coefficient
    // of x^i; we store data at positions [0, k) and parity at [k, n).
    // Encoding guarantees c(alpha^j) = 0 for j = 1..E when the
    // codeword polynomial is data * x^E + parity, i.e., coefficient
    // order (parity low, data high). Build syndromes accordingly,
    // Horner high-to-low with the evaluation points' logs hoisted.
    //
    // Each Horner chain is a dependent load-add-load sequence, so a
    // single chain is latency-bound; syndromes are independent, so
    // running kLanes chains through one pass over the coefficients
    // hides that latency and reads the codeword once per block
    // instead of once per syndrome.
    const uint16_t *lg = gf_.logData();
    const uint16_t *ex = gf_.expData();
    const size_t kk = k();
    syn.resize(nPar_);

    constexpr size_t kLanes = 8;
    uint32_t acc[kLanes];
    size_t j = 0;
    for (; j + kLanes <= nPar_; j += kLanes) {
        for (size_t l = 0; l < kLanes; ++l)
            acc[l] = 0;
        // log of alpha^(j+1+l) is j+1+l (< n since j+l+1 <= E < n).
        const uint32_t la = uint32_t(j + 1);
        auto step = [&](uint32_t c) {
            for (size_t l = 0; l < kLanes; ++l) {
                uint32_t a = acc[l];
                acc[l] = (a ? ex[lg[a] + la + uint32_t(l)] : 0) ^ c;
            }
        };
        for (size_t i = kk; i-- > 0;)
            step(cw[i]);
        for (size_t i = n_; i-- > kk;)
            step(cw[i]);
        for (size_t l = 0; l < kLanes; ++l)
            syn[j + l] = acc[l];
    }
    // Scalar tail for the last nPar_ % kLanes syndromes.
    for (; j < nPar_; ++j) {
        const uint32_t la = uint32_t(j + 1);
        uint32_t a = 0;
        for (size_t i = kk; i-- > 0;)
            a = (a ? ex[lg[a] + la] : 0) ^ cw[i];
        for (size_t i = n_; i-- > kk;)
            a = (a ? ex[lg[a] + la] : 0) ^ cw[i];
        syn[j] = a;
    }
}

RsDecodeResult
ReedSolomon::decode(std::vector<uint32_t> &codeword,
                    const std::vector<size_t> &erasures) const
{
    static thread_local RsScratch scratch;
    return decode(codeword, erasures, scratch);
}

RsDecodeResult
ReedSolomon::decode(std::vector<uint32_t> &codeword,
                    const std::vector<size_t> &erasures,
                    RsScratch &s) const
{
    RsDecodeResult result;
    if (codeword.size() != n_)
        return result;
    if (erasures.size() > nPar_)
        return result;
    for (size_t pos : erasures) {
        if (pos >= n_)
            return result;
    }

    const uint16_t *lg = gf_.logData();
    const uint16_t *ex = gf_.expData();

    // Map external position (data index i, parity index) to the
    // exponent of its coefficient in the codeword polynomial:
    // data position i  -> degree E + i, parity position k+j -> degree j.
    auto degree_of = [this](size_t pos) {
        return pos < k() ? nPar_ + pos : pos - k();
    };

    // Fast path: with no erasures the syndromes can be computed on the
    // received buffer directly, so a clean codeword — the dominant
    // case at realistic coverage — returns without copying anything.
    bool all_zero;
    if (erasures.empty()) {
        syndromesInto(codeword.data(), s.syn);
        all_zero = std::all_of(s.syn.begin(), s.syn.end(),
                               [](uint32_t v) { return v == 0; });
        if (all_zero) {
            result.success = true;
            return result;
        }
        s.work = codeword;
    } else {
        // Zero out erased symbols so their (unknown) values do not
        // contaminate the syndromes.
        s.work = codeword;
        for (size_t pos : erasures)
            s.work[pos] = 0;
        syndromesInto(s.work.data(), s.syn);
        all_zero = std::all_of(s.syn.begin(), s.syn.end(),
                               [](uint32_t v) { return v == 0; });
        if (all_zero) {
            // Erased values happened to be zero already; accept.
            codeword = s.work;
            result.success = true;
            result.erasuresCorrected = erasures.size();
            return result;
        }
    }

    // Erasure locator Gamma(x) = prod (1 - X_k x), built in place.
    s.gamma.assign(1, 1);
    for (size_t pos : erasures) {
        uint32_t xk = gf_.alphaPow(degree_of(pos));
        s.gamma.push_back(0);
        for (size_t j = s.gamma.size() - 1; j >= 1; --j)
            s.gamma[j] ^= gf_.mul(xk, s.gamma[j - 1]);
    }

    // Modified syndromes T(x) = S(x) * Gamma(x) mod x^E.
    s.modified.assign(nPar_, 0);
    for (size_t i = 0; i < nPar_; ++i) {
        uint32_t acc = 0;
        for (size_t j = 0; j <= i && j < s.gamma.size(); ++j)
            acc ^= gf_.mul(s.gamma[j], s.syn[i - j]);
        s.modified[i] = acc;
    }

    // Berlekamp-Massey on the modified syndromes for the error locator.
    const size_t rho = erasures.size();
    s.lambda.assign(1, 1);
    s.prev.assign(1, 1);
    size_t l = 0;
    for (size_t r = 0; r + rho < nPar_; ++r) {
        uint32_t delta = s.modified[r + rho];
        for (size_t i = 1; i < s.lambda.size() && i <= r + rho; ++i)
            delta ^= gf_.mul(s.lambda[i], s.modified[r + rho - i]);
        s.prev.insert(s.prev.begin(), 0); // prev *= x
        if (delta != 0) {
            if (2 * l <= r) {
                s.tmp = s.lambda;
                // lambda -= delta * prev ; prev = old lambda / delta
                if (s.prev.size() > s.lambda.size())
                    s.lambda.resize(s.prev.size(), 0);
                for (size_t i = 0; i < s.prev.size(); ++i)
                    s.lambda[i] ^= gf_.mul(delta, s.prev[i]);
                std::swap(s.prev, s.tmp);
                uint32_t inv = gf_.inverse(delta);
                for (auto &c : s.prev)
                    c = gf_.mul(c, inv);
                l = r + 1 - l;
            } else {
                if (s.prev.size() > s.lambda.size())
                    s.lambda.resize(s.prev.size(), 0);
                for (size_t i = 0; i < s.prev.size(); ++i)
                    s.lambda[i] ^= gf_.mul(delta, s.prev[i]);
            }
        }
    }
    while (!s.lambda.empty() && s.lambda.back() == 0)
        s.lambda.pop_back();
    if (s.lambda.empty())
        return result;
    const size_t n_errors = s.lambda.size() - 1;
    if (2 * n_errors + rho > nPar_)
        return result;

    // Combined locator Psi = Lambda * Gamma; roots give all bad
    // positions (errors + erasures).
    if (n_errors > 0)
        polyMulInto(gf_, s.lambda, s.gamma, s.psi);
    const std::vector<uint32_t> &psi =
        n_errors > 0 ? s.psi : s.gamma;
    const size_t psi_deg = psi.size() - 1;

    s.badPositions.clear();
    s.badX.clear();
    if (n_errors == 0) {
        // Erasure-only fast path: Psi = Gamma, whose roots are exactly
        // the distinct erasure positions, so the Chien search is
        // redundant. Duplicated erasure positions give Gamma a
        // repeated root and fewer distinct roots than its degree —
        // the classical search would fail below; replicate that.
        s.badPositions.assign(erasures.begin(), erasures.end());
        std::sort(s.badPositions.begin(), s.badPositions.end());
        if (std::adjacent_find(s.badPositions.begin(),
                               s.badPositions.end()) !=
            s.badPositions.end()) {
            return result;
        }
        for (size_t pos : s.badPositions)
            s.badX.push_back(gf_.alphaPow(degree_of(pos)));
    } else {
        // Chien search over coefficient degrees: degree d is bad iff
        // Psi(alpha^{-d}) == 0. Evaluated incrementally — term i is
        // multiplied by alpha^{-i} per step — and cut short once all
        // deg(Psi) roots are found.
        s.chien.assign(psi.begin(), psi.end());
        for (size_t d = 0; d < n_; ++d) {
            uint32_t eval = 0;
            for (size_t i = 0; i <= psi_deg; ++i)
                eval ^= s.chien[i];
            if (eval == 0) {
                size_t pos =
                    d < nPar_ ? k() + d : d - nPar_;
                s.badPositions.push_back(pos);
                s.badX.push_back(gf_.alphaPow(d));
                if (s.badPositions.size() == psi_deg)
                    break;
            }
            for (size_t i = 1; i <= psi_deg; ++i) {
                uint32_t t = s.chien[i];
                if (t)
                    s.chien[i] = ex[lg[t] + n_ - uint32_t(i)];
            }
        }
    }
    if (s.badPositions.size() != psi_deg)
        return result; // locator degree mismatch: decoding failure

    // Error evaluator Omega(x) = S(x) * Psi(x) mod x^E.
    s.omega.assign(nPar_, 0);
    for (size_t i = 0; i < nPar_; ++i) {
        uint32_t acc = 0;
        for (size_t j = 0; j <= i && j < psi.size(); ++j)
            acc ^= gf_.mul(psi[j], s.syn[i - j]);
        s.omega[i] = acc;
    }
    // Formal derivative over GF(2^m): odd-degree terms survive.
    s.psiDeriv.assign(psi_deg > 0 ? psi_deg : 1, 0);
    for (size_t i = 1; i < psi.size(); ++i)
        s.psiDeriv[i - 1] = (i & 1) ? psi[i] : 0;

    // Forney: e_k = Omega(X_k^{-1}) / Psi'(X_k^{-1})  (fcr = 1).
    s.evals.resize(s.badPositions.size());
    for (size_t idx = 0; idx < s.badPositions.size(); ++idx) {
        uint32_t x_inv = gf_.inverse(s.badX[idx]);
        uint32_t num =
            polyEvalAt(gf_, s.omega.data(), s.omega.size(), x_inv);
        uint32_t den = polyEvalAt(gf_, s.psiDeriv.data(),
                                  s.psiDeriv.size(), x_inv);
        if (den == 0)
            return result;
        uint32_t e = gf_.div(num, den);
        s.evals[idx] = e;
        s.work[s.badPositions[idx]] ^= e;
    }

    // Verify the correction produced a codeword: update the syndromes
    // incrementally with the applied error values — correcting e at
    // codeword degree d changes syndrome j by e * alpha^{(j+1) d} =
    // e * X^(j+1) — instead of recomputing all n symbols.
    for (size_t idx = 0; idx < s.badPositions.size(); ++idx) {
        const uint32_t e = s.evals[idx];
        if (e == 0)
            continue;
        const uint32_t x = s.badX[idx];
        uint32_t p = x;
        for (size_t j = 0; j < nPar_; ++j) {
            s.syn[j] ^= gf_.mul(e, p);
            p = gf_.mul(p, x);
        }
    }
    if (!std::all_of(s.syn.begin(), s.syn.end(),
                     [](uint32_t v) { return v == 0; })) {
        return result;
    }

    codeword = s.work;
    result.success = true;
    result.erasuresCorrected = rho;
    result.errorsCorrected = n_errors;
    return result;
}

bool
ReedSolomon::isCodeword(const std::vector<uint32_t> &codeword) const
{
    if (codeword.size() != n_)
        return false;
    static thread_local std::vector<uint32_t> syn;
    syndromesInto(codeword.data(), syn);
    return std::all_of(syn.begin(), syn.end(),
                       [](uint32_t v) { return v == 0; });
}

} // namespace dnastore

#include "ecc/rs.hh"

#include <algorithm>
#include <stdexcept>

namespace dnastore {

namespace {

/** Polynomial product, coefficients low-order first. */
std::vector<uint32_t>
polyMul(const GaloisField &gf, const std::vector<uint32_t> &a,
        const std::vector<uint32_t> &b)
{
    std::vector<uint32_t> out(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gf.mul(a[i], b[j]);
    }
    return out;
}

/** Evaluate a polynomial (low-first coefficients) at x. */
uint32_t
polyEval(const GaloisField &gf, const std::vector<uint32_t> &p,
         uint32_t x)
{
    uint32_t acc = 0;
    for (size_t i = p.size(); i-- > 0;)
        acc = gf.mul(acc, x) ^ p[i];
    return acc;
}

/** Formal derivative over GF(2^m): odd-degree terms survive. */
std::vector<uint32_t>
polyDerivative(const std::vector<uint32_t> &p)
{
    std::vector<uint32_t> d;
    if (p.size() <= 1)
        return { 0 };
    d.resize(p.size() - 1, 0);
    for (size_t i = 1; i < p.size(); ++i)
        d[i - 1] = (i & 1) ? p[i] : 0;
    return d;
}

} // namespace

ReedSolomon::ReedSolomon(const GaloisField &gf, size_t n_par)
    : gf_(gf), n_(gf.order()), nPar_(n_par)
{
    if (n_par == 0 || n_par >= n_)
        throw std::invalid_argument("ReedSolomon: bad parity count");

    // Generator g(x) = prod_{i=1}^{E} (x - alpha^i); roots at
    // alpha^1 .. alpha^E so the Forney formula needs no position
    // exponent correction (fcr = 1).
    generator_ = { 1 };
    for (size_t i = 1; i <= nPar_; ++i)
        generator_ = polyMul(gf_, generator_, { gf_.alphaPow(i), 1 });
}

std::vector<uint32_t>
ReedSolomon::encode(const std::vector<uint32_t> &data) const
{
    if (data.size() != k())
        throw std::invalid_argument("ReedSolomon: data size != k");

    // Systematic encoding: remainder of data * x^E divided by g(x).
    // Work with the data high-order first for the long division.
    std::vector<uint32_t> rem(nPar_, 0);
    for (size_t i = data.size(); i-- > 0;) {
        uint32_t feedback = data[i] ^ rem[nPar_ - 1];
        for (size_t j = nPar_; j-- > 1;) {
            rem[j] = rem[j - 1] ^
                (feedback ? gf_.mul(feedback, generator_[j]) : 0);
        }
        rem[0] = feedback ? gf_.mul(feedback, generator_[0]) : 0;
    }

    std::vector<uint32_t> codeword;
    codeword.reserve(n_);
    codeword.insert(codeword.end(), data.begin(), data.end());
    // Parity symbols: codeword positions k..n-1.
    for (size_t j = 0; j < nPar_; ++j)
        codeword.push_back(rem[j]);
    return codeword;
}

std::vector<uint32_t>
ReedSolomon::computeSyndromes(const std::vector<uint32_t> &cw) const
{
    // The codeword polynomial c(x) maps position i to the coefficient
    // of x^i; we store data at positions [0, k) and parity at [k, n).
    // Encoding guarantees c(alpha^j) = 0 for j = 1..E when the
    // codeword polynomial is data * x^E + parity, i.e., coefficient
    // order (parity low, data high). Build syndromes accordingly.
    std::vector<uint32_t> syn(nPar_);
    for (size_t j = 0; j < nPar_; ++j) {
        const uint32_t a = gf_.alphaPow(j + 1);
        uint32_t acc = 0;
        // Horner over coefficients high-to-low: data (high part) first.
        for (size_t i = k(); i-- > 0;)
            acc = gf_.mul(acc, a) ^ cw[i];
        for (size_t i = n_; i-- > k();)
            acc = gf_.mul(acc, a) ^ cw[i];
        syn[j] = acc;
    }
    return syn;
}

RsDecodeResult
ReedSolomon::decode(std::vector<uint32_t> &codeword,
                    const std::vector<size_t> &erasures) const
{
    RsDecodeResult result;
    if (codeword.size() != n_)
        return result;
    if (erasures.size() > nPar_)
        return result;

    // Map external position (data index i, parity index) to the
    // exponent of its coefficient in the codeword polynomial:
    // data position i  -> degree E + i, parity position k+j -> degree j.
    auto degree_of = [this](size_t pos) {
        return pos < k() ? nPar_ + pos : pos - k();
    };

    // Zero out erased symbols so their (unknown) values do not
    // contaminate the syndromes.
    std::vector<uint32_t> work = codeword;
    for (size_t pos : erasures) {
        if (pos >= n_)
            return result;
        work[pos] = 0;
    }

    std::vector<uint32_t> syn = computeSyndromes(work);
    bool all_zero = std::all_of(syn.begin(), syn.end(),
                                [](uint32_t s) { return s == 0; });
    if (all_zero && erasures.empty()) {
        result.success = true;
        return result;
    }
    if (all_zero) {
        // Erased values happened to be zero already; accept.
        codeword = work;
        result.success = true;
        result.erasuresCorrected = erasures.size();
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 - X_k x).
    std::vector<uint32_t> gamma = { 1 };
    for (size_t pos : erasures) {
        uint32_t xk = gf_.alphaPow(degree_of(pos));
        gamma = polyMul(gf_, gamma, { 1, xk });
    }

    // Modified syndromes T(x) = S(x) * Gamma(x) mod x^E.
    std::vector<uint32_t> modified(nPar_, 0);
    for (size_t i = 0; i < nPar_; ++i) {
        uint32_t acc = 0;
        for (size_t j = 0; j <= i && j < gamma.size(); ++j)
            acc ^= gf_.mul(gamma[j], syn[i - j]);
        modified[i] = acc;
    }

    // Berlekamp-Massey on the modified syndromes for the error locator.
    const size_t rho = erasures.size();
    std::vector<uint32_t> lambda = { 1 };
    std::vector<uint32_t> prev = { 1 };
    size_t l = 0;
    for (size_t r = 0; r + rho < nPar_; ++r) {
        uint32_t delta = modified[r + rho];
        for (size_t i = 1; i < lambda.size() && i <= r + rho; ++i)
            delta ^= gf_.mul(lambda[i], modified[r + rho - i]);
        prev.insert(prev.begin(), 0); // prev *= x
        if (delta != 0) {
            if (2 * l <= r) {
                std::vector<uint32_t> tmp = lambda;
                // lambda -= delta * prev ; prev = old lambda / delta
                if (prev.size() > lambda.size())
                    lambda.resize(prev.size(), 0);
                for (size_t i = 0; i < prev.size(); ++i)
                    lambda[i] ^= gf_.mul(delta, prev[i]);
                prev = tmp;
                uint32_t inv = gf_.inverse(delta);
                for (auto &c : prev)
                    c = gf_.mul(c, inv);
                l = r + 1 - l;
            } else {
                if (prev.size() > lambda.size())
                    lambda.resize(prev.size(), 0);
                for (size_t i = 0; i < prev.size(); ++i)
                    lambda[i] ^= gf_.mul(delta, prev[i]);
            }
        }
    }
    while (!lambda.empty() && lambda.back() == 0)
        lambda.pop_back();
    if (lambda.empty())
        return result;
    const size_t n_errors = lambda.size() - 1;
    if (2 * n_errors + rho > nPar_)
        return result;

    // Combined locator Psi = Lambda * Gamma; roots give all bad
    // positions (errors + erasures).
    std::vector<uint32_t> psi = polyMul(gf_, lambda, gamma);

    // Chien search: position with degree d is bad iff
    // Psi(alpha^{-d}) == 0.
    std::vector<size_t> bad_positions;
    std::vector<uint32_t> bad_x; // X_k = alpha^{d_k}
    for (size_t pos = 0; pos < n_; ++pos) {
        size_t d = degree_of(pos);
        uint32_t x_inv = gf_.alphaPow(gf_.order() - (d % gf_.order()));
        if (polyEval(gf_, psi, x_inv) == 0) {
            bad_positions.push_back(pos);
            bad_x.push_back(gf_.alphaPow(d));
        }
    }
    if (bad_positions.size() != psi.size() - 1)
        return result; // locator degree mismatch: decoding failure

    // Error evaluator Omega(x) = S(x) * Psi(x) mod x^E.
    std::vector<uint32_t> omega(nPar_, 0);
    for (size_t i = 0; i < nPar_; ++i) {
        uint32_t acc = 0;
        for (size_t j = 0; j <= i && j < psi.size(); ++j)
            acc ^= gf_.mul(psi[j], syn[i - j]);
        omega[i] = acc;
    }
    std::vector<uint32_t> psi_deriv = polyDerivative(psi);

    // Forney: e_k = Omega(X_k^{-1}) / Psi'(X_k^{-1})  (fcr = 1).
    for (size_t idx = 0; idx < bad_positions.size(); ++idx) {
        uint32_t x_inv = gf_.inverse(bad_x[idx]);
        uint32_t num = polyEval(gf_, omega, x_inv);
        uint32_t den = polyEval(gf_, psi_deriv, x_inv);
        if (den == 0)
            return result;
        work[bad_positions[idx]] ^= gf_.div(num, den);
    }

    // Verify the correction actually produced a codeword.
    std::vector<uint32_t> check = computeSyndromes(work);
    if (!std::all_of(check.begin(), check.end(),
                     [](uint32_t s) { return s == 0; })) {
        return result;
    }

    codeword = work;
    result.success = true;
    result.erasuresCorrected = rho;
    result.errorsCorrected = n_errors;
    return result;
}

bool
ReedSolomon::isCodeword(const std::vector<uint32_t> &codeword) const
{
    if (codeword.size() != n_)
        return false;
    auto syn = computeSyndromes(codeword);
    return std::all_of(syn.begin(), syn.end(),
                       [](uint32_t s) { return s == 0; });
}

} // namespace dnastore

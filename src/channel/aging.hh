/**
 * @file
 * Deterministic storage-aging fault injector.
 *
 * Ages an already-synthesized ReadPool by whole epochs of an
 * AgingProfile (channel/stressors.hh): each epoch every read is lost
 * with probability strandLossRate and each surviving base substitutes
 * with probability substitutionRate. Unlike the sequencing-time
 * stressors, aging mutates the durable pool itself — the decoder sees
 * fewer, noisier reads on every later retrieval, which is what the
 * scrubber (pipeline/simulator.hh) exists to detect and repair.
 *
 * Determinism contract, matching ReadPool generation: per-cluster
 * seeds are drawn serially from one stream seeded by @p epoch_seed,
 * each cluster's decay walks its own RNG, and clusters only mutate
 * their own arenas — so an aged pool is bit-identical for every
 * thread count, steal schedule, and storage mode.
 */

#ifndef DNASTORE_CHANNEL_AGING_HH
#define DNASTORE_CHANNEL_AGING_HH

#include <cstddef>
#include <cstdint>

#include "channel/read_pool.hh"
#include "channel/stressors.hh"

namespace dnastore {

/**
 * Apply one aging epoch to @p pool.
 *
 * @param pool        The pool to decay in place (may already be
 *                    ragged from earlier epochs).
 * @param aging       Per-epoch loss/substitution rates; a disabled
 *                    profile is a no-op.
 * @param epoch_seed  Seed of this epoch's per-cluster streams. Pass
 *                    a fresh value per epoch (the simulator mixes its
 *                    unit seed with a monotone epoch counter) so
 *                    epochs decay independently.
 * @param num_threads Fan-out width (1 serial, 0 = all hardware
 *                    threads); never affects the result.
 * @return Reads lost to strand scission this epoch.
 */
size_t agePoolEpoch(ReadPool &pool, const AgingProfile &aging,
                    uint64_t epoch_seed, size_t num_threads);

} // namespace dnastore

#endif // DNASTORE_CHANNEL_AGING_HH

#include "channel/coverage.hh"

#include <cmath>
#include <stdexcept>

namespace dnastore {

CoverageModel
CoverageModel::fixed(size_t n)
{
    if (n == 0)
        throw std::invalid_argument("CoverageModel: fixed coverage of 0");
    return CoverageModel(true, double(n), 0.0);
}

CoverageModel
CoverageModel::gamma(double mean, double shape)
{
    if (mean <= 0.0 || shape <= 0.0)
        throw std::invalid_argument("CoverageModel: bad gamma params");
    return CoverageModel(false, mean, shape);
}

size_t
CoverageModel::sample(Rng &rng) const
{
    if (fixed_)
        return size_t(std::llround(mean_));
    double draw = rng.nextGamma(shape_, mean_ / shape_);
    long long n = std::llround(draw);
    return size_t(n < 1 ? 1 : n);
}

} // namespace dnastore

#include "channel/aging.hh"

#include <atomic>
#include <vector>

#include "util/parallel.hh"

namespace dnastore {

size_t
agePoolEpoch(ReadPool &pool, const AgingProfile &aging,
             uint64_t epoch_seed, size_t num_threads)
{
    if (!aging.enabled())
        return 0;

    // Per-cluster seeds come from one serial stream, exactly like
    // ReadPool generation: the decay never depends on the worker
    // count or schedule.
    Rng base(epoch_seed);
    std::vector<uint64_t> seeds(pool.clusters());
    for (auto &s : seeds)
        s = base.next();

    std::atomic<size_t> lost{ 0 };
    parallelFor(pool.clusters(), num_threads, [&](size_t c) {
        Rng rng(seeds[c]);
        const size_t before = pool.clusterSize(c);
        std::vector<Strand> survivors = pool.reads(c, before);
        std::vector<Strand> aged;
        aged.reserve(survivors.size());
        for (auto &read : survivors) {
            // One uniform per read decides survival; survivors then
            // draw one uniform per base. A dropped read still
            // consumed only its survival draw, so the per-read
            // streams stay aligned whatever the loss pattern.
            if (rng.nextDouble() < aging.strandLossRate)
                continue;
            if (aging.substitutionRate > 0.0) {
                for (auto &b : read) {
                    if (rng.nextDouble() < aging.substitutionRate) {
                        unsigned offset =
                            1u + unsigned(rng.nextBelow(3));
                        b = baseFromBits(bitsFromBase(b) + offset);
                    }
                }
            }
            aged.push_back(std::move(read));
        }
        lost.fetch_add(before - aged.size(),
                       std::memory_order_relaxed);
        pool.replaceCluster(c, aged);
    });
    return lost.load();
}

} // namespace dnastore

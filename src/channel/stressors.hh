/**
 * @file
 * Hostile-channel stressors beyond the paper's i.i.d. IDS model.
 *
 * The paper's simulation (section 3) treats synthesis, storage, PCR,
 * and sequencing as one memoryless channel and side-steps coverage
 * pathologies. Real DNA storage endures more structured failure modes,
 * three of which this module models so the Scenario Lab can sweep
 * them:
 *
 *  - PositionalRamp: nanopore-style end-of-read degradation — error
 *    rates rise along the strand, so the tail bases (and the backward
 *    primer/index) are much noisier than the head.
 *  - PcrProfile: PCR amplification bias — reads are sequenced from a
 *    pool of *duplicated* template lineages rather than independently
 *    from the reference, so polymerase errors early in amplification
 *    are shared by many reads and can outvote the truth in consensus.
 *  - DropoutProfile: whole-strand dropout — clusters receive zero
 *    reads, singly or in bursts of consecutive molecules (synthesis
 *    batch failures, gel extraction losses), which the decoder must
 *    absorb as column erasures.
 *
 * A ChannelProfile composes a base ErrorModel with any subset of the
 * stressors; ProfileChannel turns a profile into cluster read
 * generation. With every stressor disabled, ProfileChannel draws the
 * exact RNG sequence of IdsChannel, so profiles degrade gracefully to
 * the paper's channel bit-for-bit.
 */

#ifndef DNASTORE_CHANNEL_STRESSORS_HH
#define DNASTORE_CHANNEL_STRESSORS_HH

#include <cstddef>
#include <vector>

#include "channel/error_model.hh"
#include "dna/packed_strand.hh"
#include "dna/strand.hh"
#include "util/rng.hh"

namespace dnastore {

/**
 * Position-dependent error multiplier: 1.0 up to startFrac of the
 * strand, then rising linearly to endMultiplier at the final base.
 */
struct PositionalRamp
{
    /** Fraction of the strand where degradation begins; 1.0 = never. */
    double startFrac = 1.0;

    /** Error-rate multiplier at the last base (1.0 = flat). */
    double endMultiplier = 1.0;

    /** True when the ramp changes any rate. */
    bool
    enabled() const
    {
        return startFrac < 1.0 && endMultiplier != 1.0;
    }

    /** Multiplier for position @p i of a length-@p len strand. */
    double multiplierAt(size_t i, size_t len) const;

    /** startFrac in [0, 1], endMultiplier >= 0. */
    bool valid() const;
};

/**
 * PCR amplification with error inheritance. Before sequencing, the
 * reference is amplified for @p cycles rounds: each template molecule
 * duplicates with probability @p efficiency per round, and every
 * duplication suffers i.i.d. substitutions at @p errorRate per base.
 * Reads then sample a template uniformly from the amplified pool, so
 * early-cycle errors appear in whole sub-lineages of reads.
 */
struct PcrProfile
{
    size_t cycles = 0;       //!< Amplification rounds; 0 disables PCR.
    double efficiency = 0.5; //!< Per-round duplication probability.
    double errorRate = 0.0;  //!< Polymerase substitutions per base copy.

    /**
     * Cap on materialized lineage templates (the pool grows
     * geometrically in cycles; templates beyond the cap would be
     * sampled so rarely they are folded into their ancestors).
     */
    size_t maxLineage = 64;

    bool enabled() const { return cycles > 0; }

    /** efficiency/errorRate in [0, 1], maxLineage >= 1. */
    bool valid() const;
};

/** Whole-strand dropout: clusters that yield zero reads. */
struct DropoutProfile
{
    /** Probability that an erasure burst starts at a given cluster. */
    double rate = 0.0;

    /** Consecutive clusters erased once a burst starts. */
    size_t burstLen = 1;

    bool enabled() const { return rate > 0.0; }

    /** rate in [0, 1], burstLen >= 1. */
    bool valid() const;
};

/**
 * Storage aging: per-epoch decay of an already-synthesized pool.
 * Unlike the sequencing-time stressors above, aging acts on reads
 * that exist — each epoch every read is lost outright with
 * probability strandLossRate (strand scission, depurination past
 * recovery) and every surviving base substitutes with probability
 * substitutionRate (deamination-style damage). Applied by
 * agePoolEpoch (channel/aging.hh) with the per-cluster serial-seed
 * discipline of ReadPool generation, so an aged pool is bit-identical
 * for every thread count.
 */
struct AgingProfile
{
    /** Per-epoch probability a read is lost entirely. */
    double strandLossRate = 0.0;

    /** Per-epoch per-base substitution probability on survivors. */
    double substitutionRate = 0.0;

    bool
    enabled() const
    {
        return strandLossRate > 0.0 || substitutionRate > 0.0;
    }

    /** Both rates in [0, 1]. */
    bool valid() const;
};

/** A channel profile: base IDS model composed with stressors. */
struct ChannelProfile
{
    ErrorModel base;
    PositionalRamp ramp;
    PcrProfile pcr;
    DropoutProfile dropout;
    AgingProfile aging;

    /** All components valid (ramped rates are clamped, see below). */
    bool valid() const;

    /** Throw std::invalid_argument naming the broken component. */
    void validateOrThrow(const char *who) const;
};

/**
 * Zero out counts[c] for dropped-out clusters. Draws one uniform per
 * cluster from @p rng (burst continuations excluded), so the result
 * is deterministic for a given stream regardless of prior contents.
 */
void applyDropout(const DropoutProfile &dropout, Rng &rng,
                  std::vector<size_t> &counts);

/**
 * Read generation under a ChannelProfile.
 *
 * Per-position error rates are the base model's scaled by the ramp
 * multiplier; when the scaled total would exceed 1 the three rates
 * are clamped proportionally (an error of *some* kind is certain, but
 * probabilities stay probabilities).
 */
class ProfileChannel
{
  public:
    /** @throws std::invalid_argument on an invalid profile. */
    explicit ProfileChannel(const ChannelProfile &profile);

    /**
     * Generate @p n noisy reads of @p reference appended to @p out,
     * amplifying through the PCR lineage pool first when enabled.
     * Dropout is *not* applied here — it acts on read counts before
     * generation (applyDropout), since a dropped cluster has no reads
     * to generate.
     */
    void generateCluster(StrandView reference, size_t n, Rng &rng,
                         StrandArena &out) const;

    /** Transmit one strand through the ramped per-position channel. */
    void transmitAppend(StrandView input, Rng &rng,
                        StrandArena &out) const;

    const ChannelProfile &profile() const { return profile_; }

  private:
    ChannelProfile profile_;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_STRESSORS_HH

/**
 * @file
 * Sequencing coverage models.
 *
 * The number of reads per cluster is not constant in practice: the
 * paper notes (section 4.1) that coverage follows a Gamma distribution
 * with significant variation across clusters, which is one of the
 * reasons unequal error correction cannot be provisioned statically.
 */

#ifndef DNASTORE_CHANNEL_COVERAGE_HH
#define DNASTORE_CHANNEL_COVERAGE_HH

#include <cstddef>

#include "util/rng.hh"

namespace dnastore {

/** Distribution of per-cluster read counts. */
class CoverageModel
{
  public:
    /** Every cluster receives exactly @p n reads. */
    static CoverageModel fixed(size_t n);

    /**
     * Gamma-distributed coverage with the given mean.
     *
     * @param mean  Average reads per cluster.
     * @param shape Gamma shape parameter; larger = tighter spread.
     *              The scale is mean/shape. Draws are rounded and
     *              clamped to be at least 1 (a cluster that exists has
     *              at least one read; zero-read clusters are modelled
     *              separately as erasures by the pipeline).
     */
    static CoverageModel gamma(double mean, double shape);

    /** Sample the number of reads for one cluster. */
    size_t sample(Rng &rng) const;

    /** Configured mean coverage. */
    double mean() const { return mean_; }

    /** Gamma shape parameter (meaningless for fixed models). */
    double shape() const { return shape_; }

    /** True if this model always returns the same count. */
    bool isFixed() const { return fixed_; }

  private:
    CoverageModel(bool fixed, double mean, double shape)
        : fixed_(fixed), mean_(mean), shape_(shape)
    {}

    bool fixed_;
    double mean_;
    double shape_;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_COVERAGE_HH

/**
 * @file
 * Error model for the DNA read/write channel.
 *
 * Follows the paper's channel formulation (section 3): each position of
 * the original strand independently suffers an insertion, a deletion,
 * or a substitution, with configurable per-type probabilities. The
 * default split is uniform (p/3 each), matching the paper; asymmetric
 * splits reproduce the purple/brown curves of Figure 5 and the
 * NGS/nanopore breakdowns discussed in section 8.
 */

#ifndef DNASTORE_CHANNEL_ERROR_MODEL_HH
#define DNASTORE_CHANNEL_ERROR_MODEL_HH

namespace dnastore {

/** Per-position probabilities of each error type. */
struct ErrorModel
{
    double insertion = 0.0;    //!< P(insert a random base before i).
    double deletion = 0.0;     //!< P(delete base i).
    double substitution = 0.0; //!< P(replace base i with another base).

    /** Total per-position error probability. */
    double total() const { return insertion + deletion + substitution; }

    /** Uniform split: p/3 insertion, p/3 deletion, p/3 substitution. */
    static ErrorModel uniform(double p);

    /** Substitutions only (the skew-free channel of Fig. 5, brown). */
    static ErrorModel substitutionOnly(double p);

    /** Indels only, evenly split (Fig. 5, purple: 5% INS + 5% DEL). */
    static ErrorModel indelOnly(double p);

    /** Explicit per-type rates. */
    static ErrorModel custom(double ins, double del, double sub);

    /**
     * NGS-like breakdown (section 8): ~27% of errors are indels,
     * the rest substitutions, split evenly between ins and del.
     */
    static ErrorModel ngs(double p);

    /** Nanopore-like breakdown (section 8): ~60% of errors are indels. */
    static ErrorModel nanopore(double p);

    /** Validate that rates are non-negative and total() <= 1. */
    bool valid() const;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_ERROR_MODEL_HH

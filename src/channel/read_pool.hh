/**
 * @file
 * Pre-generated pools of noisy reads for progressive coverage sweeps.
 *
 * The paper's methodology (section 6.1.2) generates a large pool of
 * noisy strands per original string, starts at low coverage, and
 * progressively adds more reads from the pool for each coverage point.
 * Re-using the same pool across coverage points makes the sweep
 * monotone in information content, exactly as in the paper.
 */

#ifndef DNASTORE_CHANNEL_READ_POOL_HH
#define DNASTORE_CHANNEL_READ_POOL_HH

#include <cstddef>
#include <vector>

#include "channel/coverage.hh"
#include "channel/ids_channel.hh"
#include "dna/strand.hh"
#include "util/rng.hh"

namespace dnastore {

/** Noisy-read pools for a set of reference strands. */
class ReadPool
{
  public:
    /**
     * Generate pools.
     *
     * @param references   One original strand per cluster.
     * @param channel      The IDS channel to sample reads from.
     * @param max_coverage Reads generated per cluster.
     * @param rng          Randomness source.
     */
    ReadPool(const std::vector<Strand> &references,
             const IdsChannel &channel, size_t max_coverage, Rng &rng);

    /**
     * Generate pools with one independent RNG stream per cluster,
     * optionally in parallel.
     *
     * Cluster seeds are drawn serially from a base stream seeded with
     * @p seed, so the pools are bit-identical for every
     * @p num_threads value (0 = all hardware threads).
     */
    ReadPool(const std::vector<Strand> &references,
             const IdsChannel &channel, size_t max_coverage,
             uint64_t seed, size_t num_threads);

    /** Number of clusters. */
    size_t clusters() const { return pools_.size(); }

    /** Maximum coverage available per cluster. */
    size_t maxCoverage() const { return maxCoverage_; }

    /**
     * The first @p coverage reads of cluster @p cluster.
     *
     * @throws std::out_of_range if coverage exceeds maxCoverage().
     */
    std::vector<Strand> reads(size_t cluster, size_t coverage) const;

    /**
     * Per-cluster read counts for a mean coverage under a coverage
     * distribution: draws one count per cluster (capped by the pool
     * size) so sweeps can model Gamma-distributed cluster sizes.
     */
    std::vector<size_t> sampleCounts(const CoverageModel &model,
                                     Rng &rng) const;

  private:
    std::vector<std::vector<Strand>> pools_;
    size_t maxCoverage_;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_READ_POOL_HH

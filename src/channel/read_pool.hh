/**
 * @file
 * Pre-generated pools of noisy reads for progressive coverage sweeps.
 *
 * The paper's methodology (section 6.1.2) generates a large pool of
 * noisy strands per original string, starts at low coverage, and
 * progressively adds more reads from the pool for each coverage point.
 * Re-using the same pool across coverage points makes the sweep
 * monotone in information content, exactly as in the paper.
 *
 * Each cluster's reads live in one contiguous arena (optionally 2-bit
 * packed) instead of N small vectors; queries hand out StrandViews via
 * fillBatch() so the decode hot path never copies a read.
 */

#ifndef DNASTORE_CHANNEL_READ_POOL_HH
#define DNASTORE_CHANNEL_READ_POOL_HH

#include <cstddef>
#include <vector>

#include "channel/coverage.hh"
#include "channel/ids_channel.hh"
#include "dna/packed_strand.hh"
#include "dna/strand.hh"
#include "util/rng.hh"

namespace dnastore {

/** How a ReadPool stores its reads. */
enum class ReadStorage
{
    Flat,   //!< One byte per base, views alias the pool directly.
    Packed, //!< 2 bits per base; queries unpack into the batch scratch.
};

/** Noisy-read pools for a set of reference strands. */
class ReadPool
{
  public:
    /**
     * Generate pools.
     *
     * @param references   One original strand per cluster.
     * @param channel      The IDS channel to sample reads from.
     * @param max_coverage Reads generated per cluster.
     * @param rng          Randomness source.
     */
    ReadPool(const std::vector<Strand> &references,
             const IdsChannel &channel, size_t max_coverage, Rng &rng);

    /**
     * Generate pools with one independent RNG stream per cluster,
     * optionally in parallel.
     *
     * Cluster seeds are drawn serially from a base stream seeded with
     * @p seed, so the pools are bit-identical for every
     * @p num_threads value (0 = all hardware threads) and for either
     * storage mode.
     */
    ReadPool(const std::vector<Strand> &references,
             const IdsChannel &channel, size_t max_coverage,
             uint64_t seed, size_t num_threads,
             ReadStorage storage = ReadStorage::Flat);

    /**
     * Rebuild a pool from explicit per-cluster reads — the restore
     * half of the durable `.dnapool` format. Read order is preserved
     * exactly, so prefix-based coverage queries return the same
     * batches the saved pool would have. Clusters may be ragged
     * (aging loses whole reads): each may hold up to @p max_coverage
     * reads, and coverage queries clamp to what survives.
     *
     * @throws std::invalid_argument when a cluster holds more than
     *         @p max_coverage reads.
     */
    ReadPool(const std::vector<std::vector<Strand>> &clusters,
             size_t max_coverage,
             ReadStorage storage = ReadStorage::Flat);

    /**
     * Owning copies of every read, cluster-major in pool order — the
     * snapshot half of the durable format (inverse of the restoring
     * constructor).
     */
    std::vector<std::vector<Strand>> snapshot() const;

    /** Number of clusters. */
    size_t clusters() const { return clusterCount_; }

    /** Maximum coverage available per cluster. */
    size_t maxCoverage() const { return maxCoverage_; }

    /** Storage mode of this pool. */
    ReadStorage storage() const { return storage_; }

    /**
     * Reads currently alive in cluster @p cluster. Equal to
     * maxCoverage() for a freshly generated pool; aging
     * (channel/aging.hh) loses reads, leaving the pool ragged.
     */
    size_t clusterSize(size_t cluster) const;

    /** Live reads summed across clusters. */
    size_t totalReads() const;

    /**
     * The first @p coverage reads of cluster @p cluster, as owning
     * copies (compatibility API; hot paths use fillBatch instead).
     * Clamped to the cluster's live read count.
     *
     * @throws std::out_of_range if coverage exceeds maxCoverage().
     */
    std::vector<Strand> reads(size_t cluster, size_t coverage) const;

    /**
     * Replace cluster @p cluster's reads wholesale — the repair half
     * of the scrubber (pipeline/simulator.hh): a repaired cluster's
     * rewritten strands overwrite whatever decayed reads it held.
     * Touches only that cluster's arena, so distinct clusters may be
     * replaced concurrently.
     *
     * @throws std::invalid_argument when more than maxCoverage()
     *         reads are supplied.
     */
    void replaceCluster(size_t cluster,
                        const std::vector<Strand> &reads);

    /**
     * Fill @p batch with the first @p coverage reads of every cluster
     * as views — no read is copied for flat pools; packed pools unpack
     * into the batch's scratch arena. The batch's buffers are reused
     * across calls. Per-cluster counts clamp to the live reads, so an
     * aged (ragged) pool serves what survives.
     */
    void fillBatch(size_t coverage, ReadBatch &batch) const;

    /** Fill @p batch with counts[c] reads of cluster c (clamped). */
    void fillBatch(const std::vector<size_t> &counts,
                   ReadBatch &batch) const;

    /**
     * Per-cluster read counts for a mean coverage under a coverage
     * distribution: draws one count per cluster (capped by the pool
     * size) so sweeps can model Gamma-distributed cluster sizes.
     */
    std::vector<size_t> sampleCounts(const CoverageModel &model,
                                     Rng &rng) const;

  private:
    std::vector<StrandArena> flat_;    //!< Per cluster (Flat mode).
    std::vector<PackedArena> packed_;  //!< Per cluster (Packed mode).
    ReadStorage storage_ = ReadStorage::Flat;
    size_t clusterCount_ = 0;
    size_t maxCoverage_;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_READ_POOL_HH

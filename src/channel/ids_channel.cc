#include "channel/ids_channel.hh"

#include <stdexcept>

namespace dnastore {

namespace {

/**
 * The shared per-base channel walk: at most one of {insert, delete,
 * substitute} per input position, emitted through @p push. All public
 * transmit variants route here so their RNG draw sequences — and
 * therefore their outputs — are identical.
 */
template <typename Push>
void
transmitCore(StrandView input, Rng &rng, double p_ins, double p_del,
             double p_sub, ChannelEvents *events, Push &&push)
{
    for (Base b : input) {
        double u = rng.nextDouble();
        if (u < p_ins) {
            // Insert a uniform base before position i; the original
            // base is kept, matching the paper's channel definition.
            push(baseFromBits(unsigned(rng.nextBelow(4))));
            push(b);
            if (events)
                ++events->insertions;
        } else if (u < p_del) {
            if (events)
                ++events->deletions;
        } else if (u < p_sub) {
            // Replace with one of the three other bases.
            unsigned offset = 1u + unsigned(rng.nextBelow(3));
            push(baseFromBits(bitsFromBase(b) + offset));
            if (events)
                ++events->substitutions;
        } else {
            push(b);
        }
    }
}

} // namespace

IdsChannel::IdsChannel(const ErrorModel &model)
    : model_(model)
{
    if (!model.valid())
        throw std::invalid_argument("IdsChannel: invalid error model");
}

Strand
IdsChannel::transmit(const Strand &input, Rng &rng,
                     ChannelEvents *events) const
{
    Strand out;
    out.reserve(input.size() + 8);
    transmitInto(input, rng, out, events);
    return out;
}

void
IdsChannel::transmitInto(StrandView input, Rng &rng, Strand &out,
                         ChannelEvents *events) const
{
    out.clear();
    const double p_ins = model_.insertion;
    const double p_del = p_ins + model_.deletion;
    const double p_sub = p_del + model_.substitution;
    transmitCore(input, rng, p_ins, p_del, p_sub, events,
                 [&out](Base b) { out.push_back(b); });
}

void
IdsChannel::transmitAppend(StrandView input, Rng &rng, StrandArena &out,
                           ChannelEvents *events) const
{
    const double p_ins = model_.insertion;
    const double p_del = p_ins + model_.deletion;
    const double p_sub = p_del + model_.substitution;
    transmitCore(input, rng, p_ins, p_del, p_sub, events,
                 [&out](Base b) { out.push(b); });
    out.endStrand();
}

std::vector<Strand>
IdsChannel::transmitCluster(const Strand &input, size_t n, Rng &rng) const
{
    std::vector<Strand> reads;
    reads.reserve(n);
    for (size_t i = 0; i < n; ++i)
        reads.push_back(transmit(input, rng));
    return reads;
}

void
IdsChannel::transmitClusterInto(StrandView input, size_t n, Rng &rng,
                                StrandArena &out) const
{
    out.reserve(out.totalBases() + n * (input.size() + 8),
                out.strandCount() + n);
    for (size_t i = 0; i < n; ++i)
        transmitAppend(input, rng, out);
}

} // namespace dnastore

#include "channel/ids_channel.hh"

#include <stdexcept>

namespace dnastore {

IdsChannel::IdsChannel(const ErrorModel &model)
    : model_(model)
{
    if (!model.valid())
        throw std::invalid_argument("IdsChannel: invalid error model");
}

Strand
IdsChannel::transmit(const Strand &input, Rng &rng,
                     ChannelEvents *events) const
{
    Strand out;
    out.reserve(input.size() + 8);
    const double p_ins = model_.insertion;
    const double p_del = p_ins + model_.deletion;
    const double p_sub = p_del + model_.substitution;

    for (Base b : input) {
        double u = rng.nextDouble();
        if (u < p_ins) {
            // Insert a uniform base before position i; the original
            // base is kept, matching the paper's channel definition.
            out.push_back(baseFromBits(unsigned(rng.nextBelow(4))));
            out.push_back(b);
            if (events)
                ++events->insertions;
        } else if (u < p_del) {
            if (events)
                ++events->deletions;
        } else if (u < p_sub) {
            // Replace with one of the three other bases.
            unsigned offset = 1u + unsigned(rng.nextBelow(3));
            out.push_back(baseFromBits(bitsFromBase(b) + offset));
            if (events)
                ++events->substitutions;
        } else {
            out.push_back(b);
        }
    }
    return out;
}

std::vector<Strand>
IdsChannel::transmitCluster(const Strand &input, size_t n, Rng &rng) const
{
    std::vector<Strand> reads;
    reads.reserve(n);
    for (size_t i = 0; i < n; ++i)
        reads.push_back(transmit(input, rng));
    return reads;
}

} // namespace dnastore

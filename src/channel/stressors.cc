#include "channel/stressors.hh"

#include <stdexcept>
#include <string>

namespace dnastore {

double
PositionalRamp::multiplierAt(size_t i, size_t len) const
{
    if (!enabled() || len < 2)
        return 1.0;
    double frac = double(i) / double(len - 1);
    if (frac <= startFrac)
        return 1.0;
    double progress = (frac - startFrac) / (1.0 - startFrac);
    return 1.0 + progress * (endMultiplier - 1.0);
}

bool
PositionalRamp::valid() const
{
    return startFrac >= 0.0 && startFrac <= 1.0 && endMultiplier >= 0.0;
}

bool
PcrProfile::valid() const
{
    return efficiency >= 0.0 && efficiency <= 1.0 && errorRate >= 0.0 &&
        errorRate <= 1.0 && maxLineage >= 1;
}

bool
DropoutProfile::valid() const
{
    return rate >= 0.0 && rate <= 1.0 && burstLen >= 1;
}

bool
AgingProfile::valid() const
{
    return strandLossRate >= 0.0 && strandLossRate <= 1.0 &&
        substitutionRate >= 0.0 && substitutionRate <= 1.0;
}

bool
ChannelProfile::valid() const
{
    return base.valid() && ramp.valid() && pcr.valid() &&
        dropout.valid() && aging.valid();
}

void
ChannelProfile::validateOrThrow(const char *who) const
{
    std::string prefix = std::string(who) + ": ";
    if (!base.valid())
        throw std::invalid_argument(
            prefix + "invalid base error model "
                     "(negative rate or total() > 1)");
    if (!ramp.valid())
        throw std::invalid_argument(
            prefix + "invalid positional ramp "
                     "(startFrac outside [0,1] or negative multiplier)");
    if (!pcr.valid())
        throw std::invalid_argument(
            prefix + "invalid PCR profile (efficiency/errorRate outside "
                     "[0,1] or maxLineage == 0)");
    if (!dropout.valid())
        throw std::invalid_argument(
            prefix + "invalid dropout profile (rate outside [0,1] or "
                     "burstLen == 0)");
    if (!aging.valid())
        throw std::invalid_argument(
            prefix + "invalid aging profile (strand-loss or "
                     "substitution rate outside [0,1])");
}

void
applyDropout(const DropoutProfile &dropout, Rng &rng,
             std::vector<size_t> &counts)
{
    if (!dropout.enabled())
        return;
    size_t burst_left = 0;
    for (auto &count : counts) {
        if (burst_left > 0) {
            // Burst continuation: no draw, the burst already decided.
            --burst_left;
            count = 0;
        } else if (rng.nextDouble() < dropout.rate) {
            burst_left = dropout.burstLen - 1;
            count = 0;
        }
    }
}

ProfileChannel::ProfileChannel(const ChannelProfile &profile)
    : profile_(profile)
{
    profile.validateOrThrow("ProfileChannel");
}

void
ProfileChannel::transmitAppend(StrandView input, Rng &rng,
                               StrandArena &out) const
{
    // Mirrors IdsChannel's per-base walk (one uniform per position, at
    // most one error event) so that a flat profile draws the identical
    // RNG sequence; the ramp only rescales the event thresholds.
    const ErrorModel &m = profile_.base;
    const size_t len = input.size();
    for (size_t i = 0; i < len; ++i) {
        Base b = input[i];
        double mult = profile_.ramp.multiplierAt(i, len);
        double p_ins = m.insertion * mult;
        double p_del = p_ins + m.deletion * mult;
        double p_sub = p_del + m.substitution * mult;
        if (p_sub > 1.0) {
            // Clamp proportionally: an error is certain, but the
            // ins/del/sub split keeps its shape.
            double scale = 1.0 / p_sub;
            p_ins *= scale;
            p_del *= scale;
            p_sub = 1.0;
        }
        double u = rng.nextDouble();
        if (u < p_ins) {
            out.push(baseFromBits(unsigned(rng.nextBelow(4))));
            out.push(b);
        } else if (u < p_del) {
            // dropped
        } else if (u < p_sub) {
            unsigned offset = 1u + unsigned(rng.nextBelow(3));
            out.push(baseFromBits(bitsFromBase(b) + offset));
        } else {
            out.push(b);
        }
    }
    out.endStrand();
}

void
ProfileChannel::generateCluster(StrandView reference, size_t n, Rng &rng,
                                StrandArena &out) const
{
    out.reserve(out.totalBases() + n * (reference.size() + 8),
                out.strandCount() + n);
    if (!profile_.pcr.enabled()) {
        for (size_t i = 0; i < n; ++i)
            transmitAppend(reference, rng, out);
        return;
    }

    // Amplify: each round duplicates existing templates (capped), and
    // each duplication inherits its template's mutations plus fresh
    // polymerase substitutions.
    const PcrProfile &pcr = profile_.pcr;
    std::vector<Strand> pool;
    pool.reserve(pcr.maxLineage);
    pool.push_back(reference.toStrand());
    for (size_t cycle = 0; cycle < pcr.cycles; ++cycle) {
        size_t round_size = pool.size();
        for (size_t t = 0; t < round_size; ++t) {
            if (pool.size() >= pcr.maxLineage)
                break;
            if (rng.nextDouble() >= pcr.efficiency)
                continue;
            Strand copy = pool[t];
            for (auto &base : copy) {
                if (rng.nextDouble() < pcr.errorRate) {
                    unsigned offset = 1u + unsigned(rng.nextBelow(3));
                    base = baseFromBits(bitsFromBase(base) + offset);
                }
            }
            pool.push_back(std::move(copy));
        }
    }

    // Sequence: each read picks a template uniformly — duplicated
    // lineages are sampled proportionally to their amplified share.
    for (size_t i = 0; i < n; ++i) {
        const Strand &tmpl = pool[rng.nextBelow(pool.size())];
        transmitAppend(tmpl, rng, out);
    }
}

} // namespace dnastore

#include "channel/read_pool.hh"

#include <stdexcept>

namespace dnastore {

ReadPool::ReadPool(const std::vector<Strand> &references,
                   const IdsChannel &channel, size_t max_coverage,
                   Rng &rng)
    : maxCoverage_(max_coverage)
{
    pools_.reserve(references.size());
    for (const Strand &ref : references)
        pools_.push_back(channel.transmitCluster(ref, max_coverage, rng));
}

std::vector<Strand>
ReadPool::reads(size_t cluster, size_t coverage) const
{
    if (cluster >= pools_.size())
        throw std::out_of_range("ReadPool: bad cluster index");
    if (coverage > maxCoverage_)
        throw std::out_of_range("ReadPool: coverage exceeds pool size");
    const auto &pool = pools_[cluster];
    return std::vector<Strand>(pool.begin(),
                               pool.begin() + long(coverage));
}

std::vector<size_t>
ReadPool::sampleCounts(const CoverageModel &model, Rng &rng) const
{
    std::vector<size_t> counts;
    counts.reserve(pools_.size());
    for (size_t i = 0; i < pools_.size(); ++i) {
        size_t n = model.sample(rng);
        counts.push_back(n > maxCoverage_ ? maxCoverage_ : n);
    }
    return counts;
}

} // namespace dnastore

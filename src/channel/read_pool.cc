#include "channel/read_pool.hh"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hh"

namespace dnastore {

ReadPool::ReadPool(const std::vector<Strand> &references,
                   const IdsChannel &channel, size_t max_coverage,
                   Rng &rng)
    : storage_(ReadStorage::Flat), clusterCount_(references.size()),
      maxCoverage_(max_coverage)
{
    flat_.resize(references.size());
    for (size_t c = 0; c < references.size(); ++c)
        channel.transmitClusterInto(references[c], max_coverage, rng,
                                    flat_[c]);
}

ReadPool::ReadPool(const std::vector<Strand> &references,
                   const IdsChannel &channel, size_t max_coverage,
                   uint64_t seed, size_t num_threads, ReadStorage storage)
    : storage_(storage), clusterCount_(references.size()),
      maxCoverage_(max_coverage)
{
    // Per-cluster seeds come from one serial base stream so that the
    // pools do not depend on the worker count or schedule.
    Rng base(seed);
    std::vector<uint64_t> seeds(references.size());
    for (auto &s : seeds)
        s = base.next();

    if (storage_ == ReadStorage::Flat) {
        flat_.resize(references.size());
        parallelFor(references.size(), num_threads, [&](size_t c) {
            Rng rng(seeds[c]);
            channel.transmitClusterInto(references[c], max_coverage,
                                        rng, flat_[c]);
        });
    } else {
        packed_.resize(references.size());
        parallelFor(references.size(), num_threads, [&](size_t c) {
            Rng rng(seeds[c]);
            // Same RNG walk as the flat path, staged through a warm
            // per-thread buffer, so both modes hold identical reads.
            static thread_local Strand read;
            PackedArena &arena = packed_[c];
            arena.reserve(max_coverage * (references[c].size() + 8),
                          max_coverage);
            for (size_t i = 0; i < max_coverage; ++i) {
                channel.transmitInto(references[c], rng, read);
                arena.append(read);
            }
        });
    }
}

ReadPool::ReadPool(const std::vector<std::vector<Strand>> &clusters,
                   size_t max_coverage, ReadStorage storage)
    : storage_(storage), clusterCount_(clusters.size()),
      maxCoverage_(max_coverage)
{
    for (const auto &reads : clusters) {
        if (reads.size() > max_coverage)
            throw std::invalid_argument(
                "ReadPool: a restored cluster holds more than "
                "max_coverage reads");
    }
    if (storage_ == ReadStorage::Flat) {
        flat_.resize(clusters.size());
        for (size_t c = 0; c < clusters.size(); ++c) {
            size_t total = 0;
            for (const auto &read : clusters[c])
                total += read.size();
            flat_[c].reserve(total, clusters[c].size());
            for (const auto &read : clusters[c])
                flat_[c].append(
                    StrandView(read.data(), read.size()));
        }
    } else {
        packed_.resize(clusters.size());
        for (size_t c = 0; c < clusters.size(); ++c) {
            size_t total = 0;
            for (const auto &read : clusters[c])
                total += read.size();
            packed_[c].reserve(total, clusters[c].size());
            for (const auto &read : clusters[c])
                packed_[c].append(
                    StrandView(read.data(), read.size()));
        }
    }
}

std::vector<std::vector<Strand>>
ReadPool::snapshot() const
{
    std::vector<std::vector<Strand>> out(clusterCount_);
    for (size_t c = 0; c < clusterCount_; ++c)
        out[c] = reads(c, maxCoverage_);
    return out;
}

size_t
ReadPool::clusterSize(size_t cluster) const
{
    if (cluster >= clusterCount_)
        throw std::out_of_range("ReadPool: bad cluster index");
    return storage_ == ReadStorage::Flat
        ? flat_[cluster].strandCount()
        : packed_[cluster].strandCount();
}

size_t
ReadPool::totalReads() const
{
    size_t total = 0;
    for (size_t c = 0; c < clusterCount_; ++c)
        total += clusterSize(c);
    return total;
}

std::vector<Strand>
ReadPool::reads(size_t cluster, size_t coverage) const
{
    if (cluster >= clusterCount_)
        throw std::out_of_range("ReadPool: bad cluster index");
    if (coverage > maxCoverage_)
        throw std::out_of_range("ReadPool: coverage exceeds pool size");
    const size_t n = std::min(coverage, clusterSize(cluster));
    std::vector<Strand> out(n);
    for (size_t r = 0; r < n; ++r) {
        if (storage_ == ReadStorage::Flat)
            out[r] = flat_[cluster].view(r).toStrand();
        else
            packed_[cluster].unpackInto(r, out[r]);
    }
    return out;
}

void
ReadPool::replaceCluster(size_t cluster,
                         const std::vector<Strand> &reads)
{
    if (cluster >= clusterCount_)
        throw std::out_of_range("ReadPool: bad cluster index");
    if (reads.size() > maxCoverage_)
        throw std::invalid_argument(
            "ReadPool: replacement exceeds the pool's coverage");
    size_t total = 0;
    for (const auto &read : reads)
        total += read.size();
    if (storage_ == ReadStorage::Flat) {
        StrandArena fresh;
        fresh.reserve(total, reads.size());
        for (const auto &read : reads)
            fresh.append(StrandView(read.data(), read.size()));
        flat_[cluster] = std::move(fresh);
    } else {
        PackedArena fresh;
        fresh.reserve(total, reads.size());
        for (const auto &read : reads)
            fresh.append(StrandView(read.data(), read.size()));
        packed_[cluster] = std::move(fresh);
    }
}

void
ReadPool::fillBatch(size_t coverage, ReadBatch &batch) const
{
    if (coverage > maxCoverage_)
        throw std::out_of_range("ReadPool: coverage exceeds pool size");
    static thread_local std::vector<size_t> uniform;
    uniform.assign(clusterCount_, coverage);
    fillBatch(uniform, batch);
}

void
ReadPool::fillBatch(const std::vector<size_t> &counts,
                    ReadBatch &batch) const
{
    if (counts.size() != clusterCount_)
        throw std::invalid_argument("ReadPool: counts size mismatch");
    for (size_t count : counts) {
        if (count > maxCoverage_)
            throw std::out_of_range(
                "ReadPool: coverage exceeds pool size");
    }

    batch.clear();
    batch.offsets.reserve(clusterCount_ + 1);
    // Aged pools are ragged: a cluster serves at most what survives.
    static thread_local std::vector<size_t> live;
    live.resize(clusterCount_);
    size_t total = 0;
    for (size_t c = 0; c < clusterCount_; ++c) {
        live[c] = std::min(counts[c], clusterSize(c));
        total += live[c];
    }
    batch.views.reserve(total);

    if (storage_ == ReadStorage::Flat) {
        // Views alias the pool arenas directly: zero copies.
        batch.offsets.push_back(0);
        for (size_t c = 0; c < clusterCount_; ++c) {
            for (size_t r = 0; r < live[c]; ++r)
                batch.views.push_back(flat_[c].view(r));
            batch.offsets.push_back(batch.views.size());
        }
    } else {
        // Unpack every requested read into the batch scratch first;
        // views are taken afterwards since arena growth relocates.
        for (size_t c = 0; c < clusterCount_; ++c) {
            for (size_t r = 0; r < live[c]; ++r)
                packed_[c].unpackInto(r, batch.scratch);
        }
        batch.offsets.push_back(0);
        size_t idx = 0;
        for (size_t c = 0; c < clusterCount_; ++c) {
            for (size_t r = 0; r < live[c]; ++r)
                batch.views.push_back(batch.scratch.view(idx++));
            batch.offsets.push_back(batch.views.size());
        }
    }
}

std::vector<size_t>
ReadPool::sampleCounts(const CoverageModel &model, Rng &rng) const
{
    std::vector<size_t> counts;
    counts.reserve(clusterCount_);
    for (size_t i = 0; i < clusterCount_; ++i) {
        size_t n = model.sample(rng);
        counts.push_back(n > maxCoverage_ ? maxCoverage_ : n);
    }
    return counts;
}

} // namespace dnastore

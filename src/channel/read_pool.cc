#include "channel/read_pool.hh"

#include <stdexcept>

#include "util/parallel.hh"

namespace dnastore {

ReadPool::ReadPool(const std::vector<Strand> &references,
                   const IdsChannel &channel, size_t max_coverage,
                   Rng &rng)
    : maxCoverage_(max_coverage)
{
    pools_.reserve(references.size());
    for (const Strand &ref : references)
        pools_.push_back(channel.transmitCluster(ref, max_coverage, rng));
}

ReadPool::ReadPool(const std::vector<Strand> &references,
                   const IdsChannel &channel, size_t max_coverage,
                   uint64_t seed, size_t num_threads)
    : maxCoverage_(max_coverage)
{
    // Per-cluster seeds come from one serial base stream so that the
    // pools do not depend on the worker count or schedule.
    Rng base(seed);
    std::vector<uint64_t> seeds(references.size());
    for (auto &s : seeds)
        s = base.next();

    pools_.resize(references.size());
    parallelFor(references.size(), num_threads, [&](size_t c) {
        Rng rng(seeds[c]);
        pools_[c] = channel.transmitCluster(references[c],
                                            max_coverage, rng);
    });
}

std::vector<Strand>
ReadPool::reads(size_t cluster, size_t coverage) const
{
    if (cluster >= pools_.size())
        throw std::out_of_range("ReadPool: bad cluster index");
    if (coverage > maxCoverage_)
        throw std::out_of_range("ReadPool: coverage exceeds pool size");
    const auto &pool = pools_[cluster];
    return std::vector<Strand>(pool.begin(),
                               pool.begin() + long(coverage));
}

std::vector<size_t>
ReadPool::sampleCounts(const CoverageModel &model, Rng &rng) const
{
    std::vector<size_t> counts;
    counts.reserve(pools_.size());
    for (size_t i = 0; i < pools_.size(); ++i) {
        size_t n = model.sample(rng);
        counts.push_back(n > maxCoverage_ ? maxCoverage_ : n);
    }
    return counts;
}

} // namespace dnastore

/**
 * @file
 * Insertion/deletion/substitution channel simulator.
 *
 * Models the cumulative distortion of DNA synthesis, storage, PCR, and
 * sequencing as a single memoryless IDS channel, exactly as the paper's
 * simulation methodology does (sections 3 and 6.1.2).
 */

#ifndef DNASTORE_CHANNEL_IDS_CHANNEL_HH
#define DNASTORE_CHANNEL_IDS_CHANNEL_HH

#include <cstddef>
#include <vector>

#include "channel/error_model.hh"
#include "dna/packed_strand.hh"
#include "dna/strand.hh"
#include "util/rng.hh"

namespace dnastore {

/** Counts of injected error events for one transmission. */
struct ChannelEvents
{
    size_t insertions = 0;
    size_t deletions = 0;
    size_t substitutions = 0;

    /** Total error events. */
    size_t total() const { return insertions + deletions + substitutions; }
};

/**
 * Memoryless IDS channel over the DNA alphabet.
 *
 * Per input position, at most one of {insert, delete, substitute}
 * happens, drawn according to the ErrorModel; inserted bases are
 * uniform over the alphabet and substituted bases are uniform over the
 * three other bases, per the paper's channel definition.
 */
class IdsChannel
{
  public:
    explicit IdsChannel(const ErrorModel &model);

    /**
     * Transmit one strand through the channel.
     *
     * @param input  Original strand.
     * @param rng    Randomness source.
     * @param events Optional out-param counting injected errors.
     */
    Strand transmit(const Strand &input, Rng &rng,
                    ChannelEvents *events = nullptr) const;

    /**
     * Transmit into a caller-provided strand: @p out is cleared and
     * refilled, reusing its capacity, so a warm buffer makes repeated
     * transmissions allocation-free. Draws the same RNG sequence as
     * transmit(), so outputs are bit-identical.
     *
     * @p input must not alias @p out (or, for transmitAppend, the
     * destination arena): the output buffer may reallocate while the
     * input is still being read.
     */
    void transmitInto(StrandView input, Rng &rng, Strand &out,
                      ChannelEvents *events = nullptr) const;

    /**
     * Transmit as a new strand appended to @p out — the arena-backed
     * path used by read pools, where a whole cluster's reads land in
     * one contiguous buffer.
     */
    void transmitAppend(StrandView input, Rng &rng, StrandArena &out,
                        ChannelEvents *events = nullptr) const;

    /** Generate @p n independent noisy copies (a perfect cluster). */
    std::vector<Strand> transmitCluster(const Strand &input, size_t n,
                                        Rng &rng) const;

    /** Generate a cluster of @p n noisy copies into an arena. */
    void transmitClusterInto(StrandView input, size_t n, Rng &rng,
                             StrandArena &out) const;

    /** The configured error model. */
    const ErrorModel &model() const { return model_; }

  private:
    ErrorModel model_;
};

} // namespace dnastore

#endif // DNASTORE_CHANNEL_IDS_CHANNEL_HH

#include "channel/error_model.hh"

namespace dnastore {

ErrorModel
ErrorModel::uniform(double p)
{
    return { p / 3.0, p / 3.0, p / 3.0 };
}

ErrorModel
ErrorModel::substitutionOnly(double p)
{
    return { 0.0, 0.0, p };
}

ErrorModel
ErrorModel::indelOnly(double p)
{
    return { p / 2.0, p / 2.0, 0.0 };
}

ErrorModel
ErrorModel::custom(double ins, double del, double sub)
{
    return { ins, del, sub };
}

ErrorModel
ErrorModel::ngs(double p)
{
    // ~27% indels (midpoint of the 25-30% reported in the paper).
    const double indel = 0.27 * p;
    return { indel / 2.0, indel / 2.0, p - indel };
}

ErrorModel
ErrorModel::nanopore(double p)
{
    const double indel = 0.60 * p;
    return { indel / 2.0, indel / 2.0, p - indel };
}

bool
ErrorModel::valid() const
{
    return insertion >= 0.0 && deletion >= 0.0 && substitution >= 0.0 &&
        total() <= 1.0;
}

} // namespace dnastore

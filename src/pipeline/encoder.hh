/**
 * @file
 * Unit encoder: file bundle -> encoding matrix -> DNA strands.
 *
 * Implements the write path of the storage pipeline for all three
 * layout schemes. The steps (sections 2, 4, 5 of the paper):
 *  1. serialize the bundle (storage order, or priority order for
 *     DnaMapper);
 *  2. pack bits into GF(2^m) symbols and place them in the data
 *     columns (column-major for Baseline/Gini, reliability-ranked
 *     zig-zag for DnaMapper);
 *  3. Reed-Solomon encode every codeword along its layout (rows for
 *     Baseline/DnaMapper, diagonals for Gini), writing parity into
 *     the E parity columns;
 *  4. emit one strand per column: forward primer + ordering index +
 *     payload bases + backward primer.
 */

#ifndef DNASTORE_PIPELINE_ENCODER_HH
#define DNASTORE_PIPELINE_ENCODER_HH

#include <memory>
#include <vector>

#include "dna/primer.hh"
#include "dna/strand.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "layout/codeword_map.hh"
#include "layout/matrix.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"

namespace dnastore {

/** Everything the write path produces for one unit. */
struct EncodedUnit
{
    SymbolMatrix matrix;         //!< Data + parity symbols.
    std::vector<Strand> strands; //!< One per column, primers included.
    size_t payloadBits = 0;      //!< Bundle bits actually stored.

    EncodedUnit() : matrix(1, 1) {}
};

/** Build the CodewordMap a scheme uses at this geometry. */
std::unique_ptr<CodewordMap> makeCodewordMap(const StorageConfig &cfg,
                                             LayoutScheme scheme);

/** Encoder for one storage configuration and layout scheme. */
class UnitEncoder
{
  public:
    UnitEncoder(const StorageConfig &cfg, LayoutScheme scheme);

    /**
     * Encode a bundle into one unit.
     *
     * @throws std::invalid_argument if the bundle exceeds the unit's
     *         capacity (cfg.capacityBits()).
     */
    EncodedUnit encode(const FileBundle &bundle) const;

    /** Pack a serialized byte stream into symbols (exposed for tests). */
    std::vector<uint32_t> packSymbols(
        const std::vector<uint8_t> &bytes) const;

    const StorageConfig &config() const { return cfg_; }
    LayoutScheme scheme() const { return scheme_; }

  private:
    StorageConfig cfg_;
    LayoutScheme scheme_;
    GaloisField gf_;
    ReedSolomon rs_;
    std::unique_ptr<CodewordMap> map_;
    PrimerPair primers_;
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_ENCODER_HH

#include "pipeline/encoder.hh"

#include <stdexcept>

#include "dna/codec.hh"
#include "layout/data_map.hh"
#include "util/bitio.hh"

namespace dnastore {

std::unique_ptr<CodewordMap>
makeCodewordMap(const StorageConfig &cfg, LayoutScheme scheme)
{
    switch (scheme) {
      case LayoutScheme::Baseline:
      case LayoutScheme::DnaMapper:
        // DnaMapper keeps row codewords; only the data placement and
        // the bit ordering differ (section 5.2.2).
        return std::make_unique<BaselineMap>(cfg.rows, cfg.codewordLen());
      case LayoutScheme::Gini:
        return std::make_unique<GiniMap>(cfg.rows, cfg.codewordLen());
    }
    throw std::logic_error("makeCodewordMap: bad scheme");
}

UnitEncoder::UnitEncoder(const StorageConfig &cfg, LayoutScheme scheme)
    : cfg_(cfg), scheme_(scheme), gf_(cfg.symbolBits),
      rs_(gf_, cfg.paritySymbols), map_(makeCodewordMap(cfg, scheme)),
      primers_(makePrimerPair(cfg.primerKey, cfg.primerLen))
{
    cfg_.validate();
}

std::vector<uint32_t>
UnitEncoder::packSymbols(const std::vector<uint8_t> &bytes) const
{
    const size_t n_symbols = cfg_.rows * cfg_.dataCols();
    if (bytes.size() * 8 > cfg_.capacityBits() + 7)
        throw std::invalid_argument("UnitEncoder: bundle too large");
    std::vector<uint32_t> symbols(n_symbols, 0);
    BitReader r(bytes);
    for (size_t s = 0; s < n_symbols; ++s) {
        if (r.bitPosition() >= r.bitLimit())
            break; // remaining symbols stay zero (padding)
        symbols[s] = r.readBits(int(cfg_.symbolBits));
    }
    return symbols;
}

EncodedUnit
UnitEncoder::encode(const FileBundle &bundle) const
{
    const bool priority = scheme_ == LayoutScheme::DnaMapper;
    std::vector<uint8_t> stream =
        priority ? bundle.serializePriority() : bundle.serialize();
    if (stream.size() * 8 > cfg_.capacityBits() + 7) {
        throw std::invalid_argument(
            "UnitEncoder: bundle exceeds unit capacity");
    }

    EncodedUnit unit;
    unit.payloadBits = stream.size() * 8;
    unit.matrix = SymbolMatrix(cfg_.rows, cfg_.codewordLen());

    // 1-2. Pack and place data symbols.
    placeData(unit.matrix, packSymbols(stream), cfg_.dataCols(),
              priority ? DataPlacement::Priority
                       : DataPlacement::Baseline);

    // 3. Reed-Solomon encode each codeword along the layout map; the
    // first M symbol slots of every codeword are data (columns < M by
    // the CodewordMap contract), the rest parity.
    for (size_t j = 0; j < map_->codewords(); ++j) {
        std::vector<uint32_t> data(cfg_.dataCols());
        for (size_t t = 0; t < cfg_.dataCols(); ++t) {
            MatrixPos p = map_->position(j, t);
            data[t] = unit.matrix.at(p.row, p.col);
        }
        std::vector<uint32_t> codeword = rs_.encode(data);
        for (size_t t = cfg_.dataCols(); t < map_->length(); ++t) {
            MatrixPos p = map_->position(j, t);
            unit.matrix.at(p.row, p.col) = codeword[t];
        }
    }

    // 4. Emit strands: primer + index + payload bases + primer.
    unit.strands.reserve(cfg_.codewordLen());
    for (size_t col = 0; col < cfg_.codewordLen(); ++col) {
        BitWriter w;
        for (size_t row = 0; row < cfg_.rows; ++row)
            w.writeBits(unit.matrix.at(row, col),
                        int(cfg_.symbolBits));
        Strand payload;
        payload.reserve(cfg_.indexBases() + cfg_.payloadBases());
        appendUint(payload, col, int(cfg_.indexBits()));
        auto bytes = w.take();
        BitReader r(bytes);
        for (size_t b = 0; b < cfg_.payloadBases(); ++b)
            payload.push_back(baseFromBits(r.readBits(2)));
        unit.strands.push_back(attachPrimers(primers_, payload));
    }
    return unit;
}

} // namespace dnastore

/**
 * @file
 * Unit decoder: clustered noisy reads -> consensus -> ECC -> files.
 *
 * Implements the read path (section 6.1.2): per-cluster consensus with
 * the two-sided reconstruction, ordering-index parsing, matrix
 * reassembly with erasures for lost or unplaceable molecules,
 * Reed-Solomon errors-and-erasures decoding along the layout map, and
 * bundle deserialization. Clustering itself is perfect, as in the
 * paper ("our data is perfectly clustered"): cluster i holds reads of
 * molecule i, but empty clusters and index decoding faults still
 * produce erasures.
 */

#ifndef DNASTORE_PIPELINE_DECODER_HH
#define DNASTORE_PIPELINE_DECODER_HH

#include <memory>
#include <vector>

#include "consensus/profiler.hh"
#include "dna/packed_strand.hh"
#include "dna/primer.hh"
#include "dna/strand.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "layout/codeword_map.hh"
#include "layout/matrix.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"

namespace dnastore {

/** Per-decode bookkeeping used by the evaluation. */
struct DecodeStats
{
    size_t erasedColumns = 0;   //!< Columns lost (no reads / no index).
    size_t indexFaults = 0;     //!< Strands with unusable indexes.
    size_t failedCodewords = 0; //!< Codewords RS could not decode.

    /** Errors detected and corrected per codeword (Figure 11's y-axis). */
    std::vector<size_t> errorsPerCodeword;

    /**
     * The RS correction split behind errorsPerCodeword: true errors
     * (unknown position, cost 2 parity each) and erasures (known
     * position, cost 1) per codeword. errorsPerCodeword[j] ==
     * rsErrors[j] + rsErasures[j]; the health layer's remaining-margin
     * math (parity - 2*errors - erasures) needs the split, not the
     * sum. Empty when the decode predates the probe (never here).
     */
    std::vector<size_t> rsErrors;
    std::vector<size_t> rsErasures;

    /** Per-codeword decode verdict (1 = decoded, 0 = failed). */
    std::vector<uint8_t> codewordOk;

    /** Total corrected symbol errors across codewords. */
    size_t totalCorrected() const;
};

/**
 * Optional per-cluster telemetry of one decode pass — the measure
 * half of the durability loop (Store::health / Store::scrub). Filled
 * only when a probe is passed to decode(): the agreement computation
 * costs one edit-distance per read, which the hot paths skip.
 */
struct ClusterProbe
{
    size_t reads = 0;       //!< Reads consensus saw for this cluster.
    bool indexOk = false;   //!< Consensus framed and indexed validly.
    bool claimed = false;   //!< Column claim won (first claim wins).
    uint64_t column = 0;    //!< Claimed column (valid when indexOk).

    /**
     * Mean per-read agreement with the cluster consensus:
     * 1 - editDistance(read, consensus) / strandLen, averaged over
     * the cluster's reads; 0 for empty clusters. Low agreement means
     * noisy or decayed reads even when the index still parses.
     */
    double agreement = 0.0;
};

/** decode() telemetry sink: per-cluster probes, slot per cluster. */
struct DecodeProbe
{
    std::vector<ClusterProbe> clusters;
};

/** Result of decoding one unit. */
struct DecodedUnit
{
    FileBundle bundle;     //!< Recovered files (may be partial).
    bool bundleOk = false; //!< Directory parsed and files split.
    bool exact = false;    //!< Every codeword decoded cleanly.
    DecodeStats stats;
    std::vector<uint8_t> rawStream; //!< Post-ECC serialized stream.
};

/** Decoder for one storage configuration and layout scheme. */
class UnitDecoder
{
  public:
    /**
     * @param cfg    Unit geometry.
     * @param scheme Layout used at encoding time.
     * @param reconstruct Consensus algorithm; defaults to the
     *        two-sided reconstruction used by the paper's pipeline
     *        (it guarantees the target output length). Any
     *        Reconstructor can be substituted; wrong-length outputs
     *        are treated as index faults for that cluster. When
     *        cfg.numThreads != 1 the reconstructor is invoked
     *        concurrently from worker threads, so a substituted one
     *        must be safe to call in parallel (stateless, or
     *        internally synchronized) — or keep numThreads = 1.
     */
    UnitDecoder(const StorageConfig &cfg, LayoutScheme scheme,
                Reconstructor reconstruct = {});

    /**
     * Decode a unit from clustered reads.
     *
     * @param clusters        clusters[i] holds the noisy reads of
     *                        molecule i (may be empty = erasure).
     * @param forced_erasures Columns treated as erased regardless of
     *                        their reads; used to emulate reduced
     *                        effective redundancy (Figure 13).
     */
    DecodedUnit decode(
        const std::vector<std::vector<Strand>> &clusters,
        const std::vector<size_t> &forced_erasures = {}) const;

    /**
     * Decode from a view batch — the zero-copy hot path used by the
     * simulator: reads stay wherever the pool put them and only
     * StrandViews flow through consensus. Bit-identical to the
     * vector-of-vectors overload.
     *
     * @param probe When non-null, per-cluster health telemetry
     *        (read counts, index validity, consensus agreement) is
     *        collected into it. Slot-per-cluster writes keep the
     *        probe bit-identical at any thread count; the decode
     *        result itself is unaffected.
     */
    DecodedUnit decode(
        const ReadBatch &batch,
        const std::vector<size_t> &forced_erasures = {},
        DecodeProbe *probe = nullptr) const;

    const StorageConfig &config() const { return cfg_; }
    LayoutScheme scheme() const { return scheme_; }

  private:
    StorageConfig cfg_;
    LayoutScheme scheme_;
    GaloisField gf_;
    ReedSolomon rs_;
    std::unique_ptr<CodewordMap> map_;
    PrimerPair primers_;
    Reconstructor reconstruct_;
    bool defaultReconstruct_ = false;
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_DECODER_HH

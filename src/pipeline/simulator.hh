/**
 * @file
 * End-to-end storage simulator and experiment driver.
 *
 * Ties the pipeline to the channel exactly as the paper's methodology
 * does (section 6.1.2): encode once, generate a large pool of noisy
 * reads per molecule, then decode at progressively higher coverage by
 * taking pool prefixes. Also provides the minimum-coverage search
 * behind Figures 12 and 13.
 */

#ifndef DNASTORE_PIPELINE_SIMULATOR_HH
#define DNASTORE_PIPELINE_SIMULATOR_HH

#include <memory>
#include <optional>
#include <vector>

#include "channel/coverage.hh"
#include "channel/ids_channel.hh"
#include "channel/read_pool.hh"
#include "channel/stressors.hh"
#include "cluster/clusterer.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"
#include "pipeline/decoder.hh"
#include "pipeline/encoder.hh"

namespace dnastore {

/** One coverage point of a retrieval sweep. */
struct RetrievalResult
{
    size_t coverage = 0;
    DecodedUnit decoded;
    /** True when the recovered stream matches the stored bits exactly. */
    bool exactPayload = false;
};

/** Retrieval through the real clusterer instead of perfect grouping. */
struct ClusteredRetrievalResult
{
    RetrievalResult result;

    /** Clustering accuracy against the pool's true grouping. */
    ClusterQuality quality;

    /** Clusters the clusterer formed (true count: one per strand). */
    size_t clustersFound = 0;
};

/** One Monte-Carlo trial of a channel profile (Scenario Lab unit). */
struct TrialOutcome
{
    RetrievalResult result;

    /**
     * Fraction of the stored bytes recovered wrong (missing trailing
     * bytes count as wrong); 0.0 on exact recovery.
     */
    double byteErrorRate = 0.0;

    /** Reads generated across clusters (after dropout). */
    size_t readsGenerated = 0;

    /** Clusters erased by dropout (zero reads before decode). */
    size_t clustersDropped = 0;

    /** True when the trial decoded through the real clusterer. */
    bool clustered = false;

    /** Clustering accuracy (valid when clustered). */
    ClusterQuality quality;

    /** Clusters formed (valid when clustered). */
    size_t clustersFound = 0;
};

/** One cluster's health, from a full-depth probe decode. */
struct ClusterHealth
{
    size_t reads = 0;     //!< Live reads the probe decoded from.
    bool indexOk = false; //!< Consensus framed and indexed validly.
    bool claimed = false; //!< Won its column claim.
    uint64_t column = 0;  //!< Claimed column (valid when indexOk).
    double agreement = 0.0; //!< Mean read/consensus agreement.
};

/** One codeword's health, from the same probe decode. */
struct CodewordHealth
{
    bool ok = false;            //!< RS decoded this codeword.
    size_t errorsCorrected = 0; //!< True errors (2 parity each).
    size_t erasuresCorrected = 0; //!< Erasures (1 parity each).

    /**
     * Remaining correction budget: paritySymbols - (2*errors +
     * erasures). -1 when the codeword failed (budget exhausted).
     */
    int margin = 0;
};

/** Unit-level health snapshot: the measure half of the scrub loop. */
struct UnitHealth
{
    size_t clusters = 0;
    size_t liveReads = 0;      //!< Reads surviving across clusters.
    size_t poolCoverage = 0;   //!< Pool depth when fully populated.
    size_t emptyClusters = 0;  //!< Clusters aged down to zero reads.
    size_t indexFaults = 0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
    size_t agedEpochs = 0;     //!< Epochs of decay applied so far.
    bool exact = false;        //!< Full-depth decode was clean.
    double meanAgreement = 0.0; //!< Over non-empty clusters.
    double minAgreement = 0.0;  //!< Over non-empty clusters.
    int minMargin = 0;          //!< Min codeword margin (-1 = failed).
    std::vector<ClusterHealth> perCluster;
    std::vector<CodewordHealth> perCodeword;
};

/** What the scrubber repairs and when (see StorageSimulator::scrub). */
struct ScrubPolicy
{
    /** Repair clusters with fewer live reads than this. */
    size_t minReads = 0;

    /** Repair clusters whose consensus agreement falls below this. */
    double minAgreement = 0.0;

    /** Rewrite every cluster regardless of margin. */
    bool repairAll = false;
};

/** What one scrub pass did. */
struct PoolScrubReport
{
    size_t clustersScanned = 0;
    size_t lowMargin = 0; //!< Clusters the policy selected for repair.
    size_t repaired = 0;  //!< Clusters rewritten at full depth.

    /**
     * Clusters selected but not repairable: some codeword failed at
     * the current read depth, so every column holds an untrusted
     * symbol and no rewrite is safe. Transient — more coverage (or a
     * later, luckier consensus) can clear it.
     */
    size_t unrepairable = 0;
    size_t failedCodewords = 0; //!< Codewords failing the probe decode.
    size_t readsRewritten = 0;
    bool repairable = false; //!< Probe decode recovered every codeword.
};

/** Per-epoch outcome of one aging Monte-Carlo trial. */
struct AgingTrialOutcome
{
    /** Decode success after each epoch (aging, optional scrub). */
    std::vector<uint8_t> epochSuccess;
    std::vector<double> epochByteErrorRate;
    size_t readsLost = 0;          //!< Total reads lost to aging.
    size_t repaired = 0;           //!< Clusters rewritten (scrubbing).
    size_t unrepairableEpochs = 0; //!< Epochs scrub had to skip.
};

/** Simulates storage and retrieval of one encoding unit. */
class StorageSimulator
{
  public:
    /**
     * @param cfg    Unit geometry.
     * @param scheme Layout under test.
     * @param model  IDS channel error model.
     * @param seed   Seed for the read pools (vary per repetition).
     */
    StorageSimulator(const StorageConfig &cfg, LayoutScheme scheme,
                     const ErrorModel &model, uint64_t seed);

    /**
     * Simulator over a full channel profile (Scenario Lab path). The
     * pre-generated pools of store() still use only the profile's
     * base IDS model; the stressors (ramp, PCR lineages, dropout)
     * apply to the per-trial read generation of runTrial().
     */
    StorageSimulator(const StorageConfig &cfg, LayoutScheme scheme,
                     const ChannelProfile &profile, uint64_t seed);

    /**
     * Encode the bundle and pre-generate read pools.
     *
     * @param max_coverage Largest coverage any later query will use.
     */
    void store(const FileBundle &bundle, size_t max_coverage);

    /**
     * Encode the bundle without generating read pools — the Monte-
     * Carlo entry point: runTrial() draws fresh reads per trial, so
     * the pool-backed queries (retrieve*, minCoverageForExact) are
     * not available until store() is called.
     */
    void prepare(const FileBundle &bundle);

    /**
     * Export the pre-generated read pools as owning per-cluster read
     * vectors, cluster-major in pool order — the snapshot half of the
     * durable `.dnapool` format (api/pool_file.hh).
     *
     * @throws std::logic_error before store().
     */
    std::vector<std::vector<Strand>> snapshotPool() const;

    /** Pool depth (reads per cluster); 0 before store(). */
    size_t poolCoverage() const;

    /** True once store() (or restore() with pools) ran. */
    bool hasPool() const { return pool_ != nullptr; }

    /**
     * Rebuild simulator state from a durable snapshot: re-encode
     * @p bundle (exactly prepare()) and adopt @p pools as the read
     * pools instead of regenerating them from the channel — the
     * restore half of the durable format. Pool-backed queries then
     * return byte-identical results to the simulator the snapshot
     * was taken from.
     *
     * @throws std::invalid_argument unless @p pools holds one cluster
     *         per encoded strand, each with at most @p max_coverage
     *         reads (fewer is fine: an aged pool restores ragged,
     *         exactly as it decayed).
     */
    void restore(const FileBundle &bundle,
                 const std::vector<std::vector<Strand>> &pools,
                 size_t max_coverage);

    /**
     * Run one Monte-Carlo trial: sample per-cluster read counts from
     * @p coverage, apply the profile's dropout, generate fresh reads
     * through the profile channel (ramp + PCR lineages included), and
     * decode. All randomness derives from @p trial_seed alone, so a
     * trial is reproducible independent of every other trial — the
     * property that lets the Scenario Lab fan trials out over the
     * thread pool with bit-identical aggregate results.
     *
     * @param cluster_params When non-null, reads are regrouped by the
     *        real clusterer (retrieveClustered semantics) instead of
     *        the perfect-clustering assumption.
     */
    TrialOutcome runTrial(const CoverageModel &coverage,
                          uint64_t trial_seed,
                          const ClusterParams *cluster_params
                          = nullptr) const;

    /**
     * Decode using the first @p coverage reads of every cluster.
     *
     * @param forced_erasures Columns to erase artificially (Fig. 13).
     */
    RetrievalResult retrieve(
        size_t coverage,
        const std::vector<size_t> &forced_erasures = {}) const;

    /**
     * Decode with Gamma-distributed per-cluster coverage of the given
     * mean (shape defaults to the tight-but-visible spread the paper
     * describes for real sequencing runs).
     */
    RetrievalResult retrieveGamma(double mean_coverage, double shape,
                                  uint64_t draw_seed) const;

    /**
     * Decode without the perfect-clustering assumption: the pool's
     * reads are flattened into one interleaved stream (round-robin
     * across molecules, the order a sequencer might emit them), run
     * through clusterReads with @p params, and the resulting clusters
     * are decoded. Exercises the paper's side-stepped clustering
     * stage end-to-end (section 2.1).
     */
    ClusteredRetrievalResult retrieveClustered(
        size_t coverage, const ClusterParams &params = {}) const;

    /**
     * Smallest coverage in [lo, hi] whose retrieval is exact, or
     * nullopt if none is. Pool prefixes make success monotone in
     * coverage up to consensus noise, so a linear scan is exact.
     */
    std::optional<size_t> minCoverageForExact(
        size_t lo, size_t hi,
        const std::vector<size_t> &forced_erasures = {}) const;

    // ------------------------------------------------- durability loop
    /**
     * Apply @p epochs of the profile's AgingProfile to the stored
     * pool: per epoch, reads are lost and surviving bases substitute
     * (channel/aging.hh). Epoch seeds mix the unit seed with a
     * monotone epoch counter, so age(1);age(1) decays identically to
     * age(2) and the aged pool is bit-identical at any thread count.
     *
     * @return Reads lost across the epochs.
     * @throws std::logic_error before store().
     */
    size_t age(size_t epochs);

    /** Epochs of decay applied to the stored pool so far. */
    size_t agedEpochs() const { return agedEpochs_; }

    /**
     * Measure the stored pool's health with one full-depth probe
     * decode: per-cluster live reads and consensus agreement, per-
     * codeword RS correction split and remaining margin. Read-only.
     *
     * @throws std::logic_error before store().
     */
    UnitHealth probeHealth() const;

    /**
     * Scrub the stored pool: probe-decode at full depth, select the
     * clusters @p policy calls low-margin, and — when every codeword
     * decoded, i.e. the recovered data is trustworthy — rewrite each
     * selected cluster with fresh full-depth reads of its repaired
     * strand (re-synthesis through the base channel). When any
     * codeword failed, every column embeds an untrusted symbol, so
     * nothing is rewritten and the report says unrepairable. Scrub
     * generations advance a seed counter, so repeated scrubs draw
     * fresh (but reproducible) synthesis noise.
     *
     * @throws std::logic_error before store(); the re-encoded repair
     *         is cross-checked against the stored unit and a mismatch
     *         throws (internal inconsistency).
     */
    PoolScrubReport scrub(const ScrubPolicy &policy);

    /**
     * One Monte-Carlo aging trial over a trial-local pool (the stored
     * pool is untouched): synthesize a fresh pool of @p coverage
     * reads per cluster, then per epoch age it one step, optionally
     * scrub it with @p policy, and decode — recording per-epoch
     * success. All randomness derives from @p trial_seed, so trials
     * fan out with bit-identical results (the Scenario Lab contract).
     *
     * @throws std::logic_error before prepare()/store().
     */
    AgingTrialOutcome runAgingTrial(size_t coverage,
                                    uint64_t trial_seed, size_t epochs,
                                    bool scrub_each_epoch,
                                    const ScrubPolicy &policy) const;

    /** The unit as written (for error accounting in benches). */
    const EncodedUnit &unit() const { return unit_; }

    /** The stored serialized stream (exactness reference). */
    const std::vector<uint8_t> &storedStream() const { return stored_; }

    /** The channel profile driving runTrial(). */
    const ChannelProfile &profile() const { return profileChannel_.profile(); }

  private:
    RetrievalResult decodeBatch(
        const ReadBatch &batch, size_t coverage_label,
        const std::vector<size_t> &forced_erasures) const;

    /**
     * The scrub engine, over any pool of this unit's clusters: the
     * member scrub() runs it on the stored pool, runAgingTrial on its
     * trial-local pools. Per-cluster rewrite seeds are pre-drawn
     * serially for ALL clusters from @p scrub_seed, so which clusters
     * the policy selects can never shift another cluster's noise.
     */
    PoolScrubReport scrubPool(ReadPool &pool, const ScrubPolicy &policy,
                              uint64_t scrub_seed) const;

    UnitHealth probePool(const ReadPool &pool) const;

    ClusteredRetrievalResult decodeClusteredBatch(
        const ReadBatch &batch, size_t coverage_label,
        const ClusterParams &params) const;

    StorageConfig cfg_;
    LayoutScheme scheme_;
    IdsChannel channel_;
    ProfileChannel profileChannel_;
    uint64_t seed_;
    UnitEncoder encoder_;
    UnitDecoder decoder_;
    EncodedUnit unit_;
    std::vector<uint8_t> stored_;
    std::unique_ptr<ReadPool> pool_;
    size_t agedEpochs_ = 0;      //!< Epochs applied to pool_.
    size_t scrubGeneration_ = 0; //!< Scrubs run against pool_.
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_SIMULATOR_HH

/**
 * @file
 * End-to-end storage simulator and experiment driver.
 *
 * Ties the pipeline to the channel exactly as the paper's methodology
 * does (section 6.1.2): encode once, generate a large pool of noisy
 * reads per molecule, then decode at progressively higher coverage by
 * taking pool prefixes. Also provides the minimum-coverage search
 * behind Figures 12 and 13.
 */

#ifndef DNASTORE_PIPELINE_SIMULATOR_HH
#define DNASTORE_PIPELINE_SIMULATOR_HH

#include <memory>
#include <optional>
#include <vector>

#include "channel/coverage.hh"
#include "channel/ids_channel.hh"
#include "channel/read_pool.hh"
#include "channel/stressors.hh"
#include "cluster/clusterer.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"
#include "pipeline/decoder.hh"
#include "pipeline/encoder.hh"

namespace dnastore {

/** One coverage point of a retrieval sweep. */
struct RetrievalResult
{
    size_t coverage = 0;
    DecodedUnit decoded;
    /** True when the recovered stream matches the stored bits exactly. */
    bool exactPayload = false;
};

/** Retrieval through the real clusterer instead of perfect grouping. */
struct ClusteredRetrievalResult
{
    RetrievalResult result;

    /** Clustering accuracy against the pool's true grouping. */
    ClusterQuality quality;

    /** Clusters the clusterer formed (true count: one per strand). */
    size_t clustersFound = 0;
};

/** One Monte-Carlo trial of a channel profile (Scenario Lab unit). */
struct TrialOutcome
{
    RetrievalResult result;

    /**
     * Fraction of the stored bytes recovered wrong (missing trailing
     * bytes count as wrong); 0.0 on exact recovery.
     */
    double byteErrorRate = 0.0;

    /** Reads generated across clusters (after dropout). */
    size_t readsGenerated = 0;

    /** Clusters erased by dropout (zero reads before decode). */
    size_t clustersDropped = 0;

    /** True when the trial decoded through the real clusterer. */
    bool clustered = false;

    /** Clustering accuracy (valid when clustered). */
    ClusterQuality quality;

    /** Clusters formed (valid when clustered). */
    size_t clustersFound = 0;
};

/** Simulates storage and retrieval of one encoding unit. */
class StorageSimulator
{
  public:
    /**
     * @param cfg    Unit geometry.
     * @param scheme Layout under test.
     * @param model  IDS channel error model.
     * @param seed   Seed for the read pools (vary per repetition).
     */
    StorageSimulator(const StorageConfig &cfg, LayoutScheme scheme,
                     const ErrorModel &model, uint64_t seed);

    /**
     * Simulator over a full channel profile (Scenario Lab path). The
     * pre-generated pools of store() still use only the profile's
     * base IDS model; the stressors (ramp, PCR lineages, dropout)
     * apply to the per-trial read generation of runTrial().
     */
    StorageSimulator(const StorageConfig &cfg, LayoutScheme scheme,
                     const ChannelProfile &profile, uint64_t seed);

    /**
     * Encode the bundle and pre-generate read pools.
     *
     * @param max_coverage Largest coverage any later query will use.
     */
    void store(const FileBundle &bundle, size_t max_coverage);

    /**
     * Encode the bundle without generating read pools — the Monte-
     * Carlo entry point: runTrial() draws fresh reads per trial, so
     * the pool-backed queries (retrieve*, minCoverageForExact) are
     * not available until store() is called.
     */
    void prepare(const FileBundle &bundle);

    /**
     * Export the pre-generated read pools as owning per-cluster read
     * vectors, cluster-major in pool order — the snapshot half of the
     * durable `.dnapool` format (api/pool_file.hh).
     *
     * @throws std::logic_error before store().
     */
    std::vector<std::vector<Strand>> snapshotPool() const;

    /** Pool depth (reads per cluster); 0 before store(). */
    size_t poolCoverage() const;

    /** True once store() (or restore() with pools) ran. */
    bool hasPool() const { return pool_ != nullptr; }

    /**
     * Rebuild simulator state from a durable snapshot: re-encode
     * @p bundle (exactly prepare()) and adopt @p pools as the read
     * pools instead of regenerating them from the channel — the
     * restore half of the durable format. Pool-backed queries then
     * return byte-identical results to the simulator the snapshot
     * was taken from.
     *
     * @throws std::invalid_argument unless every cluster of @p pools
     *         holds exactly @p max_coverage reads and there is one
     *         cluster per encoded strand.
     */
    void restore(const FileBundle &bundle,
                 const std::vector<std::vector<Strand>> &pools,
                 size_t max_coverage);

    /**
     * Run one Monte-Carlo trial: sample per-cluster read counts from
     * @p coverage, apply the profile's dropout, generate fresh reads
     * through the profile channel (ramp + PCR lineages included), and
     * decode. All randomness derives from @p trial_seed alone, so a
     * trial is reproducible independent of every other trial — the
     * property that lets the Scenario Lab fan trials out over the
     * thread pool with bit-identical aggregate results.
     *
     * @param cluster_params When non-null, reads are regrouped by the
     *        real clusterer (retrieveClustered semantics) instead of
     *        the perfect-clustering assumption.
     */
    TrialOutcome runTrial(const CoverageModel &coverage,
                          uint64_t trial_seed,
                          const ClusterParams *cluster_params
                          = nullptr) const;

    /**
     * Decode using the first @p coverage reads of every cluster.
     *
     * @param forced_erasures Columns to erase artificially (Fig. 13).
     */
    RetrievalResult retrieve(
        size_t coverage,
        const std::vector<size_t> &forced_erasures = {}) const;

    /**
     * Decode with Gamma-distributed per-cluster coverage of the given
     * mean (shape defaults to the tight-but-visible spread the paper
     * describes for real sequencing runs).
     */
    RetrievalResult retrieveGamma(double mean_coverage, double shape,
                                  uint64_t draw_seed) const;

    /**
     * Decode without the perfect-clustering assumption: the pool's
     * reads are flattened into one interleaved stream (round-robin
     * across molecules, the order a sequencer might emit them), run
     * through clusterReads with @p params, and the resulting clusters
     * are decoded. Exercises the paper's side-stepped clustering
     * stage end-to-end (section 2.1).
     */
    ClusteredRetrievalResult retrieveClustered(
        size_t coverage, const ClusterParams &params = {}) const;

    /**
     * Smallest coverage in [lo, hi] whose retrieval is exact, or
     * nullopt if none is. Pool prefixes make success monotone in
     * coverage up to consensus noise, so a linear scan is exact.
     */
    std::optional<size_t> minCoverageForExact(
        size_t lo, size_t hi,
        const std::vector<size_t> &forced_erasures = {}) const;

    /** The unit as written (for error accounting in benches). */
    const EncodedUnit &unit() const { return unit_; }

    /** The stored serialized stream (exactness reference). */
    const std::vector<uint8_t> &storedStream() const { return stored_; }

    /** The channel profile driving runTrial(). */
    const ChannelProfile &profile() const { return profileChannel_.profile(); }

  private:
    RetrievalResult decodeBatch(
        const ReadBatch &batch, size_t coverage_label,
        const std::vector<size_t> &forced_erasures) const;

    ClusteredRetrievalResult decodeClusteredBatch(
        const ReadBatch &batch, size_t coverage_label,
        const ClusterParams &params) const;

    StorageConfig cfg_;
    LayoutScheme scheme_;
    IdsChannel channel_;
    ProfileChannel profileChannel_;
    uint64_t seed_;
    UnitEncoder encoder_;
    UnitDecoder decoder_;
    EncodedUnit unit_;
    std::vector<uint8_t> stored_;
    std::unique_ptr<ReadPool> pool_;
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_SIMULATOR_HH

/**
 * @file
 * File bundles: multiple named files stored in one encoding unit.
 *
 * The paper stores 10 images of different sizes plus a directory file
 * in a single encoding matrix (section 6.1). This module provides the
 * bundle container, the directory serialization, optional per-file
 * stream encryption, and the two bit orderings:
 *
 *  - storage order (baseline/Gini): directory then files back to back;
 *  - priority order (DnaMapper): the directory first (it gets the
 *    highest priority, as in the paper), then the files' bits merged
 *    by a proportional round-robin so every file owns a share of each
 *    reliability class proportional to its size — the fairness
 *    heuristic of section 6.1.1.
 */

#ifndef DNASTORE_PIPELINE_BUNDLE_HH
#define DNASTORE_PIPELINE_BUNDLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dnastore {

/** One named file. */
struct NamedFile
{
    std::string name;
    std::vector<uint8_t> data;
};

/** A set of files that share one encoding unit. */
class FileBundle
{
  public:
    FileBundle() = default;

    /**
     * Why @p name is not a legal file name, or nullptr when it is:
     * non-empty, at most 255 bytes, NUL-free, and a single plain path
     * component (no '/', '\\', '.' or '..' — names become relative
     * output paths on unpack, and they are parsed from untrusted
     * bytes, so anything that could escape the output directory is
     * rejected by the format itself). Shared by the throwing add()
     * and the public API's Status-returning Store::put, so both
     * reject a bad name with the same wording.
     */
    static const char *checkName(const std::string &name);

    /** Largest file the directory's u32 size field can record. */
    static constexpr size_t kMaxObjectBytes = 0xFFFFFFFFull;

    /** Most files the directory's u16 count field can record. */
    static constexpr size_t kMaxFiles = 0xFFFF;

    /**
     * Why adding a @p data_size-byte file to a bundle already holding
     * @p file_count files would overflow the directory's fixed-width
     * fields, or nullptr when it fits. The directory stores sizes in
     * u32 and the count in u16; without this guard serialization
     * would silently truncate both, wedging a bundle that can never
     * round-trip. Shared by the throwing add() and Store::put.
     */
    static const char *checkAdd(size_t file_count, size_t data_size);

    /**
     * Add a file. Names must pass checkName() and be unique;
     * checkAdd() must also hold. Throws std::invalid_argument.
     */
    void add(const std::string &name, std::vector<uint8_t> data);

    size_t fileCount() const { return files_.size(); }
    const NamedFile &file(size_t i) const { return files_[i]; }
    const std::vector<NamedFile> &files() const { return files_; }

    /** Look up a file by name; nullptr if absent. */
    const NamedFile *find(const std::string &name) const;

    /** Total payload bytes across files (directory excluded). */
    size_t totalBytes() const;

    /**
     * Serialized size in bits, directory included: what one encoding
     * unit must be able to hold.
     */
    size_t serializedBits() const;

    /**
     * XOR every file's contents with a ChaCha20 keystream derived from
     * @p key_seed and the file's index. Applying twice restores the
     * plaintext; bit positions are preserved (stream cipher), which is
     * what lets DnaMapper store ciphertext approximately.
     */
    FileBundle encrypted(uint64_t key_seed) const;

    /**
     * Serialize to the storage-order bit stream:
     * [u32 directory length][directory][file 0][file 1]...
     * The directory lists (name, size) for every file.
     */
    std::vector<uint8_t> serialize() const;

    /**
     * Serialize to the priority-order bit stream: directory prefix as
     * in serialize(), then file bits merged proportionally by size.
     */
    std::vector<uint8_t> serializePriority() const;

    /**
     * Parse a storage-order stream. Returns an empty bundle with
     * ok=false on malformed input (corrupt directory).
     */
    static FileBundle deserialize(const std::vector<uint8_t> &bytes,
                                  bool *ok);

    /** Parse a priority-order stream. */
    static FileBundle deserializePriority(
        const std::vector<uint8_t> &bytes, bool *ok);

    /**
     * The proportional merge order used by serializePriority():
     * entry k identifies (file index) owning the k-th merged bit of
     * the file region. Exposed for tests.
     */
    static std::vector<uint32_t> proportionalOrder(
        const std::vector<size_t> &bit_sizes);

  private:
    std::vector<uint8_t> directoryBytes() const;
    static bool parseDirectory(const std::vector<uint8_t> &bytes,
                               size_t *dir_end,
                               std::vector<std::string> *names,
                               std::vector<size_t> *sizes);

    std::vector<NamedFile> files_;
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_BUNDLE_HH

#include "pipeline/config.hh"

#include <stdexcept>

namespace dnastore {

const char *
layoutSchemeName(LayoutScheme scheme)
{
    switch (scheme) {
      case LayoutScheme::Baseline:
        return "baseline";
      case LayoutScheme::Gini:
        return "gini";
      case LayoutScheme::DnaMapper:
        return "dnamapper";
    }
    return "unknown";
}

void
StorageConfig::validate() const
{
    if (symbolBits < 2 || symbolBits > 16)
        throw std::invalid_argument("StorageConfig: symbolBits in [2,16]");
    if (rows == 0)
        throw std::invalid_argument("StorageConfig: rows must be > 0");
    if (paritySymbols == 0 || paritySymbols >= codewordLen())
        throw std::invalid_argument("StorageConfig: bad parity count");
    if (primerLen == 0)
        throw std::invalid_argument("StorageConfig: primerLen must be > 0");
}

StorageConfig
StorageConfig::paperScale()
{
    StorageConfig cfg;
    cfg.symbolBits = 16;
    cfg.rows = 82;            // 82 symbols * 8 bases = 656 data bases
    cfg.paritySymbols = 12058; // 18.4% of 65535
    cfg.primerLen = 20;
    return cfg;
}

StorageConfig
StorageConfig::benchScale()
{
    StorageConfig cfg;
    cfg.symbolBits = 10;
    cfg.rows = 82;
    cfg.paritySymbols = 188; // 18.38% of 1023
    cfg.primerLen = 20;
    return cfg;
}

StorageConfig
StorageConfig::tinyTest()
{
    StorageConfig cfg;
    cfg.symbolBits = 8;
    cfg.rows = 12;
    cfg.paritySymbols = 47; // ~18.4% of 255
    cfg.primerLen = 10;
    return cfg;
}

} // namespace dnastore

#include "pipeline/config.hh"

#include <stdexcept>
#include <string>

namespace dnastore {

const char *
layoutSchemeName(LayoutScheme scheme)
{
    switch (scheme) {
      case LayoutScheme::Baseline:
        return "baseline";
      case LayoutScheme::Gini:
        return "gini";
      case LayoutScheme::DnaMapper:
        return "dnamapper";
    }
    return "unknown";
}

LayoutScheme
layoutSchemeFromName(const char *name, bool *ok)
{
    *ok = true;
    const std::string s(name);
    if (s == "baseline")
        return LayoutScheme::Baseline;
    if (s == "gini")
        return LayoutScheme::Gini;
    if (s == "dnamapper")
        return LayoutScheme::DnaMapper;
    *ok = false;
    return LayoutScheme::Gini;
}

const char *
StorageConfig::check() const
{
    if (symbolBits < 2 || symbolBits > 16)
        return "symbolBits must be in [2, 16]";
    if (rows == 0)
        return "rows must be > 0";
    if (paritySymbols == 0 || paritySymbols >= codewordLen())
        return "paritySymbols must be in [1, codeword length - 1]";
    if (primerLen == 0)
        return "primerLen must be > 0";
    return nullptr;
}

void
StorageConfig::validate() const
{
    if (const char *err = check())
        throw std::invalid_argument(std::string("StorageConfig: ") + err);
}

StorageConfig
StorageConfig::paperScale()
{
    StorageConfig cfg;
    cfg.symbolBits = 16;
    cfg.rows = 82;            // 82 symbols * 8 bases = 656 data bases
    cfg.paritySymbols = 12058; // 18.4% of 65535
    cfg.primerLen = 20;
    return cfg;
}

StorageConfig
StorageConfig::benchScale()
{
    StorageConfig cfg;
    cfg.symbolBits = 10;
    cfg.rows = 82;
    cfg.paritySymbols = 188; // 18.38% of 1023
    cfg.primerLen = 20;
    return cfg;
}

StorageConfig
StorageConfig::tinyTest()
{
    StorageConfig cfg;
    cfg.symbolBits = 8;
    cfg.rows = 12;
    cfg.paritySymbols = 47; // ~18.4% of 255
    cfg.primerLen = 10;
    return cfg;
}

} // namespace dnastore

/**
 * @file
 * Storage architecture configuration (the paper's section 6.1.1).
 *
 * A configuration fixes the Reed-Solomon field, the matrix geometry,
 * and the strand framing. Three presets are provided:
 *
 *  - paperScale(): the exact geometry of the paper — GF(2^16), 65535
 *    symbols per codeword, 82 rows, 18.4% redundancy, 750-base strands
 *    (40 primer bases + 8 index bases + 656 data bases + padding).
 *    Encoding/decoding one unit at this scale costs minutes; used by
 *    tests that validate the geometry, not by the sweep benches.
 *  - benchScale(): the proportionally scaled default used by the
 *    benchmarks — GF(2^10), 1023 symbols per codeword, 82 rows, the
 *    same 18.4% redundancy (E = 188), 455-base strands.
 *  - tinyTest(): a small geometry for unit tests.
 */

#ifndef DNASTORE_PIPELINE_CONFIG_HH
#define DNASTORE_PIPELINE_CONFIG_HH

#include <cstddef>
#include <cstdint>

namespace dnastore {

/** Codeword layout schemes evaluated in the paper. */
enum class LayoutScheme
{
    Baseline,  //!< Row codewords, column-major data (Figure 1).
    Gini,      //!< Diagonally interleaved codewords (section 4.2).
    DnaMapper, //!< Row codewords, priority-mapped data (section 5).
};

/** Human-readable scheme name (for bench output). */
const char *layoutSchemeName(LayoutScheme scheme);

/**
 * Inverse of layoutSchemeName(): parse "baseline"/"gini"/"dnamapper".
 * Sets *ok to false (and returns Gini) on an unknown name. The one
 * mapping shared by the CLI's --scheme flag and the API's unit-header
 * parser, so encode and decode can never drift.
 */
LayoutScheme layoutSchemeFromName(const char *name, bool *ok);

/** Geometry and framing of one encoding unit. */
struct StorageConfig
{
    unsigned symbolBits = 10; //!< GF(2^m) degree; 16 in the paper.
    size_t rows = 82;         //!< Symbols per molecule (matrix rows S).
    size_t paritySymbols = 188; //!< E parity symbols per codeword.
    size_t primerLen = 20;    //!< Bases per primer, one at each end.
    uint64_t primerKey = 1;   //!< Key id the primer pair derives from.

    /**
     * Worker threads for the per-cluster/per-codeword hot loops of
     * the simulator and decoder: 1 = serial (default), 0 = all
     * hardware threads. Results are bit-identical for every value
     * (per-cluster RNG streams, deterministic merges).
     */
    size_t numThreads = 1;

    /**
     * Store read pools 2-bit packed (quarter the memory) instead of
     * one byte per base. Retrieval unpacks per query, so this trades
     * decode time for the footprint needed by production-scale read
     * sets. Results are bit-identical either way.
     */
    bool packedReadPools = false;

    /** Codeword length n = 2^m - 1 (= molecules per unit, M + E). */
    size_t codewordLen() const { return (size_t(1) << symbolBits) - 1; }

    /** Data molecules per unit, M = n - E. */
    size_t dataCols() const { return codewordLen() - paritySymbols; }

    /** Ordering-index width in bits (even, >= log2(M + E)). */
    size_t
    indexBits() const
    {
        return (size_t(symbolBits) + 1) & ~size_t(1);
    }

    /** Index field length in bases. */
    size_t indexBases() const { return indexBits() / 2; }

    /** Payload bases per strand (rows * symbolBits / 2, rounded up). */
    size_t
    payloadBases() const
    {
        return (rows * symbolBits + 1) / 2;
    }

    /** Total synthesized strand length, primers included. */
    size_t
    strandLen() const
    {
        return 2 * primerLen + indexBases() + payloadBases();
    }

    /** Data capacity of one unit, in bits. */
    size_t capacityBits() const { return rows * dataCols() * symbolBits; }

    /** Data capacity of one unit, in whole bytes. */
    size_t capacityBytes() const { return capacityBits() / 8; }

    /** Redundancy fraction E / n. */
    double
    redundancyFraction() const
    {
        return double(paritySymbols) / double(codewordLen());
    }

    /**
     * First broken constraint, or nullptr when the geometry is valid.
     * The single source of truth behind validate() and the public
     * API's StoreOptions builder, so both reject a bad geometry with
     * the same wording.
     */
    const char *check() const;

    /** Validate the configuration; throws std::invalid_argument. */
    void validate() const;

    /** The paper's exact geometry (see file comment). */
    static StorageConfig paperScale();

    /** The scaled default for benchmark sweeps. */
    static StorageConfig benchScale();

    /** A small geometry for fast unit tests. */
    static StorageConfig tinyTest();
};

} // namespace dnastore

#endif // DNASTORE_PIPELINE_CONFIG_HH

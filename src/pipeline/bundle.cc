#include "pipeline/bundle.hh"

#include <queue>
#include <stdexcept>

#include "crypto/chacha20.hh"
#include "util/bitio.hh"

namespace dnastore {

const char *
FileBundle::checkName(const std::string &name)
{
    if (name.empty())
        return "file name must not be empty";
    if (name.size() > 255)
        return "file name must be at most 255 bytes";
    // Names surface as relative paths when a store is unpacked, and
    // they arrive from untrusted bytes (pool files, unit artifacts).
    // A name that is not a single plain path component ("../x",
    // "a/b", "C:\\x") would let a crafted file write outside the
    // unpack directory, so the format itself forbids it.
    if (name.find('/') != std::string::npos ||
        name.find('\\') != std::string::npos)
        return "file name must not contain path separators";
    if (name == "." || name == "..")
        return "file name must not be a '.' or '..' path component";
    if (name.find('\0') != std::string::npos)
        return "file name must not contain NUL bytes";
    return nullptr;
}

const char *
FileBundle::checkAdd(size_t file_count, size_t data_size)
{
    if (data_size > kMaxObjectBytes)
        return "file exceeds the directory's 4 GiB size field";
    if (file_count >= kMaxFiles)
        return "bundle already holds the directory's maximum of "
               "65535 files";
    return nullptr;
}

void
FileBundle::add(const std::string &name, std::vector<uint8_t> data)
{
    if (const char *err = checkName(name))
        throw std::invalid_argument(std::string("FileBundle: ") + err);
    if (find(name))
        throw std::invalid_argument("FileBundle: duplicate name " + name);
    if (const char *err = checkAdd(files_.size(), data.size()))
        throw std::invalid_argument(std::string("FileBundle: ") + err);
    files_.push_back({ name, std::move(data) });
}

const NamedFile *
FileBundle::find(const std::string &name) const
{
    for (const auto &f : files_)
        if (f.name == name)
            return &f;
    return nullptr;
}

size_t
FileBundle::totalBytes() const
{
    size_t total = 0;
    for (const auto &f : files_)
        total += f.data.size();
    return total;
}

std::vector<uint8_t>
FileBundle::directoryBytes() const
{
    // Directory format: u16 count, then per file
    // (u8 name length, name bytes, u32 size).
    std::vector<uint8_t> out;
    out.push_back(uint8_t(files_.size() >> 8));
    out.push_back(uint8_t(files_.size()));
    for (const auto &f : files_) {
        out.push_back(uint8_t(f.name.size()));
        out.insert(out.end(), f.name.begin(), f.name.end());
        uint32_t size = uint32_t(f.data.size());
        for (int shift = 24; shift >= 0; shift -= 8)
            out.push_back(uint8_t(size >> shift));
    }
    return out;
}

size_t
FileBundle::serializedBits() const
{
    return (4 + directoryBytes().size() + totalBytes()) * 8;
}

FileBundle
FileBundle::encrypted(uint64_t key_seed) const
{
    FileBundle out;
    for (size_t i = 0; i < files_.size(); ++i) {
        ChaCha20 cipher(ChaCha20::deriveKey(key_seed),
                        ChaCha20::deriveNonce(i));
        out.add(files_[i].name, cipher.applied(files_[i].data));
    }
    return out;
}

std::vector<uint8_t>
FileBundle::serialize() const
{
    std::vector<uint8_t> dir = directoryBytes();
    std::vector<uint8_t> out;
    out.reserve(4 + dir.size() + totalBytes());
    uint32_t dir_len = uint32_t(dir.size());
    for (int shift = 24; shift >= 0; shift -= 8)
        out.push_back(uint8_t(dir_len >> shift));
    out.insert(out.end(), dir.begin(), dir.end());
    for (const auto &f : files_)
        out.insert(out.end(), f.data.begin(), f.data.end());
    return out;
}

std::vector<uint32_t>
FileBundle::proportionalOrder(const std::vector<size_t> &bit_sizes)
{
    // Deterministic proportional round-robin: at every step give the
    // next bit to the file with the smallest (emitted + 1/2) / size
    // fraction (compared exactly with cross-multiplication; ties to
    // the lowest index). Every prefix of the merged stream then
    // contains each file in proportion to its size. A min-heap keeps
    // the merge O(total * log files).
    struct Entry
    {
        uint64_t numerator; // 2 * emitted + 1
        uint64_t size;
        uint32_t file;
    };
    auto later = [](const Entry &a, const Entry &b) {
        // __extension__: 128-bit cross-multiplication is exact for
        // any u64 operands; -Wpedantic objects to the GNU type only.
        __extension__ typedef unsigned __int128 u128;
        const u128 lhs = u128(a.numerator) * b.size;
        const u128 rhs = u128(b.numerator) * a.size;
        if (lhs != rhs)
            return lhs > rhs;
        return a.file > b.file;
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)>
        heap(later);
    size_t total = 0;
    for (size_t i = 0; i < bit_sizes.size(); ++i) {
        total += bit_sizes[i];
        if (bit_sizes[i] > 0)
            heap.push({ 1, bit_sizes[i], uint32_t(i) });
    }
    std::vector<uint32_t> order;
    order.reserve(total);
    std::vector<size_t> emitted(bit_sizes.size(), 0);
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();
        order.push_back(e.file);
        size_t done = ++emitted[e.file];
        if (done < bit_sizes[e.file])
            heap.push({ 2 * done + 1, e.size, e.file });
    }
    return order;
}

std::vector<uint8_t>
FileBundle::serializePriority() const
{
    std::vector<uint8_t> dir = directoryBytes();
    BitWriter w;
    uint32_t dir_len = uint32_t(dir.size());
    w.writeBits(dir_len, 32);
    for (uint8_t b : dir)
        w.writeBits(b, 8);

    std::vector<size_t> bit_sizes;
    bit_sizes.reserve(files_.size());
    for (const auto &f : files_)
        bit_sizes.push_back(f.data.size() * 8);
    auto order = proportionalOrder(bit_sizes);

    std::vector<size_t> cursor(files_.size(), 0);
    for (uint32_t file : order) {
        size_t bit = cursor[file]++;
        w.writeBit(getBit(files_[file].data, bit) != 0);
    }
    return w.take();
}

bool
FileBundle::parseDirectory(const std::vector<uint8_t> &bytes,
                           size_t *dir_end,
                           std::vector<std::string> *names,
                           std::vector<size_t> *sizes)
{
    if (bytes.size() < 4)
        return false;
    size_t dir_len = (size_t(bytes[0]) << 24) | (size_t(bytes[1]) << 16) |
        (size_t(bytes[2]) << 8) | size_t(bytes[3]);
    if (4 + dir_len > bytes.size())
        return false;
    size_t pos = 4;
    const size_t end = 4 + dir_len;
    if (pos + 2 > end)
        return false;
    size_t count = (size_t(bytes[pos]) << 8) | size_t(bytes[pos + 1]);
    pos += 2;
    for (size_t i = 0; i < count; ++i) {
        if (pos + 1 > end)
            return false;
        size_t name_len = bytes[pos++];
        if (name_len == 0 || pos + name_len + 4 > end)
            return false;
        names->emplace_back(bytes.begin() + long(pos),
                            bytes.begin() + long(pos + name_len));
        pos += name_len;
        size_t size = 0;
        for (int k = 0; k < 4; ++k)
            size = (size << 8) | bytes[pos++];
        sizes->push_back(size);
    }
    if (pos != end)
        return false;
    *dir_end = end;
    return true;
}

FileBundle
FileBundle::deserialize(const std::vector<uint8_t> &bytes, bool *ok)
{
    *ok = false;
    FileBundle out;
    size_t dir_end = 0;
    std::vector<std::string> names;
    std::vector<size_t> sizes;
    if (!parseDirectory(bytes, &dir_end, &names, &sizes))
        return out;
    size_t pos = dir_end;
    for (size_t i = 0; i < names.size(); ++i) {
        if (pos + sizes[i] > bytes.size())
            return FileBundle{};
        std::vector<uint8_t> data(bytes.begin() + long(pos),
                                  bytes.begin() + long(pos + sizes[i]));
        pos += sizes[i];
        try {
            out.add(names[i], std::move(data));
        } catch (const std::invalid_argument &) {
            return FileBundle{}; // duplicate/corrupt names
        }
    }
    *ok = true;
    return out;
}

FileBundle
FileBundle::deserializePriority(const std::vector<uint8_t> &bytes,
                                bool *ok)
{
    *ok = false;
    FileBundle out;
    size_t dir_end = 0;
    std::vector<std::string> names;
    std::vector<size_t> sizes;
    if (!parseDirectory(bytes, &dir_end, &names, &sizes))
        return out;

    std::vector<size_t> bit_sizes;
    size_t total_bits = 0;
    for (size_t s : sizes) {
        bit_sizes.push_back(s * 8);
        total_bits += s * 8;
    }
    if (dir_end * 8 + total_bits > bytes.size() * 8)
        return out;

    auto order = proportionalOrder(bit_sizes);
    std::vector<std::vector<uint8_t>> data(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        data[i].assign(sizes[i], 0);
    std::vector<size_t> cursor(names.size(), 0);
    BitReader r(bytes);
    r.readBits(32);
    for (size_t i = 0; i < dir_end - 4; ++i)
        r.readBits(8);
    for (uint32_t file : order) {
        int bit = r.readBit();
        setBit(data[file], cursor[file]++, bit);
    }
    for (size_t i = 0; i < names.size(); ++i) {
        try {
            out.add(names[i], std::move(data[i]));
        } catch (const std::invalid_argument &) {
            return FileBundle{};
        }
    }
    *ok = true;
    return out;
}

} // namespace dnastore

/**
 * @file
 * Image workloads and retrieval-quality evaluation.
 *
 * Builds the paper's workload — a set of compressed (and optionally
 * encrypted) images of mixed sizes plus a directory — and measures
 * the PSNR quality loss of the retrieved images, the metric of
 * Figures 14 and 16.
 */

#ifndef DNASTORE_PIPELINE_QUALITY_HH
#define DNASTORE_PIPELINE_QUALITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "media/image.hh"
#include "pipeline/bundle.hh"

namespace dnastore {

/** An image workload: SJPG files plus the pristine source images. */
struct ImageWorkload
{
    FileBundle bundle;            //!< What gets stored (plaintext).
    std::vector<Image> sources;   //!< Pristine images, bundle order.
    std::vector<Image> cleanDecodes; //!< Clean SJPG decodes (reference).
    std::vector<std::string> names;  //!< File names, bundle order.
};

/**
 * Build a deterministic workload of synthetic photos.
 *
 * @param image_dims  (width, height) per image; sizes may differ, as
 *                    in the paper's 5KB..1.5MB mix.
 * @param quality     SJPG quality for all images.
 * @param seed        Scene generator seed.
 */
ImageWorkload makeImageWorkload(
    const std::vector<std::pair<size_t, size_t>> &image_dims,
    int quality, uint64_t seed);

/**
 * A workload whose total stored size fits a given bit budget: images
 * of decreasing size are added until the budget is filled.
 */
ImageWorkload makeImageWorkloadForCapacity(size_t capacity_bits,
                                           int quality, uint64_t seed);

/** Quality of one retrieved bundle against its workload. */
struct QualityReport
{
    /** Per-image quality loss (dB, capped), workload order. */
    std::vector<double> lossDb;

    /** Mean loss across images. */
    double meanLossDb = 0.0;

    /** Worst per-image loss. */
    double maxLossDb = 0.0;

    /** Images that could not be decoded at all (counted at full cap). */
    size_t undecodable = 0;

    /** True if every image came back bit-exact. */
    bool allExact = false;
};

/**
 * Score a retrieved (decrypted, plaintext) bundle against the
 * workload. Missing or undecodable files score the full capped loss.
 *
 * @param cap_db PSNR cap; loss = cap - min(psnr, cap).
 */
QualityReport evaluateImageQuality(const ImageWorkload &workload,
                                   const FileBundle &retrieved,
                                   double cap_db = 60.0);

} // namespace dnastore

#endif // DNASTORE_PIPELINE_QUALITY_HH

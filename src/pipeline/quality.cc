#include "pipeline/quality.hh"

#include <algorithm>

#include "media/sjpeg.hh"
#include "media/synth.hh"

namespace dnastore {

ImageWorkload
makeImageWorkload(
    const std::vector<std::pair<size_t, size_t>> &image_dims,
    int quality, uint64_t seed)
{
    ImageWorkload w;
    for (size_t i = 0; i < image_dims.size(); ++i) {
        auto [width, height] = image_dims[i];
        Image img = generateSyntheticPhoto(width, height,
                                           seed * 1000 + i);
        auto file = sjpegEncode(img, quality);
        std::string name = "img" + std::to_string(i) + ".sjpg";
        w.sources.push_back(img);
        w.cleanDecodes.push_back(sjpegDecode(file).image);
        w.names.push_back(name);
        w.bundle.add(name, std::move(file));
    }
    return w;
}

ImageWorkload
makeImageWorkloadForCapacity(size_t capacity_bits, int quality,
                             uint64_t seed)
{
    // Candidate shapes from large to small, echoing the paper's mix of
    // image sizes within one unit; cycled until the budget is full.
    const std::vector<std::pair<size_t, size_t>> shapes = {
        { 512, 384 }, { 384, 256 }, { 256, 192 }, { 192, 160 },
        { 160, 128 }, { 128, 96 },  { 96, 96 },   { 96, 64 },
        { 64, 64 },   { 48, 48 },   { 32, 32 },
    };
    std::vector<std::pair<size_t, size_t>> chosen;
    size_t used_bits = 512 * 8; // directory slack
    size_t shape_idx = 0;
    size_t misses = 0;
    while (misses < shapes.size() && chosen.size() < 64) {
        auto shape = shapes[shape_idx % shapes.size()];
        Image img = generateSyntheticPhoto(shape.first, shape.second,
                                           seed * 1000 + chosen.size());
        size_t bits = sjpegEncode(img, quality).size() * 8 + 16 * 8;
        if (used_bits + bits <= capacity_bits) {
            used_bits += bits;
            chosen.push_back(shape);
            misses = 0;
        } else {
            ++misses;
        }
        ++shape_idx;
    }
    if (chosen.empty())
        chosen.push_back({ 16, 16 });
    return makeImageWorkload(chosen, quality, seed);
}

QualityReport
evaluateImageQuality(const ImageWorkload &workload,
                     const FileBundle &retrieved, double cap_db)
{
    QualityReport report;
    report.allExact = true;
    for (size_t i = 0; i < workload.names.size(); ++i) {
        const Image &reference = workload.cleanDecodes[i];
        const NamedFile *file = retrieved.find(workload.names[i]);
        double loss = cap_db;
        bool decodable = false;
        if (file) {
            const NamedFile *stored =
                workload.bundle.find(workload.names[i]);
            bool exact = stored && stored->data == file->data;
            if (!exact)
                report.allExact = false;
            SjpegDecodeResult decoded = sjpegDecode(file->data);
            decodable = decoded.headerOk &&
                decoded.image.width() == reference.width() &&
                decoded.image.height() == reference.height();
            Image comparable = decodable
                ? decoded.image
                : Image(reference.width(), reference.height(), 128);
            loss = qualityLossDb(reference, comparable, cap_db);
        } else {
            report.allExact = false;
        }
        if (!decodable)
            ++report.undecodable;
        report.lossDb.push_back(loss);
        report.maxLossDb = std::max(report.maxLossDb, loss);
        report.meanLossDb += loss;
    }
    if (!report.lossDb.empty())
        report.meanLossDb /= double(report.lossDb.size());
    return report;
}

} // namespace dnastore

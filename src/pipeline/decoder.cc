#include "pipeline/decoder.hh"

#include <algorithm>

#include "consensus/two_sided.hh"
#include "dna/codec.hh"
#include "layout/data_map.hh"
#include "pipeline/encoder.hh"
#include "util/bitio.hh"
#include "util/parallel.hh"

namespace dnastore {

size_t
DecodeStats::totalCorrected() const
{
    size_t total = 0;
    for (size_t e : errorsPerCodeword)
        total += e;
    return total;
}

UnitDecoder::UnitDecoder(const StorageConfig &cfg, LayoutScheme scheme,
                         Reconstructor reconstruct)
    : cfg_(cfg), scheme_(scheme), gf_(cfg.symbolBits),
      rs_(gf_, cfg.paritySymbols), map_(makeCodewordMap(cfg, scheme)),
      primers_(makePrimerPair(cfg.primerKey, cfg.primerLen)),
      reconstruct_(std::move(reconstruct))
{
    cfg_.validate();
    if (!reconstruct_) {
        // The default two-sided reconstruction runs through the
        // view-based scratch fast path in decode(); the std::function
        // fallback only serves substituted reconstructors.
        defaultReconstruct_ = true;
        reconstruct_ = [](const std::vector<Strand> &reads,
                          size_t target_len) {
            return reconstructTwoSided(reads, target_len);
        };
    }
}

DecodedUnit
UnitDecoder::decode(const std::vector<std::vector<Strand>> &clusters,
                    const std::vector<size_t> &forced_erasures) const
{
    // Adapt to the view-batch hot path without copying a single base:
    // views alias the caller's strands.
    ReadBatch batch;
    batch.offsets.reserve(clusters.size() + 1);
    size_t total = 0;
    for (const auto &cluster : clusters)
        total += cluster.size();
    batch.views.reserve(total);
    batch.offsets.push_back(0);
    for (const auto &cluster : clusters) {
        for (const Strand &read : cluster)
            batch.views.push_back(read);
        batch.offsets.push_back(batch.views.size());
    }
    return decode(batch, forced_erasures);
}

DecodedUnit
UnitDecoder::decode(const ReadBatch &batch,
                    const std::vector<size_t> &forced_erasures,
                    DecodeProbe *probe) const
{
    const size_t n_cols = cfg_.codewordLen();
    const size_t strand_len = cfg_.strandLen();

    DecodedUnit out;
    out.stats.errorsPerCodeword.assign(map_->codewords(), 0);
    out.stats.rsErrors.assign(map_->codewords(), 0);
    out.stats.rsErasures.assign(map_->codewords(), 0);
    if (probe != nullptr) {
        probe->clusters.clear();
        probe->clusters.resize(
            std::min(batch.clusters(), size_t(n_cols)));
    }

    std::vector<bool> forced(n_cols, false);
    for (size_t col : forced_erasures)
        if (col < n_cols)
            forced[col] = true;

    // Consensus per cluster, index parse, column placement. Ordering
    // information is outside ECC protection (section 2.2), so a
    // misdecoded index loses the molecule: the strand is dropped and
    // the unclaimed column becomes an erasure.
    //
    // Consensus dominates decode time and every cluster is
    // independent, so this stage is dispatched to the shared
    // work-stealing pool as stealable per-cluster batches (a slow
    // cluster no longer idles the other workers); the claim/fault
    // bookkeeping below merges the per-cluster outcomes serially in
    // cluster order, which keeps the result bit-identical to a serial
    // pass (first claim of a column wins either way).
    // All per-cluster working memory is thread-local scratch, so the
    // steady-state loop does no heap allocation per read.
    struct ClusterOutcome
    {
        enum Kind { Empty, Fault, Usable } kind = Empty;
        uint64_t idx = 0;
        std::vector<uint32_t> symbols;
    };
    const size_t n_clusters = std::min(batch.clusters(), size_t(n_cols));
    std::vector<ClusterOutcome> outcomes(n_clusters);
    parallelFor(n_clusters, cfg_.numThreads, [&](size_t cl) {
        const StrandView *reads = batch.cluster(cl);
        const size_t n_reads = batch.clusterSize(cl);
        ClusterOutcome &o = outcomes[cl];
        if (n_reads == 0)
            return;

        static thread_local TwoSidedScratch ts_scratch;
        static thread_local Strand consensus;
        static thread_local std::vector<Strand> compat_reads;
        if (defaultReconstruct_) {
            reconstructTwoSidedInto(reads, n_reads, strand_len,
                                    ts_scratch, consensus);
        } else {
            // Substituted reconstructors keep the historical
            // vector-of-strands interface; materialize copies.
            compat_reads.resize(n_reads);
            for (size_t r = 0; r < n_reads; ++r)
                compat_reads[r].assign(reads[r].begin(), reads[r].end());
            consensus = reconstruct_(compat_reads, strand_len);
        }
        if (probe != nullptr) {
            // Telemetry only: per-read agreement with the consensus.
            // Slot-per-cluster writes, so thread count cannot leak
            // into the probe.
            ClusterProbe &p = probe->clusters[cl];
            p.reads = n_reads;
            double total = 0.0;
            for (size_t r = 0; r < n_reads; ++r) {
                const size_t len =
                    std::max(reads[r].size(), consensus.size());
                const size_t dist = editDistanceRange(
                    reads[r].data(), reads[r].size(),
                    consensus.data(), consensus.size());
                total += len == 0
                    ? 1.0
                    : 1.0 - double(dist) / double(len);
            }
            p.agreement = n_reads == 0 ? 0.0 : total / double(n_reads);
        }
        if (consensus.size() != strand_len) {
            // A substituted reconstructor may miss the length; treat
            // the cluster as unusable (erasure).
            o.kind = ClusterOutcome::Fault;
            return;
        }
        // Frame: [forward primer | index | payload | backward primer].
        size_t idx_off = cfg_.primerLen;
        uint64_t idx = decodeUint(consensus, idx_off,
                                  int(cfg_.indexBits()));
        if (idx >= n_cols) {
            o.kind = ClusterOutcome::Fault;
            return;
        }
        if (probe != nullptr) {
            probe->clusters[cl].indexOk = true;
            probe->clusters[cl].column = idx;
        }
        // Unpack payload bases into row symbols directly: the bases
        // form one MSB-first bitstream consumed symbolBits at a time.
        o.kind = ClusterOutcome::Usable;
        o.idx = idx;
        o.symbols.resize(cfg_.rows);
        const size_t payload_off = idx_off + cfg_.indexBases();
        const unsigned sym_bits = cfg_.symbolBits;
        const uint32_t sym_mask = (uint32_t(1) << sym_bits) - 1;
        uint64_t acc = 0;
        unsigned bits = 0;
        size_t row = 0;
        for (size_t b = 0;
             b < cfg_.payloadBases() && row < cfg_.rows; ++b) {
            size_t p = payload_off + b;
            unsigned two =
                p < consensus.size() ? bitsFromBase(consensus[p]) : 0u;
            acc = (acc << 2) | two;
            bits += 2;
            if (bits >= sym_bits) {
                o.symbols[row++] =
                    uint32_t(acc >> (bits - sym_bits)) & sym_mask;
                bits -= sym_bits;
            }
        }
    });

    SymbolMatrix received(cfg_.rows, n_cols);
    std::vector<bool> claimed(n_cols, false);
    for (size_t cl = 0; cl < n_clusters; ++cl) {
        const ClusterOutcome &o = outcomes[cl];
        if (o.kind == ClusterOutcome::Empty)
            continue;
        if (o.kind == ClusterOutcome::Fault || claimed[o.idx]) {
            ++out.stats.indexFaults;
            continue;
        }
        if (forced[o.idx])
            continue; // column artificially erased
        claimed[o.idx] = true;
        if (probe != nullptr)
            probe->clusters[cl].claimed = true;
        for (size_t row = 0; row < cfg_.rows; ++row)
            received.at(row, size_t(o.idx)) = o.symbols[row];
    }

    std::vector<size_t> erased_cols;
    for (size_t col = 0; col < n_cols; ++col) {
        if (!claimed[col])
            erased_cols.push_back(col);
    }
    out.stats.erasedColumns = erased_cols.size();

    // Reed-Solomon decode each codeword along the layout. A codeword's
    // erasure positions are the symbol slots that fall in erased
    // columns; every layout touches each column exactly once, so each
    // erased column costs one symbol per codeword.
    std::vector<bool> col_erased(n_cols, false);
    for (size_t col : erased_cols)
        col_erased[col] = true;

    // Codewords occupy disjoint matrix cells (position() is a
    // bijection), so gather/decode/scatter parallelizes with no
    // shared writes; only the failure count is merged serially. The
    // gather buffer, erasure list, and RS working set are all
    // per-thread scratch reused across codewords.
    std::vector<uint8_t> codeword_ok(map_->codewords(), 0);
    parallelFor(map_->codewords(), cfg_.numThreads, [&](size_t j) {
        static thread_local std::vector<uint32_t> codeword;
        static thread_local std::vector<size_t> erasures;
        static thread_local RsScratch rs_scratch;
        map_->gatherInto(received, j, codeword);
        erasures.clear();
        for (size_t t = 0; t < map_->length(); ++t) {
            if (col_erased[map_->position(j, t).col])
                erasures.push_back(t);
        }
        RsDecodeResult result = rs_.decode(codeword, erasures,
                                           rs_scratch);
        if (result.success) {
            map_->scatter(received, j, codeword);
            out.stats.errorsPerCodeword[j] =
                result.errorsCorrected + result.erasuresCorrected;
            out.stats.rsErrors[j] = result.errorsCorrected;
            out.stats.rsErasures[j] = result.erasuresCorrected;
            codeword_ok[j] = 1;
        }
    });
    bool all_ok = true;
    for (size_t j = 0; j < map_->codewords(); ++j) {
        if (!codeword_ok[j]) {
            ++out.stats.failedCodewords;
            all_ok = false;
        }
    }
    out.stats.codewordOk = codeword_ok;
    out.exact = all_ok;

    // Unpack the data region back into the serialized stream and split
    // into files.
    const bool priority = scheme_ == LayoutScheme::DnaMapper;
    std::vector<uint32_t> symbols =
        extractData(received, cfg_.dataCols(),
                    priority ? DataPlacement::Priority
                             : DataPlacement::Baseline);
    BitWriter w;
    for (uint32_t s : symbols)
        w.writeBits(s, int(cfg_.symbolBits));
    out.rawStream = w.take();

    bool ok = false;
    out.bundle = priority
        ? FileBundle::deserializePriority(out.rawStream, &ok)
        : FileBundle::deserialize(out.rawStream, &ok);
    out.bundleOk = ok;
    return out;
}

} // namespace dnastore

#include "pipeline/simulator.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/aging.hh"
#include "util/parallel.hh"

namespace dnastore {

namespace {

// Distinct per-purpose mixing constants (splitmix64's multipliers)
// keep the aging, scrub, and aging-trial seed streams disjoint from
// each other and from runTrial's 0x9e3779b97f4a7c15 stream.
constexpr uint64_t kAgingMix = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kScrubMix = 0x94d049bb133111ebULL;
constexpr uint64_t kAgingTrialMix = 0xda942042e4dd58b5ULL;

} // namespace

StorageSimulator::StorageSimulator(const StorageConfig &cfg,
                                   LayoutScheme scheme,
                                   const ErrorModel &model, uint64_t seed)
    : StorageSimulator(cfg, scheme, ChannelProfile{ model, {}, {}, {}, {} },
                       seed)
{
}

StorageSimulator::StorageSimulator(const StorageConfig &cfg,
                                   LayoutScheme scheme,
                                   const ChannelProfile &profile,
                                   uint64_t seed)
    : cfg_(cfg), scheme_(scheme), channel_(profile.base),
      profileChannel_(profile), seed_(seed), encoder_(cfg, scheme),
      decoder_(cfg, scheme)
{
}

void
StorageSimulator::prepare(const FileBundle &bundle)
{
    unit_ = encoder_.encode(bundle);
    const bool priority = scheme_ == LayoutScheme::DnaMapper;
    stored_ = priority ? bundle.serializePriority() : bundle.serialize();
}

void
StorageSimulator::store(const FileBundle &bundle, size_t max_coverage)
{
    prepare(bundle);
    // Per-cluster RNG streams keep the pools bit-identical for every
    // cfg_.numThreads value, serial included, and for either storage
    // mode.
    pool_ = std::make_unique<ReadPool>(unit_.strands, channel_,
                                       max_coverage, seed_,
                                       cfg_.numThreads,
                                       cfg_.packedReadPools
                                           ? ReadStorage::Packed
                                           : ReadStorage::Flat);
    agedEpochs_ = 0;
    scrubGeneration_ = 0;
}

std::vector<std::vector<Strand>>
StorageSimulator::snapshotPool() const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    return pool_->snapshot();
}

size_t
StorageSimulator::poolCoverage() const
{
    return pool_ ? pool_->maxCoverage() : 0;
}

void
StorageSimulator::restore(const FileBundle &bundle,
                          const std::vector<std::vector<Strand>> &pools,
                          size_t max_coverage)
{
    prepare(bundle);
    if (pools.size() != unit_.strands.size())
        throw std::invalid_argument(
            "StorageSimulator: restored pools must hold one cluster "
            "per encoded strand");
    pool_ = std::make_unique<ReadPool>(pools, max_coverage,
                                       cfg_.packedReadPools
                                           ? ReadStorage::Packed
                                           : ReadStorage::Flat);
    agedEpochs_ = 0;
    scrubGeneration_ = 0;
}

RetrievalResult
StorageSimulator::decodeBatch(
    const ReadBatch &batch, size_t coverage_label,
    const std::vector<size_t> &forced_erasures) const
{
    RetrievalResult result;
    result.coverage = coverage_label;
    result.decoded = decoder_.decode(batch, forced_erasures);
    const auto &raw = result.decoded.rawStream;
    result.exactPayload = raw.size() >= stored_.size() &&
        std::equal(stored_.begin(), stored_.end(), raw.begin());
    return result;
}

RetrievalResult
StorageSimulator::retrieve(
    size_t coverage, const std::vector<size_t> &forced_erasures) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    // The batch views alias the pool arenas: no read is copied on the
    // way to the decoder.
    ReadBatch batch;
    pool_->fillBatch(coverage, batch);
    return decodeBatch(batch, coverage, forced_erasures);
}

RetrievalResult
StorageSimulator::retrieveGamma(double mean_coverage, double shape,
                                uint64_t draw_seed) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    Rng rng(draw_seed);
    auto counts =
        pool_->sampleCounts(CoverageModel::gamma(mean_coverage, shape),
                            rng);
    ReadBatch batch;
    pool_->fillBatch(counts, batch);
    return decodeBatch(batch, size_t(mean_coverage + 0.5), {});
}

ClusteredRetrievalResult
StorageSimulator::retrieveClustered(size_t coverage,
                                    const ClusterParams &params) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    ReadBatch batch;
    pool_->fillBatch(coverage, batch);
    return decodeClusteredBatch(batch, coverage, params);
}

ClusteredRetrievalResult
StorageSimulator::decodeClusteredBatch(const ReadBatch &batch,
                                       size_t coverage_label,
                                       const ClusterParams &params) const
{
    size_t max_reads = 0;
    for (size_t cl = 0; cl < batch.clusters(); ++cl)
        max_reads = std::max(max_reads, batch.clusterSize(cl));

    // Interleave reads round-robin across molecules so the clusterer
    // sees them the way a sequencing run would deliver them, not
    // pre-grouped.
    std::vector<Strand> flat;
    std::vector<size_t> truth;
    flat.reserve(batch.views.size());
    truth.reserve(batch.views.size());
    for (size_t j = 0; j < max_reads; ++j) {
        for (size_t cl = 0; cl < batch.clusters(); ++cl) {
            if (j < batch.clusterSize(cl)) {
                flat.push_back(batch.cluster(cl)[j].toStrand());
                truth.push_back(cl);
            }
        }
    }

    Clustering clustering = clusterReads(flat, params);

    std::vector<std::vector<Strand>> clusters(clustering.count());
    for (size_t c = 0; c < clustering.count(); ++c) {
        for (size_t r : clustering.members[c])
            clusters[c].push_back(flat[r]);
    }

    ClusteredRetrievalResult out;
    out.clustersFound = clustering.count();
    out.quality = scoreClustering(clustering, truth);
    out.result.coverage = coverage_label;
    out.result.decoded = decoder_.decode(clusters);
    const auto &raw = out.result.decoded.rawStream;
    out.result.exactPayload = raw.size() >= stored_.size() &&
        std::equal(stored_.begin(), stored_.end(), raw.begin());
    return out;
}

TrialOutcome
StorageSimulator::runTrial(const CoverageModel &coverage,
                           uint64_t trial_seed,
                           const ClusterParams *cluster_params) const
{
    if (unit_.strands.empty())
        throw std::logic_error(
            "StorageSimulator: prepare() or store() first");

    // All of the trial's randomness (coverage draws, dropout, PCR
    // lineages, sequencing noise) flows from this one stream, mixed
    // from the simulator seed and the trial seed — trials are mutually
    // independent and schedulable in any order on any thread.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (trial_seed + 1)));

    const size_t n_clusters = unit_.strands.size();
    std::vector<size_t> counts(n_clusters);
    for (auto &count : counts)
        count = coverage.sample(rng);
    applyDropout(profileChannel_.profile().dropout, rng, counts);

    TrialOutcome out;
    ReadBatch batch;
    for (size_t c = 0; c < n_clusters; ++c) {
        if (counts[c] == 0) {
            // CoverageModel never samples 0, so a zero count here is
            // a dropout-erased cluster.
            ++out.clustersDropped;
            continue;
        }
        profileChannel_.generateCluster(unit_.strands[c], counts[c],
                                        rng, batch.scratch);
        out.readsGenerated += counts[c];
    }
    // Views are taken only after generation: arena growth relocates.
    batch.offsets.reserve(n_clusters + 1);
    batch.offsets.push_back(0);
    batch.views.reserve(out.readsGenerated);
    size_t next_read = 0;
    for (size_t c = 0; c < n_clusters; ++c) {
        for (size_t r = 0; r < counts[c]; ++r)
            batch.views.push_back(batch.scratch.view(next_read++));
        batch.offsets.push_back(batch.views.size());
    }

    const size_t label = size_t(std::llround(coverage.mean()));
    if (cluster_params != nullptr) {
        ClusteredRetrievalResult clustered =
            decodeClusteredBatch(batch, label, *cluster_params);
        out.result = std::move(clustered.result);
        out.quality = clustered.quality;
        out.clustersFound = clustered.clustersFound;
        out.clustered = true;
    } else {
        out.result = decodeBatch(batch, label, {});
    }

    const auto &raw = out.result.decoded.rawStream;
    size_t bad = 0;
    for (size_t i = 0; i < stored_.size(); ++i) {
        if (i >= raw.size() || raw[i] != stored_[i])
            ++bad;
    }
    out.byteErrorRate =
        stored_.empty() ? 0.0 : double(bad) / double(stored_.size());
    return out;
}

size_t
StorageSimulator::age(size_t epochs)
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    const AgingProfile &aging = profileChannel_.profile().aging;
    size_t lost = 0;
    for (size_t e = 0; e < epochs; ++e) {
        // The epoch counter advances even for a disabled profile (a
        // no-op epoch is the identity whatever its seed), so enabling
        // aging later never re-runs consumed epoch seeds.
        const uint64_t epoch_seed =
            seed_ ^ (kAgingMix * uint64_t(agedEpochs_ + 1));
        ++agedEpochs_;
        lost += agePoolEpoch(*pool_, aging, epoch_seed,
                             cfg_.numThreads);
    }
    return lost;
}

UnitHealth
StorageSimulator::probeHealth() const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    return probePool(*pool_);
}

UnitHealth
StorageSimulator::probePool(const ReadPool &pool) const
{
    ReadBatch batch;
    pool.fillBatch(pool.maxCoverage(), batch);
    DecodeProbe probe;
    DecodedUnit decoded = decoder_.decode(batch, {}, &probe);

    UnitHealth health;
    health.clusters = pool.clusters();
    health.poolCoverage = pool.maxCoverage();
    health.agedEpochs = agedEpochs_;
    health.indexFaults = decoded.stats.indexFaults;
    health.erasedColumns = decoded.stats.erasedColumns;
    health.failedCodewords = decoded.stats.failedCodewords;
    health.exact = decoded.exact;

    health.perCluster.resize(probe.clusters.size());
    double agreement_sum = 0.0;
    double agreement_min = 1.0;
    size_t live_clusters = 0;
    for (size_t c = 0; c < probe.clusters.size(); ++c) {
        const ClusterProbe &p = probe.clusters[c];
        ClusterHealth &h = health.perCluster[c];
        h.reads = p.reads;
        h.indexOk = p.indexOk;
        h.claimed = p.claimed;
        h.column = p.column;
        h.agreement = p.agreement;
        health.liveReads += p.reads;
        if (p.reads == 0) {
            ++health.emptyClusters;
            continue;
        }
        ++live_clusters;
        agreement_sum += p.agreement;
        agreement_min = std::min(agreement_min, p.agreement);
    }
    health.meanAgreement =
        live_clusters == 0 ? 0.0 : agreement_sum / double(live_clusters);
    health.minAgreement = live_clusters == 0 ? 0.0 : agreement_min;

    const size_t n_codewords = decoded.stats.codewordOk.size();
    health.perCodeword.resize(n_codewords);
    int min_margin = int(cfg_.paritySymbols);
    for (size_t j = 0; j < n_codewords; ++j) {
        CodewordHealth &cw = health.perCodeword[j];
        cw.ok = decoded.stats.codewordOk[j] != 0;
        cw.errorsCorrected = decoded.stats.rsErrors[j];
        cw.erasuresCorrected = decoded.stats.rsErasures[j];
        cw.margin = cw.ok ? int(cfg_.paritySymbols) -
                int(2 * cw.errorsCorrected + cw.erasuresCorrected)
                          : -1;
        min_margin = std::min(min_margin, cw.margin);
    }
    health.minMargin = n_codewords == 0 ? 0 : min_margin;
    return health;
}

PoolScrubReport
StorageSimulator::scrub(const ScrubPolicy &policy)
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    const uint64_t scrub_seed =
        seed_ ^ (kScrubMix * uint64_t(scrubGeneration_ + 1));
    ++scrubGeneration_;
    return scrubPool(*pool_, policy, scrub_seed);
}

PoolScrubReport
StorageSimulator::scrubPool(ReadPool &pool, const ScrubPolicy &policy,
                            uint64_t scrub_seed) const
{
    // Measure: one full-depth probe decode.
    ReadBatch batch;
    pool.fillBatch(pool.maxCoverage(), batch);
    DecodeProbe probe;
    DecodedUnit decoded = decoder_.decode(batch, {}, &probe);

    PoolScrubReport report;
    report.clustersScanned = pool.clusters();
    report.failedCodewords = decoded.stats.failedCodewords;

    // Decide: the policy picks the low-margin clusters. A cluster
    // that lost its column claim (empty, index fault, duplicate) is
    // always low-margin — it currently contributes an erasure.
    std::vector<uint8_t> selected(pool.clusters(), 0);
    for (size_t c = 0; c < pool.clusters(); ++c) {
        const ClusterProbe &p = c < probe.clusters.size()
            ? probe.clusters[c]
            : ClusterProbe{};
        const bool low = policy.repairAll || !p.claimed ||
            p.reads < policy.minReads ||
            p.agreement < policy.minAgreement;
        selected[c] = low ? 1 : 0;
        report.lowMargin += low ? 1 : 0;
    }

    // Repair is safe only when EVERY codeword decoded: each codeword
    // touches each column exactly once, so one failed codeword means
    // every column (and thus every rewrite source) embeds an
    // untrusted symbol. Transiently unrepairable — deeper coverage
    // can clear it.
    if (!decoded.exact) {
        report.unrepairable = report.lowMargin;
        return report;
    }
    report.repairable = true;
    if (report.lowMargin == 0)
        return report;

    // The rewrite source is the RS-repaired data, not the stored
    // ground truth: re-encode the recovered bundle and cross-check it
    // against the stored unit (they must agree when every codeword
    // decoded — a mismatch is an internal inconsistency).
    if (!decoded.bundleOk)
        throw std::logic_error(
            "scrub: codewords decoded but the bundle did not parse");
    EncodedUnit repaired = encoder_.encode(decoded.bundle);
    if (repaired.strands != unit_.strands)
        throw std::logic_error(
            "scrub: the re-encoded repair does not match the stored "
            "unit");

    // Rewrite seeds are pre-drawn serially for ALL clusters, so the
    // selection set never shifts another cluster's synthesis noise,
    // and repairs are bit-identical at any thread count.
    Rng base(scrub_seed);
    std::vector<uint64_t> seeds(pool.clusters());
    for (auto &s : seeds)
        s = base.next();

    const size_t depth = pool.maxCoverage();
    parallelFor(pool.clusters(), cfg_.numThreads, [&](size_t c) {
        if (!selected[c])
            return;
        Rng rng(seeds[c]);
        std::vector<Strand> fresh(depth);
        for (auto &read : fresh)
            channel_.transmitInto(repaired.strands[c], rng, read);
        pool.replaceCluster(c, fresh);
    });
    for (size_t c = 0; c < pool.clusters(); ++c) {
        if (selected[c]) {
            ++report.repaired;
            report.readsRewritten += depth;
        }
    }
    return report;
}

AgingTrialOutcome
StorageSimulator::runAgingTrial(size_t coverage, uint64_t trial_seed,
                                size_t epochs, bool scrub_each_epoch,
                                const ScrubPolicy &policy) const
{
    if (unit_.strands.empty())
        throw std::logic_error(
            "StorageSimulator: prepare() or store() first");

    // Trial-local pool and RNG stream: the stored pool is untouched
    // and trials are mutually independent (fan-out safe).
    Rng rng(seed_ ^ (kAgingTrialMix * (trial_seed + 1)));
    ReadPool local(unit_.strands, channel_, coverage, rng);

    const AgingProfile &aging = profileChannel_.profile().aging;
    AgingTrialOutcome out;
    out.epochSuccess.reserve(epochs);
    out.epochByteErrorRate.reserve(epochs);
    ReadBatch batch;
    for (size_t e = 0; e < epochs; ++e) {
        out.readsLost += agePoolEpoch(local, aging, rng.next(), 1);
        if (scrub_each_epoch) {
            PoolScrubReport rep = scrubPool(local, policy, rng.next());
            out.repaired += rep.repaired;
            if (!rep.repairable)
                ++out.unrepairableEpochs;
        }
        local.fillBatch(coverage, batch);
        RetrievalResult result = decodeBatch(batch, coverage, {});
        out.epochSuccess.push_back(result.exactPayload ? 1 : 0);
        const auto &raw = result.decoded.rawStream;
        size_t bad = 0;
        for (size_t i = 0; i < stored_.size(); ++i) {
            if (i >= raw.size() || raw[i] != stored_[i])
                ++bad;
        }
        out.epochByteErrorRate.push_back(
            stored_.empty() ? 0.0
                            : double(bad) / double(stored_.size()));
    }
    return out;
}

std::optional<size_t>
StorageSimulator::minCoverageForExact(
    size_t lo, size_t hi,
    const std::vector<size_t> &forced_erasures) const
{
    // One batch reused across the scan: views are re-pointed per
    // coverage, never copied.
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    ReadBatch batch;
    for (size_t cov = lo; cov <= hi; ++cov) {
        pool_->fillBatch(cov, batch);
        if (decodeBatch(batch, cov, forced_erasures).exactPayload)
            return cov;
    }
    return std::nullopt;
}

} // namespace dnastore

#include "pipeline/simulator.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dnastore {

StorageSimulator::StorageSimulator(const StorageConfig &cfg,
                                   LayoutScheme scheme,
                                   const ErrorModel &model, uint64_t seed)
    : StorageSimulator(cfg, scheme, ChannelProfile{ model, {}, {}, {} },
                       seed)
{
}

StorageSimulator::StorageSimulator(const StorageConfig &cfg,
                                   LayoutScheme scheme,
                                   const ChannelProfile &profile,
                                   uint64_t seed)
    : cfg_(cfg), scheme_(scheme), channel_(profile.base),
      profileChannel_(profile), seed_(seed), encoder_(cfg, scheme),
      decoder_(cfg, scheme)
{
}

void
StorageSimulator::prepare(const FileBundle &bundle)
{
    unit_ = encoder_.encode(bundle);
    const bool priority = scheme_ == LayoutScheme::DnaMapper;
    stored_ = priority ? bundle.serializePriority() : bundle.serialize();
}

void
StorageSimulator::store(const FileBundle &bundle, size_t max_coverage)
{
    prepare(bundle);
    // Per-cluster RNG streams keep the pools bit-identical for every
    // cfg_.numThreads value, serial included, and for either storage
    // mode.
    pool_ = std::make_unique<ReadPool>(unit_.strands, channel_,
                                       max_coverage, seed_,
                                       cfg_.numThreads,
                                       cfg_.packedReadPools
                                           ? ReadStorage::Packed
                                           : ReadStorage::Flat);
}

std::vector<std::vector<Strand>>
StorageSimulator::snapshotPool() const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    return pool_->snapshot();
}

size_t
StorageSimulator::poolCoverage() const
{
    return pool_ ? pool_->maxCoverage() : 0;
}

void
StorageSimulator::restore(const FileBundle &bundle,
                          const std::vector<std::vector<Strand>> &pools,
                          size_t max_coverage)
{
    prepare(bundle);
    if (pools.size() != unit_.strands.size())
        throw std::invalid_argument(
            "StorageSimulator: restored pools must hold one cluster "
            "per encoded strand");
    pool_ = std::make_unique<ReadPool>(pools, max_coverage,
                                       cfg_.packedReadPools
                                           ? ReadStorage::Packed
                                           : ReadStorage::Flat);
}

RetrievalResult
StorageSimulator::decodeBatch(
    const ReadBatch &batch, size_t coverage_label,
    const std::vector<size_t> &forced_erasures) const
{
    RetrievalResult result;
    result.coverage = coverage_label;
    result.decoded = decoder_.decode(batch, forced_erasures);
    const auto &raw = result.decoded.rawStream;
    result.exactPayload = raw.size() >= stored_.size() &&
        std::equal(stored_.begin(), stored_.end(), raw.begin());
    return result;
}

RetrievalResult
StorageSimulator::retrieve(
    size_t coverage, const std::vector<size_t> &forced_erasures) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    // The batch views alias the pool arenas: no read is copied on the
    // way to the decoder.
    ReadBatch batch;
    pool_->fillBatch(coverage, batch);
    return decodeBatch(batch, coverage, forced_erasures);
}

RetrievalResult
StorageSimulator::retrieveGamma(double mean_coverage, double shape,
                                uint64_t draw_seed) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    Rng rng(draw_seed);
    auto counts =
        pool_->sampleCounts(CoverageModel::gamma(mean_coverage, shape),
                            rng);
    ReadBatch batch;
    pool_->fillBatch(counts, batch);
    return decodeBatch(batch, size_t(mean_coverage + 0.5), {});
}

ClusteredRetrievalResult
StorageSimulator::retrieveClustered(size_t coverage,
                                    const ClusterParams &params) const
{
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    ReadBatch batch;
    pool_->fillBatch(coverage, batch);
    return decodeClusteredBatch(batch, coverage, params);
}

ClusteredRetrievalResult
StorageSimulator::decodeClusteredBatch(const ReadBatch &batch,
                                       size_t coverage_label,
                                       const ClusterParams &params) const
{
    size_t max_reads = 0;
    for (size_t cl = 0; cl < batch.clusters(); ++cl)
        max_reads = std::max(max_reads, batch.clusterSize(cl));

    // Interleave reads round-robin across molecules so the clusterer
    // sees them the way a sequencing run would deliver them, not
    // pre-grouped.
    std::vector<Strand> flat;
    std::vector<size_t> truth;
    flat.reserve(batch.views.size());
    truth.reserve(batch.views.size());
    for (size_t j = 0; j < max_reads; ++j) {
        for (size_t cl = 0; cl < batch.clusters(); ++cl) {
            if (j < batch.clusterSize(cl)) {
                flat.push_back(batch.cluster(cl)[j].toStrand());
                truth.push_back(cl);
            }
        }
    }

    Clustering clustering = clusterReads(flat, params);

    std::vector<std::vector<Strand>> clusters(clustering.count());
    for (size_t c = 0; c < clustering.count(); ++c) {
        for (size_t r : clustering.members[c])
            clusters[c].push_back(flat[r]);
    }

    ClusteredRetrievalResult out;
    out.clustersFound = clustering.count();
    out.quality = scoreClustering(clustering, truth);
    out.result.coverage = coverage_label;
    out.result.decoded = decoder_.decode(clusters);
    const auto &raw = out.result.decoded.rawStream;
    out.result.exactPayload = raw.size() >= stored_.size() &&
        std::equal(stored_.begin(), stored_.end(), raw.begin());
    return out;
}

TrialOutcome
StorageSimulator::runTrial(const CoverageModel &coverage,
                           uint64_t trial_seed,
                           const ClusterParams *cluster_params) const
{
    if (unit_.strands.empty())
        throw std::logic_error(
            "StorageSimulator: prepare() or store() first");

    // All of the trial's randomness (coverage draws, dropout, PCR
    // lineages, sequencing noise) flows from this one stream, mixed
    // from the simulator seed and the trial seed — trials are mutually
    // independent and schedulable in any order on any thread.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (trial_seed + 1)));

    const size_t n_clusters = unit_.strands.size();
    std::vector<size_t> counts(n_clusters);
    for (auto &count : counts)
        count = coverage.sample(rng);
    applyDropout(profileChannel_.profile().dropout, rng, counts);

    TrialOutcome out;
    ReadBatch batch;
    for (size_t c = 0; c < n_clusters; ++c) {
        if (counts[c] == 0) {
            // CoverageModel never samples 0, so a zero count here is
            // a dropout-erased cluster.
            ++out.clustersDropped;
            continue;
        }
        profileChannel_.generateCluster(unit_.strands[c], counts[c],
                                        rng, batch.scratch);
        out.readsGenerated += counts[c];
    }
    // Views are taken only after generation: arena growth relocates.
    batch.offsets.reserve(n_clusters + 1);
    batch.offsets.push_back(0);
    batch.views.reserve(out.readsGenerated);
    size_t next_read = 0;
    for (size_t c = 0; c < n_clusters; ++c) {
        for (size_t r = 0; r < counts[c]; ++r)
            batch.views.push_back(batch.scratch.view(next_read++));
        batch.offsets.push_back(batch.views.size());
    }

    const size_t label = size_t(std::llround(coverage.mean()));
    if (cluster_params != nullptr) {
        ClusteredRetrievalResult clustered =
            decodeClusteredBatch(batch, label, *cluster_params);
        out.result = std::move(clustered.result);
        out.quality = clustered.quality;
        out.clustersFound = clustered.clustersFound;
        out.clustered = true;
    } else {
        out.result = decodeBatch(batch, label, {});
    }

    const auto &raw = out.result.decoded.rawStream;
    size_t bad = 0;
    for (size_t i = 0; i < stored_.size(); ++i) {
        if (i >= raw.size() || raw[i] != stored_[i])
            ++bad;
    }
    out.byteErrorRate =
        stored_.empty() ? 0.0 : double(bad) / double(stored_.size());
    return out;
}

std::optional<size_t>
StorageSimulator::minCoverageForExact(
    size_t lo, size_t hi,
    const std::vector<size_t> &forced_erasures) const
{
    // One batch reused across the scan: views are re-pointed per
    // coverage, never copied.
    if (!pool_)
        throw std::logic_error("StorageSimulator: store() first");
    ReadBatch batch;
    for (size_t cov = lo; cov <= hi; ++cov) {
        pool_->fillBatch(cov, batch);
        if (decodeBatch(batch, cov, forced_erasures).exactPayload)
            return cov;
    }
    return std::nullopt;
}

} // namespace dnastore

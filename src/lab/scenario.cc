#include "lab/scenario.hh"

#include "util/rng.hh"

namespace dnastore {

CoverageModel
Scenario::makeCoverage() const
{
    if (coverageShape <= 0.0)
        return CoverageModel::fixed(size_t(coverageMean + 0.5));
    return CoverageModel::gamma(coverageMean, coverageShape);
}

FileBundle
Scenario::makePayload() const
{
    if (hasPayloadOverride)
        return payloadOverride;
    Rng rng(payloadSeed);
    std::vector<uint8_t> bytes(payloadBytes);
    for (auto &b : bytes)
        b = uint8_t(rng.next());
    FileBundle bundle;
    bundle.add("payload.bin", std::move(bytes));
    return bundle;
}

namespace {

Scenario
baseScenario(const char *name, const char *description)
{
    Scenario s;
    s.name = name;
    s.description = description;
    s.config = StorageConfig::tinyTest();
    s.channel.base = ErrorModel::uniform(0.03);
    return s;
}

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> all;

    {
        // The paper's basic channel at comfortable coverage: the
        // anchor every optimization PR must keep near-perfect.
        Scenario s = baseScenario(
            "nominal", "i.i.d. IDS channel at 3% error, fixed "
                       "coverage 8 (paper section 3 baseline)");
        s.coverageMean = 8.0;
        s.minSuccessRate = 0.99;
        all.push_back(s);
    }
    {
        // Gamma coverage with a mean low enough that a visible share
        // of clusters gets one or two reads (paper section 4.1).
        Scenario s = baseScenario(
            "low-coverage", "1.5% IDS error with Gamma(mean 5, "
                            "shape 3) coverage: many 1-2 read clusters");
        s.channel.base = ErrorModel::uniform(0.015);
        s.coverageMean = 5.0;
        s.coverageShape = 3.0;
        s.minSuccessRate = 0.80;
        all.push_back(s);
    }
    {
        // Nanopore-style: indel-dominated split (section 8) plus
        // end-of-read degradation — the tail third of each strand
        // degrades up to 3x the base rate.
        Scenario s = baseScenario(
            "nanopore-hostile", "6% nanopore-split error (60% indels) "
                                "with a 3x end-of-read error ramp over "
                                "the final third, Gamma(12, 4) coverage");
        s.channel.base = ErrorModel::nanopore(0.06);
        s.channel.ramp.startFrac = 0.66;
        s.channel.ramp.endMultiplier = 3.0;
        s.coverageMean = 12.0;
        s.coverageShape = 4.0;
        s.minSuccessRate = 0.75;
        all.push_back(s);
    }
    {
        // Independent whole-strand dropout in short bursts; the
        // decoder sees the lost molecules as column erasures.
        Scenario s = baseScenario(
            "dropout-heavy", "3% IDS error with 5% strand dropout in "
                             "bursts of 2 consecutive molecules");
        s.channel.dropout.rate = 0.05;
        s.channel.dropout.burstLen = 2;
        s.minSuccessRate = 0.95;
        all.push_back(s);
    }
    {
        // Rare but long contiguous losses (synthesis batch / gel
        // extraction failures): stresses the erasure budget harder
        // than the same loss rate spread uniformly.
        Scenario s = baseScenario(
            "erasure-burst", "3% IDS error with rare 8-molecule "
                             "erasure bursts (1.5% burst starts)");
        s.channel.dropout.rate = 0.015;
        s.channel.dropout.burstLen = 8;
        s.minSuccessRate = 0.80;
        all.push_back(s);
    }
    {
        // PCR amplification bias: polymerase errors from early cycles
        // are shared by whole read lineages, so consensus faces
        // correlated — not independent — noise.
        Scenario s = baseScenario(
            "pcr-skew", "2% sequencing error over 8 PCR cycles "
                        "(efficiency 0.5, 0.8% polymerase error): "
                        "reads inherit correlated lineage mutations");
        s.channel.base = ErrorModel::uniform(0.02);
        s.channel.pcr.cycles = 8;
        s.channel.pcr.efficiency = 0.5;
        s.channel.pcr.errorRate = 0.008;
        s.channel.pcr.maxLineage = 48;
        s.minSuccessRate = 0.90;
        all.push_back(s);
    }
    {
        // Archival decay with no maintenance: each epoch loses a
        // quarter of the surviving reads and substitutes residual
        // bases. Clusters empty out, erasures blow through the parity
        // budget, and the success curve collapses — the open-loop
        // baseline the scrub-loop scenario is measured against. The
        // threshold is 0: this scenario *documents* the decay; the
        // closed-loop comparison lives in scrub-loop and the lab
        // tests, which assert its final-epoch rate strictly exceeds
        // this one's.
        Scenario s = baseScenario(
            "aging-decay", "2% IDS error, fixed coverage 8, 6 aging "
                           "epochs (25% strand loss + 0.4% "
                           "substitution per epoch), no scrubbing: "
                           "open-loop archival decay");
        s.channel.base = ErrorModel::uniform(0.02);
        s.channel.aging.strandLossRate = 0.25;
        s.channel.aging.substitutionRate = 0.004;
        s.coverageMean = 8.0;
        s.agingEpochs = 6;
        s.minSuccessRate = 0.0;
        all.push_back(s);
    }
    {
        // The same decay with the loop closed: after each epoch the
        // scrubber probe-decodes the pool and re-synthesizes clusters
        // that fell below 6 live reads from the RS-repaired data.
        Scenario s = baseScenario(
            "scrub-loop", "the aging-decay channel with a scrub after "
                          "every epoch (repair clusters below 6 live "
                          "reads): the closed durability loop");
        s.channel.base = ErrorModel::uniform(0.02);
        s.channel.aging.strandLossRate = 0.25;
        s.channel.aging.substitutionRate = 0.004;
        s.coverageMean = 8.0;
        s.agingEpochs = 6;
        s.scrubEachEpoch = true;
        s.scrubMinReads = 6;
        s.minSuccessRate = 0.95;
        all.push_back(s);
    }
    {
        // The nominal channel without the perfect-clustering
        // assumption: reads arrive as one interleaved soup and must
        // be regrouped by the real clusterer first.
        Scenario s = baseScenario(
            "clustered-nominal", "3% IDS error, fixed coverage 6, "
                                 "decoded through the real clusterer "
                                 "instead of perfect grouping");
        s.coverageMean = 6.0;
        s.clustered = true;
        s.minSuccessRate = 0.90;
        all.push_back(s);
    }
    {
        // clustered-nominal again, but through the out-of-core
        // streaming engine with a budget small enough that every
        // trial spills to disk. The clustering — and therefore the
        // success rate — is bit-identical to clustered-nominal's;
        // what this scenario exercises is the spill/reload path under
        // the full Monte-Carlo channel.
        Scenario s = baseScenario(
            "clustered-streaming",
            "the clustered-nominal channel clustered through the "
            "streaming engine with a 4 KiB memory budget, forcing "
            "every trial to spill to disk and stream back");
        s.coverageMean = 6.0;
        s.clustered = true;
        s.clusterParams.memoryBudgetBytes = 4096;
        s.minSuccessRate = 0.90;
        all.push_back(s);
    }

    return all;
}

} // namespace

const std::vector<Scenario> &
allScenarios()
{
    static const std::vector<Scenario> scenarios = buildScenarios();
    return scenarios;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : allScenarios()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace dnastore

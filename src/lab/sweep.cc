#include "lab/sweep.hh"

#include <chrono>
#include <cmath>

#include "pipeline/simulator.hh"
#include "util/parallel.hh"

namespace dnastore {

namespace {

/** FNV-1a over the scenario name: stable across platforms (unlike
 *  std::hash), so per-scenario seed streams never depend on the
 *  standard library in use. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

ScenarioReport
SweepRunner::run(const Scenario &scenario) const
{
    const auto t0 = std::chrono::steady_clock::now();

    StorageSimulator sim(scenario.config, scenario.scheme,
                         scenario.channel,
                         opt_.seed ^ fnv1a(scenario.name));
    sim.prepare(scenario.makePayload());
    const CoverageModel coverage = scenario.makeCoverage();

    // Per-trial seeds are drawn serially from one stream before the
    // fan-out, exactly like ReadPool's per-cluster seeds: the trial
    // schedule can never leak into the results.
    Rng seed_stream(opt_.seed ^ fnv1a(scenario.name));
    std::vector<uint64_t> trial_seeds(opt_.trials);
    for (auto &s : trial_seeds)
        s = seed_stream.next();

    std::vector<TrialRecord> records(opt_.trials);
    parallelFor(opt_.trials, opt_.threads, [&](size_t t) {
        TrialOutcome outcome = sim.runTrial(
            coverage, trial_seeds[t],
            scenario.clustered ? &scenario.clusterParams : nullptr);
        TrialRecord &rec = records[t];
        rec.success = outcome.result.exactPayload;
        rec.byteErrorRate = outcome.byteErrorRate;
        rec.erasedColumns = outcome.result.decoded.stats.erasedColumns;
        rec.failedCodewords =
            outcome.result.decoded.stats.failedCodewords;
        rec.correctedErrors =
            outcome.result.decoded.stats.totalCorrected();
        rec.readsGenerated = outcome.readsGenerated;
        rec.clustersDropped = outcome.clustersDropped;
        rec.precision = outcome.quality.precision;
        rec.recall = outcome.quality.recall;
    });

    // Serial aggregation in trial order: identical doubles for every
    // thread count.
    ScenarioReport report;
    report.scenario = scenario.name;
    report.description = scenario.description;
    report.trials = opt_.trials;
    report.clustered = scenario.clustered;
    report.minSuccessRate = scenario.minSuccessRate;
    for (const auto &rec : records) {
        report.successes += rec.success ? 1 : 0;
        report.meanByteErrorRate += rec.byteErrorRate;
        if (rec.byteErrorRate > report.maxByteErrorRate)
            report.maxByteErrorRate = rec.byteErrorRate;
        report.meanErasedColumns += double(rec.erasedColumns);
        report.meanFailedCodewords += double(rec.failedCodewords);
        report.meanCorrectedErrors += double(rec.correctedErrors);
        report.meanReads += double(rec.readsGenerated);
        report.meanClustersDropped += double(rec.clustersDropped);
        report.meanPrecision += rec.precision;
        report.meanRecall += rec.recall;
    }
    if (opt_.trials > 0) {
        const double n = double(opt_.trials);
        report.successRate = double(report.successes) / n;
        report.meanByteErrorRate /= n;
        report.meanErasedColumns /= n;
        report.meanFailedCodewords /= n;
        report.meanCorrectedErrors /= n;
        report.meanReads /= n;
        report.meanClustersDropped /= n;
        report.meanPrecision /= n;
        report.meanRecall /= n;
    }
    // Quantize the bound to whole trials (floor): at reduced trial
    // counts a healthy scenario must not fail just because the
    // threshold falls between two representable success rates —
    // e.g. a 0.80 bound at 8 trials allows 6/8, not only 7/8.
    report.passed = double(report.successes) >=
        std::floor(report.minSuccessRate * double(opt_.trials));
    report.perTrial = std::move(records);

    const auto t1 = std::chrono::steady_clock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return report;
}

std::vector<ScenarioReport>
SweepRunner::runAll(const std::vector<Scenario> &scenarios) const
{
    std::vector<ScenarioReport> reports;
    reports.reserve(scenarios.size());
    for (const auto &scenario : scenarios)
        reports.push_back(run(scenario));
    return reports;
}

} // namespace dnastore

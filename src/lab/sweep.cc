#include "lab/sweep.hh"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "api/api.hh"

namespace dnastore {

namespace {

/** FNV-1a over the scenario name: stable across platforms (unlike
 *  std::hash), so per-scenario seed streams never depend on the
 *  standard library in use. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

ScenarioReport
SweepRunner::run(const Scenario &scenario) const
{
    const auto t0 = std::chrono::steady_clock::now();

    // The sweep drives trials through the public façade: the Store
    // owns the simulator (profile channel, per-trial RNG streams) and
    // the TrialJob fans the batch over the work-stealing pool with
    // the same slot-per-trial determinism this runner always had.
    api::StoreOptions store_opt;
    store_opt.config(scenario.config)
        .layout(scenario.scheme)
        .unitSeed(opt_.seed ^ fnv1a(scenario.name));
    api::ChannelOptions chan_opt;
    chan_opt.profile(scenario.channel);
    // The scenario's own coverage helper keeps the fixed/gamma
    // selection and rounding in one place.
    chan_opt.coverage(scenario.makeCoverage());
    if (scenario.clustered)
        chan_opt.cluster(
            api::ClusterOptions::fromParams(scenario.clusterParams));

    api::Result<api::Store> store =
        api::Store::open(store_opt, chan_opt);
    if (!store.ok())
        // Scenarios are internal, pre-validated workloads; a rejected
        // one is a programming error in the grid, not a user input.
        throw std::invalid_argument("SweepRunner: " +
                                    store.status().toString());
    const FileBundle payload = scenario.makePayload();
    for (const auto &file : payload.files()) {
        api::Status status = store->put(file.name, file.data);
        if (!status.ok())
            throw std::invalid_argument("SweepRunner: " +
                                        status.toString());
    }

    // Per-trial seeds are drawn serially from one stream before the
    // fan-out, exactly like ReadPool's per-cluster seeds: the trial
    // schedule can never leak into the results.
    Rng seed_stream(opt_.seed ^ fnv1a(scenario.name));
    api::TrialJob job;
    job.trialSeeds.resize(opt_.trials);
    for (auto &s : job.trialSeeds)
        s = seed_stream.next();
    job.threads = opt_.threads;
    job.useClusterer = scenario.clustered;
    job.agingEpochs = scenario.agingEpochs;
    job.scrubEachEpoch = scenario.scrubEachEpoch;
    job.scrub.minReads = scenario.scrubMinReads;
    job.scrub.minAgreement = scenario.scrubMinAgreement;

    api::Result<api::TrialSeries> series =
        store->submit(job).get();
    if (!series.ok())
        throw std::runtime_error("SweepRunner: " +
                                 series.status().toString());

    std::vector<TrialRecord> records(opt_.trials);
    for (size_t t = 0; t < opt_.trials; ++t) {
        const api::TrialResult &outcome = series->trials[t];
        TrialRecord &rec = records[t];
        rec.success = outcome.success;
        rec.byteErrorRate = outcome.byteErrorRate;
        rec.erasedColumns = outcome.erasedColumns;
        rec.failedCodewords = outcome.failedCodewords;
        rec.correctedErrors = outcome.correctedErrors;
        rec.readsGenerated = outcome.readsGenerated;
        rec.clustersDropped = outcome.clustersDropped;
        rec.precision = outcome.precision;
        rec.recall = outcome.recall;
        rec.epochSuccess = outcome.epochSuccess;
        rec.readsLost = outcome.readsLost;
        rec.scrubRepaired = outcome.scrubRepaired;
    }

    // Serial aggregation in trial order: identical doubles for every
    // thread count.
    ScenarioReport report;
    report.scenario = scenario.name;
    report.description = scenario.description;
    report.trials = opt_.trials;
    report.clustered = scenario.clustered;
    report.minSuccessRate = scenario.minSuccessRate;
    report.agingEpochs = scenario.agingEpochs;
    if (scenario.agingEpochs > 0)
        report.epochSuccessRate.assign(scenario.agingEpochs, 0.0);
    for (const auto &rec : records) {
        report.successes += rec.success ? 1 : 0;
        for (size_t e = 0;
             e < rec.epochSuccess.size() &&
             e < report.epochSuccessRate.size();
             ++e)
            report.epochSuccessRate[e] +=
                rec.epochSuccess[e] ? 1.0 : 0.0;
        report.meanReadsLost += double(rec.readsLost);
        report.meanScrubRepaired += double(rec.scrubRepaired);
        report.meanByteErrorRate += rec.byteErrorRate;
        if (rec.byteErrorRate > report.maxByteErrorRate)
            report.maxByteErrorRate = rec.byteErrorRate;
        report.meanErasedColumns += double(rec.erasedColumns);
        report.meanFailedCodewords += double(rec.failedCodewords);
        report.meanCorrectedErrors += double(rec.correctedErrors);
        report.meanReads += double(rec.readsGenerated);
        report.meanClustersDropped += double(rec.clustersDropped);
        report.meanPrecision += rec.precision;
        report.meanRecall += rec.recall;
    }
    if (opt_.trials > 0) {
        const double n = double(opt_.trials);
        report.successRate = double(report.successes) / n;
        report.meanByteErrorRate /= n;
        report.meanErasedColumns /= n;
        report.meanFailedCodewords /= n;
        report.meanCorrectedErrors /= n;
        report.meanReads /= n;
        report.meanClustersDropped /= n;
        report.meanPrecision /= n;
        report.meanRecall /= n;
        for (double &rate : report.epochSuccessRate)
            rate /= n;
        report.meanReadsLost /= n;
        report.meanScrubRepaired /= n;
    }
    // Quantize the bound to whole trials (floor): at reduced trial
    // counts a healthy scenario must not fail just because the
    // threshold falls between two representable success rates —
    // e.g. a 0.80 bound at 8 trials allows 6/8, not only 7/8.
    report.passed = double(report.successes) >=
        std::floor(report.minSuccessRate * double(opt_.trials));
    report.perTrial = std::move(records);

    const auto t1 = std::chrono::steady_clock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return report;
}

std::vector<ScenarioReport>
SweepRunner::runAll(const std::vector<Scenario> &scenarios) const
{
    std::vector<ScenarioReport> reports;
    reports.reserve(scenarios.size());
    for (const auto &scenario : scenarios)
        reports.push_back(run(scenario));
    return reports;
}

} // namespace dnastore

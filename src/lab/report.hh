/**
 * @file
 * Structured emission of Scenario Lab sweep reports.
 *
 * JSON is the machine interface (one object per scenario under a
 * top-level "scenarios" array); CSV is the flat-table form for
 * spreadsheets and plotting. Both serializations are byte-identical
 * for a given (scenario grid, trials, seed) at any thread count:
 * every field is aggregated deterministically by SweepRunner, and the
 * one non-deterministic quantity — measured wall time — is only
 * emitted when @p include_timing is set.
 */

#ifndef DNASTORE_LAB_REPORT_HH
#define DNASTORE_LAB_REPORT_HH

#include <string>
#include <vector>

#include "lab/sweep.hh"

namespace dnastore {

/** Serialize sweep reports as pretty-printed JSON. */
std::string reportsToJson(const std::vector<ScenarioReport> &reports,
                          const SweepOptions &opt,
                          bool include_timing = false);

/** Serialize sweep reports as a CSV table (one row per scenario). */
std::string reportsToCsv(const std::vector<ScenarioReport> &reports,
                         bool include_timing = false);

} // namespace dnastore

#endif // DNASTORE_LAB_REPORT_HH

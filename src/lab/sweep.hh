/**
 * @file
 * Deterministic Monte-Carlo sweep runner.
 *
 * Runs N independent trials of a Scenario and aggregates them into a
 * ScenarioReport. Trials fan out over the shared work-stealing
 * ThreadPool (util/thread_pool.hh): each trial derives its entire
 * randomness from a per-trial seed drawn serially up front, writes
 * into its own result slot, and aggregation walks the slots in trial
 * order afterwards — so the report (and its JSON/CSV serialization,
 * lab/report.hh) is bit-identical for every thread count and steal
 * schedule. Wall time is the one non-deterministic field; the report
 * writers exclude it unless explicitly asked.
 */

#ifndef DNASTORE_LAB_SWEEP_HH
#define DNASTORE_LAB_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lab/scenario.hh"

namespace dnastore {

/** Sweep-wide knobs. */
struct SweepOptions
{
    /** Monte-Carlo trials per scenario. */
    size_t trials = 100;

    /** Worker threads (1 = serial, 0 = all hardware threads). */
    size_t threads = 1;

    /** Base seed; per-trial seeds derive from it and the scenario. */
    uint64_t seed = 20220618;
};

/** Deterministic per-trial record (one Monte-Carlo sample). */
struct TrialRecord
{
    bool success = false;
    double byteErrorRate = 0.0;
    size_t erasedColumns = 0;
    size_t failedCodewords = 0;
    size_t correctedErrors = 0;
    size_t readsGenerated = 0;
    size_t clustersDropped = 0;
    double precision = 0.0; //!< Clustered scenarios only.
    double recall = 0.0;    //!< Clustered scenarios only.

    // Aging scenarios only (Scenario::agingEpochs > 0); success and
    // byteErrorRate then describe the final epoch.
    std::vector<uint8_t> epochSuccess; //!< Decode success per epoch.
    size_t readsLost = 0;              //!< Reads lost to aging.
    size_t scrubRepaired = 0;          //!< Clusters scrub rewrote.
};

/** Aggregated result of sweeping one scenario. */
struct ScenarioReport
{
    std::string scenario;
    std::string description;
    size_t trials = 0;
    size_t successes = 0;
    double successRate = 0.0;
    double meanByteErrorRate = 0.0;
    double maxByteErrorRate = 0.0;
    double meanErasedColumns = 0.0;
    double meanFailedCodewords = 0.0;
    double meanCorrectedErrors = 0.0;
    double meanReads = 0.0;
    double meanClustersDropped = 0.0;
    bool clustered = false;
    double meanPrecision = 0.0; //!< Clustered scenarios only.
    double meanRecall = 0.0;    //!< Clustered scenarios only.

    /**
     * Aging scenarios only: epochs per trial, the success rate after
     * each epoch (the decay — or closed-loop — curve), and the mean
     * per-trial repair work. The scalar success fields describe the
     * final epoch.
     */
    size_t agingEpochs = 0;
    std::vector<double> epochSuccessRate;
    double meanReadsLost = 0.0;
    double meanScrubRepaired = 0.0;

    /** Threshold echoed from the scenario (regression bound). */
    double minSuccessRate = 0.0;

    /**
     * True when successes >= floor(minSuccessRate * trials). The
     * bound is quantized to whole trials so reduced-trial runs
     * (DNASTORE_SWEEP_TRIALS) don't fail a healthy scenario on
     * rounding alone.
     */
    bool passed = false;

    /**
     * Measured wall time of the whole sweep. Non-deterministic by
     * nature: report serializers omit it unless asked.
     */
    double wallMs = 0.0;

    /** Per-trial records, trial order (deterministic). */
    std::vector<TrialRecord> perTrial;
};

/** Monte-Carlo runner over the scenario grid. */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &opt) : opt_(opt) {}

    /** Sweep one scenario. */
    ScenarioReport run(const Scenario &scenario) const;

    /** Sweep several scenarios, in the given order. */
    std::vector<ScenarioReport> runAll(
        const std::vector<Scenario> &scenarios) const;

    const SweepOptions &options() const { return opt_; }

  private:
    SweepOptions opt_;
};

} // namespace dnastore

#endif // DNASTORE_LAB_SWEEP_HH

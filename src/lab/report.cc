#include "lab/report.hh"

#include <cstdio>
#include <sstream>

#include "util/csv.hh"

namespace dnastore {

namespace {

/**
 * Deterministic decimal form for identical doubles ("%.17g" would be
 * exact but noisy; 12 significant digits are plenty for rates and
 * means built from <= millions of integer-valued samples). snprintf
 * honors LC_NUMERIC, so the decimal separator is normalized back to
 * '.' — the byte-identity and JSON-validity contract must not depend
 * on the host program's locale.
 */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    std::string out = buf;
    for (auto &c : out) {
        if (c == ',')
            c = '.';
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
reportsToJson(const std::vector<ScenarioReport> &reports,
              const SweepOptions &opt, bool include_timing)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"seed\": " << opt.seed << ",\n";
    out << "  \"trials\": " << opt.trials << ",\n";
    out << "  \"scenarios\": [";
    bool first = true;
    for (const auto &r : reports) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\n";
        out << "      \"name\": \"" << jsonEscape(r.scenario) << "\",\n";
        out << "      \"description\": \"" << jsonEscape(r.description)
            << "\",\n";
        out << "      \"trials\": " << r.trials << ",\n";
        out << "      \"successes\": " << r.successes << ",\n";
        out << "      \"success_rate\": " << fmtDouble(r.successRate)
            << ",\n";
        out << "      \"min_success_rate\": "
            << fmtDouble(r.minSuccessRate) << ",\n";
        out << "      \"passed\": " << (r.passed ? "true" : "false")
            << ",\n";
        out << "      \"byte_error_rate_mean\": "
            << fmtDouble(r.meanByteErrorRate) << ",\n";
        out << "      \"byte_error_rate_max\": "
            << fmtDouble(r.maxByteErrorRate) << ",\n";
        out << "      \"erased_columns_mean\": "
            << fmtDouble(r.meanErasedColumns) << ",\n";
        out << "      \"failed_codewords_mean\": "
            << fmtDouble(r.meanFailedCodewords) << ",\n";
        out << "      \"corrected_errors_mean\": "
            << fmtDouble(r.meanCorrectedErrors) << ",\n";
        out << "      \"reads_mean\": " << fmtDouble(r.meanReads)
            << ",\n";
        out << "      \"clusters_dropped_mean\": "
            << fmtDouble(r.meanClustersDropped) << ",\n";
        out << "      \"clustered\": "
            << (r.clustered ? "true" : "false");
        if (r.clustered) {
            out << ",\n      \"cluster_precision_mean\": "
                << fmtDouble(r.meanPrecision);
            out << ",\n      \"cluster_recall_mean\": "
                << fmtDouble(r.meanRecall);
        }
        if (r.agingEpochs > 0) {
            // The durability-loop curve: success rate after each
            // aging epoch. The scalar success fields above describe
            // the final epoch.
            out << ",\n      \"aging_epochs\": " << r.agingEpochs;
            out << ",\n      \"epoch_success_rate\": [";
            for (size_t e = 0; e < r.epochSuccessRate.size(); ++e)
                out << (e == 0 ? "" : ", ")
                    << fmtDouble(r.epochSuccessRate[e]);
            out << "]";
            out << ",\n      \"reads_lost_mean\": "
                << fmtDouble(r.meanReadsLost);
            out << ",\n      \"scrub_repaired_mean\": "
                << fmtDouble(r.meanScrubRepaired);
        }
        if (include_timing)
            out << ",\n      \"wall_ms\": " << fmtDouble(r.wallMs);
        out << "\n    }";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

std::string
reportsToCsv(const std::vector<ScenarioReport> &reports,
             bool include_timing)
{
    std::ostringstream out;
    std::vector<std::string> columns = {
        "scenario",           "trials",
        "successes",          "success_rate",
        "min_success_rate",   "passed",
        "byte_error_rate",    "byte_error_rate_max",
        "erased_columns",     "failed_codewords",
        "corrected_errors",   "reads",
        "clusters_dropped",   "cluster_precision",
        "cluster_recall",
    };
    if (include_timing)
        columns.push_back("wall_ms");
    CsvWriter csv(out, columns);
    for (const auto &r : reports) {
        // Non-clustered scenarios report empty precision/recall cells
        // rather than misleading zeros.
        std::string precision =
            r.clustered ? fmtDouble(r.meanPrecision) : "";
        std::string recall = r.clustered ? fmtDouble(r.meanRecall) : "";
        if (include_timing) {
            csv.row(r.scenario, r.trials, r.successes,
                    fmtDouble(r.successRate),
                    fmtDouble(r.minSuccessRate), r.passed ? 1 : 0,
                    fmtDouble(r.meanByteErrorRate),
                    fmtDouble(r.maxByteErrorRate),
                    fmtDouble(r.meanErasedColumns),
                    fmtDouble(r.meanFailedCodewords),
                    fmtDouble(r.meanCorrectedErrors),
                    fmtDouble(r.meanReads),
                    fmtDouble(r.meanClustersDropped), precision, recall,
                    fmtDouble(r.wallMs));
        } else {
            csv.row(r.scenario, r.trials, r.successes,
                    fmtDouble(r.successRate),
                    fmtDouble(r.minSuccessRate), r.passed ? 1 : 0,
                    fmtDouble(r.meanByteErrorRate),
                    fmtDouble(r.maxByteErrorRate),
                    fmtDouble(r.meanErasedColumns),
                    fmtDouble(r.meanFailedCodewords),
                    fmtDouble(r.meanCorrectedErrors),
                    fmtDouble(r.meanReads),
                    fmtDouble(r.meanClustersDropped), precision,
                    recall);
        }
    }
    return out.str();
}

} // namespace dnastore

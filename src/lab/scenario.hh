/**
 * @file
 * Scenario Lab: declarative reliability scenarios.
 *
 * A Scenario composes a channel profile (base IDS model + stressors,
 * channel/stressors.hh), a coverage model, a unit geometry, and a
 * payload into one named, reproducible workload, together with the
 * decode-success threshold the statistical regression suite enforces
 * for it. The named registry (allScenarios) is the grid the
 * `dnastore sweep` subcommand and tests/lab/ run over: every future
 * perf PR is checked against decode *reliability* on these hostile
 * profiles, not just bit-identity on the nominal channel.
 *
 * Thresholds are chosen from calibration runs (1000 trials at seed
 * 20220618) with a safety margin below the observed success rate; see
 * the README's Scenario Lab section for the method and the measured
 * rates behind each bound.
 */

#ifndef DNASTORE_LAB_SCENARIO_HH
#define DNASTORE_LAB_SCENARIO_HH

#include <string>
#include <vector>

#include "channel/coverage.hh"
#include "channel/stressors.hh"
#include "cluster/clusterer.hh"
#include "pipeline/bundle.hh"
#include "pipeline/config.hh"

namespace dnastore {

/** One named reliability workload. */
struct Scenario
{
    std::string name;
    std::string description;

    /** Unit geometry (lab scenarios use tinyTest-derived geometry). */
    StorageConfig config = StorageConfig::tinyTest();
    LayoutScheme scheme = LayoutScheme::Gini;

    /**
     * Synthetic payload stored per trial run (deterministic). The
     * default nearly fills the tinyTest unit (capacity 2496 bytes
     * including the directory): a mostly-empty unit would pad with
     * zero columns whose identical strands are true near-duplicates,
     * which the clustered scenarios would then legitimately merge
     * (see README), skewing precision for reasons unrelated to the
     * channel.
     */
    size_t payloadBytes = 2432;
    uint64_t payloadSeed = 1;

    /**
     * When set, makePayload() returns this bundle instead of the
     * synthetic payload — how `sweep --from-pool` runs the hostile
     * grid over a durable pool file's real objects (the loader also
     * replaces config/scheme with the file's, so the override always
     * fits its unit).
     */
    FileBundle payloadOverride;
    bool hasPayloadOverride = false;

    /** Channel profile the reads suffer. */
    ChannelProfile channel;

    /** Mean reads per cluster. */
    double coverageMean = 8.0;

    /**
     * Gamma shape of the coverage distribution; 0 = fixed coverage of
     * exactly coverageMean reads per cluster.
     */
    double coverageShape = 0.0;

    /** Decode through the real clusterer instead of perfect grouping. */
    bool clustered = false;
    ClusterParams clusterParams;

    /**
     * When > 0, trials run the closed durability loop instead of one
     * decode: per epoch the trial pool ages by channel.aging, is
     * optionally scrubbed, and is decoded — the sweep reports the
     * success-rate-vs-epoch curve, and the scenario's threshold
     * applies to the FINAL epoch. Needs fixed coverage (coverageShape
     * = 0) and no clusterer.
     */
    size_t agingEpochs = 0;

    /** Scrub after each epoch's decay (the repair half of the loop). */
    bool scrubEachEpoch = false;

    /** Scrub policy: repair clusters below this many live reads. */
    size_t scrubMinReads = 0;

    /** Scrub policy: repair below this consensus agreement. */
    double scrubMinAgreement = 0.0;

    /**
     * Minimum decode-success rate the regression suite enforces for
     * this scenario (fraction of trials recovering the payload
     * byte-exactly).
     */
    double minSuccessRate = 0.99;

    /** Instantiate the coverage model. */
    CoverageModel makeCoverage() const;

    /** Build the deterministic payload bundle. */
    FileBundle makePayload() const;
};

/** The named scenario grid, in canonical order. */
const std::vector<Scenario> &allScenarios();

/** Look up a scenario by name; nullptr if unknown. */
const Scenario *findScenario(const std::string &name);

} // namespace dnastore

#endif // DNASTORE_LAB_SCENARIO_HH

/**
 * @file
 * Hot-path performance report: measures ns/op for the simulator's
 * performance-critical substrates and emits machine-readable JSON, so
 * every PR leaves a perf trajectory to regress against (BENCH_*.json
 * at the repo root; see tools/perf_compare.py for the before/after
 * merge).
 *
 * Uses only long-stable public APIs so the same source file compiles
 * against older revisions of the library for baseline measurements;
 * benches of newer APIs are gated on __has_include.
 *
 * Flags:
 *   --out FILE        Write the JSON report to FILE (default stdout).
 *   --min-time-ms N   Target measuring time per bench (default 300).
 *   --quick           One timed iteration per bench (CI smoke mode).
 *   --only SUBSTR     Run only benches whose name contains SUBSTR.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel/ids_channel.hh"
#include "consensus/two_sided.hh"
#include "dna/strand.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "pipeline/bundle.hh"
#include "pipeline/simulator.hh"
#include "util/parse.hh"
#include "util/rng.hh"

#if defined(__has_include)
#if __has_include("dna/packed_strand.hh")
#include "dna/packed_strand.hh"
#define DNASTORE_HAVE_PACKED_STRAND 1
#endif
#if __has_include("cluster/clusterer.hh")
#include "cluster/clusterer.hh"
#define DNASTORE_HAVE_CLUSTERER 1
#endif
#if __has_include("consensus/bma.hh")
#include "consensus/bma.hh"
#define DNASTORE_HAVE_BMA 1
#endif
#if __has_include("util/thread_pool.hh")
// Marks the PR 3 API surface: SIMD kernels, sharded clustering,
// thread-pool-backed parallel loops.
#include "util/simd.hh"
#include "util/thread_pool.hh"
#define DNASTORE_HAVE_THREAD_POOL 1
#endif
#if __has_include("lab/scenario.hh")
// Marks the PR 4 API surface: Scenario Lab channel stressors and
// Monte-Carlo trials.
#include "lab/scenario.hh"
#define DNASTORE_HAVE_LAB 1
#endif
#if __has_include("api/api.hh")
// Marks the PR 5 API surface: the public Store façade. The e2e
// benches run through it so the path every front-end takes is the
// path the perf trajectory tracks.
#include "api/api.hh"
#define DNASTORE_HAVE_API 1
#endif
#if __has_include("api/pool_file.hh")
// Marks the PR 6 API surface: the durable .dnapool format and
// Store::save / Store::openFile.
#include "api/pool_file.hh"
#define DNASTORE_HAVE_POOL_FILE 1
#endif
#if __has_include("api/health.hh")
// Marks the PR 7 API surface: the durability loop — health
// telemetry, the aging fault injector, scrub repair.
#include "api/health.hh"
#define DNASTORE_HAVE_DURABILITY 1
#endif
#if __has_include("cluster/stream.hh")
// Marks the PR 8 API surface: bounded-memory streaming clustering
// with out-of-core spill segments.
#include "cluster/stream.hh"
#define DNASTORE_HAVE_STREAM_CLUSTER 1
#endif
#endif

namespace dnastore {
namespace {

volatile uint64_t g_sink; // defeat dead-code elimination

struct BenchResult
{
    std::string name;
    double nsPerOp;
    uint64_t iters;
};

struct Options
{
    const char *out = nullptr;
    double minTimeMs = 300.0;
    bool quick = false;
    const char *only = nullptr;
};

double
nowNs()
{
    using namespace std::chrono;
    return double(duration_cast<nanoseconds>(
                      steady_clock::now().time_since_epoch())
                      .count());
}

/** Run @p op repeatedly until the time target is met; report ns/op. */
BenchResult
runBench(const char *name, const Options &opt,
         const std::function<void()> &op)
{
    op(); // warm caches, scratch buffers, and page in tables
    if (opt.quick) {
        double t0 = nowNs();
        op();
        double t1 = nowNs();
        return { name, t1 - t0, 1 };
    }
    const double target_ns = opt.minTimeMs * 1e6;
    uint64_t iters = 0;
    uint64_t batch = 1;
    double elapsed = 0;
    while (elapsed < target_ns) {
        double t0 = nowNs();
        for (uint64_t i = 0; i < batch; ++i)
            op();
        double t1 = nowNs();
        elapsed += t1 - t0;
        iters += batch;
        if (batch < (uint64_t(1) << 20))
            batch *= 2;
    }
    return { name, elapsed / double(iters), iters };
}

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

FileBundle
randomBundle(size_t bytes, Rng &rng)
{
    std::vector<uint8_t> data(bytes);
    for (auto &x : data)
        x = uint8_t(rng.next());
    FileBundle bundle;
    bundle.add("payload.bin", std::move(data));
    return bundle;
}

void
collect(std::vector<BenchResult> &results, const Options &opt)
{
    auto wants = [&opt](const char *name) {
        return opt.only == nullptr ||
            std::string(name).find(opt.only) != std::string::npos;
    };
    auto add = [&](const char *name,
                   const std::function<void()> &op) {
        if (wants(name))
            results.push_back(runBench(name, opt, op));
    };
    // Heavy benches (minutes per op): always a single timed
    // iteration with no warmup, and skipped entirely in --quick smoke
    // mode unless --only names them explicitly.
    auto addHeavy = [&](const char *name,
                        const std::function<void()> &op) {
        if (!wants(name))
            return;
        if (opt.quick && opt.only == nullptr)
            return;
        double t0 = nowNs();
        op();
        double t1 = nowNs();
        results.push_back({ name, t1 - t0, 1 });
    };
    (void)addHeavy;

    // --- Galois field multiply (bench-scale and paper-scale fields).
    for (unsigned m : { 10u, 16u }) {
        GaloisField gf(m);
        Rng rng(1);
        uint32_t a = 1 + uint32_t(rng.nextBelow(gf.order()));
        uint32_t b = 1 + uint32_t(rng.nextBelow(gf.order()));
        std::string name = "gf_mul_m" + std::to_string(m);
        add(name.c_str(), [gf = std::move(gf), a, b]() mutable {
            // 1024 dependent multiplies per op to swamp loop overhead.
            uint32_t x = a;
            for (int i = 0; i < 1024; ++i)
                x = gf.mul(x, b) | 1;
            g_sink ^= x;
        });
    }

    // --- Reed-Solomon at the default operating point: GF(2^10),
    // E = 188 (18.4% redundancy), as benchScale() uses.
    {
        GaloisField gf(10);
        ReedSolomon rs(gf, 188);
        Rng rng(2);
        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        auto clean = rs.encode(data);

        add("rs_encode_m10", [&rs, &data]() {
            g_sink ^= rs.encode(data)[0];
        });

        std::vector<uint32_t> buf = clean;
        add("rs_decode_clean_m10", [&rs, &buf]() {
            g_sink ^= uint64_t(rs.decode(buf).success);
        });

        auto noisy10 = clean;
        {
            Rng r2(3);
            for (size_t e = 0; e < 10; ++e)
                noisy10[r2.nextBelow(noisy10.size())] ^= 1;
        }
        std::vector<uint32_t> work;
        add("rs_decode_err10_m10", [&rs, &noisy10, &work]() {
            work = noisy10;
            g_sink ^= uint64_t(rs.decode(work).success);
        });

        std::vector<size_t> erasures;
        for (size_t i = 0; i < 20; ++i)
            erasures.push_back(i * 37);
        auto erased = clean;
        for (size_t pos : erasures)
            erased[pos] ^= 0x3f;
        add("rs_decode_erasures20_m10",
            [&rs, &erased, &erasures, &work]() {
                work = erased;
                g_sink ^= uint64_t(rs.decode(work, erasures).success);
            });
    }

    // --- Paper-scale field: clean-codeword decode over GF(2^16).
    {
        GaloisField gf(16);
        ReedSolomon rs(gf, 32);
        Rng rng(4);
        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        // A clean decode leaves the buffer untouched, so it is safely
        // reused across iterations.
        std::vector<uint32_t> buf = rs.encode(data);
        add("rs_decode_clean_m16", [&rs, &buf]() {
            g_sink ^= uint64_t(rs.decode(buf).success);
        });
    }

    // --- IDS channel transmission, default strand geometry.
    {
        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng(5);
        Strand strand = randomStrand(455, rng);
        add("ids_transmit_455", [&channel, &strand, &rng]() {
            g_sink ^= channel.transmit(strand, rng).size();
        });
    }

    // --- Edit distance between two noisy 455-base strands.
    {
        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng(6);
        Strand original = randomStrand(455, rng);
        Strand a = channel.transmit(original, rng);
        Strand b = channel.transmit(original, rng);
        add("edit_distance_455", [&a, &b]() {
            g_sink ^= editDistance(a, b);
        });
    }

    // --- Two-sided consensus at coverage 10.
    {
        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng(7);
        Strand original = randomStrand(455, rng);
        auto reads = channel.transmitCluster(original, 10, rng);
        add("consensus_two_sided_c10", [&reads]() {
            g_sink ^= reconstructTwoSided(reads, 455).size();
        });
    }

#ifdef DNASTORE_HAVE_PACKED_STRAND
    // --- 2-bit packing round trip (new API; skipped on baselines).
    {
        Rng rng(8);
        Strand s = randomStrand(455, rng);
        PackedStrand packed(s);
        Strand out;
        add("packed_pack_455", [&s, &packed]() {
            packed.pack(s);
            g_sink ^= packed.wordCount();
        });
        add("packed_unpack_455", [&packed, &out]() {
            packed.unpack(out);
            g_sink ^= uint64_t(bitsFromBase(out[17]));
        });
    }
#endif

#ifdef DNASTORE_HAVE_BMA
    // --- One-way BMA consensus at coverage 10 (the decode-side inner
    // loop the SIMD unanimity/histogram kernels accelerate).
    {
        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng(12);
        Strand original = randomStrand(455, rng);
        auto reads = channel.transmitCluster(original, 10, rng);
        add("consensus_bma_c10", [&reads]() {
            g_sink ^= reconstructOneWay(reads, 455).size();
        });
    }
#endif

#ifdef DNASTORE_HAVE_CLUSTERER
    // --- Read clustering: 1000 strands x coverage 10 = 10k noisy
    // reads, the Rashtchian-style pre-consensus grouping stage.
    {
        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng(13);
        std::vector<Strand> reads;
        reads.reserve(10000);
        for (size_t s = 0; s < 1000; ++s) {
            Strand original = randomStrand(120, rng);
            for (size_t c = 0; c < 10; ++c)
                reads.push_back(channel.transmit(original, rng));
        }
        add("cluster_reads_n10k", [&reads]() {
            g_sink ^= clusterReads(reads).count();
        });
#ifdef DNASTORE_HAVE_THREAD_POOL
        ClusterParams par8;
        par8.numThreads = 8;
        add("cluster_reads_n10k_t8", [&reads, par8]() {
            g_sink ^= clusterReads(reads, par8).count();
        });
#endif
    }
#endif

#ifdef DNASTORE_HAVE_STREAM_CLUSTER
    // --- Streaming out-of-core clustering at soup scale. Reads are
    // generated on the fly and fed straight into the engine — the
    // soup never exists as a std::vector<Strand>, which is the
    // engine's whole point. qgram 12 keeps the gram space (4^12)
    // comfortably wider than the strand count, as a real pipeline
    // would configure at this scale. n10m spills: the 256 MiB budget
    // is far below the ~500 MiB of packed records 10M reads produce.
    {
        auto streamSoup = [](const char *label, size_t n_strands,
                             size_t coverage, size_t budget_bytes) {
            ClusterParams params;
            params.qgram = 12;
            params.memoryBudgetBytes = budget_bytes;
            StreamingClusterer engine(params);
            IdsChannel channel(ErrorModel::uniform(0.05));
            Rng rng(19);
            for (size_t s = 0; s < n_strands; ++s) {
                Strand original = randomStrand(120, rng);
                for (size_t c = 0; c < coverage; ++c)
                    engine.add(channel.transmit(original, rng));
            }
            g_sink ^= engine.finish().count();
            const StreamStats &stats = engine.stats();
            std::fprintf(stderr,
                         "%s: %zu reads, %zu shards, peak buffer "
                         "%zu KiB, spilled %zu KiB\n",
                         label, stats.reads, stats.shards,
                         stats.peakBufferBytes >> 10,
                         stats.spilledBytes >> 10);
        };
        addHeavy("cluster_stream_n1m", [&streamSoup]() {
            streamSoup("cluster_stream_n1m", 100000, 10,
                       size_t(512) << 20);
        });
        addHeavy("cluster_stream_n10m_spill", [&streamSoup]() {
            streamSoup("cluster_stream_n10m_spill", 1000000, 10,
                       size_t(256) << 20);
        });
    }
#endif

#ifdef DNASTORE_HAVE_THREAD_POOL
    // --- SIMD kernel microbenches (new API; skipped on baselines).
    {
        Rng rng(14);
        Strand s = randomStrand(455, rng);
        Strand t = s;
        t[100] = baseFromBits(bitsFromBase(t[100]) ^ 1);
        PackedStrand pa(s), pb(t);
        add("packed_mismatch_455", [&pa, &pb]() {
            g_sink ^= pa.mismatchCount(pb);
        });

        IdsChannel channel(ErrorModel::uniform(0.05));
        Rng rng2(15);
        Strand original = randomStrand(455, rng2);
        Strand pattern = channel.transmit(original, rng2);
        std::vector<Strand> cand_store;
        for (int i = 0; i < 8; ++i)
            cand_store.push_back(channel.transmit(original, rng2));
        std::vector<StrandView> cands(cand_store.begin(),
                                      cand_store.end());
        std::vector<uint32_t> dists(cands.size());
        add("edit_batch8_455", [&pattern, &cands, &dists]() {
            editDistanceBatch(pattern.data(), pattern.size(),
                              cands.data(), cands.size(),
                              dists.data());
            g_sink ^= dists[7];
        });
    }
#endif

    // --- End-to-end simulate at the default operating point:
    // benchScale geometry, 5% IDS error, coverage 10. Runs through
    // the public Store façade (api/store.hh) when available, so the
    // measured path is the one every front-end takes; older
    // revisions fall back to the raw simulator.
    {
        StorageConfig cfg = StorageConfig::benchScale();
        cfg.numThreads = 1; // measure single-thread throughput
        Rng rng(9);
        FileBundle bundle = randomBundle(cfg.capacityBytes() / 2, rng);
        ErrorModel model = ErrorModel::uniform(0.05);

#ifdef DNASTORE_HAVE_API
        (void)cfg;
        (void)model;
        auto openStore = [&bundle](size_t threads) {
            api::StoreOptions sopt = api::StoreOptions::bench();
            sopt.layout(LayoutScheme::Baseline)
                .threads(threads)
                .unitSeed(42);
            api::ChannelOptions copt;
            copt.errorRate(0.05).coverage(10);
            api::Result<api::Store> store =
                api::Store::open(sopt, copt);
            if (!store.ok()) {
                std::fprintf(stderr, "e2e bench store: %s\n",
                             store.status().toString().c_str());
                std::exit(1);
            }
            for (const auto &file : bundle.files()) {
                api::Status status = store->put(file.name, file.data);
                if (!status.ok()) {
                    std::fprintf(stderr, "e2e bench put: %s\n",
                                 status.toString().c_str());
                    std::exit(1);
                }
            }
            return std::move(*store);
        };
        auto store = std::make_shared<api::Store>(openStore(1));
        // Note for cross-revision comparisons: through the façade,
        // synthesize() includes config resolution and simulator
        // construction per call (the cost every front-end pays); the
        // pre-API baseline measured sim.store() alone.
        add("e2e_store_cov10", [store]() {
            store->synthesize();
            g_sink ^= store->strandCount();
        });
        store->synthesize();
        // retrieveAt() rather than retrieveAll(): the latter memoizes
        // the configured-coverage pass on a clean store, which would
        // turn iterations 2..n into cache hits.
        add("e2e_retrieve_cov10", [store]() {
            g_sink ^= uint64_t(store->retrieveAt(10)->exact);
        });
        add("e2e_simulate_cov10", [store]() {
            store->synthesize();
            g_sink ^= uint64_t(store->retrieveAt(10)->exact);
        });

        // Thread-scaling points for the same retrieve: the decoder's
        // per-cluster consensus and per-codeword RS loops run as
        // stealable batches on cfg.numThreads workers. Results are
        // bit-identical across thread counts; only the wall clock
        // moves (and only on hosts with that many cores).
        for (size_t t : { size_t(1), size_t(4), size_t(8) }) {
            std::string name = "e2e_retrieve_t" + std::to_string(t);
            if (!wants(name.c_str()))
                continue;
            auto tstore = std::make_shared<api::Store>(openStore(t));
            tstore->synthesize();
            results.push_back(runBench(name.c_str(), opt, [tstore]() {
                g_sink ^= uint64_t(tstore->retrieveAt(10)->exact);
            }));
        }
#else
        StorageSimulator sim(cfg, LayoutScheme::Baseline, model, 42);
        add("e2e_store_cov10", [&sim, &bundle]() {
            sim.store(bundle, 10);
            g_sink ^= sim.unit().strands.size();
        });
        sim.store(bundle, 10);
        add("e2e_retrieve_cov10", [&sim]() {
            g_sink ^= uint64_t(sim.retrieve(10).exactPayload);
        });
        add("e2e_simulate_cov10", [&sim, &bundle]() {
            sim.store(bundle, 10);
            g_sink ^= uint64_t(sim.retrieve(10).exactPayload);
        });

        for (size_t t : { size_t(1), size_t(4), size_t(8) }) {
            StorageConfig tcfg = cfg;
            tcfg.numThreads = t;
            std::string name = "e2e_retrieve_t" + std::to_string(t);
            if (!wants(name.c_str()))
                continue;
            StorageSimulator tsim(tcfg, LayoutScheme::Baseline, model,
                                  42);
            tsim.store(bundle, 10);
            results.push_back(runBench(name.c_str(), opt, [&tsim]() {
                g_sink ^= uint64_t(tsim.retrieve(10).exactPayload);
            }));
        }
#endif
    }

#ifdef DNASTORE_HAVE_LAB
    // --- Scenario Lab: one Monte-Carlo trial of the nominal and the
    // most stressor-heavy profiles (tinyTest geometry). Tracks the
    // per-trial cost that bounds how many trials reliability CI can
    // afford per scenario.
    {
        for (const char *name : { "nominal", "nanopore-hostile" }) {
            const Scenario *scenario = findScenario(name);
            if (scenario == nullptr)
                continue;
            std::string bench =
                std::string("lab_trial_") + scenario->name;
            if (!wants(bench.c_str()))
                continue;
            StorageSimulator sim(scenario->config, scenario->scheme,
                                 scenario->channel, 42);
            sim.prepare(scenario->makePayload());
            CoverageModel coverage = scenario->makeCoverage();
            uint64_t trial = 0;
            results.push_back(runBench(
                bench.c_str(), opt, [&sim, &coverage, &trial]() {
                    g_sink ^= uint64_t(
                        sim.runTrial(coverage, trial++)
                            .result.exactPayload);
                }));
        }
    }
#endif

#ifdef DNASTORE_HAVE_POOL_FILE
    // --- Durable pools: serialize/parse of the .dnapool image and a
    // full Store::openFile (parse + re-encode cross-check + pool
    // restore), tinyTest geometry at coverage 8 with pools included.
    {
        const char *path = "/tmp/dnastore_perf_pool.dnapool";
        api::StoreOptions sopt = api::StoreOptions::tiny();
        sopt.unitSeed(42);
        api::ChannelOptions copt;
        copt.errorRate(0.03).coverage(8);
        api::Result<api::Store> store = api::Store::open(sopt, copt);
        bool ready = store.ok();
        if (ready) {
            Rng rng(16);
            FileBundle payload =
                randomBundle(StorageConfig::tinyTest().capacityBytes() / 2,
                             rng);
            for (const auto &file : payload.files())
                ready = ready && store->put(file.name, file.data).ok();
            ready = ready && store->save(path).ok();
        }
        if (ready) {
            api::Result<api::PoolFileContents> contents =
                api::readPoolFile(path);
            if (contents.ok()) {
                add("pool_serialize_tiny", [&contents]() {
                    g_sink ^= api::serializePoolFile(*contents).size();
                });
                const std::vector<uint8_t> bytes =
                    api::serializePoolFile(*contents);
                add("pool_parse_tiny", [&bytes]() {
                    g_sink ^= uint64_t(api::parsePoolFile(bytes).ok());
                });
            }
            add("pool_open_file_tiny", [path, &copt]() {
                api::Result<api::Store> reopened =
                    api::Store::openFile(path, copt);
                g_sink ^= uint64_t(reopened.ok());
            });
            std::remove(path);
        } else {
            std::fprintf(stderr, "pool bench setup failed: %s\n",
                         store.status().toString().c_str());
        }
    }
#endif

#ifdef DNASTORE_HAVE_DURABILITY
    // --- Durability loop: the health probe (full-depth decode plus
    // per-cluster/per-codeword telemetry), a no-op scrub scan, a
    // repair-all rewrite of every cluster, and one closed-loop aging
    // trial (age + scrub + decode per epoch). Tracks the cost of
    // background maintenance relative to e2e_retrieve.
    {
        AgingProfile aging;
        aging.strandLossRate = 0.25;
        aging.substitutionRate = 0.004;
        api::StoreOptions sopt = api::StoreOptions::tiny();
        sopt.unitSeed(42);
        api::ChannelOptions copt;
        copt.errorRate(0.02).coverage(8).aging(aging);
        api::Result<api::Store> store = api::Store::open(sopt, copt);
        bool ready = store.ok();
        if (ready) {
            Rng rng(17);
            FileBundle payload = randomBundle(
                StorageConfig::tinyTest().capacityBytes() / 2, rng);
            for (const auto &file : payload.files())
                ready = ready && store->put(file.name, file.data).ok();
        }
        if (ready) {
            api::Store *st = &*store;
            add("health_probe_tiny", [st]() {
                g_sink ^= uint64_t(st->health()->exact);
            });
            add("scrub_scan_noop_tiny", [st]() {
                g_sink ^= st->scrub()->clustersScanned;
            });
            api::ScrubOptions repair_all;
            repair_all.repairAll = true;
            add("scrub_repair_all_tiny", [st, repair_all]() {
                g_sink ^= st->scrub(repair_all)->repaired;
            });
        } else {
            std::fprintf(stderr,
                         "durability bench setup failed: %s\n",
                         store.status().toString().c_str());
        }

        // The lab-path closed loop: each op runs one independent
        // trial — synthesize a trial-local pool, then six epochs of
        // decay each followed by a scrub and a full decode.
        ChannelProfile profile;
        profile.base = ErrorModel::uniform(0.02);
        profile.aging = aging;
        StorageSimulator sim(StorageConfig::tinyTest(),
                             LayoutScheme::Baseline, profile, 42);
        Rng rng(18);
        sim.prepare(randomBundle(
            StorageConfig::tinyTest().capacityBytes() / 2, rng));
        ScrubPolicy policy;
        policy.minReads = 6;
        uint64_t trial = 0;
        add("lab_trial_scrub_loop", [&sim, &policy, &trial]() {
            g_sink ^= uint64_t(
                sim.runAgingTrial(8, trial++, 6, true, policy)
                    .epochSuccess.back());
        });
    }
#endif
}

int
perfReportMain(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (std::strcmp(argv[i], "--min-time-ms") == 0 &&
                   i + 1 < argc) {
            ++i;
            if (!parseF64(argv[i], &opt.minTimeMs) ||
                opt.minTimeMs <= 0) {
                std::fprintf(stderr,
                             "--min-time-ms: not a positive number "
                             "(got '%s')\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            opt.only = argv[++i];
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
            return 2;
        }
    }

    std::vector<BenchResult> results;
    collect(results, opt);

    std::FILE *f = opt.out ? std::fopen(opt.out, "w") : stdout;
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", opt.out);
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"dnastore-perf-report-v1\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", opt.quick ? "true" : "false");
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                     "\"iters\": %llu}%s\n",
                     results[i].name.c_str(), results[i].nsPerOp,
                     (unsigned long long)results[i].iters,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (opt.out)
        std::fclose(f);
    return 0;
}

} // namespace
} // namespace dnastore

int
main(int argc, char **argv)
{
    return dnastore::perfReportMain(argc, argv);
}

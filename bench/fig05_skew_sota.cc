/**
 * @file
 * Figure 5: reliability skew of the state-of-the-art iterative
 * reconstruction algorithm across channel parameters.
 *
 * Curves (as in the paper): uniform p in {5, 10, 15}% at N=5, p=15% at
 * N=6, indel-only 5%+5% at N=5, and substitution-only 10% at N=5.
 * Expected shape: all indel-bearing curves keep the mid-strand skew
 * (higher p / lower N => higher peak); the substitution-only curve is
 * flat and near zero. Wrong-length outputs are excluded exactly as in
 * the paper's footnote 2.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "consensus/profiler.hh"
#include "consensus/realign.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t trials = bench::flagValue(argc, argv, "--trials", 500);
    const size_t len = 200;

    bench::banner("Figure 5",
                  "skew of the iterative (Sabary-style) "
                  "reconstruction, L=200");

    struct Curve
    {
        std::string label;
        ErrorModel model;
        size_t coverage;
    };
    const std::vector<Curve> curves = {
        { "P=5%,N=5", ErrorModel::uniform(0.05), 5 },
        { "P=10%,N=5", ErrorModel::uniform(0.10), 5 },
        { "P=15%,N=5", ErrorModel::uniform(0.15), 5 },
        { "P=15%,N=6", ErrorModel::uniform(0.15), 6 },
        { "5%INS+5%DEL,N=5", ErrorModel::indelOnly(0.10), 5 },
        { "10%SUB,N=5", ErrorModel::substitutionOnly(0.10), 5 },
    };

    Reconstructor algo = [](const std::vector<Strand> &reads,
                            size_t target) {
        return reconstructIterative(reads, target);
    };

    std::printf("curve,position,error_probability\n");
    for (size_t c = 0; c < curves.size(); ++c) {
        auto profile = profilePositionalError(
            algo, len, curves[c].coverage, curves[c].model, trials,
            505 + c);
        for (size_t i = 0; i < len; ++i)
            std::printf("%s,%zu,%.5f\n", curves[c].label.c_str(), i + 1,
                        profile.errorRate[i]);
        std::printf("# summary: %s used=%zu excluded=%zu peak=%.4f "
                    "mean=%.4f\n",
                    curves[c].label.c_str(), profile.trials,
                    profile.excluded, profile.peak(), profile.mean());
    }
    std::printf("# expectation: indel curves peak in the middle; "
                "10%%SUB stays flat near zero.\n");
    return 0;
}

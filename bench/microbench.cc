/**
 * @file
 * Google-benchmark microbenchmarks for the performance-critical
 * substrates: GF arithmetic, Reed-Solomon coding, the IDS channel,
 * consensus reconstruction, and the image codec.
 *
 * These are not paper figures; they document the cost model of the
 * library and catch performance regressions.
 */

#include <benchmark/benchmark.h>

#include "channel/ids_channel.hh"
#include "channel/read_pool.hh"
#include "consensus/bma.hh"
#include "consensus/median_bnb.hh"
#include "consensus/realign.hh"
#include "consensus/two_sided.hh"
#include "dna/packed_strand.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "media/sjpeg.hh"
#include "media/synth.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

void
BM_GfMultiply(benchmark::State &state)
{
    GaloisField gf(unsigned(state.range(0)));
    Rng rng(1);
    uint32_t a = 1 + uint32_t(rng.nextBelow(gf.order()));
    uint32_t b = 1 + uint32_t(rng.nextBelow(gf.order()));
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = gf.mul(a, b) | 1);
    }
}
BENCHMARK(BM_GfMultiply)->Arg(8)->Arg(10)->Arg(16);

void
BM_RsEncode(benchmark::State &state)
{
    GaloisField gf(unsigned(state.range(0)));
    size_t parity = gf.order() / 5;
    ReedSolomon rs(gf, parity);
    Rng rng(2);
    std::vector<uint32_t> data(rs.k());
    for (auto &d : data)
        d = uint32_t(rng.nextBelow(gf.size()));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(rs.n()));
}
BENCHMARK(BM_RsEncode)->Arg(8)->Arg(10);

void
BM_RsDecodeErrors(benchmark::State &state)
{
    GaloisField gf(10);
    ReedSolomon rs(gf, 188);
    Rng rng(3);
    std::vector<uint32_t> data(rs.k());
    for (auto &d : data)
        d = uint32_t(rng.nextBelow(gf.size()));
    auto clean = rs.encode(data);
    size_t n_err = size_t(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        auto noisy = clean;
        for (size_t e = 0; e < n_err; ++e)
            noisy[rng.nextBelow(noisy.size())] ^= 1;
        state.ResumeTiming();
        auto result = rs.decode(noisy);
        benchmark::DoNotOptimize(result.success);
    }
}
BENCHMARK(BM_RsDecodeErrors)->Arg(0)->Arg(10)->Arg(90);

void
BM_RsDecodeErasuresOnly(benchmark::State &state)
{
    // Exercises the skip-Chien erasure fast path.
    GaloisField gf(10);
    ReedSolomon rs(gf, 188);
    Rng rng(30);
    std::vector<uint32_t> data(rs.k());
    for (auto &d : data)
        d = uint32_t(rng.nextBelow(gf.size()));
    auto clean = rs.encode(data);
    std::vector<size_t> erasures;
    for (size_t i = 0; i < size_t(state.range(0)); ++i)
        erasures.push_back(i * 8); // max arg 120 -> position 952 < n

    auto erased = clean;
    for (size_t pos : erasures)
        erased[pos] ^= 0x2a;
    std::vector<uint32_t> work;
    for (auto _ : state) {
        work = erased;
        benchmark::DoNotOptimize(rs.decode(work, erasures).success);
    }
}
BENCHMARK(BM_RsDecodeErasuresOnly)->Arg(4)->Arg(40)->Arg(120);

void
BM_EditDistance455(benchmark::State &state)
{
    IdsChannel channel(ErrorModel::uniform(0.05));
    Rng rng(31);
    Strand original(455);
    for (auto &b : original)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    Strand a = channel.transmit(original, rng);
    Strand b = channel.transmit(original, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(editDistance(a, b));
}
BENCHMARK(BM_EditDistance455);

void
BM_PackedStrandRoundTrip(benchmark::State &state)
{
    Rng rng(32);
    Strand s(size_t(state.range(0)));
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    PackedStrand packed;
    Strand out;
    for (auto _ : state) {
        packed.pack(s);
        packed.unpack(out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_PackedStrandRoundTrip)->Arg(455)->Arg(4096);

void
BM_ReadPoolFillBatch(benchmark::State &state)
{
    // Flat vs packed pool query cost (state.range(0) = 1 for packed).
    Rng rng(33);
    std::vector<Strand> refs(64);
    for (auto &ref : refs) {
        ref.resize(455);
        for (auto &b : ref)
            b = baseFromBits(unsigned(rng.nextBelow(4)));
    }
    IdsChannel channel(ErrorModel::uniform(0.05));
    ReadPool pool(refs, channel, 10, 77, 1,
                  state.range(0) ? ReadStorage::Packed
                                 : ReadStorage::Flat);
    ReadBatch batch;
    for (auto _ : state) {
        pool.fillBatch(10, batch);
        benchmark::DoNotOptimize(batch.views.data());
    }
}
BENCHMARK(BM_ReadPoolFillBatch)->Arg(0)->Arg(1);

void
BM_IdsChannel(benchmark::State &state)
{
    IdsChannel channel(ErrorModel::uniform(0.09));
    Rng rng(4);
    Strand strand(455);
    for (auto &b : strand)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    for (auto _ : state)
        benchmark::DoNotOptimize(channel.transmit(strand, rng));
    state.SetItemsProcessed(int64_t(state.iterations()) * 455);
}
BENCHMARK(BM_IdsChannel);

void
BM_ConsensusTwoSided(benchmark::State &state)
{
    const size_t len = 455;
    const size_t coverage = size_t(state.range(0));
    IdsChannel channel(ErrorModel::uniform(0.09));
    Rng rng(5);
    Strand strand(len);
    for (auto &b : strand)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    auto reads = channel.transmitCluster(strand, coverage, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(reconstructTwoSided(reads, len));
}
BENCHMARK(BM_ConsensusTwoSided)->Arg(5)->Arg(10)->Arg(20);

void
BM_ConsensusIterative(benchmark::State &state)
{
    const size_t len = 200;
    IdsChannel channel(ErrorModel::uniform(0.09));
    Rng rng(6);
    Strand strand(len);
    for (auto &b : strand)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    auto reads = channel.transmitCluster(strand, 5, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(reconstructIterative(reads, len));
}
BENCHMARK(BM_ConsensusIterative);

void
BM_OptimalMedianL20(benchmark::State &state)
{
    Rng rng(7);
    const size_t len = 20;
    Seq original(len);
    for (auto &c : original)
        c = uint8_t(rng.nextBelow(2));
    std::vector<Seq> traces;
    for (int t = 0; t < int(state.range(0)); ++t) {
        Seq noisy;
        for (uint8_t c : original) {
            double u = rng.nextDouble();
            if (u < 0.0667) {
                noisy.push_back(uint8_t(rng.nextBelow(2)));
                noisy.push_back(c);
            } else if (u < 0.1333) {
            } else if (u < 0.2) {
                noisy.push_back(uint8_t(1 - c));
            } else {
                noisy.push_back(c);
            }
        }
        traces.push_back(std::move(noisy));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(constrainedMedian(traces, len, 2));
}
BENCHMARK(BM_OptimalMedianL20)->Arg(4)->Arg(16);

void
BM_SjpegEncode(benchmark::State &state)
{
    Image img = generateSyntheticPhoto(128, 128, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(sjpegEncode(img, 80));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(img.pixelCount()));
}
BENCHMARK(BM_SjpegEncode);

void
BM_SjpegDecode(benchmark::State &state)
{
    Image img = generateSyntheticPhoto(128, 128, 9);
    auto file = sjpegEncode(img, 80);
    for (auto _ : state)
        benchmark::DoNotOptimize(sjpegDecode(file));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(file.size()));
}
BENCHMARK(BM_SjpegDecode);

} // namespace
} // namespace dnastore

BENCHMARK_MAIN();

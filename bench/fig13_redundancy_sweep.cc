/**
 * @file
 * Figure 13: minimum coverage for error-free decoding as a function of
 * effective redundancy (Gini), at a fixed 9% error rate.
 *
 * Effective redundancy is reduced by injecting controlled erasures in
 * parity columns, exactly the mechanism described in section 7.1. The
 * baseline at full 18.4% redundancy is printed as the reference line.
 * Expected shape: Gini's redundancy can drop to ~6% before its
 * required coverage rises to the baseline's, i.e., a ~67% reduction in
 * redundancy (~12.5% of total synthesis cost).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "pipeline/simulator.hh"
#include "util/rng.hh"

using namespace dnastore;

namespace {

FileBundle
fullUnitBundle(const StorageConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    FileBundle b;
    std::vector<uint8_t> data(cfg.capacityBytes() - 600);
    for (auto &x : data)
        x = uint8_t(rng.next());
    b.add("payload.bin", std::move(data));
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 3);
    const size_t max_cov = bench::flagValue(argc, argv, "--maxcov", 34);
    const double p = 0.09;
    auto cfg = StorageConfig::benchScale();
    cfg.numThreads = bench::threadsFlag(argc, argv);
    auto bundle = fullUnitBundle(cfg, 1313);

    bench::banner("Figure 13",
                  "minimum coverage vs effective redundancy (Gini), "
                  "error rate fixed at 9%");

    // Baseline reference at full redundancy.
    double base_min = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
        StorageSimulator sim(cfg, LayoutScheme::Baseline,
                             ErrorModel::uniform(p), 1300 + rep);
        sim.store(bundle, max_cov);
        base_min += double(
            sim.minCoverageForExact(2, max_cov).value_or(max_cov + 1)) /
            double(reps);
    }
    std::printf("# baseline reference at %.1f%% redundancy: "
                "min coverage %.1f\n",
                100.0 * cfg.redundancyFraction(), base_min);

    std::printf("effective_redundancy,gini_min_coverage,"
                "baseline_reference\n");
    const double targets[] = { 0.184, 0.15, 0.12, 0.09, 0.06 };
    for (double target : targets) {
        // Erase parity columns until only `target` redundancy remains.
        size_t keep = size_t(std::llround(target *
                                          double(cfg.codewordLen())));
        size_t erase = cfg.paritySymbols > keep
            ? cfg.paritySymbols - keep
            : 0;
        std::vector<size_t> forced;
        for (size_t i = 0; i < erase; ++i)
            forced.push_back(cfg.dataCols() + i);

        double gini_min = 0;
        for (size_t rep = 0; rep < reps; ++rep) {
            StorageSimulator sim(cfg, LayoutScheme::Gini,
                                 ErrorModel::uniform(p), 1300 + rep);
            sim.store(bundle, max_cov);
            gini_min += double(sim.minCoverageForExact(2, max_cov,
                                                       forced)
                                   .value_or(max_cov + 1)) /
                double(reps);
        }
        std::printf("%.1f%%,%.1f,%.1f\n", target * 100, gini_min,
                    base_min);
    }
    std::printf("# expectation: gini stays at or below the baseline "
                "reference down to ~6%% redundancy.\n");
    return 0;
}

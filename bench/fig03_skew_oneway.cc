/**
 * @file
 * Figure 3: probability of an incorrect base vs position, one-way
 * reconstruction, p = 5%, N = 5, L = 200.
 *
 * Expected shape: error probability grows sharply towards the end of
 * the strand — the raw reliability skew of left-to-right consensus.
 */

#include <cstdio>

#include "bench_util.hh"
#include "consensus/bma.hh"
#include "consensus/profiler.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t trials = bench::flagValue(argc, argv, "--trials", 4000);
    const size_t len = 200, coverage = 5;
    const double p = 0.05;

    bench::banner("Figure 3",
                  "positional error, 1-way reconstruction, "
                  "P=5%, N=5, L=200");
    auto profile = profilePositionalError(
        reconstructOneWay, len, coverage, ErrorModel::uniform(p),
        trials, /*seed=*/303);

    std::printf("position,error_probability\n");
    for (size_t i = 0; i < len; ++i)
        std::printf("%zu,%.5f\n", i + 1, profile.errorRate[i]);

    double front = 0, back = 0;
    for (size_t i = 0; i < 20; ++i) {
        front += profile.errorRate[i];
        back += profile.errorRate[len - 20 + i];
    }
    std::printf("# summary: trials=%zu first20_mean=%.4f "
                "last20_mean=%.4f peak=%.4f (skew grows toward the "
                "end, as in the paper)\n",
                profile.trials, front / 20.0, back / 20.0,
                profile.peak());
    return 0;
}

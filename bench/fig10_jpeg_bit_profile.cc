/**
 * @file
 * Figure 10: PSNR quality loss as a function of the corrupted bit's
 * position in a JPEG-style image file.
 *
 * Expected shape: maximal loss for bits at the beginning of the file,
 * decaying towards (near) zero for bits at the end — the basis of the
 * position-priority heuristic of section 5.3.
 */

#include <cstdio>

#include "bench_util.hh"
#include "media/ranking.hh"
#include "media/sjpeg.hh"
#include "media/synth.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t width = bench::flagValue(argc, argv, "--width", 256);
    const size_t height = bench::flagValue(argc, argv, "--height", 192);
    const size_t stride = bench::flagValue(argc, argv, "--stride", 64);

    bench::banner("Figure 10",
                  "PSNR loss (dB) vs corrupted bit position in a "
                  "compressed image file");

    Image img = generateSyntheticPhoto(width, height, 1010);
    auto file = sjpegEncode(img, 80);
    std::printf("# image %zux%zu, file %zu bytes, every %zu-th bit "
                "flipped\n",
                width, height, file.size(), stride);

    auto loss = bitFlipQualityLoss(file, stride);
    std::printf("bit_position,quality_loss_db\n");
    for (size_t i = 0; i < loss.size(); ++i)
        std::printf("%zu,%.3f\n", i * stride, loss[i]);

    size_t q = loss.size() / 4;
    double front = 0, back = 0;
    for (size_t i = 0; i < q; ++i) {
        front += loss[i];
        back += loss[loss.size() - 1 - i];
    }
    std::printf("# summary: first_quarter_mean=%.2fdB "
                "last_quarter_mean=%.2fdB (early bits matter most, "
                "as in the paper)\n",
                front / double(q), back / double(q));
    return 0;
}

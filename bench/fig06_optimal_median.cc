/**
 * @file
 * Figure 6: the skew is fundamental — positional error of the OPTIMAL
 * (brute-force constrained edit-distance median) reconstruction with
 * adversarial tie-breaking, binary alphabet, L=20, p=20%,
 * N in {2, 4, 8, 16}.
 *
 * Expected shape: higher N lowers the peak, but the middle bump never
 * disappears, even though ties are broken *against* the skew.
 */

#include <cstdio>

#include "bench_util.hh"
#include "consensus/profiler.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t trials = bench::flagValue(argc, argv, "--trials", 1500);
    const size_t len = 20;
    const double p = 0.20;

    bench::banner("Figure 6",
                  "optimal (brute-force) reconstruction, binary, "
                  "L=20, p=20%, adversarial tie-break");

    std::printf("N,position,error_probability\n");
    for (size_t coverage : { 2u, 4u, 8u, 16u }) {
        auto profile = profileOptimalMedianError(len, coverage, p,
                                                 trials,
                                                 606 + coverage);
        for (size_t i = 0; i < len; ++i)
            std::printf("%zu,%zu,%.5f\n", coverage, i + 1,
                        profile.errorRate[i]);
        double ends =
            (profile.errorRate[0] + profile.errorRate[len - 1]) / 2.0;
        double mid = (profile.errorRate[len / 2 - 1] +
                      profile.errorRate[len / 2]) /
            2.0;
        std::printf("# summary: N=%zu trials=%zu ends=%.4f mid=%.4f "
                    "peak=%.4f\n",
                    coverage, profile.trials, ends, mid,
                    profile.peak());
    }
    std::printf("# expectation: peak shrinks with N but the "
                "middle bump persists for every N.\n");
    return 0;
}

/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every bench accepts `--trials N` / `--reps N` style overrides so the
 * full suite can be dialed up for smoother curves or down for smoke
 * runs; the defaults keep the whole suite within a few minutes.
 */

#ifndef DNASTORE_BENCH_BENCH_UTIL_HH
#define DNASTORE_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/parse.hh"

namespace dnastore::bench {

/**
 * Parse `--name value` integer flags from argv, with a default.
 * Non-numeric values are a hard usage error: a bare strtoull would
 * read "--trials 1O0" as 1 and silently bench the wrong workload.
 */
inline size_t
flagValue(int argc, char **argv, const char *name, size_t def)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) {
            uint64_t value = 0;
            std::string err;
            if (!parseU64(argv[i + 1], &value, &err)) {
                std::fprintf(stderr, "%s: %s (got '%s')\n", name,
                             err.c_str(), argv[i + 1]);
                std::exit(2);
            }
            return size_t(value);
        }
    }
    return def;
}

/**
 * Worker-thread knob for the simulator-driven benches: `--threads N`
 * beats the DNASTORE_THREADS environment variable, which beats the
 * default of 0 (all hardware threads). Simulator results are
 * bit-identical for every thread count, so this only changes wall
 * time, never the figures.
 */
inline size_t
threadsFlag(int argc, char **argv)
{
    size_t def = 0;
    if (const char *env = std::getenv("DNASTORE_THREADS")) {
        uint64_t value = 0;
        if (parseU64(env, &value))
            def = size_t(value);
    }
    return flagValue(argc, argv, "--threads", def);
}

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("# === %s ===\n# %s\n", figure, description);
}

} // namespace dnastore::bench

#endif // DNASTORE_BENCH_BENCH_UTIL_HH

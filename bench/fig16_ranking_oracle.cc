/**
 * @file
 * Figure 16: the position-based bit ranking heuristic vs the
 * brute-force oracle ranking vs the unranked baseline, with no error
 * correction.
 *
 * A single image file is stored bit-for-bit on DNA strands (no ECC,
 * as in section 7.3), with three data mappings:
 *  - baseline: bits fill strands sequentially;
 *  - heuristic: bits ranked by file position, mapped to strand
 *    positions ranked by reliability (ends first, middle last);
 *  - oracle: bits ranked by measured single-flip PSNR loss, same
 *    position mapping.
 * Expected shape: both rankings degrade far more gracefully than the
 * baseline as coverage drops, and the oracle is NOT visibly better
 * than the zero-cost heuristic.
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hh"
#include "channel/ids_channel.hh"
#include "channel/read_pool.hh"
#include "consensus/two_sided.hh"
#include "dna/codec.hh"
#include "layout/row_rank.hh"
#include "media/ranking.hh"
#include "media/sjpeg.hh"
#include "media/synth.hh"
#include "util/bitio.hh"

using namespace dnastore;

namespace {

constexpr size_t kPayloadBases = 128; // bases per strand (no index)

/**
 * Bit slot -> (strand, base position, bit-within-base) mapping.
 *
 * Ranked mode (DnaMapper-style, Figure 9 without the index): priority
 * slot p goes to reliability class p / (2 * n_strands) — base
 * positions ordered ends-first — striped across strands.
 *
 * Strand-major mode (the paper's baseline): slot p fills strand
 * p / (2 * bases) top to bottom, i.e., consecutive file chunks map to
 * consecutive molecules, oblivious to position reliability.
 */
struct NoEccLayout
{
    size_t nStrands;
    bool rankedClasses;
    std::vector<size_t> posOrder; // reliability rank -> base position

    NoEccLayout(size_t n_bits, bool ranked)
        : nStrands((n_bits + 2 * kPayloadBases - 1) /
                   (2 * kPayloadBases)),
          rankedClasses(ranked),
          posOrder(rowReliabilityOrder(kPayloadBases))
    {
    }

    /** Map priority slot p to (strand, base, bit index in base). */
    void
    locate(size_t p, size_t *strand, size_t *base, int *bit) const
    {
        if (rankedClasses) {
            size_t cls = p / (2 * nStrands);
            size_t within = p % (2 * nStrands);
            *strand = within / 2;
            *base = posOrder[cls];
            *bit = int(within % 2);
        } else {
            *strand = p / (2 * kPayloadBases);
            size_t within = p % (2 * kPayloadBases);
            *base = within / 2;
            *bit = int(within % 2);
        }
    }
};

/** Write bits into strands according to a priority ranking. */
std::vector<Strand>
placeBits(const std::vector<uint8_t> &file,
          const std::vector<size_t> &ranking, const NoEccLayout &layout)
{
    std::vector<Strand> strands(layout.nStrands,
                                Strand(kPayloadBases, Base::A));
    for (size_t p = 0; p < ranking.size(); ++p) {
        size_t strand, base;
        int bit;
        layout.locate(p, &strand, &base, &bit);
        unsigned cur = bitsFromBase(strands[strand][base]);
        int value = getBit(file, ranking[p]);
        if (bit == 0)
            cur = (cur & 1u) | (unsigned(value) << 1);
        else
            cur = (cur & 2u) | unsigned(value);
        strands[strand][base] = baseFromBits(cur);
    }
    return strands;
}

/** Read bits back from reconstructed strands. */
std::vector<uint8_t>
extractBits(const std::vector<Strand> &strands,
            const std::vector<size_t> &ranking, size_t file_bytes,
            const NoEccLayout &layout)
{
    std::vector<uint8_t> file(file_bytes, 0);
    for (size_t p = 0; p < ranking.size(); ++p) {
        size_t strand, base;
        int bit;
        layout.locate(p, &strand, &base, &bit);
        unsigned bits = base < strands[strand].size()
            ? bitsFromBase(strands[strand][base])
            : 0u;
        int value = bit == 0 ? int((bits >> 1) & 1u) : int(bits & 1u);
        setBit(file, ranking[p], value);
    }
    return file;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t width = bench::flagValue(argc, argv, "--width", 128);
    const size_t height = bench::flagValue(argc, argv, "--height", 128);
    const size_t reps = bench::flagValue(argc, argv, "--reps", 5);
    const double p = 0.08;

    bench::banner("Figure 16",
                  "position heuristic vs oracle bit ranking vs "
                  "baseline, no ECC");

    Image img = generateSyntheticPhoto(width, height, 1616);
    auto file = sjpegEncode(img, 80);
    Image reference = sjpegDecode(file).image;
    const size_t n_bits = file.size() * 8;
    NoEccLayout ranked_layout(n_bits, true);
    NoEccLayout strand_major(n_bits, false);
    std::printf("# image %zux%zu, file %zu bytes, %zu strands of %zu "
                "bases, error rate %.0f%%\n",
                width, height, file.size(), ranked_layout.nStrands,
                kPayloadBases, p * 100);

    std::vector<size_t> baseline_rank(n_bits);
    std::iota(baseline_rank.begin(), baseline_rank.end(), size_t(0));
    auto heuristic_rank = positionBitRanking(n_bits);
    auto oracle_rank = oracleBitRanking(file);

    struct Mapping
    {
        const char *label;
        const std::vector<size_t> *ranking;
        bool ranked_placement;
    };
    const Mapping mappings[3] = {
        { "baseline", &baseline_rank, false },
        { "heuristic", &heuristic_rank, true },
        { "oracle", &oracle_rank, true },
    };

    std::printf("mapping,coverage,psnr_change_db\n");
    IdsChannel channel(ErrorModel::uniform(p));
    for (const auto &m : mappings) {
        const NoEccLayout &used =
            m.ranked_placement ? ranked_layout : strand_major;
        auto strands = placeBits(file, *m.ranking, used);

        for (size_t cov = 20; cov >= 5; --cov) {
            double change = 0.0;
            for (size_t rep = 0; rep < reps; ++rep) {
                Rng rng(1616 + rep * 97 + cov);
                std::vector<Strand> rec;
                rec.reserve(strands.size());
                for (const auto &s : strands) {
                    auto reads = channel.transmitCluster(s, cov, rng);
                    rec.push_back(
                        reconstructTwoSided(reads, kPayloadBases));
                }
                auto back =
                    extractBits(rec, *m.ranking, file.size(), used);
                Image decoded = sjpegDecodeOrGray(back, width, height);
                change -= qualityLossDb(reference, decoded) /
                    double(reps);
            }
            std::printf("%s,%zu,%.2f\n", m.label, cov, change);
        }
    }
    std::printf("# expectation: heuristic ~= oracle, both degrade far "
                "more gracefully than baseline.\n");
    return 0;
}

/**
 * dnastored request throughput: an in-process Server hammered by N
 * client threads over loopback TCP, reporting requests/second for
 * the protocol hot paths. Reads (ping, get, list, health) ride the
 * lock-free snapshot plane, so they should scale with client count;
 * puts serialize through the tenant writer lock.
 *
 *   bench_daemon_throughput [clients] [seconds-per-phase]
 *
 * Plain main (no Google Benchmark dependency), like the figure
 * benches.
 */

#include <stdlib.h> // mkdtemp

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hh"
#include "daemon/client.hh"
#include "daemon/server.hh"
#include "util/parse.hh"

using namespace dnastore;
using namespace dnastore::daemon;

namespace {

std::vector<uint8_t>
patternBytes(size_t n, uint8_t base)
{
    std::vector<uint8_t> data(n);
    for (size_t i = 0; i < n; ++i)
        data[i] = uint8_t(base + i * 13);
    return data;
}

using Clock = std::chrono::steady_clock;

/** Run @p op in @p clients threads for @p seconds; ops/second. */
double
hammer(uint16_t port, int clients, double seconds,
       bool (*op)(Client &, int))
{
    std::atomic<uint64_t> completed{ 0 };
    std::atomic<bool> stop{ false };
    std::vector<std::thread> threads;
    threads.reserve(size_t(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            Client client;
            if (!client.connect(port).ok())
                return;
            while (!stop.load(std::memory_order_relaxed)) {
                if (!op(client, c))
                    return;
                completed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    const Clock::time_point start = Clock::now();
    while (std::chrono::duration<double>(Clock::now() - start)
               .count() < seconds)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true);
    for (std::thread &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    return double(completed.load()) / elapsed;
}

bool
opPing(Client &client, int)
{
    return client.ping().ok();
}

bool
opGet(Client &client, int c)
{
    return client
        .get("bench" + std::to_string(c % 4), "obj.bin")
        .ok();
}

bool
opList(Client &client, int c)
{
    return client.list("bench" + std::to_string(c % 4)).ok();
}

bool
opHealth(Client &client, int c)
{
    return client.health("bench" + std::to_string(c % 4)).ok();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t clientsArg = 8;
    double seconds = 2.0;
    const bool argsOk =
        (argc <= 1 || parseU64(argv[1], &clientsArg)) &&
        (argc <= 2 || parseF64(argv[2], &seconds));
    if (!argsOk || clientsArg < 1 || seconds <= 0) {
        std::fprintf(stderr,
                     "usage: %s [clients >= 1] [seconds > 0]\n",
                     argv[0]);
        return 2;
    }
    const int clients = int(clientsArg);

    char rootTemplate[] = "/tmp/dnastored_bench_XXXXXX";
    const char *root = ::mkdtemp(rootTemplate);
    if (root == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 1;
    }
    ServerOptions options;
    options.tenants.root = root;
    options.tenants.threads = 1;
    Server server(options);
    api::Status started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.message().c_str());
        return 1;
    }

    // Seed four tenants and warm their read snapshots so the read
    // phases measure the steady state, not the first decode.
    {
        Client client;
        if (!client.connect(server.port()).ok())
            return 1;
        for (int t = 0; t < 4; ++t) {
            const std::string tenant = "bench" + std::to_string(t);
            if (!client
                     .put(tenant, "obj.bin",
                          patternBytes(512, uint8_t(t)))
                     .ok())
                return 1;
            if (!client.get(tenant, "obj.bin").ok())
                return 1;
            if (!client.health(tenant).ok())
                return 1;
        }
    }

    std::printf("dnastored throughput: %d clients, %.1fs per phase\n",
                clients, seconds);
    struct Phase
    {
        const char *name;
        bool (*op)(Client &, int);
    };
    const Phase phases[] = {
        { "ping", opPing },
        { "get", opGet },
        { "list", opList },
        { "health", opHealth },
    };
    for (const Phase &phase : phases)
        std::printf("  %-8s %10.0f req/s\n", phase.name,
                    hammer(server.port(), clients, seconds,
                           phase.op));

    api::Status drained = server.drain();
    if (!drained.ok()) {
        std::fprintf(stderr, "drain failed: %s\n",
                     drained.message().c_str());
        return 1;
    }
    return 0;
}

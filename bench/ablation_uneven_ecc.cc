/**
 * @file
 * Ablation for section 4.1 (Figure 7): unequal error correction is
 * brittle under coverage drift; Gini is not.
 *
 * Per-row Reed-Solomon redundancy is provisioned proportionally to the
 * skew profile *measured at a provisioning coverage* N0, using the
 * same total parity budget as the even scheme. The rows are then
 * decoded at N0 and at drifted coverages N0 +/- d. Metric: fraction of
 * runs in which every row decodes. Expected result: uneven ECC works
 * where it was provisioned but collapses when the data is read at a
 * lower coverage (or a different error rate), while Gini with the same
 * budget keeps working — the paper's argument for why static skew
 * provisioning cannot stand the test of time.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "channel/ids_channel.hh"
#include "consensus/two_sided.hh"
#include "dna/codec.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "layout/codeword_map.hh"
#include <algorithm>

#include "layout/uneven.hh"
#include "pipeline/config.hh"
#include "util/bitio.hh"
#include "util/rng.hh"

using namespace dnastore;

namespace {

/** Encode a random matrix with per-row parity; return strands. */
struct UnevenUnit
{
    SymbolMatrix matrix;
    std::vector<Strand> strands;

    UnevenUnit() : matrix(1, 1) {}
};

UnevenUnit
encodeUneven(const StorageConfig &cfg, const GaloisField &gf,
             const std::vector<size_t> &row_parity, Rng &rng)
{
    UnevenUnit unit;
    unit.matrix = SymbolMatrix(cfg.rows, cfg.codewordLen());
    for (size_t r = 0; r < cfg.rows; ++r) {
        ReedSolomon rs(gf, row_parity[r]);
        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        auto cw = rs.encode(data);
        for (size_t c = 0; c < cfg.codewordLen(); ++c)
            unit.matrix.at(r, c) = cw[c];
    }
    for (size_t col = 0; col < cfg.codewordLen(); ++col) {
        BitWriter w;
        for (size_t row = 0; row < cfg.rows; ++row)
            w.writeBits(unit.matrix.at(row, col), int(cfg.symbolBits));
        Strand strand;
        appendUint(strand, col, int(cfg.indexBits()));
        auto bytes = w.take();
        BitReader r(bytes);
        for (size_t b = 0; b < cfg.payloadBases(); ++b)
            strand.push_back(baseFromBits(r.readBits(2)));
        unit.strands.push_back(std::move(strand));
    }
    return unit;
}

/** Reconstruct the received matrix at a given coverage. */
SymbolMatrix
receive(const StorageConfig &cfg, const UnevenUnit &unit,
        const IdsChannel &channel, size_t coverage, Rng &rng)
{
    SymbolMatrix received(cfg.rows, cfg.codewordLen());
    const size_t strand_len = cfg.indexBases() + cfg.payloadBases();
    for (size_t col = 0; col < cfg.codewordLen(); ++col) {
        auto reads = channel.transmitCluster(unit.strands[col],
                                             coverage, rng);
        Strand consensus = reconstructTwoSided(reads, strand_len);
        BitWriter w;
        for (size_t b = 0; b < cfg.payloadBases(); ++b) {
            size_t p = cfg.indexBases() + b;
            w.writeBits(p < consensus.size()
                            ? bitsFromBase(consensus[p])
                            : 0u,
                        2);
        }
        auto bytes = w.take();
        BitReader r(bytes);
        for (size_t row = 0; row < cfg.rows; ++row)
            received.at(row, col) = r.readBits(int(cfg.symbolBits));
    }
    return received;
}

/** Measure the per-row symbol-error profile at a coverage. */
std::vector<double>
measureSkew(const StorageConfig &cfg, const GaloisField &gf,
            const IdsChannel &channel, size_t coverage, uint64_t seed)
{
    Rng rng(seed);
    std::vector<size_t> even(cfg.rows,
                             cfg.paritySymbols); // just for encoding
    auto unit = encodeUneven(cfg, gf, even, rng);
    auto received = receive(cfg, unit, channel, coverage, rng);
    std::vector<double> weights(cfg.rows, 0.0);
    for (size_t r = 0; r < cfg.rows; ++r)
        for (size_t c = 0; c < cfg.codewordLen(); ++c)
            weights[r] += (received.at(r, c) != unit.matrix.at(r, c));
    // Avoid zero weights so provisioning stays well defined.
    for (auto &w : weights)
        w += 0.5;
    return weights;
}

/** Fraction of rows that decode under a per-row parity plan. */
double
rowSuccessRate(const StorageConfig &cfg, const GaloisField &gf,
               const std::vector<size_t> &row_parity,
               const IdsChannel &channel, size_t coverage, size_t reps,
               uint64_t seed)
{
    size_t ok = 0, total = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
        Rng rng(seed + rep);
        auto unit = encodeUneven(cfg, gf, row_parity, rng);
        auto received = receive(cfg, unit, channel, coverage, rng);
        for (size_t r = 0; r < cfg.rows; ++r) {
            ReedSolomon rs(gf, row_parity[r]);
            auto cw = received.column(0); // placeholder, replaced below
            cw.assign(cfg.codewordLen(), 0);
            for (size_t c = 0; c < cfg.codewordLen(); ++c)
                cw[c] = received.at(r, c);
            ok += rs.decode(cw).success ? 1 : 0;
            ++total;
        }
    }
    return double(ok) / double(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 2);
    auto cfg = StorageConfig::benchScale();
    cfg.rows = 40; // smaller matrix keeps the ablation fast
    const double p = 0.09;
    const size_t n0 = 12; // provisioning coverage

    bench::banner("Ablation (section 4.1 / Figure 7)",
                  "unequal ECC provisioned for one coverage, "
                  "evaluated under coverage drift");

    GaloisField gf(cfg.symbolBits);
    IdsChannel channel(ErrorModel::uniform(p));
    const size_t budget = cfg.rows * cfg.paritySymbols;

    // Provision unevenly from the skew measured at N0.
    auto weights = measureSkew(cfg, gf, channel, n0, 7000);
    auto uneven = provisionUneven(weights, budget, cfg.codewordLen());
    std::vector<size_t> even(cfg.rows, cfg.paritySymbols);

    std::printf("# per-row parity, provisioned at coverage %zu, "
                "error rate %.0f%%: min=%zu max=%zu (even: %zu)\n",
                n0, p * 100,
                *std::min_element(uneven.begin(), uneven.end()),
                *std::max_element(uneven.begin(), uneven.end()),
                cfg.paritySymbols);

    std::printf("coverage,uneven_row_success,even_row_success\n");
    for (size_t cov : { n0 + 2, n0, n0 - 2, n0 - 4, n0 - 5, n0 - 6 }) {
        double u = rowSuccessRate(cfg, gf, uneven, channel, cov, reps,
                                  7100 + cov);
        double e = rowSuccessRate(cfg, gf, even, channel, cov, reps,
                                  7100 + cov);
        std::printf("%zu,%.3f,%.3f\n", cov, u, e);
    }

    // Error-rate drift: the archived data outlives the sequencing
    // technology (section 4.1); re-read the same provisioning with a
    // noisier channel.
    std::printf("# error-rate drift: provisioned for %.0f%%, read at "
                "12%% and 15%%\n",
                p * 100);
    std::printf("error_rate,coverage,uneven_row_success,"
                "even_row_success\n");
    for (double p2 : { 0.12, 0.15 }) {
        IdsChannel drift(ErrorModel::uniform(p2));
        for (size_t cov : { n0 + 2, n0 }) {
            double u = rowSuccessRate(cfg, gf, uneven, drift, cov, reps,
                                      7300 + cov);
            double e = rowSuccessRate(cfg, gf, even, drift, cov, reps,
                                      7300 + cov);
            std::printf("%.0f%%,%zu,%.3f,%.3f\n", p2 * 100, cov, u, e);
        }
    }
    std::printf("# expectation: uneven ECC helps at (or above) its "
                "provisioning point but its advantage collapses under "
                "coverage or error-rate drift -- the assumed skew "
                "magnitude no longer holds (section 4.1). Gini needs "
                "no such assumption.\n");
    return 0;
}

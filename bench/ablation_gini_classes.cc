/**
 * @file
 * Ablation for Figure 8b: two-class Gini.
 *
 * Reserving the outermost rows as plain row codewords creates a
 * premium reliability class while the remaining rows are diagonally
 * interleaved among themselves. Metric: per-class codeword failure
 * rates as coverage drops. Expected result: the reserved outer-row
 * class keeps decoding below the coverage where the interleaved class
 * collapses — two distinct reliability classes from pure layout.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "channel/ids_channel.hh"
#include "consensus/two_sided.hh"
#include "dna/codec.hh"
#include "ecc/gf.hh"
#include "ecc/rs.hh"
#include "layout/codeword_map.hh"
#include "pipeline/config.hh"
#include "util/bitio.hh"
#include "util/rng.hh"

using namespace dnastore;

namespace {

struct ClassUnit
{
    SymbolMatrix matrix;
    std::vector<Strand> strands;

    ClassUnit() : matrix(1, 1) {}
};

ClassUnit
encodeWithMap(const StorageConfig &cfg, const GaloisField &gf,
              const CodewordMap &map, Rng &rng)
{
    ReedSolomon rs(gf, cfg.paritySymbols);
    ClassUnit unit;
    unit.matrix = SymbolMatrix(cfg.rows, cfg.codewordLen());
    for (size_t j = 0; j < map.codewords(); ++j) {
        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        auto cw = rs.encode(data);
        map.scatter(unit.matrix, j, cw);
    }
    for (size_t col = 0; col < cfg.codewordLen(); ++col) {
        BitWriter w;
        for (size_t row = 0; row < cfg.rows; ++row)
            w.writeBits(unit.matrix.at(row, col), int(cfg.symbolBits));
        Strand strand;
        appendUint(strand, col, int(cfg.indexBits()));
        auto bytes = w.take();
        BitReader r(bytes);
        for (size_t b = 0; b < cfg.payloadBases(); ++b)
            strand.push_back(baseFromBits(r.readBits(2)));
        unit.strands.push_back(std::move(strand));
    }
    return unit;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 2);
    auto cfg = StorageConfig::benchScale();
    cfg.rows = 40; // keep the ablation fast
    const double p = 0.09;

    bench::banner("Ablation (Figure 8b)",
                  "two-class Gini: reserved outer rows vs "
                  "interleaved middle rows");

    GaloisField gf(cfg.symbolBits);
    ReedSolomon rs(gf, cfg.paritySymbols);
    IdsChannel channel(ErrorModel::uniform(p));
    // Reserve the two most reliable data rows (Figure 8b).
    GiniClassMap map(cfg.rows, cfg.codewordLen(),
                     { 0, cfg.rows - 1 });
    const size_t strand_len = cfg.indexBases() + cfg.payloadBases();

    std::printf("coverage,reserved_failure_rate,"
                "interleaved_failure_rate\n");
    for (size_t cov = 14; cov >= 6; --cov) {
        size_t reserved_fail = 0, inter_fail = 0;
        size_t reserved_total = 0, inter_total = 0;
        for (size_t rep = 0; rep < reps; ++rep) {
            Rng rng(8200 + rep);
            auto unit = encodeWithMap(cfg, gf, map, rng);
            SymbolMatrix received(cfg.rows, cfg.codewordLen());
            for (size_t col = 0; col < cfg.codewordLen(); ++col) {
                auto reads = channel.transmitCluster(unit.strands[col],
                                                     cov, rng);
                Strand consensus =
                    reconstructTwoSided(reads, strand_len);
                BitWriter w;
                for (size_t b = 0; b < cfg.payloadBases(); ++b) {
                    size_t pos = cfg.indexBases() + b;
                    w.writeBits(pos < consensus.size()
                                    ? bitsFromBase(consensus[pos])
                                    : 0u,
                                2);
                }
                auto bytes = w.take();
                BitReader r(bytes);
                for (size_t row = 0; row < cfg.rows; ++row)
                    received.at(row, col) =
                        r.readBits(int(cfg.symbolBits));
            }
            for (size_t j = 0; j < map.codewords(); ++j) {
                auto cw = map.gather(received, j);
                bool ok = rs.decode(cw).success;
                if (j < map.reservedCount()) {
                    reserved_fail += !ok;
                    ++reserved_total;
                } else {
                    inter_fail += !ok;
                    ++inter_total;
                }
            }
        }
        std::printf("%zu,%.3f,%.3f\n", cov,
                    double(reserved_fail) / double(reserved_total),
                    double(inter_fail) / double(inter_total));
    }
    std::printf("# expectation: the reserved (outer-row) class keeps "
                "decoding at coverages where the interleaved class "
                "has already collapsed.\n");
    return 0;
}

/**
 * @file
 * Figure 11: number of errors detected and corrected per codeword,
 * baseline vs Gini, at error rate 9% and sequencing coverage 20.
 *
 * Expected shape: the baseline's per-codeword error counts form a
 * pronounced peak for the middle rows; Gini's are flat. The total
 * (area under the curves) is similar — Gini redistributes errors, it
 * does not remove them.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "pipeline/quality.hh"
#include "pipeline/simulator.hh"
#include "util/stats.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 3);
    const size_t coverage = bench::flagValue(argc, argv, "--coverage", 20);
    const double p = 0.09;
    auto cfg = StorageConfig::benchScale();
    cfg.numThreads = bench::threadsFlag(argc, argv);

    bench::banner("Figure 11",
                  "errors corrected per codeword, baseline vs Gini, "
                  "error rate 9%, coverage 20");

    auto workload = makeImageWorkloadForCapacity(cfg.capacityBits(), 80,
                                                 1111);
    auto bundle = workload.bundle.encrypted(0x11);

    std::vector<std::vector<double>> counts(2);
    const LayoutScheme schemes[2] = { LayoutScheme::Baseline,
                                      LayoutScheme::Gini };
    for (int s = 0; s < 2; ++s) {
        counts[s].assign(cfg.rows, 0.0);
        for (size_t rep = 0; rep < reps; ++rep) {
            StorageSimulator sim(cfg, schemes[s], ErrorModel::uniform(p),
                                 1100 + rep);
            sim.store(bundle, coverage);
            auto result = sim.retrieve(coverage);
            const auto &per_cw =
                result.decoded.stats.errorsPerCodeword;
            for (size_t j = 0; j < per_cw.size(); ++j)
                counts[s][j] += double(per_cw[j]) / double(reps);
        }
    }

    std::printf("codeword,baseline_errors,gini_errors\n");
    for (size_t j = 0; j < cfg.rows; ++j)
        std::printf("%zu,%.1f,%.1f\n", j, counts[0][j], counts[1][j]);

    double base_total = 0, gini_total = 0, base_peak = 0, gini_peak = 0;
    for (size_t j = 0; j < cfg.rows; ++j) {
        base_total += counts[0][j];
        gini_total += counts[1][j];
        base_peak = std::max(base_peak, counts[0][j]);
        gini_peak = std::max(gini_peak, counts[1][j]);
    }
    std::printf("# summary: totals baseline=%.0f gini=%.0f (similar "
                "area); peaks baseline=%.0f gini=%.0f; gini index "
                "baseline=%.3f gini=%.3f (flat curve -> near 0)\n",
                base_total, gini_total, base_peak, gini_peak,
                giniIndex(counts[0]), giniIndex(counts[1]));
    return 0;
}

/**
 * @file
 * Figure 12: minimum sequencing coverage required for error-free
 * decoding as a function of error rate, baseline vs Gini.
 *
 * Expected shape: Gini needs ~20% less coverage at low error rates,
 * up to ~30% less at high error rates.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "pipeline/simulator.hh"
#include "util/rng.hh"

using namespace dnastore;

namespace {

FileBundle
fullUnitBundle(const StorageConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    FileBundle b;
    std::vector<uint8_t> data(cfg.capacityBytes() - 600);
    for (auto &x : data)
        x = uint8_t(rng.next());
    b.add("payload.bin", std::move(data));
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 3);
    const size_t max_cov = bench::flagValue(argc, argv, "--maxcov", 34);
    auto cfg = StorageConfig::benchScale();
    cfg.numThreads = bench::threadsFlag(argc, argv);

    bench::banner("Figure 12",
                  "minimum coverage for error-free decoding vs error "
                  "rate, baseline vs Gini");

    auto bundle = fullUnitBundle(cfg, 1212);
    std::printf("error_rate,baseline_min_coverage,gini_min_coverage,"
                "gini_saving\n");
    const double rates[] = { 0.03, 0.06, 0.09, 0.12 };
    for (double p : rates) {
        double mins[2] = { 0, 0 };
        const LayoutScheme schemes[2] = { LayoutScheme::Baseline,
                                          LayoutScheme::Gini };
        for (int s = 0; s < 2; ++s) {
            for (size_t rep = 0; rep < reps; ++rep) {
                StorageSimulator sim(cfg, schemes[s],
                                     ErrorModel::uniform(p),
                                     1200 + rep);
                sim.store(bundle, max_cov);
                mins[s] += double(sim.minCoverageForExact(2, max_cov)
                                      .value_or(max_cov + 1)) /
                    double(reps);
            }
        }
        std::printf("%.0f%%,%.1f,%.1f,%.0f%%\n", p * 100, mins[0],
                    mins[1], 100.0 * (1.0 - mins[1] / mins[0]));
    }
    std::printf("# expectation: saving grows from ~20%% (low error "
                "rates) to ~30%% (high error rates).\n");
    return 0;
}

/**
 * @file
 * Figure 14: image quality loss (dB) vs sequencing coverage for the
 * baseline mapping, DnaMapper, and Gini, at error rates 3/6/9/12%.
 *
 * Workload: a bundle of encrypted synthetic photos filling the unit,
 * plus the directory (highest priority under DnaMapper). Expected
 * shape: the baseline degrades sharply (then catastrophically) as
 * coverage drops; DnaMapper degrades gracefully, buying 20-50% of
 * reading cost at equal quality; Gini is perfect down to a cliff,
 * below which everything fails at once — occasionally worse than the
 * baseline in the high-error regime.
 */

#include <cstdio>

#include "bench_util.hh"
#include "pipeline/quality.hh"
#include "pipeline/simulator.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t reps = bench::flagValue(argc, argv, "--reps", 3);
    const size_t max_cov = bench::flagValue(argc, argv, "--maxcov", 20);
    const size_t min_cov = bench::flagValue(argc, argv, "--mincov", 3);
    auto cfg = StorageConfig::benchScale();
    cfg.numThreads = bench::threadsFlag(argc, argv);

    bench::banner("Figure 14",
                  "image quality loss vs coverage, baseline vs "
                  "DnaMapper vs Gini, error rates 3-12%");

    auto workload = makeImageWorkloadForCapacity(cfg.capacityBits(), 80,
                                                 1414);
    auto stored = workload.bundle.encrypted(0x14);
    std::printf("# workload: %zu encrypted images, %zu bytes total\n",
                workload.bundle.fileCount(), stored.totalBytes());

    const LayoutScheme schemes[3] = { LayoutScheme::Baseline,
                                      LayoutScheme::DnaMapper,
                                      LayoutScheme::Gini };
    const double rates[] = { 0.03, 0.06, 0.09, 0.12 };

    std::printf("scheme,error_rate,coverage,mean_loss_db,max_loss_db,"
                "undecodable\n");
    for (double p : rates) {
        for (LayoutScheme scheme : schemes) {
            std::vector<double> mean_loss(max_cov + 1, 0.0);
            std::vector<double> max_loss(max_cov + 1, 0.0);
            std::vector<double> undec(max_cov + 1, 0.0);
            for (size_t rep = 0; rep < reps; ++rep) {
                StorageSimulator sim(cfg, scheme,
                                     ErrorModel::uniform(p),
                                     1400 + rep);
                sim.store(stored, max_cov);
                for (size_t cov = max_cov; cov >= min_cov; --cov) {
                    auto result = sim.retrieve(cov);
                    // Decrypt whatever came back, then score.
                    auto plain =
                        result.decoded.bundleOk
                            ? result.decoded.bundle.encrypted(0x14)
                            : FileBundle{};
                    auto report =
                        evaluateImageQuality(workload, plain);
                    mean_loss[cov] += report.meanLossDb / double(reps);
                    max_loss[cov] += report.maxLossDb / double(reps);
                    undec[cov] +=
                        double(report.undecodable) / double(reps);
                }
            }
            for (size_t cov = max_cov; cov >= min_cov; --cov) {
                std::printf("%s,%.0f%%,%zu,%.3f,%.3f,%.1f\n",
                            layoutSchemeName(scheme), p * 100, cov,
                            mean_loss[cov], max_loss[cov], undec[cov]);
            }
        }
    }
    std::printf("# expectation: dnamapper's loss rises gradually as "
                "coverage drops; baseline jumps to catastrophic; gini "
                "is 0 until its cliff.\n");
    return 0;
}

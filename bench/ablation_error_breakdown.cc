/**
 * @file
 * Ablation for the section 8 discussion: how the error-type breakdown
 * shapes the reliability skew.
 *
 * The paper reports that ~25-30% of NGS errors are indels vs >60% for
 * nanopore, and predicts enzymatic synthesis will push the indel
 * share (and thus the skew) even higher. This bench sweeps the indel
 * fraction at a fixed total error rate and profiles the two-sided
 * consensus skew, plus the NGS and nanopore presets.
 *
 * Expected shape: peak positional error grows monotonically with the
 * indel share; a pure-substitution channel is skew-free.
 */

#include <cstdio>

#include "bench_util.hh"
#include "consensus/profiler.hh"
#include "consensus/two_sided.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t trials = bench::flagValue(argc, argv, "--trials", 1500);
    const size_t len = 200, coverage = 5;
    const double p = 0.08;

    bench::banner("Ablation (section 8)",
                  "skew vs error-type breakdown at fixed total error "
                  "rate 8%, N=5, L=200");

    std::printf("indel_fraction,peak_error,mean_error,end_error\n");
    for (double indel_frac :
         { 0.0, 0.1, 0.27, 0.4, 0.6, 0.8, 1.0 }) {
        double indel = p * indel_frac;
        auto model =
            ErrorModel::custom(indel / 2, indel / 2, p - indel);
        auto profile = profilePositionalError(
            reconstructTwoSided, len, coverage, model, trials, 888);
        double ends =
            (profile.errorRate[0] + profile.errorRate[len - 1]) / 2;
        std::printf("%.2f,%.4f,%.4f,%.4f\n", indel_frac,
                    profile.peak(), profile.mean(), ends);
    }

    std::printf("# technology presets at their typical error rates\n");
    std::printf("preset,peak_error,mean_error\n");
    struct Preset
    {
        const char *name;
        ErrorModel model;
    };
    const Preset presets[] = {
        { "NGS(1%)", ErrorModel::ngs(0.01) },
        { "nanopore(12%)", ErrorModel::nanopore(0.12) },
        { "enzymatic-like(12%,80%indel)",
          ErrorModel::custom(0.048, 0.048, 0.024) },
    };
    for (const auto &preset : presets) {
        auto profile = profilePositionalError(
            reconstructTwoSided, len, coverage, preset.model, trials,
            889);
        std::printf("%s,%.4f,%.4f\n", preset.name, profile.peak(),
                    profile.mean());
    }
    std::printf("# expectation: the skew peak grows with the indel "
                "share; substitution-only (fraction 0) is flat.\n");
    return 0;
}

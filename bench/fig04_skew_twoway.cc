/**
 * @file
 * Figure 4: probability of an incorrect base vs position, two-sided
 * (2-way) reconstruction, p = 5%, N = 5, L = 200.
 *
 * Expected shape: low error at both ends, peak in the middle.
 */

#include <cstdio>

#include "bench_util.hh"
#include "consensus/profiler.hh"
#include "consensus/two_sided.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const size_t trials = bench::flagValue(argc, argv, "--trials", 4000);
    const size_t len = 200, coverage = 5;
    const double p = 0.05;

    bench::banner("Figure 4",
                  "positional error, 2-way reconstruction, "
                  "P=5%, N=5, L=200");
    auto profile = profilePositionalError(
        reconstructTwoSided, len, coverage, ErrorModel::uniform(p),
        trials, /*seed=*/404);

    std::printf("position,error_probability\n");
    for (size_t i = 0; i < len; ++i)
        std::printf("%zu,%.5f\n", i + 1, profile.errorRate[i]);

    double ends = 0, mid = 0;
    for (size_t i = 0; i < 20; ++i) {
        ends += profile.errorRate[i] + profile.errorRate[len - 1 - i];
        mid += profile.errorRate[len / 2 - 10 + i];
    }
    std::printf("# summary: trials=%zu ends_mean=%.4f middle_mean=%.4f "
                "peak=%.4f (error peaks in the middle, as in the "
                "paper)\n",
                profile.trials, ends / 40.0, mid / 20.0, profile.peak());
    return 0;
}

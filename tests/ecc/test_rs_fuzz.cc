#include <gtest/gtest.h>

#include <set>

#include "ecc/rs.hh"
#include "fuzz_iters.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

/**
 * Randomized property tests for the Reed-Solomon codec: for random
 * (field, parity) choices and random error/erasure mixes,
 *  - any mix with 2*errors + erasures <= parity must decode exactly;
 *  - whenever decode() reports success, the result must be a valid
 *    codeword whose data part matches the encoder input *if* the
 *    corruption was within capability (no silent miscorrection in the
 *    correctable regime);
 *  - failure must leave the input untouched.
 */
class RsFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RsFuzz, RandomMixesWithinCapabilityAlwaysDecode)
{
    const unsigned m = GetParam();
    GaloisField gf(m);
    Rng rng(m * 7919);
    const int iters = fuzzIters(40);
    for (int iter = 0; iter < iters; ++iter) {
        size_t max_parity = std::min<size_t>(gf.order() - 1, 64);
        size_t parity = 2 + rng.nextBelow(max_parity - 1);
        ReedSolomon rs(gf, parity);

        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        auto clean = rs.encode(data);

        // Random mix within capability: 2e + r <= parity.
        size_t n_err = rng.nextBelow(parity / 2 + 1);
        size_t n_era = rng.nextBelow(parity - 2 * n_err + 1);

        auto noisy = clean;
        std::set<size_t> touched;
        while (touched.size() < n_err + n_era) {
            size_t pos = size_t(rng.nextBelow(noisy.size()));
            if (touched.insert(pos).second)
                noisy[pos] = uint32_t(rng.nextBelow(gf.size()));
        }
        std::vector<size_t> erasures(touched.begin(), touched.end());
        // The first n_era touched positions are declared erasures;
        // the rest are unknown-location errors. (Erasing a position
        // that happens to hold the right value is allowed.)
        erasures.resize(n_era);

        // Positions corrupted but not declared may exceed n_err only
        // if corruption left some symbols unchanged; recount actual
        // unknown errors.
        size_t actual_err = 0;
        std::set<size_t> declared(erasures.begin(), erasures.end());
        for (size_t pos : touched)
            if (!declared.count(pos) && noisy[pos] != clean[pos])
                ++actual_err;
        if (2 * actual_err + n_era > parity)
            continue; // corruption drew duplicate-value symbols; skip

        auto result = rs.decode(noisy, erasures);
        ASSERT_TRUE(result.success)
            << "m=" << m << " parity=" << parity << " err=" << actual_err
            << " era=" << n_era;
        EXPECT_EQ(noisy, clean);
    }
}

TEST_P(RsFuzz, SuccessAlwaysYieldsValidCodeword)
{
    const unsigned m = GetParam();
    GaloisField gf(m);
    Rng rng(m * 104729);
    const int iters = fuzzIters(30);
    for (int iter = 0; iter < iters; ++iter) {
        size_t parity =
            4 + rng.nextBelow(std::min<size_t>(20, gf.order() - 5));
        ReedSolomon rs(gf, parity);
        std::vector<uint32_t> data(rs.k());
        for (auto &d : data)
            d = uint32_t(rng.nextBelow(gf.size()));
        auto noisy = rs.encode(data);
        // Arbitrary-strength corruption, possibly uncorrectable.
        size_t blast = rng.nextBelow(noisy.size() / 2);
        for (size_t e = 0; e < blast; ++e)
            noisy[rng.nextBelow(noisy.size())] =
                uint32_t(rng.nextBelow(gf.size()));
        auto before = noisy;
        auto result = rs.decode(noisy);
        if (result.success)
            EXPECT_TRUE(rs.isCodeword(noisy));
        else
            EXPECT_EQ(noisy, before); // untouched on failure
    }
}

INSTANTIATE_TEST_SUITE_P(Fields, RsFuzz,
                         ::testing::Values(4u, 6u, 8u, 10u));

} // namespace
} // namespace dnastore

#include <gtest/gtest.h>

#include <set>

#include "ecc/rs.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

std::vector<uint32_t>
randomData(const ReedSolomon &rs, Rng &rng)
{
    std::vector<uint32_t> data(rs.k());
    for (auto &d : data)
        d = uint32_t(rng.nextBelow(rs.field().size()));
    return data;
}

/** Corrupt `n_err` random positions with random wrong symbols. */
std::vector<size_t>
corrupt(std::vector<uint32_t> &cw, size_t n_err, const GaloisField &gf,
        Rng &rng)
{
    std::set<size_t> positions;
    while (positions.size() < n_err)
        positions.insert(size_t(rng.nextBelow(cw.size())));
    for (size_t pos : positions) {
        uint32_t wrong;
        do {
            wrong = uint32_t(rng.nextBelow(gf.size()));
        } while (wrong == cw[pos]);
        cw[pos] = wrong;
    }
    return { positions.begin(), positions.end() };
}

TEST(ReedSolomon, EncodeProducesValidCodeword)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 32);
    EXPECT_EQ(rs.n(), 255u);
    EXPECT_EQ(rs.k(), 223u);
    Rng rng(1);
    auto cw = rs.encode(randomData(rs, rng));
    EXPECT_EQ(cw.size(), 255u);
    EXPECT_TRUE(rs.isCodeword(cw));
}

TEST(ReedSolomon, EncodeIsSystematic)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 16);
    Rng rng(2);
    auto data = randomData(rs, rng);
    auto cw = rs.encode(data);
    for (size_t i = 0; i < rs.k(); ++i)
        EXPECT_EQ(cw[i], data[i]);
}

TEST(ReedSolomon, RejectsBadParameters)
{
    GaloisField gf(4);
    EXPECT_THROW(ReedSolomon(gf, 0), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(gf, 15), std::invalid_argument);
    ReedSolomon rs(gf, 4);
    EXPECT_THROW(rs.encode(std::vector<uint32_t>(3)),
                 std::invalid_argument);
}

TEST(ReedSolomon, CleanCodewordDecodesTrivially)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 20);
    Rng rng(3);
    auto cw = rs.encode(randomData(rs, rng));
    auto copy = cw;
    auto result = rs.decode(copy);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.errorsCorrected, 0u);
    EXPECT_EQ(copy, cw);
}

TEST(ReedSolomon, CorrectsErrorsUpToHalfParity)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 32); // corrects up to 16 errors
    Rng rng(4);
    for (size_t n_err : { 1u, 5u, 16u }) {
        auto cw = rs.encode(randomData(rs, rng));
        auto noisy = cw;
        corrupt(noisy, n_err, gf, rng);
        auto result = rs.decode(noisy);
        EXPECT_TRUE(result.success) << n_err << " errors";
        EXPECT_EQ(result.errorsCorrected, n_err);
        EXPECT_EQ(noisy, cw);
    }
}

TEST(ReedSolomon, DetectsUncorrectableOverload)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 8); // corrects up to 4 errors
    Rng rng(5);
    size_t failures = 0;
    const int reps = 50;
    for (int i = 0; i < reps; ++i) {
        auto cw = rs.encode(randomData(rs, rng));
        auto noisy = cw;
        corrupt(noisy, 40, gf, rng); // way beyond capability
        auto before = noisy;
        auto result = rs.decode(noisy);
        if (!result.success) {
            ++failures;
            EXPECT_EQ(noisy, before); // untouched on failure
        }
    }
    // Miscorrection probability for RS is tiny; nearly all must fail.
    EXPECT_GE(failures, size_t(reps - 2));
}

TEST(ReedSolomon, CorrectsErasuresUpToParity)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 32);
    Rng rng(6);
    auto cw = rs.encode(randomData(rs, rng));
    auto noisy = cw;
    std::set<size_t> pos_set;
    while (pos_set.size() < 32)
        pos_set.insert(size_t(rng.nextBelow(noisy.size())));
    std::vector<size_t> erasures(pos_set.begin(), pos_set.end());
    for (size_t pos : erasures)
        noisy[pos] = uint32_t(rng.nextBelow(gf.size()));
    auto result = rs.decode(noisy, erasures);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.erasuresCorrected, 32u);
    EXPECT_EQ(noisy, cw);
}

TEST(ReedSolomon, MixedErrorsAndErasures)
{
    // 2*errors + erasures <= parity must decode.
    GaloisField gf(8);
    ReedSolomon rs(gf, 20);
    Rng rng(7);
    auto cw = rs.encode(randomData(rs, rng));
    auto noisy = cw;
    // 8 erasures + 6 errors: 2*6 + 8 = 20 = parity (boundary case).
    std::vector<size_t> erasures;
    for (size_t i = 0; i < 8; ++i) {
        erasures.push_back(i * 25);
        noisy[i * 25] = uint32_t(rng.nextBelow(gf.size()));
    }
    std::set<size_t> erased(erasures.begin(), erasures.end());
    size_t injected = 0;
    for (size_t pos = 13; injected < 6; pos += 29) {
        if (erased.count(pos))
            continue;
        noisy[pos] ^= 0x5a;
        ++injected;
    }
    auto result = rs.decode(noisy, erasures);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(noisy, cw);
    EXPECT_EQ(result.errorsCorrected, 6u);
    EXPECT_EQ(result.erasuresCorrected, 8u);
}

TEST(ReedSolomon, TooManyErasuresFails)
{
    GaloisField gf(4);
    ReedSolomon rs(gf, 4);
    Rng rng(8);
    auto cw = rs.encode(randomData(rs, rng));
    std::vector<size_t> erasures{ 0, 1, 2, 3, 4 };
    auto result = rs.decode(cw, erasures);
    EXPECT_FALSE(result.success);
}

TEST(ReedSolomon, ErasedPositionValuesAreIgnored)
{
    // The decoder must not trust erased symbol values at all.
    GaloisField gf(8);
    ReedSolomon rs(gf, 10);
    Rng rng(9);
    auto cw = rs.encode(randomData(rs, rng));
    auto noisy = cw;
    // Erase position 7 but leave the *correct* value there; and erase
    // position 100 with a garbage value.
    noisy[100] = cw[100] ^ 0x33;
    auto result = rs.decode(noisy, { 7, 100 });
    EXPECT_TRUE(result.success);
    EXPECT_EQ(noisy, cw);
}

class RsGfSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsGfSweep, RoundTripWithHalfCapacityErrors)
{
    GaloisField gf(GetParam());
    size_t parity = std::max<size_t>(2, gf.order() / 8) & ~size_t(1);
    ReedSolomon rs(gf, parity);
    Rng rng(GetParam());
    auto cw = rs.encode(randomData(rs, rng));
    auto noisy = cw;
    corrupt(noisy, parity / 2, gf, rng);
    auto result = rs.decode(noisy);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(noisy, cw);
}

INSTANTIATE_TEST_SUITE_P(FieldSweep, RsGfSweep,
                         ::testing::Values(3u, 4u, 6u, 8u, 10u, 12u));

TEST(ReedSolomon, ZeroErrorDecodeLeavesBufferUntouchedAndCountsZero)
{
    // The all-zero-syndrome early-out must report success with zero
    // corrections and not move a single symbol.
    GaloisField gf(10);
    ReedSolomon rs(gf, 188);
    Rng rng(20);
    auto cw = rs.encode(randomData(rs, rng));
    auto copy = cw;
    for (int rep = 0; rep < 3; ++rep) { // scratch reuse across calls
        auto result = rs.decode(copy);
        EXPECT_TRUE(result.success);
        EXPECT_EQ(result.errorsCorrected, 0u);
        EXPECT_EQ(result.erasuresCorrected, 0u);
        EXPECT_EQ(copy, cw);
    }
}

TEST(ReedSolomon, ErasureOnlyDecodeSkipsChienAndMatchesFullPath)
{
    // Erasure-only decodes (Berlekamp-Massey finds no errors) take the
    // skip-Chien fast path; outcomes must be identical to the classic
    // errors-and-erasures result across many erasure patterns.
    GaloisField gf(8);
    ReedSolomon rs(gf, 32);
    Rng rng(21);
    for (int rep = 0; rep < 20; ++rep) {
        auto cw = rs.encode(randomData(rs, rng));
        auto noisy = cw;
        size_t n_erase = 1 + size_t(rng.nextBelow(32));
        std::set<size_t> pos_set;
        while (pos_set.size() < n_erase)
            pos_set.insert(size_t(rng.nextBelow(noisy.size())));
        std::vector<size_t> erasures(pos_set.begin(), pos_set.end());
        for (size_t pos : erasures)
            noisy[pos] = uint32_t(rng.nextBelow(gf.size()));
        auto result = rs.decode(noisy, erasures);
        ASSERT_TRUE(result.success) << n_erase << " erasures";
        EXPECT_EQ(result.errorsCorrected, 0u);
        EXPECT_EQ(result.erasuresCorrected, n_erase);
        EXPECT_EQ(noisy, cw);
    }
}

TEST(ReedSolomon, DuplicateErasurePositionsFail)
{
    // A repeated erasure position gives the locator a double root;
    // the decoder must reject it rather than miscount.
    GaloisField gf(8);
    ReedSolomon rs(gf, 16);
    Rng rng(22);
    auto cw = rs.encode(randomData(rs, rng));
    auto noisy = cw;
    noisy[5] ^= 0x11;
    auto before = noisy;
    auto result = rs.decode(noisy, { 5, 5 });
    EXPECT_FALSE(result.success);
    EXPECT_EQ(noisy, before);
}

TEST(ReedSolomon, ExplicitScratchMatchesThreadLocalDefault)
{
    GaloisField gf(8);
    ReedSolomon rs(gf, 20);
    Rng rng(23);
    RsScratch scratch;
    for (int rep = 0; rep < 10; ++rep) {
        auto cw = rs.encode(randomData(rs, rng));
        auto with_default = cw;
        auto with_scratch = cw;
        size_t n_err = size_t(rng.nextBelow(11));
        corrupt(with_default, n_err, gf, rng);
        with_scratch = with_default;
        auto a = rs.decode(with_default);
        auto b = rs.decode(with_scratch, {}, scratch);
        EXPECT_EQ(a.success, b.success);
        EXPECT_EQ(a.errorsCorrected, b.errorsCorrected);
        EXPECT_EQ(with_default, with_scratch);
    }
}

TEST(ReedSolomon, ScratchIsReusableAcrossDifferentCodes)
{
    // One scratch serving codes over different fields must not leak
    // state between them.
    RsScratch scratch;
    Rng rng(24);
    for (unsigned m : { 4u, 8u, 10u, 8u, 4u }) {
        GaloisField gf(m);
        size_t parity = std::max<size_t>(2, gf.order() / 8) & ~size_t(1);
        ReedSolomon rs(gf, parity);
        auto cw = rs.encode(randomData(rs, rng));
        auto noisy = cw;
        corrupt(noisy, parity / 2, gf, rng);
        auto result = rs.decode(noisy, {}, scratch);
        EXPECT_TRUE(result.success) << "m=" << m;
        EXPECT_EQ(noisy, cw);
    }
}

TEST(ReedSolomon, PaperScaleGf16Codeword)
{
    // GF(2^16): n = 65535 as in the paper's architecture. Parity kept
    // moderate so the test runs quickly; the geometry is what matters.
    GaloisField gf(16);
    ReedSolomon rs(gf, 32);
    EXPECT_EQ(rs.n(), 65535u);
    Rng rng(10);
    auto data = randomData(rs, rng);
    auto cw = rs.encode(data);
    ASSERT_TRUE(rs.isCodeword(cw));
    auto noisy = cw;
    corrupt(noisy, 16, gf, rng);
    auto result = rs.decode(noisy);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.errorsCorrected, 16u);
    EXPECT_EQ(noisy, cw);
}

} // namespace
} // namespace dnastore

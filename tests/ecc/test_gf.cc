#include <gtest/gtest.h>

#include "ecc/gf.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

class GfParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(GfParam, ExpLogAreInverse)
{
    GaloisField gf(GetParam());
    for (uint32_t a = 1; a <= gf.order(); ++a)
        EXPECT_EQ(gf.alphaPow(gf.logOf(a)), a);
}

TEST_P(GfParam, MultiplicationIsCommutativeAndAssociative)
{
    GaloisField gf(GetParam());
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        uint32_t a = uint32_t(rng.nextBelow(gf.size()));
        uint32_t b = uint32_t(rng.nextBelow(gf.size()));
        uint32_t c = uint32_t(rng.nextBelow(gf.size()));
        EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
        EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
    }
}

TEST_P(GfParam, DistributivityOverAddition)
{
    GaloisField gf(GetParam());
    Rng rng(GetParam() + 100);
    for (int i = 0; i < 200; ++i) {
        uint32_t a = uint32_t(rng.nextBelow(gf.size()));
        uint32_t b = uint32_t(rng.nextBelow(gf.size()));
        uint32_t c = uint32_t(rng.nextBelow(gf.size()));
        EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                  GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
    }
}

TEST_P(GfParam, InverseIsCorrect)
{
    GaloisField gf(GetParam());
    for (uint32_t a = 1; a <= gf.order(); ++a)
        EXPECT_EQ(gf.mul(a, gf.inverse(a)), 1u);
}

TEST_P(GfParam, DivisionUndoesMultiplication)
{
    GaloisField gf(GetParam());
    Rng rng(GetParam() + 200);
    for (int i = 0; i < 200; ++i) {
        uint32_t a = uint32_t(rng.nextBelow(gf.size()));
        uint32_t b = 1 + uint32_t(rng.nextBelow(gf.order()));
        EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
    }
}

TEST_P(GfParam, AlphaHasFullOrder)
{
    // alpha must be primitive: alpha^k != 1 for 0 < k < n.
    GaloisField gf(GetParam());
    EXPECT_EQ(gf.alphaPow(gf.order()), 1u);
    // Spot-check proper divisors of the group order.
    for (uint32_t k = 1; k < gf.order(); k <<= 1) {
        if (gf.order() % k == 0 && k != gf.order()) {
            EXPECT_NE(gf.alphaPow(k), 1u) << "k=" << k;
        }
    }
}

TEST_P(GfParam, PowMatchesRepeatedMultiplication)
{
    GaloisField gf(GetParam());
    Rng rng(GetParam() + 300);
    uint32_t a = 1 + uint32_t(rng.nextBelow(gf.order()));
    uint32_t acc = 1;
    for (uint64_t e = 0; e < 40; ++e) {
        EXPECT_EQ(gf.pow(a, e), acc);
        acc = gf.mul(acc, a);
    }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, GfParam,
                         ::testing::Values(2u, 3u, 4u, 8u, 10u, 12u));

TEST(GaloisField, SixteenBitFieldBasics)
{
    // Paper-scale field: GF(2^16), 65535-symbol codewords.
    GaloisField gf(16);
    EXPECT_EQ(gf.order(), 65535u);
    EXPECT_EQ(gf.mul(0, 12345), 0u);
    EXPECT_EQ(gf.mul(1, 12345), 12345u);
    EXPECT_EQ(gf.mul(12345, gf.inverse(12345)), 1u);
    EXPECT_EQ(gf.alphaPow(65535), 1u);
    // 65535 = 3 * 5 * 17 * 257; alpha^(65535/d) != 1 for prime d.
    for (uint32_t d : { 3u, 5u, 17u, 257u })
        EXPECT_NE(gf.alphaPow(65535 / d), 1u);
}

TEST(GaloisField, ZeroOperandEdgeCases)
{
    GaloisField gf(8);
    EXPECT_EQ(gf.mul(0, 0), 0u);
    EXPECT_EQ(gf.div(0, 7), 0u);
    EXPECT_THROW(gf.div(3, 0), std::domain_error);
    EXPECT_THROW(gf.inverse(0), std::domain_error);
    EXPECT_THROW(gf.logOf(0), std::domain_error);
    EXPECT_EQ(gf.pow(0, 0), 1u);
    EXPECT_EQ(gf.pow(0, 5), 0u);
}

TEST(GaloisField, UnsupportedDegreesRejected)
{
    EXPECT_THROW(GaloisField(1), std::invalid_argument);
    EXPECT_THROW(GaloisField(17), std::invalid_argument);
}

} // namespace
} // namespace dnastore

#include <gtest/gtest.h>

#include "channel/read_pool.hh"

namespace dnastore {
namespace {

std::vector<Strand>
makeReferences(size_t count, size_t len, Rng &rng)
{
    std::vector<Strand> refs(count);
    for (auto &s : refs) {
        s.resize(len);
        for (auto &b : s)
            b = baseFromBits(unsigned(rng.nextBelow(4)));
    }
    return refs;
}

TEST(ReadPool, ShapeMatchesRequest)
{
    Rng rng(1);
    auto refs = makeReferences(10, 50, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 8, rng);
    EXPECT_EQ(pool.clusters(), 10u);
    EXPECT_EQ(pool.maxCoverage(), 8u);
    EXPECT_EQ(pool.reads(0, 8).size(), 8u);
    EXPECT_EQ(pool.reads(9, 1).size(), 1u);
}

TEST(ReadPool, ProgressiveCoverageIsPrefix)
{
    // The paper's methodology adds reads progressively; lower coverage
    // must be a strict prefix of higher coverage (monotone info).
    Rng rng(2);
    auto refs = makeReferences(3, 60, rng);
    IdsChannel ch(ErrorModel::uniform(0.1));
    ReadPool pool(refs, ch, 10, rng);
    auto low = pool.reads(1, 4);
    auto high = pool.reads(1, 10);
    for (size_t i = 0; i < low.size(); ++i)
        EXPECT_EQ(low[i], high[i]);
}

TEST(ReadPool, OutOfRangeRejected)
{
    Rng rng(3);
    auto refs = makeReferences(2, 30, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 5, rng);
    EXPECT_THROW(pool.reads(2, 3), std::out_of_range);
    EXPECT_THROW(pool.reads(0, 6), std::out_of_range);
}

TEST(ReadPool, SampleCountsRespectPoolCap)
{
    Rng rng(4);
    auto refs = makeReferences(200, 30, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 6, rng);
    auto counts = pool.sampleCounts(CoverageModel::gamma(6.0, 2.0), rng);
    ASSERT_EQ(counts.size(), 200u);
    for (size_t c : counts) {
        EXPECT_GE(c, 1u);
        EXPECT_LE(c, 6u);
    }
}

} // namespace
} // namespace dnastore

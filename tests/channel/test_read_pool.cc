#include <gtest/gtest.h>

#include "channel/read_pool.hh"

namespace dnastore {
namespace {

std::vector<Strand>
makeReferences(size_t count, size_t len, Rng &rng)
{
    std::vector<Strand> refs(count);
    for (auto &s : refs) {
        s.resize(len);
        for (auto &b : s)
            b = baseFromBits(unsigned(rng.nextBelow(4)));
    }
    return refs;
}

TEST(ReadPool, ShapeMatchesRequest)
{
    Rng rng(1);
    auto refs = makeReferences(10, 50, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 8, rng);
    EXPECT_EQ(pool.clusters(), 10u);
    EXPECT_EQ(pool.maxCoverage(), 8u);
    EXPECT_EQ(pool.reads(0, 8).size(), 8u);
    EXPECT_EQ(pool.reads(9, 1).size(), 1u);
}

TEST(ReadPool, ProgressiveCoverageIsPrefix)
{
    // The paper's methodology adds reads progressively; lower coverage
    // must be a strict prefix of higher coverage (monotone info).
    Rng rng(2);
    auto refs = makeReferences(3, 60, rng);
    IdsChannel ch(ErrorModel::uniform(0.1));
    ReadPool pool(refs, ch, 10, rng);
    auto low = pool.reads(1, 4);
    auto high = pool.reads(1, 10);
    for (size_t i = 0; i < low.size(); ++i)
        EXPECT_EQ(low[i], high[i]);
}

TEST(ReadPool, OutOfRangeRejected)
{
    Rng rng(3);
    auto refs = makeReferences(2, 30, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 5, rng);
    EXPECT_THROW(pool.reads(2, 3), std::out_of_range);
    EXPECT_THROW(pool.reads(0, 6), std::out_of_range);
}

TEST(ReadPool, FillBatchViewsMatchReads)
{
    Rng rng(10);
    auto refs = makeReferences(6, 40, rng);
    IdsChannel ch(ErrorModel::uniform(0.08));
    ReadPool pool(refs, ch, 7, 1234, 1);
    ReadBatch batch;
    for (size_t cov : { size_t(0), size_t(3), size_t(7) }) {
        pool.fillBatch(cov, batch);
        ASSERT_EQ(batch.clusters(), pool.clusters());
        for (size_t c = 0; c < pool.clusters(); ++c) {
            auto copies = pool.reads(c, cov);
            ASSERT_EQ(batch.clusterSize(c), copies.size());
            for (size_t r = 0; r < copies.size(); ++r)
                EXPECT_EQ(batch.cluster(c)[r].toStrand(), copies[r]);
        }
    }
}

TEST(ReadPool, FillBatchPerClusterCounts)
{
    Rng rng(11);
    auto refs = makeReferences(4, 30, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 5, 99, 1);
    ReadBatch batch;
    std::vector<size_t> counts{ 0, 5, 2, 4 };
    pool.fillBatch(counts, batch);
    for (size_t c = 0; c < counts.size(); ++c)
        EXPECT_EQ(batch.clusterSize(c), counts[c]);
    EXPECT_THROW(pool.fillBatch(std::vector<size_t>{ 1, 2 }, batch),
                 std::invalid_argument);
    EXPECT_THROW(pool.fillBatch(std::vector<size_t>{ 6, 0, 0, 0 },
                                batch),
                 std::out_of_range);
}

TEST(ReadPool, PackedPoolHoldsIdenticalReads)
{
    // Packed storage is a memory knob only: the same seed must yield
    // bit-identical reads through both reads() and fillBatch().
    Rng rng(12);
    auto refs = makeReferences(5, 60, rng);
    IdsChannel ch(ErrorModel::uniform(0.1));
    ReadPool flat(refs, ch, 6, 777, 1, ReadStorage::Flat);
    ReadPool packed(refs, ch, 6, 777, 1, ReadStorage::Packed);
    EXPECT_EQ(packed.storage(), ReadStorage::Packed);
    for (size_t c = 0; c < flat.clusters(); ++c)
        EXPECT_EQ(flat.reads(c, 6), packed.reads(c, 6));
    ReadBatch fb, pb;
    flat.fillBatch(4, fb);
    packed.fillBatch(4, pb);
    ASSERT_EQ(fb.views.size(), pb.views.size());
    for (size_t i = 0; i < fb.views.size(); ++i)
        EXPECT_EQ(fb.views[i].toStrand(), pb.views[i].toStrand());
}

TEST(ReadPool, ThreadedGenerationIsBitIdentical)
{
    Rng rng(13);
    auto refs = makeReferences(8, 50, rng);
    IdsChannel ch(ErrorModel::uniform(0.07));
    for (ReadStorage storage :
         { ReadStorage::Flat, ReadStorage::Packed }) {
        ReadPool serial(refs, ch, 5, 42, 1, storage);
        ReadPool threaded(refs, ch, 5, 42, 4, storage);
        for (size_t c = 0; c < serial.clusters(); ++c)
            EXPECT_EQ(serial.reads(c, 5), threaded.reads(c, 5));
    }
}

TEST(ReadPool, SampleCountsRespectPoolCap)
{
    Rng rng(4);
    auto refs = makeReferences(200, 30, rng);
    IdsChannel ch(ErrorModel::uniform(0.05));
    ReadPool pool(refs, ch, 6, rng);
    auto counts = pool.sampleCounts(CoverageModel::gamma(6.0, 2.0), rng);
    ASSERT_EQ(counts.size(), 200u);
    for (size_t c : counts) {
        EXPECT_GE(c, 1u);
        EXPECT_LE(c, 6u);
    }
}

} // namespace
} // namespace dnastore

#include <gtest/gtest.h>

#include "channel/coverage.hh"

namespace dnastore {
namespace {

TEST(Coverage, FixedAlwaysReturnsSameCount)
{
    Rng rng(1);
    auto model = CoverageModel::fixed(5);
    EXPECT_TRUE(model.isFixed());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(model.sample(rng), 5u);
}

TEST(Coverage, FixedZeroRejected)
{
    EXPECT_THROW(CoverageModel::fixed(0), std::invalid_argument);
}

TEST(Coverage, GammaBadParamsRejected)
{
    EXPECT_THROW(CoverageModel::gamma(0.0, 2.0), std::invalid_argument);
    EXPECT_THROW(CoverageModel::gamma(5.0, -1.0), std::invalid_argument);
}

TEST(Coverage, GammaMeanApproximatelyCorrect)
{
    Rng rng(2);
    auto model = CoverageModel::gamma(10.0, 4.0);
    EXPECT_FALSE(model.isFixed());
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += double(model.sample(rng));
    EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Coverage, GammaNeverReturnsZero)
{
    Rng rng(3);
    // Low mean, low shape: lots of mass near zero before clamping.
    auto model = CoverageModel::gamma(1.2, 0.8);
    for (int i = 0; i < 20000; ++i)
        EXPECT_GE(model.sample(rng), 1u);
}

TEST(Coverage, AccessorsReflectConfiguration)
{
    auto fixed = CoverageModel::fixed(7);
    EXPECT_TRUE(fixed.isFixed());
    EXPECT_DOUBLE_EQ(fixed.mean(), 7.0);

    auto gamma = CoverageModel::gamma(6.5, 3.0);
    EXPECT_FALSE(gamma.isFixed());
    EXPECT_DOUBLE_EQ(gamma.mean(), 6.5);
}

TEST(Coverage, FixedOneAlwaysSamplesOne)
{
    // The degenerate-but-legal floor: a cluster that exists has at
    // least one read.
    Rng rng(7);
    auto model = CoverageModel::fixed(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(model.sample(rng), 1u);
}

TEST(Coverage, GammaTinyShapeStillClampsToOne)
{
    // Shape far below 1 puts almost all mass near zero; the clamp
    // must still never emit a zero-read cluster.
    Rng rng(8);
    auto model = CoverageModel::gamma(2.0, 0.05);
    size_t clamped = 0;
    for (int i = 0; i < 5000; ++i) {
        size_t n = model.sample(rng);
        EXPECT_GE(n, 1u);
        clamped += n == 1 ? 1 : 0;
    }
    // The clamp actually fires for this parameterization.
    EXPECT_GT(clamped, 2500u);
}

TEST(Coverage, GammaRejectsNonFiniteEdges)
{
    EXPECT_THROW(CoverageModel::gamma(-3.0, 2.0),
                 std::invalid_argument);
    EXPECT_THROW(CoverageModel::gamma(5.0, 0.0),
                 std::invalid_argument);
}

TEST(Coverage, GammaSpreadShrinksWithShape)
{
    // Variance of Gamma(mean, shape) is mean^2 / shape.
    Rng rng(4);
    auto loose = CoverageModel::gamma(20.0, 2.0);
    auto tight = CoverageModel::gamma(20.0, 50.0);
    auto sample_var = [&rng](const CoverageModel &m) {
        const int n = 20000;
        double sum = 0, sumsq = 0;
        for (int i = 0; i < n; ++i) {
            double v = double(m.sample(rng));
            sum += v;
            sumsq += v * v;
        }
        double mean = sum / n;
        return sumsq / n - mean * mean;
    };
    EXPECT_GT(sample_var(loose), 2.0 * sample_var(tight));
}

} // namespace
} // namespace dnastore

#include <gtest/gtest.h>

#include "channel/error_model.hh"

namespace dnastore {
namespace {

TEST(ErrorModel, UniformSplitsEvenly)
{
    auto m = ErrorModel::uniform(0.09);
    EXPECT_NEAR(m.insertion, 0.03, 1e-12);
    EXPECT_NEAR(m.deletion, 0.03, 1e-12);
    EXPECT_NEAR(m.substitution, 0.03, 1e-12);
    EXPECT_NEAR(m.total(), 0.09, 1e-12);
    EXPECT_TRUE(m.valid());
}

TEST(ErrorModel, SubstitutionOnly)
{
    auto m = ErrorModel::substitutionOnly(0.10);
    EXPECT_DOUBLE_EQ(m.insertion, 0.0);
    EXPECT_DOUBLE_EQ(m.deletion, 0.0);
    EXPECT_DOUBLE_EQ(m.substitution, 0.10);
}

TEST(ErrorModel, IndelOnly)
{
    auto m = ErrorModel::indelOnly(0.10);
    EXPECT_DOUBLE_EQ(m.insertion, 0.05);
    EXPECT_DOUBLE_EQ(m.deletion, 0.05);
    EXPECT_DOUBLE_EQ(m.substitution, 0.0);
}

TEST(ErrorModel, NgsBreakdownMatchesPaper)
{
    // Section 8: 25-30% of NGS errors are indels.
    auto m = ErrorModel::ngs(0.01);
    double indel_frac = (m.insertion + m.deletion) / m.total();
    EXPECT_GT(indel_frac, 0.25);
    EXPECT_LT(indel_frac, 0.30);
}

TEST(ErrorModel, NanoporeBreakdownMatchesPaper)
{
    // Section 8: over 60% of nanopore errors are indels.
    auto m = ErrorModel::nanopore(0.12);
    double indel_frac = (m.insertion + m.deletion) / m.total();
    EXPECT_NEAR(indel_frac, 0.60, 1e-9);
}

TEST(ErrorModel, ValidityChecks)
{
    EXPECT_FALSE(ErrorModel::custom(-0.1, 0.0, 0.0).valid());
    EXPECT_FALSE(ErrorModel::custom(0.5, 0.4, 0.2).valid());
    EXPECT_TRUE(ErrorModel::custom(0.3, 0.3, 0.3).valid());
}

TEST(ErrorModel, TotalExactlyOneIsValid)
{
    // The boundary is inclusive: an error at every position is a
    // legal (if hopeless) channel.
    auto m = ErrorModel::custom(0.4, 0.3, 0.3);
    EXPECT_DOUBLE_EQ(m.total(), 1.0);
    EXPECT_TRUE(m.valid());
    EXPECT_TRUE(ErrorModel::uniform(1.0).valid());
}

TEST(ErrorModel, TinyNegativesAreInvalid)
{
    // Even sub-epsilon negative rates must be rejected — they would
    // silently skew the cumulative-threshold channel walk.
    EXPECT_FALSE(ErrorModel::custom(-1e-12, 0.01, 0.01).valid());
    EXPECT_FALSE(ErrorModel::custom(0.01, -1e-15, 0.01).valid());
    EXPECT_FALSE(ErrorModel::custom(0.01, 0.01, -1e-9).valid());
}

TEST(ErrorModel, TotalBarelyOverOneIsInvalid)
{
    EXPECT_FALSE(ErrorModel::custom(0.4, 0.3, 0.3 + 1e-9).valid());
}

TEST(ErrorModel, ZeroRatesAreValid)
{
    auto m = ErrorModel::custom(0.0, 0.0, 0.0);
    EXPECT_TRUE(m.valid());
    EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

} // namespace
} // namespace dnastore

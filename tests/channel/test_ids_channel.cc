#include <gtest/gtest.h>

#include "channel/ids_channel.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

TEST(IdsChannel, NoiselessChannelIsIdentity)
{
    Rng rng(1);
    IdsChannel ch(ErrorModel::uniform(0.0));
    auto s = randomStrand(100, rng);
    ChannelEvents ev;
    EXPECT_EQ(ch.transmit(s, rng, &ev), s);
    EXPECT_EQ(ev.total(), 0u);
}

TEST(IdsChannel, RejectsInvalidModel)
{
    EXPECT_THROW(IdsChannel(ErrorModel::custom(0.5, 0.5, 0.5)),
                 std::invalid_argument);
}

TEST(IdsChannel, SubstitutionOnlyPreservesLength)
{
    Rng rng(2);
    IdsChannel ch(ErrorModel::substitutionOnly(0.2));
    auto s = randomStrand(500, rng);
    for (int i = 0; i < 20; ++i) {
        ChannelEvents ev;
        auto noisy = ch.transmit(s, rng, &ev);
        EXPECT_EQ(noisy.size(), s.size());
        EXPECT_EQ(ev.insertions, 0u);
        EXPECT_EQ(ev.deletions, 0u);
        // Substituted bases must actually differ from the original.
        EXPECT_EQ(hammingDistance(s, noisy), ev.substitutions);
    }
}

TEST(IdsChannel, LengthChangeMatchesEventCounts)
{
    Rng rng(3);
    IdsChannel ch(ErrorModel::uniform(0.15));
    auto s = randomStrand(300, rng);
    for (int i = 0; i < 50; ++i) {
        ChannelEvents ev;
        auto noisy = ch.transmit(s, rng, &ev);
        EXPECT_EQ(long(noisy.size()),
                  long(s.size()) + long(ev.insertions) -
                      long(ev.deletions));
    }
}

TEST(IdsChannel, EventRatesMatchModel)
{
    Rng rng(4);
    ErrorModel model = ErrorModel::custom(0.02, 0.05, 0.03);
    IdsChannel ch(model);
    auto s = randomStrand(1000, rng);
    ChannelEvents total;
    const int reps = 2000;
    for (int i = 0; i < reps; ++i) {
        ChannelEvents ev;
        ch.transmit(s, rng, &ev);
        total.insertions += ev.insertions;
        total.deletions += ev.deletions;
        total.substitutions += ev.substitutions;
    }
    double denom = double(reps) * double(s.size());
    EXPECT_NEAR(double(total.insertions) / denom, 0.02, 0.002);
    EXPECT_NEAR(double(total.deletions) / denom, 0.05, 0.003);
    EXPECT_NEAR(double(total.substitutions) / denom, 0.03, 0.002);
}

TEST(IdsChannel, ClusterHasRequestedSize)
{
    Rng rng(5);
    IdsChannel ch(ErrorModel::uniform(0.05));
    auto s = randomStrand(120, rng);
    auto reads = ch.transmitCluster(s, 7, rng);
    EXPECT_EQ(reads.size(), 7u);
    // Reads must be independent draws, not copies of each other.
    bool any_different = false;
    for (size_t i = 1; i < reads.size(); ++i)
        any_different |= (reads[i] != reads[0]);
    EXPECT_TRUE(any_different);
}

TEST(IdsChannel, DeterministicGivenSeed)
{
    IdsChannel ch(ErrorModel::uniform(0.1));
    Rng rng_a(77), rng_b(77), mk(6);
    auto s = randomStrand(200, mk);
    EXPECT_EQ(ch.transmit(s, rng_a), ch.transmit(s, rng_b));
}

TEST(IdsChannel, TransmitIntoMatchesTransmitBitForBit)
{
    // The buffer-reusing variant must draw the same RNG walk and emit
    // the same strand and event counts as the allocating one.
    IdsChannel ch(ErrorModel::uniform(0.12));
    Rng rng_a(88), rng_b(88), mk(7);
    auto s = randomStrand(300, mk);
    Strand reused;
    for (int rep = 0; rep < 10; ++rep) {
        ChannelEvents ev_a, ev_b;
        Strand fresh = ch.transmit(s, rng_a, &ev_a);
        ch.transmitInto(s, rng_b, reused, &ev_b);
        ASSERT_EQ(reused, fresh);
        EXPECT_EQ(ev_a.insertions, ev_b.insertions);
        EXPECT_EQ(ev_a.deletions, ev_b.deletions);
        EXPECT_EQ(ev_a.substitutions, ev_b.substitutions);
    }
}

TEST(IdsChannel, ArenaClusterMatchesVectorCluster)
{
    IdsChannel ch(ErrorModel::uniform(0.1));
    Rng rng_a(99), rng_b(99), mk(8);
    auto s = randomStrand(150, mk);
    auto vec_reads = ch.transmitCluster(s, 9, rng_a);
    StrandArena arena;
    ch.transmitClusterInto(s, 9, rng_b, arena);
    ASSERT_EQ(arena.strandCount(), vec_reads.size());
    for (size_t i = 0; i < vec_reads.size(); ++i)
        EXPECT_EQ(arena.view(i).toStrand(), vec_reads[i]);
}

} // namespace
} // namespace dnastore

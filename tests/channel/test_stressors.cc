#include <gtest/gtest.h>

#include <set>
#include <string>

#include "channel/ids_channel.hh"
#include "channel/stressors.hh"
#include "dna/strand.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

TEST(PositionalRamp, DisabledIsFlat)
{
    PositionalRamp ramp; // defaults: startFrac 1.0
    EXPECT_FALSE(ramp.enabled());
    for (size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(ramp.multiplierAt(i, 100), 1.0);
}

TEST(PositionalRamp, RampShape)
{
    PositionalRamp ramp{ 0.5, 3.0 };
    ASSERT_TRUE(ramp.enabled());
    const size_t len = 101;
    // Flat before the knee, endMultiplier at the last base, monotone
    // in between.
    EXPECT_DOUBLE_EQ(ramp.multiplierAt(0, len), 1.0);
    EXPECT_DOUBLE_EQ(ramp.multiplierAt(50, len), 1.0);
    EXPECT_DOUBLE_EQ(ramp.multiplierAt(len - 1, len), 3.0);
    double prev = 0.0;
    for (size_t i = 0; i < len; ++i) {
        double m = ramp.multiplierAt(i, len);
        EXPECT_GE(m, prev);
        prev = m;
    }
    // Midpoint of the ramped half sits midway up the ramp.
    EXPECT_NEAR(ramp.multiplierAt(75, len), 2.0, 0.05);
}

TEST(PositionalRamp, Validation)
{
    EXPECT_TRUE((PositionalRamp{ 0.5, 3.0 }).valid());
    EXPECT_FALSE((PositionalRamp{ -0.1, 3.0 }).valid());
    EXPECT_FALSE((PositionalRamp{ 1.5, 3.0 }).valid());
    EXPECT_FALSE((PositionalRamp{ 0.5, -1.0 }).valid());
}

TEST(ProfileChannel, FlatProfileMatchesIdsChannelBitForBit)
{
    // With every stressor disabled, ProfileChannel must draw the
    // exact RNG walk of IdsChannel — profiles degrade gracefully to
    // the paper's channel.
    ErrorModel model = ErrorModel::custom(0.02, 0.03, 0.04);
    IdsChannel ids(model);
    ProfileChannel profile(ChannelProfile{ model, {}, {}, {}, {} });

    Rng strand_rng(11);
    for (int iter = 0; iter < 20; ++iter) {
        Strand input = randomStrand(40 + strand_rng.nextBelow(200),
                                    strand_rng);
        Rng a(1000 + uint64_t(iter));
        Rng b(1000 + uint64_t(iter));
        StrandArena ia, pa;
        ids.transmitAppend(input, a, ia);
        profile.transmitAppend(input, b, pa);
        ASSERT_EQ(ia.strandCount(), pa.strandCount());
        EXPECT_TRUE(ia.view(0) == pa.view(0)) << "iter " << iter;
    }
}

TEST(ProfileChannel, RampConcentratesErrorsInTail)
{
    // Substitution-only channel keeps lengths equal, so per-position
    // mismatches are directly comparable: with a 4x tail ramp the
    // tail half must take clearly more errors than the head half.
    ChannelProfile profile;
    profile.base = ErrorModel::substitutionOnly(0.03);
    profile.ramp = PositionalRamp{ 0.5, 4.0 };
    ProfileChannel channel(profile);

    Rng rng(5);
    Strand input = randomStrand(200, rng);
    size_t head_errors = 0, tail_errors = 0;
    StrandArena arena;
    for (int rep = 0; rep < 400; ++rep) {
        arena.clear();
        channel.transmitAppend(input, rng, arena);
        StrandView out = arena.view(0);
        ASSERT_EQ(out.size(), input.size());
        for (size_t i = 0; i < input.size(); ++i) {
            if (out[i] != input[i])
                (i < input.size() / 2 ? head_errors : tail_errors)++;
        }
    }
    EXPECT_GT(tail_errors, 2 * head_errors);
}

TEST(ProfileChannel, ExtremeRampClampsToValidProbabilities)
{
    // Base total 0.9 ramped 10x would be "probability 9": the clamp
    // keeps the walk well-defined (an error becomes certain instead).
    ChannelProfile profile;
    profile.base = ErrorModel::uniform(0.9);
    profile.ramp = PositionalRamp{ 0.0, 10.0 };
    ProfileChannel channel(profile);
    Rng rng(6);
    Strand input = randomStrand(150, rng);
    StrandArena arena;
    channel.transmitAppend(input, rng, arena);
    // Insertions keep the original base, so output length is bounded
    // by 2x input even when every position errors.
    EXPECT_LE(arena.view(0).size(), 2 * input.size());
}

TEST(Dropout, DisabledLeavesCountsAlone)
{
    std::vector<size_t> counts(50, 7);
    Rng rng(1);
    applyDropout(DropoutProfile{}, rng, counts);
    for (size_t c : counts)
        EXPECT_EQ(c, 7u);
}

TEST(Dropout, CertainDropoutZerosEverything)
{
    std::vector<size_t> counts(50, 7);
    Rng rng(1);
    applyDropout(DropoutProfile{ 1.0, 1 }, rng, counts);
    for (size_t c : counts)
        EXPECT_EQ(c, 0u);
}

TEST(Dropout, BurstsEraseConsecutiveRuns)
{
    std::vector<size_t> counts(4000, 5);
    Rng rng(3);
    const size_t burst = 4;
    applyDropout(DropoutProfile{ 0.02, burst }, rng, counts);
    size_t zeros = 0;
    size_t run = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) {
            ++zeros;
            ++run;
        } else {
            // Every maximal zero-run is made of whole bursts (merged
            // runs only grow), except a burst truncated by the end of
            // the vector — excluded by the i < size() branch here.
            if (run > 0) {
                EXPECT_GE(run, burst) << "at " << i;
            }
            run = 0;
        }
    }
    EXPECT_GT(zeros, 0u);
    EXPECT_LT(zeros, counts.size());
}

TEST(Dropout, DeterministicForSeed)
{
    std::vector<size_t> a(500, 3), b(500, 3);
    Rng ra(9), rb(9);
    applyDropout(DropoutProfile{ 0.1, 2 }, ra, a);
    applyDropout(DropoutProfile{ 0.1, 2 }, rb, b);
    EXPECT_EQ(a, b);
}

TEST(Pcr, LineagesShareMutations)
{
    // Noise-free sequencing over a heavily amplified pool: every read
    // equals its template, so distinct read sequences are bounded by
    // the lineage cap — proof that reads are *not* independent draws.
    ChannelProfile profile;
    profile.base = ErrorModel::custom(0.0, 0.0, 0.0);
    profile.pcr.cycles = 6;
    profile.pcr.efficiency = 1.0;
    profile.pcr.errorRate = 0.02;
    profile.pcr.maxLineage = 16;
    ProfileChannel channel(profile);

    Rng rng(21);
    Strand reference = randomStrand(120, rng);
    StrandArena arena;
    Rng gen(22);
    channel.generateCluster(reference, 60, gen, arena);
    ASSERT_EQ(arena.strandCount(), 60u);

    std::set<std::string> distinct;
    size_t mutated = 0;
    for (size_t i = 0; i < arena.strandCount(); ++i) {
        Strand read = arena.view(i).toStrand();
        distinct.insert(strandToString(read));
        if (read != reference)
            ++mutated;
    }
    EXPECT_LE(distinct.size(), profile.pcr.maxLineage);
    EXPECT_LT(distinct.size(), 60u);
    EXPECT_GT(mutated, 0u);
}

TEST(Pcr, DisabledMeansIndependentReadsOfReference)
{
    ChannelProfile profile; // all stressors off, zero error rates
    ProfileChannel channel(profile);
    Rng rng(30);
    Strand reference = randomStrand(80, rng);
    StrandArena arena;
    channel.generateCluster(reference, 10, rng, arena);
    ASSERT_EQ(arena.strandCount(), 10u);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_TRUE(arena.view(i) == StrandView(reference));
}

TEST(Pcr, DeterministicForSeed)
{
    ChannelProfile profile;
    profile.base = ErrorModel::uniform(0.03);
    profile.pcr.cycles = 5;
    profile.pcr.efficiency = 0.5;
    profile.pcr.errorRate = 0.01;
    ProfileChannel channel(profile);
    Rng rng(40);
    Strand reference = randomStrand(100, rng);
    StrandArena a, b;
    Rng ga(41), gb(41);
    channel.generateCluster(reference, 20, ga, a);
    channel.generateCluster(reference, 20, gb, b);
    ASSERT_EQ(a.strandCount(), b.strandCount());
    for (size_t i = 0; i < a.strandCount(); ++i)
        EXPECT_TRUE(a.view(i) == b.view(i));
}

TEST(ChannelProfile, ValidationRejectsBrokenComponents)
{
    ChannelProfile good;
    good.base = ErrorModel::uniform(0.03);
    EXPECT_TRUE(good.valid());
    EXPECT_NO_THROW(ProfileChannel{ good });

    ChannelProfile bad_base = good;
    bad_base.base = ErrorModel::custom(0.5, 0.4, 0.2);
    EXPECT_FALSE(bad_base.valid());
    EXPECT_THROW(ProfileChannel{ bad_base }, std::invalid_argument);

    ChannelProfile bad_ramp = good;
    bad_ramp.ramp.startFrac = 2.0;
    EXPECT_THROW(ProfileChannel{ bad_ramp }, std::invalid_argument);

    ChannelProfile bad_pcr = good;
    bad_pcr.pcr.cycles = 3;
    bad_pcr.pcr.efficiency = 1.5;
    EXPECT_THROW(ProfileChannel{ bad_pcr }, std::invalid_argument);

    ChannelProfile bad_dropout = good;
    bad_dropout.dropout.rate = -0.5;
    EXPECT_THROW(ProfileChannel{ bad_dropout }, std::invalid_argument);

    ChannelProfile zero_burst = good;
    zero_burst.dropout.rate = 0.1;
    zero_burst.dropout.burstLen = 0;
    EXPECT_THROW(ProfileChannel{ zero_burst }, std::invalid_argument);
}

} // namespace
} // namespace dnastore

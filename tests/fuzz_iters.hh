/**
 * @file
 * Shared iteration-bound helper for the randomized (fuzz) suites.
 *
 * Defaults keep ctest fast; FUZZ_ITERS in the environment overrides
 * every suite's bound for soak runs.
 */

#ifndef DNASTORE_TESTS_FUZZ_ITERS_HH
#define DNASTORE_TESTS_FUZZ_ITERS_HH

#include <cstdlib>

namespace dnastore {

/** Iteration bound: @p dflt unless FUZZ_ITERS overrides it. */
inline int
fuzzIters(int dflt)
{
    const char *env = std::getenv("FUZZ_ITERS");
    if (env == nullptr)
        return dflt;
    int v = std::atoi(env);
    return v > 0 ? v : dflt;
}

} // namespace dnastore

#endif // DNASTORE_TESTS_FUZZ_ITERS_HH

#include <gtest/gtest.h>

#include "channel/ids_channel.hh"
#include "cluster/clusterer.hh"
#include "pipeline/decoder.hh"
#include "pipeline/encoder.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

/**
 * End-to-end retrieval WITHOUT the perfect-clustering assumption: all
 * reads of all molecules are pooled and shuffled (as they come off a
 * sequencer), clustered by similarity, and the resulting clusters are
 * fed to the decoder — which places them by their decoded ordering
 * index, so cluster order is irrelevant and split clusters cost at
 * most erasures.
 */
TEST(ClusterPipeline, DecodesFromShuffledReadSoup)
{
    // Longer strands than tinyTest (with only ~50 non-primer bases,
    // distinct molecules can fall within clustering distance of each
    // other — the paper's strands are 750 bases for good reason), and
    // a bundle that fills the unit: unused capacity pads with zeros,
    // and all-zero molecules are true near-duplicates no clusterer
    // can separate.
    auto cfg = StorageConfig::tinyTest();
    cfg.rows = 40; // 10 + 4 + 160 + 10 = 184-base strands
    Rng rng(42);
    FileBundle bundle;
    std::vector<uint8_t> data(cfg.capacityBytes() - 100);
    for (auto &b : data)
        b = uint8_t(rng.next());
    bundle.add("soup.bin", std::move(data));

    UnitEncoder enc(cfg, LayoutScheme::Gini);
    auto unit = enc.encode(bundle);

    // Sequence: 6 noisy reads per molecule, pooled and shuffled.
    IdsChannel channel(ErrorModel::uniform(0.04));
    std::vector<Strand> pool;
    for (const auto &s : unit.strands) {
        auto reads = channel.transmitCluster(s, 6, rng);
        pool.insert(pool.end(), reads.begin(), reads.end());
    }
    rng.shuffle(pool);

    // Cluster by similarity.
    auto clustering = clusterReads(pool);
    // Most molecules should come back as one cluster each.
    EXPECT_GE(clustering.count(), cfg.codewordLen() * 9 / 10);

    std::vector<std::vector<Strand>> clusters;
    for (const auto &members : clustering.members) {
        std::vector<Strand> cluster;
        cluster.reserve(members.size());
        for (size_t idx : members)
            cluster.push_back(pool[idx]);
        clusters.push_back(std::move(cluster));
    }
    // The decoder accepts at most one cluster per column; keep the
    // largest clusters first so splinters do not crowd out the real
    // ones.
    std::sort(clusters.begin(), clusters.end(),
              [](const auto &a, const auto &b) {
                  return a.size() > b.size();
              });
    clusters.resize(
        std::min(clusters.size(), size_t(cfg.codewordLen())));

    UnitDecoder dec(cfg, LayoutScheme::Gini);
    auto result = dec.decode(clusters);
    ASSERT_TRUE(result.bundleOk);
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.bundle.file(0).data, bundle.file(0).data);
}

} // namespace
} // namespace dnastore

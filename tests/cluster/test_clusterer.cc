#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "channel/ids_channel.hh"
#include "cluster/clusterer.hh"
#include "fuzz_iters.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

/** Full-matrix Levenshtein reference (no band, no early exit). */
size_t
referenceEditDistance(const Strand &a, const Strand &b)
{
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t best = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            best = std::min(best, prev[j] + 1);
            best = std::min(best, cur[j - 1] + 1);
            cur[j] = best;
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/** Mutate @p s with @p edits random indel/substitution edits. */
Strand
mutate(const Strand &s, size_t edits, Rng &rng)
{
    Strand out = s;
    for (size_t e = 0; e < edits; ++e) {
        size_t pos = out.empty() ? 0 : rng.nextBelow(out.size());
        switch (rng.nextBelow(3)) {
          case 0:
            if (!out.empty())
                out[pos] = baseFromBits(unsigned(rng.nextBelow(4)));
            break;
          case 1:
            if (!out.empty())
                out.erase(out.begin() + long(pos));
            break;
          default:
            out.insert(out.begin() + long(pos),
                       baseFromBits(unsigned(rng.nextBelow(4))));
        }
    }
    return out;
}

TEST(BandedEditDistance, MatchesExactDistanceWithinBand)
{
    Rng rng(1);
    for (int iter = 0; iter < 40; ++iter) {
        auto a = randomStrand(40 + rng.nextBelow(30), rng);
        auto b = a;
        // Apply a few random edits.
        for (int e = 0; e < 4; ++e) {
            size_t pos = rng.nextBelow(b.size());
            switch (rng.nextBelow(3)) {
              case 0:
                b[pos] = baseFromBits(unsigned(rng.nextBelow(4)));
                break;
              case 1:
                b.erase(b.begin() + long(pos));
                break;
              default:
                b.insert(b.begin() + long(pos),
                         baseFromBits(unsigned(rng.nextBelow(4))));
            }
        }
        size_t exact = editDistance(a, b);
        size_t banded = bandedEditDistance(a, b, 20, 12);
        EXPECT_EQ(banded, exact);
    }
}

TEST(BandedEditDistance, EarlyExitBeyondLimit)
{
    Rng rng(2);
    auto a = randomStrand(60, rng);
    auto b = randomStrand(60, rng);
    size_t limited = bandedEditDistance(a, b, 5, 12);
    if (editDistance(a, b) > 5) {
        EXPECT_EQ(limited, 6u);
    }
}

TEST(BandedEditDistance, LengthGapShortCircuits)
{
    Rng rng(3);
    auto a = randomStrand(100, rng);
    auto b = randomStrand(10, rng);
    EXPECT_EQ(bandedEditDistance(a, b, 20, 10), 21u);
}

TEST(BandedEditDistanceFuzz, AgreesWithFullMatrixWhenInsideBand)
{
    // When the band covers the whole matrix and the limit covers the
    // true distance, the banded result must equal the reference DP —
    // including unequal-length pairs and empty strands.
    Rng rng(101);
    for (int iter = 0; iter < fuzzIters(300); ++iter) {
        Strand a = randomStrand(rng.nextBelow(70), rng);
        Strand b = mutate(a, rng.nextBelow(8), rng);
        size_t exact = referenceEditDistance(a, b);
        size_t wide_band = a.size() + b.size() + 1;
        EXPECT_EQ(bandedEditDistance(a, b, exact + 5, wide_band),
                  exact)
            << "sizes " << a.size() << "/" << b.size();
    }
}

TEST(BandedEditDistanceFuzz, LimitBoundaryIsExact)
{
    // d <= limit must return d exactly; limit = d - 1 must return
    // limit + 1 (the early-exit sentinel), never a smaller value.
    Rng rng(102);
    int checked = 0;
    for (int iter = 0; iter < fuzzIters(400) && checked < 120;
         ++iter) {
        Strand a = randomStrand(30 + rng.nextBelow(50), rng);
        Strand b = mutate(a, 1 + rng.nextBelow(6), rng);
        size_t exact = referenceEditDistance(a, b);
        if (exact == 0)
            continue;
        size_t band = a.size() + b.size() + 1;
        EXPECT_EQ(bandedEditDistance(a, b, exact, band), exact);
        EXPECT_EQ(bandedEditDistance(a, b, exact - 1, band), exact);
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

TEST(BandedEditDistanceFuzz, NarrowBandNeverUndershoots)
{
    // A too-narrow band may overestimate (the optimal path leaves the
    // band) but must never report less than the true distance, and
    // must stay deterministic.
    Rng rng(103);
    for (int iter = 0; iter < fuzzIters(300); ++iter) {
        Strand a = randomStrand(20 + rng.nextBelow(60), rng);
        Strand b = mutate(a, rng.nextBelow(10), rng);
        size_t exact = referenceEditDistance(a, b);
        for (size_t band : { size_t(1), size_t(2), size_t(4),
                             size_t(9) }) {
            size_t limit = exact + 10;
            size_t banded = bandedEditDistance(a, b, limit, band);
            EXPECT_GE(banded, std::min(exact, limit + 1));
            EXPECT_EQ(banded, bandedEditDistance(a, b, limit, band));
        }
    }
}

TEST(BandedEditDistanceFuzz, UnequalLengthsAndEdges)
{
    Rng rng(104);
    // Length gap beyond the limit short-circuits.
    Strand a = randomStrand(90, rng);
    Strand b = randomStrand(40, rng);
    EXPECT_EQ(bandedEditDistance(a, b, 30, 100), 31u);
    // Empty vs non-empty: distance is the length (insertions only).
    Strand empty;
    Strand c = randomStrand(12, rng);
    EXPECT_EQ(bandedEditDistance(empty, c, 20, 20), 12u);
    EXPECT_EQ(bandedEditDistance(c, empty, 20, 20), 12u);
    EXPECT_EQ(bandedEditDistance(empty, empty, 5, 5), 0u);
    // Band of zero still scores the pure-diagonal (substitution-only)
    // path for equal lengths.
    Strand d = c;
    d[5] = baseFromBits(bitsFromBase(d[5]) ^ 2);
    EXPECT_EQ(bandedEditDistance(c, d, 12, 0), 1u);
}

TEST(Clusterer, SerialAndParallelAreBitIdentical)
{
    Rng rng(105);
    IdsChannel channel(ErrorModel::uniform(0.07));
    std::vector<Strand> reads;
    for (size_t s = 0; s < 60; ++s) {
        Strand original = randomStrand(110, rng);
        for (size_t c = 0; c < 8; ++c)
            reads.push_back(channel.transmit(original, rng));
    }

    for (size_t shards : { size_t(0), size_t(1), size_t(4),
                           size_t(13) }) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        ClusterParams serial;
        serial.numShards = shards;
        serial.numThreads = 1;
        Clustering base = clusterReads(reads, serial);
        for (size_t threads : { size_t(2), size_t(8), size_t(0) }) {
            SCOPED_TRACE("threads " + std::to_string(threads));
            ClusterParams par = serial;
            par.numThreads = threads;
            Clustering got = clusterReads(reads, par);
            EXPECT_EQ(got.clusterOf, base.clusterOf);
            EXPECT_EQ(got.members, base.members);
        }
    }
}

TEST(Clusterer, ShardedModeKeepsQuality)
{
    Rng rng(106);
    IdsChannel channel(ErrorModel::uniform(0.05));
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    for (size_t s = 0; s < 40; ++s) {
        Strand original = randomStrand(120, rng);
        for (size_t c = 0; c < 6; ++c) {
            reads.push_back(channel.transmit(original, rng));
            truth.push_back(s);
        }
    }
    ClusterParams params;
    params.numShards = 8;
    params.numThreads = 4;
    auto quality = scoreClustering(clusterReads(reads, params), truth);
    EXPECT_GT(quality.precision, 0.99);
    EXPECT_GT(quality.recall, 0.93);
}

TEST(Clusterer, RejectsOutOfRangeQgram)
{
    // qgram >= 32 would overflow the 64-bit signature hash shift;
    // qgram 0 hashes every position identically.
    Rng rng(9);
    std::vector<Strand> reads{ randomStrand(100, rng) };
    for (size_t qgram : { size_t(0), size_t(32), size_t(100) }) {
        ClusterParams params;
        params.qgram = qgram;
        EXPECT_THROW(clusterReads(reads, params),
                     std::invalid_argument)
            << "qgram " << qgram;
    }
    ClusterParams ok;
    ok.qgram = 31;
    EXPECT_EQ(clusterReads(reads, ok).count(), 1u);
}

TEST(Clusterer, IdenticalReadsFormOneCluster)
{
    Rng rng(4);
    auto s = randomStrand(100, rng);
    std::vector<Strand> reads(8, s);
    auto clustering = clusterReads(reads);
    EXPECT_EQ(clustering.count(), 1u);
    for (size_t c : clustering.clusterOf)
        EXPECT_EQ(c, 0u);
}

TEST(Clusterer, WellSeparatedStrandsSeparate)
{
    Rng rng(5);
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    const size_t n_strands = 20, copies = 6;
    IdsChannel channel(ErrorModel::uniform(0.05));
    for (size_t s = 0; s < n_strands; ++s) {
        auto original = randomStrand(120, rng);
        for (size_t c = 0; c < copies; ++c) {
            reads.push_back(channel.transmit(original, rng));
            truth.push_back(s);
        }
    }
    auto clustering = clusterReads(reads);
    auto quality = scoreClustering(clustering, truth);
    EXPECT_GT(quality.precision, 0.99);
    EXPECT_GT(quality.recall, 0.95);
}

TEST(Clusterer, ToleratesHighErrorRates)
{
    Rng rng(6);
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    IdsChannel channel(ErrorModel::uniform(0.10));
    for (size_t s = 0; s < 10; ++s) {
        auto original = randomStrand(150, rng);
        for (size_t c = 0; c < 8; ++c) {
            reads.push_back(channel.transmit(original, rng));
            truth.push_back(s);
        }
    }
    auto clustering = clusterReads(reads);
    auto quality = scoreClustering(clustering, truth);
    EXPECT_GT(quality.precision, 0.97);
    EXPECT_GT(quality.recall, 0.80);
}

TEST(Clusterer, InterleavedReadOrder)
{
    // Reads arriving interleaved across strands must still cluster.
    Rng rng(7);
    const size_t n_strands = 12, copies = 5;
    std::vector<Strand> originals;
    for (size_t s = 0; s < n_strands; ++s)
        originals.push_back(randomStrand(100, rng));
    IdsChannel channel(ErrorModel::uniform(0.06));
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    for (size_t c = 0; c < copies; ++c) {
        for (size_t s = 0; s < n_strands; ++s) {
            reads.push_back(channel.transmit(originals[s], rng));
            truth.push_back(s);
        }
    }
    auto quality = scoreClustering(clusterReads(reads), truth);
    EXPECT_GT(quality.precision, 0.99);
    EXPECT_GT(quality.recall, 0.90);
}

TEST(Clusterer, EmptyInput)
{
    auto clustering = clusterReads({});
    EXPECT_EQ(clustering.count(), 0u);
    EXPECT_TRUE(clustering.clusterOf.empty());
}

/** The old all-pairs scorer, kept as the fuzz reference. */
ClusterQuality
referenceScore(const Clustering &clustering,
               const std::vector<size_t> &truth)
{
    const auto &pred = clustering.clusterOf;
    size_t same_pred = 0, same_truth = 0, same_both = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        for (size_t j = i + 1; j < pred.size(); ++j) {
            bool p = pred[i] == pred[j];
            bool t = truth[i] == truth[j];
            same_pred += p;
            same_truth += t;
            same_both += p && t;
        }
    }
    ClusterQuality q;
    q.precision =
        same_pred ? double(same_both) / double(same_pred) : 1.0;
    q.recall =
        same_truth ? double(same_both) / double(same_truth) : 1.0;
    return q;
}

TEST(ScoreClusteringFuzz, MatchesAllPairsReference)
{
    // The sort-based contingency counter must agree with the O(n^2)
    // pairwise loop exactly — same integer pair counts, so the
    // resulting doubles are bit-equal, not merely close.
    Rng rng(401);
    for (int iter = 0; iter < fuzzIters(60); ++iter) {
        size_t n = 1 + rng.nextBelow(120);
        size_t pred_labels = 1 + rng.nextBelow(12);
        size_t truth_labels = 1 + rng.nextBelow(12);
        Clustering c;
        std::vector<size_t> truth(n);
        c.clusterOf.resize(n);
        for (size_t i = 0; i < n; ++i) {
            c.clusterOf[i] = rng.nextBelow(pred_labels);
            truth[i] = rng.nextBelow(truth_labels);
        }
        ClusterQuality fast = scoreClustering(c, truth);
        ClusterQuality slow = referenceScore(c, truth);
        EXPECT_DOUBLE_EQ(fast.precision, slow.precision)
            << "iter " << iter;
        EXPECT_DOUBLE_EQ(fast.recall, slow.recall) << "iter " << iter;
    }
}

TEST(ScoreClustering, PerfectAndDegenerate)
{
    Clustering perfect;
    perfect.clusterOf = { 0, 0, 1, 1 };
    perfect.members = { { 0, 1 }, { 2, 3 } };
    auto q = scoreClustering(perfect, { 0, 0, 1, 1 });
    EXPECT_DOUBLE_EQ(q.precision, 1.0);
    EXPECT_DOUBLE_EQ(q.recall, 1.0);

    Clustering lumped;
    lumped.clusterOf = { 0, 0, 0, 0 };
    lumped.members = { { 0, 1, 2, 3 } };
    q = scoreClustering(lumped, { 0, 0, 1, 1 });
    EXPECT_NEAR(q.precision, 2.0 / 6.0, 1e-12);
    EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

} // namespace
} // namespace dnastore

#include <gtest/gtest.h>

#include "channel/ids_channel.hh"
#include "cluster/clusterer.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

TEST(BandedEditDistance, MatchesExactDistanceWithinBand)
{
    Rng rng(1);
    for (int iter = 0; iter < 40; ++iter) {
        auto a = randomStrand(40 + rng.nextBelow(30), rng);
        auto b = a;
        // Apply a few random edits.
        for (int e = 0; e < 4; ++e) {
            size_t pos = rng.nextBelow(b.size());
            switch (rng.nextBelow(3)) {
              case 0:
                b[pos] = baseFromBits(unsigned(rng.nextBelow(4)));
                break;
              case 1:
                b.erase(b.begin() + long(pos));
                break;
              default:
                b.insert(b.begin() + long(pos),
                         baseFromBits(unsigned(rng.nextBelow(4))));
            }
        }
        size_t exact = editDistance(a, b);
        size_t banded = bandedEditDistance(a, b, 20, 12);
        EXPECT_EQ(banded, exact);
    }
}

TEST(BandedEditDistance, EarlyExitBeyondLimit)
{
    Rng rng(2);
    auto a = randomStrand(60, rng);
    auto b = randomStrand(60, rng);
    size_t limited = bandedEditDistance(a, b, 5, 12);
    if (editDistance(a, b) > 5) {
        EXPECT_EQ(limited, 6u);
    }
}

TEST(BandedEditDistance, LengthGapShortCircuits)
{
    Rng rng(3);
    auto a = randomStrand(100, rng);
    auto b = randomStrand(10, rng);
    EXPECT_EQ(bandedEditDistance(a, b, 20, 10), 21u);
}

TEST(Clusterer, IdenticalReadsFormOneCluster)
{
    Rng rng(4);
    auto s = randomStrand(100, rng);
    std::vector<Strand> reads(8, s);
    auto clustering = clusterReads(reads);
    EXPECT_EQ(clustering.count(), 1u);
    for (size_t c : clustering.clusterOf)
        EXPECT_EQ(c, 0u);
}

TEST(Clusterer, WellSeparatedStrandsSeparate)
{
    Rng rng(5);
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    const size_t n_strands = 20, copies = 6;
    IdsChannel channel(ErrorModel::uniform(0.05));
    for (size_t s = 0; s < n_strands; ++s) {
        auto original = randomStrand(120, rng);
        for (size_t c = 0; c < copies; ++c) {
            reads.push_back(channel.transmit(original, rng));
            truth.push_back(s);
        }
    }
    auto clustering = clusterReads(reads);
    auto quality = scoreClustering(clustering, truth);
    EXPECT_GT(quality.precision, 0.99);
    EXPECT_GT(quality.recall, 0.95);
}

TEST(Clusterer, ToleratesHighErrorRates)
{
    Rng rng(6);
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    IdsChannel channel(ErrorModel::uniform(0.10));
    for (size_t s = 0; s < 10; ++s) {
        auto original = randomStrand(150, rng);
        for (size_t c = 0; c < 8; ++c) {
            reads.push_back(channel.transmit(original, rng));
            truth.push_back(s);
        }
    }
    auto clustering = clusterReads(reads);
    auto quality = scoreClustering(clustering, truth);
    EXPECT_GT(quality.precision, 0.97);
    EXPECT_GT(quality.recall, 0.80);
}

TEST(Clusterer, InterleavedReadOrder)
{
    // Reads arriving interleaved across strands must still cluster.
    Rng rng(7);
    const size_t n_strands = 12, copies = 5;
    std::vector<Strand> originals;
    for (size_t s = 0; s < n_strands; ++s)
        originals.push_back(randomStrand(100, rng));
    IdsChannel channel(ErrorModel::uniform(0.06));
    std::vector<Strand> reads;
    std::vector<size_t> truth;
    for (size_t c = 0; c < copies; ++c) {
        for (size_t s = 0; s < n_strands; ++s) {
            reads.push_back(channel.transmit(originals[s], rng));
            truth.push_back(s);
        }
    }
    auto quality = scoreClustering(clusterReads(reads), truth);
    EXPECT_GT(quality.precision, 0.99);
    EXPECT_GT(quality.recall, 0.90);
}

TEST(Clusterer, EmptyInput)
{
    auto clustering = clusterReads({});
    EXPECT_EQ(clustering.count(), 0u);
    EXPECT_TRUE(clustering.clusterOf.empty());
}

TEST(ScoreClustering, PerfectAndDegenerate)
{
    Clustering perfect;
    perfect.clusterOf = { 0, 0, 1, 1 };
    perfect.members = { { 0, 1 }, { 2, 3 } };
    auto q = scoreClustering(perfect, { 0, 0, 1, 1 });
    EXPECT_DOUBLE_EQ(q.precision, 1.0);
    EXPECT_DOUBLE_EQ(q.recall, 1.0);

    Clustering lumped;
    lumped.clusterOf = { 0, 0, 0, 0 };
    lumped.members = { { 0, 1, 2, 3 } };
    q = scoreClustering(lumped, { 0, 0, 1, 1 });
    EXPECT_NEAR(q.precision, 2.0 / 6.0, 1e-12);
    EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

} // namespace
} // namespace dnastore

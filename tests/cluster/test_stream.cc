#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "channel/ids_channel.hh"
#include "cluster/clusterer.hh"
#include "cluster/gram_index.hh"
#include "cluster/greedy.hh"
#include "cluster/stream.hh"
#include "fuzz_iters.hh"
#include "util/byteio.hh"
#include "util/rng.hh"

namespace dnastore {
namespace {

Strand
randomStrand(size_t len, Rng &rng)
{
    Strand s(len);
    for (auto &b : s)
        b = baseFromBits(unsigned(rng.nextBelow(4)));
    return s;
}

/** A noisy interleaved soup with enough reads to shard. */
std::vector<Strand>
makeSoup(size_t n_strands, size_t copies, double error, uint64_t seed)
{
    Rng rng(seed);
    IdsChannel channel(ErrorModel::uniform(error));
    std::vector<Strand> originals;
    for (size_t s = 0; s < n_strands; ++s)
        originals.push_back(randomStrand(100 + rng.nextBelow(30), rng));
    std::vector<Strand> reads;
    for (size_t c = 0; c < copies; ++c)
        for (size_t s = 0; s < n_strands; ++s)
            reads.push_back(channel.transmit(originals[s], rng));
    return reads;
}

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/dnastream-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

size_t
entryCount(const std::string &dir)
{
    DIR *d = opendir(dir.c_str());
    if (d == nullptr)
        return size_t(-1);
    size_t n = 0;
    while (struct dirent *e = readdir(d)) {
        std::string name = e->d_name;
        if (name != "." && name != "..")
            ++n;
    }
    closedir(d);
    return n;
}

TEST(StreamingCluster, BitIdenticalToInMemoryAcrossBudgetsAndThreads)
{
    // The streaming engine's whole contract: for every memory budget
    // (spilling or not), thread count, and shard schedule, the
    // clustering is byte-identical to the in-memory path.
    auto reads = makeSoup(60, 8, 0.07, 301);

    for (size_t shards : { size_t(0), size_t(5), size_t(13) }) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        ClusterParams in_memory;
        in_memory.numShards = shards;
        Clustering base = clusterReads(reads, in_memory);

        for (size_t budget : { size_t(1) << 30, size_t(4096) }) {
            for (size_t threads : { size_t(1), size_t(4),
                                    size_t(8) }) {
                SCOPED_TRACE("budget " + std::to_string(budget) +
                             " threads " + std::to_string(threads));
                ClusterParams streaming = in_memory;
                streaming.memoryBudgetBytes = budget;
                streaming.numThreads = threads;
                // Through the public entry point: a budget routes
                // clusterReads into the streaming engine.
                Clustering got = clusterReads(reads, streaming);
                EXPECT_EQ(got.clusterOf, base.clusterOf);
                EXPECT_EQ(got.members, base.members);
            }
        }
    }
}

TEST(StreamingCluster, FuzzAgainstInMemory)
{
    // Randomized soups and parameters; every streaming run must
    // reproduce the in-memory clustering exactly.
    Rng rng(302);
    for (int iter = 0; iter < fuzzIters(12); ++iter) {
        auto reads = makeSoup(10 + rng.nextBelow(30),
                              2 + rng.nextBelow(6),
                              0.02 + 0.01 * double(rng.nextBelow(8)),
                              400 + uint64_t(iter));
        ClusterParams params;
        params.numShards = rng.nextBelow(9);
        Clustering base = clusterReads(reads, params);

        ClusterParams streaming = params;
        streaming.memoryBudgetBytes = 1 + rng.nextBelow(32768);
        streaming.numThreads = 1 + rng.nextBelow(8);
        Clustering got = clusterReads(reads, streaming);
        EXPECT_EQ(got.clusterOf, base.clusterOf) << "iter " << iter;
        EXPECT_EQ(got.members, base.members) << "iter " << iter;
    }
}

TEST(StreamingCluster, ParallelShardFinishHasNoSharedSealing)
{
    // Regression: sealChunk() accounts into the engine-wide
    // bufferedBytes_ counter, and forEachRecord() seals its segment's
    // open chunk before replaying it. finish() used to reach that
    // seal concurrently from every shard worker — a data race on the
    // counter, caught by ThreadSanitizer. Open chunks must be sealed
    // serially before the parallel phase. This pins the racy shape:
    // many shards whose buffers are still open entering a maximally
    // threaded finish (generous budget, so nothing spilled or sealed
    // early), repeated a few rounds, bit-identical to the in-memory
    // clustering throughout. Run under TSan this fails on any
    // reintroduction of shared sealing.
    auto reads = makeSoup(80, 6, 0.06, 309);

    ClusterParams in_memory;
    in_memory.numShards = 16;
    Clustering base = clusterReads(reads, in_memory);

    for (int round = 0; round < 4; ++round) {
        ClusterParams streaming = in_memory;
        streaming.memoryBudgetBytes = size_t(1) << 30;
        streaming.numThreads = 8;
        StreamingClusterer engine(streaming);
        for (const auto &r : reads)
            engine.add(r);
        Clustering got = engine.finish();
        EXPECT_EQ(got.clusterOf, base.clusterOf) << "round " << round;
        EXPECT_EQ(got.members, base.members) << "round " << round;
        EXPECT_EQ(engine.stats().spilledBytes, 0u);
        EXPECT_EQ(engine.stats().shards, 16u);
    }
}

TEST(StreamingCluster, SpillsUnderTinyBudgetAndCleansUp)
{
    auto reads = makeSoup(40, 6, 0.05, 303);
    std::string dir = makeTempDir();

    {
        ClusterParams params;
        params.memoryBudgetBytes = 4096;
        params.spillDir = dir;
        StreamingClusterer engine(params);
        for (const auto &r : reads)
            engine.add(r);
        Clustering got = engine.finish();
        EXPECT_EQ(got.clusterOf.size(), reads.size());

        const StreamStats &stats = engine.stats();
        EXPECT_EQ(stats.reads, reads.size());
        EXPECT_GT(stats.spilledBytes, 0u);
        EXPECT_GT(stats.spillChunks, 0u);
        EXPECT_GE(stats.shards, 1u);
        uint64_t bases = stats.baseCounts[0] + stats.baseCounts[1] +
            stats.baseCounts[2] + stats.baseCounts[3];
        uint64_t expected = 0;
        for (const auto &r : reads)
            expected += r.size();
        EXPECT_EQ(bases, expected);
        EXPECT_GE(stats.gcFraction(), 0.0);
        EXPECT_LE(stats.gcFraction(), 1.0);
    }
    // Every spill segment is removed when the engine dies.
    EXPECT_EQ(entryCount(dir), 0u);
    rmdir(dir.c_str());
}

TEST(StreamingCluster, GenerousBudgetNeverTouchesDisk)
{
    auto reads = makeSoup(20, 4, 0.05, 304);
    ClusterParams params;
    params.memoryBudgetBytes = size_t(1) << 30;
    params.spillDir = "/nonexistent/never-consulted";
    StreamingClusterer engine(params);
    for (const auto &r : reads)
        engine.add(r);
    engine.finish();
    EXPECT_EQ(engine.stats().spilledBytes, 0u);
    EXPECT_EQ(engine.stats().spillChunks, 0u);
    EXPECT_GT(engine.stats().peakBufferBytes, 0u);
}

TEST(StreamingCluster, UnwritableSpillDirIsACleanError)
{
    ClusterParams params;
    params.memoryBudgetBytes = 1; // spill on the first read
    params.spillDir = "/nonexistent-dnastore-dir/spill";
    StreamingClusterer engine(params);
    Rng rng(305);
    Strand read = randomStrand(120, rng);
    EXPECT_THROW(engine.add(read), SpillError);
}

TEST(StreamingCluster, LifecycleMisuseThrows)
{
    StreamingClusterer engine(ClusterParams{});
    Rng rng(306);
    Strand read = randomStrand(50, rng);
    engine.add(read);
    engine.finish();
    EXPECT_THROW(engine.add(read), std::logic_error);
    EXPECT_THROW(engine.finish(), std::logic_error);
}

TEST(StreamingCluster, EmptyInput)
{
    StreamingClusterer engine(ClusterParams{});
    Clustering got = engine.finish();
    EXPECT_EQ(got.count(), 0u);
    EXPECT_TRUE(got.clusterOf.empty());
}

// ---------------------------------------------------------------------
// Spill chunk integrity: corruption must always surface as SpillError,
// never as a silently different record stream.

std::vector<uint8_t>
sampleChunkBytes()
{
    ByteWriter payload;
    Rng rng(307);
    for (uint64_t id = 0; id < 5; ++id) {
        size_t len = 40 + rng.nextBelow(60);
        payload.u64(id);
        payload.u64(rng.next());
        payload.u32(uint32_t(len));
        for (size_t w = 0; w < packedWordCount(len); ++w)
            payload.u64(rng.next());
    }
    std::vector<uint8_t> chunk;
    std::vector<uint8_t> raw = payload.take();
    cluster_detail::appendSpillChunk(chunk, raw.data(), raw.size());
    return chunk;
}

size_t
countRecords(const std::vector<uint8_t> &bytes)
{
    size_t records = 0;
    cluster_detail::parseSpillChunks(
        bytes.data(), bytes.size(),
        [&](uint64_t, uint64_t, size_t, const uint64_t *) {
            ++records;
        });
    return records;
}

TEST(SpillChunks, RoundTripParsesEveryRecord)
{
    EXPECT_EQ(countRecords(sampleChunkBytes()), 5u);
}

TEST(SpillChunks, EveryByteFlipIsDetected)
{
    // Flip every bit of every byte — header, CRC, and payload alike.
    // Magic/length flips fail framing; everything else fails the CRC.
    const std::vector<uint8_t> clean = sampleChunkBytes();
    for (size_t i = 0; i < clean.size(); ++i) {
        for (uint8_t bit : { uint8_t(0x01), uint8_t(0x80) }) {
            std::vector<uint8_t> corrupt = clean;
            corrupt[i] ^= bit;
            EXPECT_THROW(countRecords(corrupt), SpillError)
                << "byte " << i << " bit " << int(bit);
        }
    }
}

TEST(SpillChunks, EveryTruncationIsDetected)
{
    const std::vector<uint8_t> clean = sampleChunkBytes();
    // The empty prefix is a valid zero-chunk stream ...
    EXPECT_EQ(countRecords({}), 0u);
    // ... every other strict prefix must fail loudly.
    for (size_t n = 1; n < clean.size(); ++n) {
        std::vector<uint8_t> prefix(clean.begin(),
                                    clean.begin() + long(n));
        EXPECT_THROW(countRecords(prefix), SpillError) << "len " << n;
    }
}

TEST(SpillChunks, TrailingGarbageIsDetected)
{
    std::vector<uint8_t> bytes = sampleChunkBytes();
    bytes.push_back(0x5a);
    EXPECT_THROW(countRecords(bytes), SpillError);
}

// ---------------------------------------------------------------------
// Sketch calibration: the Bloom pre-filter must never produce false
// negatives, and its measured false-positive rate must track the
// analytic estimate.

TEST(GramSketch, NoFalseNegativesAndCalibratedFpr)
{
    GramSketch sketch;
    sketch.reset(16); // 65536 bits
    const size_t keys = 4096;
    Rng rng(308);
    std::vector<uint32_t> inserted;
    for (size_t i = 0; i < keys; ++i) {
        uint32_t fp = GramIndex::fingerprint(rng.next());
        sketch.insert(fp);
        inserted.push_back(fp);
    }
    for (uint32_t fp : inserted)
        EXPECT_TRUE(sketch.mayContain(fp));

    const double estimate = sketch.estimatedFpr(keys);
    EXPECT_GT(estimate, 0.0);
    EXPECT_LT(estimate, 0.05);

    size_t false_positives = 0;
    const size_t probes = 200000;
    for (size_t i = 0; i < probes; ++i) {
        // Disjoint key space: probe values the insert loop (which
        // drew full-width fingerprints) can collide with only by
        // fingerprint accident, which the tolerance absorbs.
        uint32_t fp = GramIndex::fingerprint(
            (uint64_t(1) << 40) + i * 2654435761u);
        if (sketch.mayContain(fp))
            ++false_positives;
    }
    double measured = double(false_positives) / double(probes);
    EXPECT_LT(measured, estimate * 2.5)
        << "measured " << measured << " estimate " << estimate;
}

TEST(GramSketch, AutoSizingTargetsEightBitsPerKey)
{
    for (size_t keys : { size_t(1), size_t(100), size_t(5000),
                         size_t(1000000) }) {
        size_t log2bits = GramSketch::autoLog2Bits(keys);
        EXPECT_GE(log2bits, 10u);
        EXPECT_LE(log2bits, 36u);
        EXPECT_GE(size_t(1) << log2bits, keys * 8)
            << "keys " << keys;
    }
    GramSketch sketch;
    EXPECT_THROW(sketch.reset(9), std::invalid_argument);
    EXPECT_THROW(sketch.reset(37), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Shard resolution: content-only sizing at ~512 reads per shard, no
// ceiling, explicit counts honored.

TEST(ResolveShardCount, UncappedContentOnlySizing)
{
    ClusterParams params; // numShards = 0 (auto)
    using cluster_detail::resolveShardCount;
    EXPECT_EQ(resolveShardCount(params, 0), 1u);
    EXPECT_EQ(resolveShardCount(params, 2047), 1u);
    EXPECT_EQ(resolveShardCount(params, 2048), 4u);
    EXPECT_EQ(resolveShardCount(params, 10000), 19u);
    EXPECT_EQ(resolveShardCount(params, 32768), 64u);
    // The old 64-shard ceiling is gone: big soups keep ~512
    // reads/shard instead of serializing into giant greedy passes.
    EXPECT_EQ(resolveShardCount(params, 100000), 195u);
    EXPECT_EQ(resolveShardCount(params, 10000000), 19531u);

    params.numShards = 7;
    EXPECT_EQ(resolveShardCount(params, 100), 7u);
    EXPECT_EQ(resolveShardCount(params, 3), 3u);
    EXPECT_EQ(resolveShardCount(params, 0), 1u);
}

} // namespace
} // namespace dnastore

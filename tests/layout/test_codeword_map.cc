#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "layout/codeword_map.hh"

namespace dnastore {
namespace {

/** Invariants from the CodewordMap contract, checked for any map. */
void
checkMapInvariants(const CodewordMap &map)
{
    const size_t rows = map.codewords();
    const size_t cols = map.length();

    std::set<std::pair<size_t, size_t>> cells;
    for (size_t j = 0; j < rows; ++j) {
        std::set<size_t> cols_seen;
        for (size_t t = 0; t < cols; ++t) {
            MatrixPos p = map.position(j, t);
            ASSERT_LT(p.row, rows);
            ASSERT_LT(p.col, cols);
            // Bijectivity: no two (codeword, symbol) share a cell.
            ASSERT_TRUE(cells.insert({ p.row, p.col }).second)
                << "duplicate cell " << p.row << "," << p.col;
            // Erasure safety: each codeword hits each column once.
            ASSERT_TRUE(cols_seen.insert(p.col).second);
            // locate() inverts position().
            CodewordPos cp = map.locate(p.row, p.col);
            ASSERT_EQ(cp.codeword, j);
            ASSERT_EQ(cp.symbol, t);
        }
        ASSERT_EQ(cols_seen.size(), cols);
    }
    ASSERT_EQ(cells.size(), rows * cols);
}

class MapShapes
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MapShapes, BaselineInvariants)
{
    auto [rows, cols] = GetParam();
    checkMapInvariants(BaselineMap(rows, cols));
}

TEST_P(MapShapes, GiniInvariants)
{
    auto [rows, cols] = GetParam();
    checkMapInvariants(GiniMap(rows, cols));
}

TEST_P(MapShapes, GiniClassInvariants)
{
    auto [rows, cols] = GetParam();
    if (rows < 3)
        GTEST_SKIP() << "need at least 3 rows for a reserved class";
    // Reserve the outermost rows, as in Figure 8b.
    checkMapInvariants(GiniClassMap(rows, cols, { 0, rows - 1 }));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MapShapes,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 7),
                      std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(7, 15),
                      // rows not dividing cols (the wrap-around case)
                      std::make_pair<size_t, size_t>(82, 255),
                      std::make_pair<size_t, size_t>(82, 1023)));

TEST(BaselineMap, CodewordIsRow)
{
    BaselineMap map(4, 9);
    for (size_t t = 0; t < 9; ++t) {
        EXPECT_EQ(map.position(2, t).row, 2u);
        EXPECT_EQ(map.position(2, t).col, t);
    }
}

TEST(GiniMap, DiagonalStripe)
{
    GiniMap map(4, 9);
    // Codeword 1: (1,0), (2,1), (3,2), (0,3), (1,4), ...
    EXPECT_EQ(map.position(1, 0), (MatrixPos{ 1, 0 }));
    EXPECT_EQ(map.position(1, 1), (MatrixPos{ 2, 1 }));
    EXPECT_EQ(map.position(1, 3), (MatrixPos{ 0, 3 }));
    EXPECT_EQ(map.position(1, 4), (MatrixPos{ 1, 4 }));
}

TEST(GiniMap, RowOccupancyIsBalanced)
{
    // Each codeword must occupy every row floor or ceil of cols/rows
    // times -- this is what equalizes middle-row error exposure.
    GiniMap map(82, 1023);
    for (size_t j = 0; j < 82; j += 13) {
        std::vector<size_t> per_row(82, 0);
        for (size_t t = 0; t < 1023; ++t)
            ++per_row[map.position(j, t).row];
        for (size_t r = 0; r < 82; ++r) {
            EXPECT_GE(per_row[r], size_t(1023 / 82));
            EXPECT_LE(per_row[r], size_t(1023 / 82) + 1);
        }
    }
}

TEST(GiniMap, GatherScatterRoundTrip)
{
    GiniMap map(5, 11);
    SymbolMatrix m(5, 11);
    std::vector<uint32_t> cw(11);
    for (size_t t = 0; t < 11; ++t)
        cw[t] = uint32_t(100 + t);
    map.scatter(m, 3, cw);
    EXPECT_EQ(map.gather(m, 3), cw);
    EXPECT_THROW(map.scatter(m, 3, { 1, 2 }), std::invalid_argument);
}

TEST(GiniClassMap, ReservedRowsStayRowAligned)
{
    GiniClassMap map(6, 10, { 0, 5 });
    EXPECT_EQ(map.reservedCount(), 2u);
    // Codeword 0 -> row 0, codeword 1 -> row 5, as plain rows.
    for (size_t t = 0; t < 10; ++t) {
        EXPECT_EQ(map.position(0, t), (MatrixPos{ 0, t }));
        EXPECT_EQ(map.position(1, t), (MatrixPos{ 5, t }));
    }
    // Remaining codewords never touch the reserved rows.
    for (size_t j = 2; j < 6; ++j)
        for (size_t t = 0; t < 10; ++t) {
            size_t row = map.position(j, t).row;
            EXPECT_NE(row, 0u);
            EXPECT_NE(row, 5u);
        }
}

TEST(GiniClassMap, Validation)
{
    EXPECT_THROW(GiniClassMap(4, 8, { 4 }), std::invalid_argument);
    EXPECT_THROW(GiniClassMap(4, 8, { 1, 1 }), std::invalid_argument);
    EXPECT_THROW(GiniClassMap(3, 8, { 0, 1, 2 }), std::invalid_argument);
}

TEST(CodewordMap, EmptyShapeRejected)
{
    EXPECT_THROW(BaselineMap(0, 4), std::invalid_argument);
    EXPECT_THROW(GiniMap(4, 0), std::invalid_argument);
}

} // namespace
} // namespace dnastore

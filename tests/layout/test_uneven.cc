#include <gtest/gtest.h>

#include <numeric>

#include "layout/uneven.hh"

namespace dnastore {
namespace {

TEST(Uneven, BudgetIsFullySpent)
{
    auto w = syntheticSkewWeights(10, 5.0);
    auto parity = provisionUneven(w, 100, 63);
    EXPECT_EQ(std::accumulate(parity.begin(), parity.end(), size_t(0)),
              100u);
}

TEST(Uneven, MiddleRowsGetMoreParity)
{
    auto w = syntheticSkewWeights(11, 8.0);
    auto parity = provisionUneven(w, 110, 127);
    EXPECT_GT(parity[5], parity[0]);
    EXPECT_GT(parity[5], parity[10]);
    // Symmetric profile gives near-symmetric provisioning.
    EXPECT_NEAR(double(parity[0]), double(parity[10]), 1.0);
}

TEST(Uneven, UniformWeightsGiveUniformParity)
{
    std::vector<double> w(8, 1.0);
    auto parity = provisionUneven(w, 64, 63);
    for (size_t e : parity)
        EXPECT_EQ(e, 8u);
}

TEST(Uneven, RespectsFloorAndCeiling)
{
    auto w = syntheticSkewWeights(9, 100.0); // extreme concentration
    auto parity = provisionUneven(w, 90, 31, 2);
    size_t total = 0;
    for (size_t e : parity) {
        EXPECT_GE(e, 2u);
        EXPECT_LE(e, 30u);
        total += e;
    }
    EXPECT_EQ(total, 90u);
}

TEST(Uneven, InvalidInputsRejected)
{
    std::vector<double> w(4, 1.0);
    EXPECT_THROW(provisionUneven({}, 10, 15), std::invalid_argument);
    EXPECT_THROW(provisionUneven({ 1.0, -1.0 }, 10, 15),
                 std::invalid_argument);
    EXPECT_THROW(provisionUneven({ 0.0, 0.0 }, 10, 15),
                 std::invalid_argument);
    // Budget below the floor or above the ceiling.
    EXPECT_THROW(provisionUneven(w, 7, 15), std::invalid_argument);
    EXPECT_THROW(provisionUneven(w, 100, 15), std::invalid_argument);
}

TEST(SyntheticSkewWeights, ShapeAndRange)
{
    auto w = syntheticSkewWeights(21, 6.0);
    ASSERT_EQ(w.size(), 21u);
    EXPECT_NEAR(w.front(), 1.0, 1e-9);
    EXPECT_NEAR(w.back(), 1.0, 1e-9);
    EXPECT_NEAR(w[10], 6.0, 1e-9);
    // Monotone towards the middle.
    for (size_t i = 0; i < 10; ++i) {
        EXPECT_LE(w[i], w[i + 1] + 1e-12);
        EXPECT_LE(w[20 - i], w[19 - i] + 1e-12);
    }
}

TEST(SyntheticSkewWeights, Validation)
{
    EXPECT_THROW(syntheticSkewWeights(0, 2.0), std::invalid_argument);
    EXPECT_THROW(syntheticSkewWeights(5, 0.5), std::invalid_argument);
}

} // namespace
} // namespace dnastore
